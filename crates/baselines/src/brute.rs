//! Exact brute-force scan — the correctness oracle.

use skewsearch_core::{Match, SetSimilaritySearch};
use skewsearch_sets::{similarity, SparseVec};

/// Linear scan over all vectors with exact Braun-Blanquet verification.
/// `O(n · d̄)` per query; never wrong, never fast.
pub struct BruteForce {
    vectors: Vec<SparseVec>,
    threshold: f64,
}

impl BruteForce {
    /// Wraps the dataset (no preprocessing).
    pub fn new(vectors: Vec<SparseVec>, threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must lie in [0,1]"
        );
        Self { vectors, threshold }
    }

    /// The exact top-1 neighbor regardless of threshold (useful as ground
    /// truth for recall experiments). Ties broken by lowest id.
    pub fn nearest(&self, q: &SparseVec) -> Option<Match> {
        let mut best: Option<Match> = None;
        for (id, x) in self.vectors.iter().enumerate() {
            let sim = similarity::braun_blanquet(x, q);
            if best.is_none_or(|b| sim > b.similarity) {
                best = Some(Match {
                    id,
                    similarity: sim,
                });
            }
        }
        best
    }
}

impl SetSimilaritySearch for BruteForce {
    fn search(&self, q: &SparseVec) -> Option<Match> {
        self.vectors.iter().enumerate().find_map(|(id, x)| {
            let sim = similarity::braun_blanquet(x, q);
            (sim >= self.threshold).then_some(Match {
                id,
                similarity: sim,
            })
        })
    }

    fn search_all(&self, q: &SparseVec) -> Vec<Match> {
        self.vectors
            .iter()
            .enumerate()
            .filter_map(|(id, x)| {
                let sim = similarity::braun_blanquet(x, q);
                (sim >= self.threshold).then_some(Match {
                    id,
                    similarity: sim,
                })
            })
            .collect()
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn len(&self) -> usize {
        self.vectors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(dims: &[u32]) -> SparseVec {
        SparseVec::from_unsorted(dims.to_vec())
    }

    #[test]
    fn finds_exact_matches_and_respects_threshold() {
        let b = BruteForce::new(vec![v(&[1, 2, 3]), v(&[4, 5, 6]), v(&[1, 2])], 0.6);
        let q = v(&[1, 2, 3]);
        let hit = b.search(&q).unwrap();
        assert_eq!(hit.id, 0);
        assert_eq!(hit.similarity, 1.0);
        let all = b.search_all(&q);
        assert_eq!(all.len(), 2); // ids 0 and 2 (sim 2/3 >= 0.6)
    }

    #[test]
    fn nearest_ignores_threshold() {
        let b = BruteForce::new(vec![v(&[1]), v(&[9, 10])], 0.99);
        let q = v(&[9]);
        assert!(b.search(&q).is_none());
        let near = b.nearest(&q).unwrap();
        assert_eq!(near.id, 1);
        assert_eq!(near.similarity, 0.5);
    }

    #[test]
    fn empty_dataset() {
        let b = BruteForce::new(vec![], 0.5);
        assert!(b.is_empty());
        assert!(b.search(&v(&[1])).is_none());
        assert!(b.nearest(&v(&[1])).is_none());
    }

    #[test]
    fn search_best_returns_maximum() {
        let b = BruteForce::new(vec![v(&[1, 2]), v(&[1, 2, 3])], 0.1);
        let q = v(&[1, 2, 3]);
        assert_eq!(b.search_best(&q).unwrap().id, 1);
    }
}
