//! The Chosen Path baseline (Christiani & Pagh, STOC 2017, \[18\] in the
//! paper).
//!
//! Chosen Path solves the `(b₁, b₂)`-approximate Braun-Blanquet problem with
//! constant sampling thresholds `s = 1/(b₁|x|)` and a *fixed* path depth
//! `k = ⌈ln n / ln(1/b₂)⌉`, achieving `ρ = log b₁ / log b₂` — optimal in the
//! worst case but oblivious to skew (the paper: "ChosenPath is not able to
//! exploit skew, and in fact has the same tight running time guarantee
//! independent of the data distribution").
//!
//! Realized here as a
//! [`ChosenPathScheme`] on the shared
//! path engine, so every difference from the core indexes is exactly the
//! paper's three departures: adaptive thresholds, the product stopping rule,
//! and sampling without replacement.

use rand::Rng;
use skewsearch_core::{
    ChosenPathScheme, IndexOptions, LsfIndex, Match, QueryStats, SetSimilaritySearch,
};
use skewsearch_datagen::{BernoulliProfile, Dataset};
use skewsearch_rho::rho_chosen_path;
use skewsearch_sets::SparseVec;

/// Parameters for [`ChosenPathIndex`].
#[derive(Clone, Copy, Debug)]
pub struct ChosenPathParams {
    /// Similarity guaranteed by a planted/close pair.
    pub b1: f64,
    /// Background similarity level to beat.
    pub b2: f64,
    /// Index tuning.
    pub options: IndexOptions,
}

impl ChosenPathParams {
    /// Validates `0 < b₂ < b₁ ≤ 1`.
    pub fn new(b1: f64, b2: f64) -> Result<Self, String> {
        if !(0.0 < b2 && b2 < b1 && b1 <= 1.0) {
            return Err(format!("need 0 < b2 < b1 <= 1, got b1={b1} b2={b2}"));
        }
        Ok(Self {
            b1,
            b2,
            options: IndexOptions::default(),
        })
    }

    /// For the correlated-query model: plan from the expected similarity of
    /// α-correlated (`b₁`) and independent (`b₂`) pairs under `profile` —
    /// the instantiation §7.2 uses when comparing against Chosen Path.
    ///
    /// `margin ∈ (0, 1]` scales `b₁` down so that true pairs whose empirical
    /// similarity fluctuates below its expectation still verify (the paper's
    /// Lemma 10 plays the same role for the correlated index via the 1.3
    /// divisor; `margin = 1/1.3 ≈ 0.77` is the analogous choice).
    pub fn for_correlated_model(
        profile: &BernoulliProfile,
        alpha: f64,
        margin: f64,
    ) -> Result<Self, String> {
        if !(margin > 0.0 && margin <= 1.0) {
            return Err(format!("margin must lie in (0, 1], got {margin}"));
        }
        let (b1, b2) = skewsearch_rho::expected_similarities(profile, alpha);
        Self::new((b1 * margin).max(b2 * 1.0001), b2)
    }

    /// Overrides the index options.
    pub fn with_options(mut self, options: IndexOptions) -> Self {
        self.options = options;
        self
    }
}

/// Chosen Path index: the non-adaptive LSF baseline.
pub struct ChosenPathIndex {
    inner: LsfIndex<ChosenPathScheme>,
    b2: f64,
}

impl ChosenPathIndex {
    /// Preprocesses the dataset.
    pub fn build<R: Rng + ?Sized>(
        dataset: &Dataset,
        profile: &BernoulliProfile,
        params: ChosenPathParams,
        rng: &mut R,
    ) -> Self {
        let scheme = ChosenPathScheme::new(params.b1, params.b2, dataset.n().max(2));
        let inner = LsfIndex::build(
            dataset.vectors().to_vec(),
            profile.clone(),
            scheme,
            params.b1,
            params.options,
            rng,
        );
        Self {
            inner,
            b2: params.b2,
        }
    }

    /// Chosen Path's exponent `ρ = log b₁ / log b₂` (distribution
    /// independent — the point of the comparison).
    pub fn predicted_rho(&self) -> f64 {
        rho_chosen_path(self.inner.scheme().b1(), self.b2)
    }

    /// The fixed path depth `k`.
    pub fn k(&self) -> usize {
        self.inner.scheme().k()
    }

    /// Search with probing statistics.
    pub fn search_with_stats(&self, q: &SparseVec) -> (Option<Match>, QueryStats) {
        self.inner.search_with_stats(q)
    }

    /// Distinct candidates examined for `q`.
    pub fn distinct_candidates(&self, q: &SparseVec) -> (Vec<u32>, QueryStats) {
        self.inner.distinct_candidates(q)
    }

    /// [`SetSimilaritySearch::search_batch`] with an explicit worker count
    /// (`0` = one per available core).
    pub fn search_batch_threads(&self, queries: &[SparseVec], threads: usize) -> Vec<Vec<Match>> {
        self.inner.search_batch_threads(queries, threads)
    }

    /// [`ChosenPathIndex::distinct_candidates`] over a query batch on
    /// `threads` workers (`0` = one per available core).
    pub fn distinct_candidates_batch(
        &self,
        queries: &[SparseVec],
        threads: usize,
    ) -> Vec<(Vec<u32>, QueryStats)> {
        self.inner.distinct_candidates_batch(queries, threads)
    }

    /// Build statistics.
    pub fn build_stats(&self) -> &skewsearch_core::BuildStats {
        self.inner.build_stats()
    }
}

impl SetSimilaritySearch for ChosenPathIndex {
    fn search(&self, q: &SparseVec) -> Option<Match> {
        self.inner.search(q)
    }
    /// Delegates to the shared LSF engine, inheriting its dedup-before-verify
    /// first-discovery ordering contract.
    fn search_all(&self, q: &SparseVec) -> Vec<Match> {
        self.inner.search_all(q)
    }
    fn search_all_tagged(&self, q: &SparseVec) -> Vec<skewsearch_core::TaggedMatch> {
        self.inner.search_all_tagged(q)
    }
    fn search_first_tagged(&self, q: &SparseVec) -> Option<skewsearch_core::TaggedMatch> {
        self.inner.search_first_tagged(q)
    }
    fn plan_query(&self, q: &SparseVec) -> skewsearch_core::QueryPlan {
        self.inner.plan_query(q)
    }
    fn probe_plan_tagged(
        &self,
        plan: &skewsearch_core::QueryPlan,
    ) -> Vec<skewsearch_core::TaggedMatch> {
        SetSimilaritySearch::probe_plan_tagged(&self.inner, plan)
    }
    fn probe_plan_first_tagged(
        &self,
        plan: &skewsearch_core::QueryPlan,
    ) -> Option<skewsearch_core::TaggedMatch> {
        self.inner.probe_plan_first_tagged(plan)
    }
    /// Delegates so the inner LSF engine's per-repetition deadline polling
    /// is kept (the trait default would only poll once up front).
    fn probe_plan_tagged_deadline(
        &self,
        plan: &skewsearch_core::QueryPlan,
        expired: &(dyn Fn() -> bool + Sync),
    ) -> Result<Vec<skewsearch_core::TaggedMatch>, skewsearch_core::DeadlineExceeded> {
        self.inner.probe_plan_tagged_deadline(plan, expired)
    }
    fn search_batch(&self, queries: &[SparseVec]) -> Vec<Vec<Match>> {
        self.inner.search_batch(queries)
    }
    fn search_batch_best(&self, queries: &[SparseVec]) -> Vec<Option<Match>> {
        self.inner.search_batch_best(queries)
    }
    /// Mutable: Chosen Path rides on the shared LSF engine, so it inherits
    /// the log-structured insert/remove for free (the paper's frozen-index
    /// baselines that do *not* — brute force, prefix filtering, MinHash —
    /// keep the read-only default).
    fn insert(
        &mut self,
        set: SparseVec,
    ) -> Result<skewsearch_core::SetId, skewsearch_core::MutationError> {
        self.inner.insert(set)
    }
    fn remove(
        &mut self,
        id: skewsearch_core::SetId,
    ) -> Result<bool, skewsearch_core::MutationError> {
        self.inner.remove(id)
    }
    fn supports_mutation(&self) -> bool {
        true
    }
    fn memory_stats(&self) -> skewsearch_core::MemoryStats {
        self.inner.memory_stats()
    }
    fn threshold(&self) -> f64 {
        self.inner.threshold()
    }
    fn len(&self) -> usize {
        self.inner.len()
    }
}

impl skewsearch_core::Shardable for ChosenPathIndex {
    fn passes(&self) -> usize {
        self.inner.repetition_count()
    }
    fn shard_of_passes(&self, range: std::ops::Range<usize>) -> Self {
        Self {
            inner: self.inner.shard_of_passes(range),
            b2: self.b2,
        }
    }
    fn shard_of_ids(&self, ids: &[u32]) -> Self {
        Self {
            inner: self.inner.shard_of_ids(ids),
            b2: self.b2,
        }
    }
    fn partition_key(&self, id: u32) -> u64 {
        skewsearch_core::set_partition_key(&self.inner.vectors()[id as usize])
    }
    fn slot_count(&self) -> usize {
        self.inner.slot_count()
    }
}

impl skewsearch_core::Persist for ChosenPathIndex {
    /// Kind-4 container: the background threshold `b₂` (the only state the
    /// wrapper adds) followed by the embedded LSF payload — see
    /// `docs/PERSISTENCE.md` §5.
    fn save(&self, path: &std::path::Path) -> Result<(), skewsearch_core::PersistError> {
        let version = skewsearch_core::persist::effective_write_version();
        let mut w = skewsearch_core::persist::Writer::new();
        w.put_f64(self.b2);
        self.inner.write_payload(&mut w, version);
        skewsearch_core::persist::write_container_versioned(
            path,
            skewsearch_core::persist::kind::CHOSEN_PATH,
            &w.into_payload(),
            version,
        )
    }

    fn load(path: &std::path::Path) -> Result<Self, skewsearch_core::PersistError> {
        let (payload, version) = skewsearch_core::persist::read_container_versioned(
            path,
            skewsearch_core::persist::kind::CHOSEN_PATH,
        )?;
        let mut r = skewsearch_core::persist::Reader::new(&payload);
        let b2 = r.get_f64()?;
        if !(b2 > 0.0 && b2 < 1.0) {
            return Err(skewsearch_core::PersistError::Malformed(
                "b2 must lie in (0, 1)",
            ));
        }
        let inner = LsfIndex::read_payload(&mut r, version)?;
        if !r.is_empty() {
            return Err(skewsearch_core::PersistError::Malformed(
                "trailing bytes after index payload",
            ));
        }
        Ok(Self { inner, b2 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use skewsearch_core::Repetitions;
    use skewsearch_datagen::correlated_query;

    fn opts(reps: usize) -> IndexOptions {
        IndexOptions {
            repetitions: Repetitions::Fixed(reps),
            ..IndexOptions::default()
        }
    }

    #[test]
    fn params_validate() {
        assert!(ChosenPathParams::new(0.5, 0.6).is_err());
        assert!(ChosenPathParams::new(0.5, 0.0).is_err());
        assert!(ChosenPathParams::new(1.1, 0.5).is_err());
        assert!(ChosenPathParams::new(0.6, 0.2).is_ok());
    }

    #[test]
    fn correlated_model_planner_orders_thresholds() {
        let profile = BernoulliProfile::two_block(200, 0.3, 0.05).unwrap();
        let p = ChosenPathParams::for_correlated_model(&profile, 0.7, 1.0).unwrap();
        assert!(p.b2 < p.b1 && p.b1 < 1.0);
        let pm = ChosenPathParams::for_correlated_model(&profile, 0.7, 0.8).unwrap();
        assert!(pm.b1 < p.b1 && pm.b1 > pm.b2);
        assert!(ChosenPathParams::for_correlated_model(&profile, 0.7, 0.0).is_err());
    }

    #[test]
    fn finds_correlated_neighbor() {
        let profile = BernoulliProfile::two_block(1000, 0.2, 0.02).unwrap();
        let mut rng = StdRng::seed_from_u64(61);
        let ds = Dataset::generate(&profile, 300, &mut rng);
        let alpha = 0.85;
        let params = ChosenPathParams::for_correlated_model(&profile, alpha, 0.8)
            .unwrap()
            .with_options(opts(12));
        let index = ChosenPathIndex::build(&ds, &profile, params, &mut rng);
        let mut hits = 0;
        let trials = 30;
        for t in 0..trials {
            let target = t % ds.n();
            let q = correlated_query(ds.vector(target), &profile, alpha, &mut rng);
            if let Some(m) = index.search(&q) {
                if m.id == target {
                    hits += 1;
                }
            }
        }
        assert!(hits >= trials / 2, "hits={hits}/{trials}");
    }

    #[test]
    fn predicted_rho_matches_closed_form() {
        let profile = BernoulliProfile::uniform(100, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(62);
        let ds = Dataset::generate(&profile, 100, &mut rng);
        let params = ChosenPathParams::new(0.5, 0.1)
            .unwrap()
            .with_options(opts(1));
        let index = ChosenPathIndex::build(&ds, &profile, params, &mut rng);
        assert!((index.predicted_rho() - 0.5f64.ln() / 0.1f64.ln()).abs() < 1e-12);
        assert!(index.k() >= 1);
    }
}
