//! # skewsearch-baselines
//!
//! Every comparator discussed by "Set Similarity Search for Skewed Data":
//!
//! * [`ChosenPathIndex`] — Christiani & Pagh's Chosen Path \[18\], the
//!   non-adaptive ancestor of the paper's structure (constant thresholds,
//!   fixed depth, with-replacement). Realized on the same path engine as the
//!   core indexes so comparisons are apples-to-apples (Figure 1's blue line).
//! * [`MinHashLsh`] — classic MinHash banding \[13, 14\], the baseline Chosen
//!   Path itself improves on (§1.2).
//! * [`PrefixFilterIndex`] — exact prefix filtering \[11\], the canonical
//!   skew-exploiting heuristic (§1.2 "Heuristics"; cost exponent `Ω(n^{0.1})`
//!   vs ρ→0 in §7's examples).
//! * [`BruteForce`] — exact linear scan; the correctness oracle for tests,
//!   joins, and benchmarks.
//!
//! All implement [`skewsearch_core::SetSimilaritySearch`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brute;
pub mod chosen_path;
pub mod minhash;
pub mod prefix;

pub use brute::BruteForce;
pub use chosen_path::{ChosenPathIndex, ChosenPathParams};
pub use minhash::{MinHashLsh, MinHashParams};
pub use prefix::PrefixFilterIndex;
