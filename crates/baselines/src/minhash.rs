//! MinHash LSH (banding) — Broder's scheme (\[13, 14\] in the paper).
//!
//! The classic approach to set similarity search: each vector gets `L` band
//! signatures, each the concatenation of `r` independent min-wise hashes; a
//! band collision makes two vectors candidates. A pair at Jaccard similarity
//! `j` collides in one band with probability `j^r`, so with
//! `r = ⌈ln n / ln(1/j₂)⌉` and `L = Θ(n^ρ)`, `ρ = ln j₁ / ln j₂`, the scheme
//! solves the `(j₁, j₂)`-approximate problem. Chosen Path (and a fortiori
//! the paper's structure) improves on this for sparse sets (§1.2).
//!
//! The index speaks Braun-Blanquet on the outside (like every structure in
//! the workspace): thresholds are converted through the equal-weight
//! correspondence `J = B/(2−B)` that the paper invokes for fixed-weight
//! vectors.

use rand::{Rng, SeedableRng};
use skewsearch_core::{Match, SetSimilaritySearch};
use skewsearch_datagen::Dataset;
use skewsearch_hashing::{FxHashMap, PairwiseU64};
use skewsearch_rho::rho_minhash;
use skewsearch_sets::{similarity, SparseVec};

/// Parameters for [`MinHashLsh`].
#[derive(Clone, Copy, Debug)]
pub struct MinHashParams {
    /// Braun-Blanquet threshold a result must meet (converted internally to
    /// Jaccard `j₁ = b₁/(2−b₁)`).
    pub b1: f64,
    /// Background Braun-Blanquet similarity (converted to `j₂`).
    pub b2: f64,
    /// Multiplier on the theoretical band count `n^ρ` (≈ `ln(1/δ)` for
    /// failure probability `δ`).
    pub band_factor: f64,
    /// Hard cap on `L` to bound memory.
    pub max_bands: usize,
    /// Worker threads for [`SetSimilaritySearch::search_batch`]
    /// (`0` = one per available core). Batch results are identical for any
    /// worker count.
    pub query_threads: usize,
}

impl MinHashParams {
    /// Validates `0 < b₂ < b₁ ≤ 1`.
    pub fn new(b1: f64, b2: f64) -> Result<Self, String> {
        if !(0.0 < b2 && b2 < b1 && b1 <= 1.0) {
            return Err(format!("need 0 < b2 < b1 <= 1, got b1={b1} b2={b2}"));
        }
        Ok(Self {
            b1,
            b2,
            band_factor: 3.0,
            max_bands: 4096,
            query_threads: 0,
        })
    }

    /// The Jaccard thresholds `(j₁, j₂)` after conversion.
    pub fn jaccard_thresholds(&self) -> (f64, f64) {
        (
            similarity::braun_blanquet_to_jaccard_equal_weight(self.b1),
            similarity::braun_blanquet_to_jaccard_equal_weight(self.b2),
        )
    }

    /// The banding plan `(r, L)` for a dataset of `n` vectors:
    /// `r = ⌈ln n / ln(1/j₂)⌉`, `L = ⌈band_factor · j₁^{-r}⌉ ≈ Θ(n^ρ)`.
    pub fn plan(&self, n: usize) -> (usize, usize) {
        let (j1, j2) = self.jaccard_thresholds();
        let n = n.max(2) as f64;
        let r = (n.ln() / (1.0 / j2).ln()).ceil().max(1.0) as usize;
        let l = (self.band_factor / j1.powi(r as i32)).ceil() as usize;
        (r, l.clamp(1, self.max_bands))
    }
}

/// One band: its `r` min-wise hash functions and its bucket table.
#[derive(Clone)]
struct Band {
    hashes: Vec<PairwiseU64>,
    buckets: FxHashMap<u64, Vec<u32>>,
}

impl Band {
    /// The band signature of a vector, or `None` for empty vectors.
    fn signature(&self, x: &SparseVec) -> Option<u64> {
        if x.is_empty() {
            return None;
        }
        // Combine the r minima into one 64-bit key via sequential mixing.
        let mut key = 0xcbf29ce484222325u64;
        for h in &self.hashes {
            let m = x.iter().map(|i| h.hash(i as u64)).min().unwrap();
            key = skewsearch_hashing::mix::combine64(key, m);
        }
        Some(key)
    }
}

/// MinHash LSH index.
pub struct MinHashLsh {
    vectors: Vec<SparseVec>,
    bands: Vec<Band>,
    threshold: f64,
    rows: usize,
    params: MinHashParams,
}

impl MinHashLsh {
    /// Preprocesses the dataset: `O(n · L · r · d̄)` hashing.
    pub fn build<R: Rng + ?Sized>(dataset: &Dataset, params: MinHashParams, rng: &mut R) -> Self {
        let (r, l) = params.plan(dataset.n());
        let mut seed_rng = rand::rngs::StdRng::seed_from_u64(rng.random::<u64>());
        let mut bands: Vec<Band> = (0..l)
            .map(|_| Band {
                hashes: (0..r).map(|_| PairwiseU64::sample(&mut seed_rng)).collect(),
                buckets: FxHashMap::default(),
            })
            .collect();
        for (id, x) in dataset.vectors().iter().enumerate() {
            for band in bands.iter_mut() {
                if let Some(sig) = band.signature(x) {
                    band.buckets.entry(sig).or_default().push(id as u32);
                }
            }
        }
        Self {
            vectors: dataset.vectors().to_vec(),
            bands,
            threshold: params.b1,
            rows: r,
            params,
        }
    }

    /// The banding plan in use `(rows r, bands L)`.
    pub fn plan(&self) -> (usize, usize) {
        (self.rows, self.bands.len())
    }

    /// The theoretical exponent `ρ = ln j₁ / ln j₂`.
    pub fn predicted_rho(&self) -> f64 {
        let (j1, j2) = self.params.jaccard_thresholds();
        rho_minhash(j1, j2)
    }

    /// Feeds every distinct candidate to `visit`; stops on `false`.
    pub fn probe(&self, q: &SparseVec, mut visit: impl FnMut(u32) -> bool) {
        self.probe_tagged(q, |_, id| visit(id))
    }

    /// [`MinHashLsh::probe`] with discovery coordinates: `visit` receives
    /// `(band, id)`. Each band probes exactly one bucket (the query's
    /// signature), and ids ascend within it, so `(band, 0, id)` totally
    /// orders candidate discovery — the tag contract the sharding layer's
    /// merge protocol needs.
    pub fn probe_tagged(&self, q: &SparseVec, mut visit: impl FnMut(u32, u32) -> bool) {
        let mut seen = skewsearch_hashing::FxHashSet::default();
        'bands: for (pass, band) in self.bands.iter().enumerate() {
            let Some(sig) = band.signature(q) else { return };
            if let Some(bucket) = band.buckets.get(&sig) {
                for &id in bucket {
                    if seen.insert(id) && !visit(pass as u32, id) {
                        break 'bands;
                    }
                }
            }
        }
    }

    /// Distinct candidate count for a query (cost proxy for experiments).
    pub fn candidate_count(&self, q: &SparseVec) -> usize {
        let mut count = 0usize;
        self.probe(q, |_| {
            count += 1;
            true
        });
        count
    }

    /// [`SetSimilaritySearch::search_batch`] with an explicit worker count
    /// (`0` = one per available core), ignoring
    /// [`MinHashParams::query_threads`].
    pub fn search_batch_threads(&self, queries: &[SparseVec], threads: usize) -> Vec<Vec<Match>> {
        skewsearch_core::batch_map(queries, threads, |q| self.search_all(q))
    }
}

impl SetSimilaritySearch for MinHashLsh {
    /// The early-exiting first hit — the tag projection of
    /// `search_first_tagged`, sharing its verify loop.
    fn search(&self, q: &SparseVec) -> Option<Match> {
        self.search_first_tagged(q).map(|t| t.hit)
    }

    /// Same candidate-handling contract as the LSF indexes: `probe`
    /// deduplicates ids across bands before verification and matches appear
    /// in first-discovery order (bands in build order, then bucket insertion
    /// order). Exactly the tag projection of `search_all_tagged` — one
    /// verify loop, not two to keep in lockstep.
    fn search_all(&self, q: &SparseVec) -> Vec<Match> {
        self.search_all_tagged(q)
            .into_iter()
            .map(|t| t.hit)
            .collect()
    }

    /// Genuine `(band, bucket)` discovery coordinates from
    /// [`MinHashLsh::probe_tagged`] (one bucket per band, so `step` is 0).
    fn search_all_tagged(&self, q: &SparseVec) -> Vec<skewsearch_core::TaggedMatch> {
        let mut out = Vec::new();
        self.probe_tagged(q, |pass, id| {
            let sim = similarity::braun_blanquet(&self.vectors[id as usize], q);
            if sim >= self.threshold {
                out.push(skewsearch_core::TaggedMatch {
                    pass,
                    step: 0,
                    hit: Match {
                        id: id as usize,
                        similarity: sim,
                    },
                });
            }
            true
        });
        out
    }

    /// Early-exiting: the probe stops at the first verified hit, exactly
    /// like `search`.
    fn search_first_tagged(&self, q: &SparseVec) -> Option<skewsearch_core::TaggedMatch> {
        let mut first = None;
        self.probe_tagged(q, |pass, id| {
            let sim = similarity::braun_blanquet(&self.vectors[id as usize], q);
            if sim >= self.threshold {
                first = Some(skewsearch_core::TaggedMatch {
                    pass,
                    step: 0,
                    hit: Match {
                        id: id as usize,
                        similarity: sim,
                    },
                });
                false
            } else {
                true
            }
        });
        first
    }

    fn search_batch(&self, queries: &[SparseVec]) -> Vec<Vec<Match>> {
        self.search_batch_threads(queries, self.params.query_threads)
    }

    fn search_batch_best(&self, queries: &[SparseVec]) -> Vec<Option<Match>> {
        skewsearch_core::batch_map(queries, self.params.query_threads, |q| self.search_best(q))
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn len(&self) -> usize {
        self.vectors.len()
    }
}

impl skewsearch_core::Shardable for MinHashLsh {
    /// MinHash's probe passes are its bands.
    fn passes(&self) -> usize {
        self.bands.len()
    }

    fn shard_of_passes(&self, range: std::ops::Range<usize>) -> Self {
        Self {
            vectors: self.vectors.clone(),
            bands: self.bands[range].to_vec(),
            threshold: self.threshold,
            rows: self.rows,
            params: self.params,
        }
    }

    fn shard_of_ids(&self, ids: &[u32]) -> Self {
        let local_of = skewsearch_core::shard::local_id_table(ids, self.vectors.len());
        let bands = self
            .bands
            .iter()
            .map(|band| Band {
                hashes: band.hashes.clone(),
                buckets: band
                    .buckets
                    .iter()
                    .filter_map(|(&sig, bucket)| {
                        skewsearch_core::shard::remap_bucket(bucket, &local_of)
                            .map(|local| (sig, local))
                    })
                    .collect(),
            })
            .collect();
        Self {
            vectors: ids
                .iter()
                .map(|&g| self.vectors[g as usize].clone())
                .collect(),
            bands,
            threshold: self.threshold,
            rows: self.rows,
            params: self.params,
        }
    }

    fn partition_key(&self, id: u32) -> u64 {
        skewsearch_core::set_partition_key(&self.vectors[id as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use skewsearch_datagen::{correlated_query, BernoulliProfile};

    #[test]
    fn params_validate_and_plan() {
        assert!(MinHashParams::new(0.5, 0.6).is_err());
        let p = MinHashParams::new(0.8, 0.2).unwrap();
        let (j1, j2) = p.jaccard_thresholds();
        assert!((j1 - 0.8 / 1.2).abs() < 1e-12);
        assert!((j2 - 0.2 / 1.8).abs() < 1e-12);
        let (r, l) = p.plan(10_000);
        assert!(r >= 1 && l >= 1);
        // r should be ~ ln(1e4)/ln(9) ≈ 4.2 → 5.
        assert_eq!(r, 5);
    }

    #[test]
    fn identical_vectors_always_collide() {
        let profile = BernoulliProfile::uniform(300, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(71);
        let ds = Dataset::generate(&profile, 60, &mut rng);
        let params = MinHashParams::new(0.9, 0.15).unwrap();
        let index = MinHashLsh::build(&ds, params, &mut rng);
        for t in 0..20 {
            let q = ds.vector(t).clone();
            let hit = index.search(&q).expect("self-query must hit");
            assert!(hit.similarity >= 0.9);
        }
    }

    #[test]
    fn finds_correlated_neighbor() {
        let profile = BernoulliProfile::uniform(800, 0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(72);
        let ds = Dataset::generate(&profile, 200, &mut rng);
        let alpha = 0.9;
        let (b1, b2) = skewsearch_rho::expected_similarities(&profile, alpha);
        // Verify slightly below the expected similarity to absorb noise.
        let params = MinHashParams::new(b1 * 0.8, b2).unwrap();
        let index = MinHashLsh::build(&ds, params, &mut rng);
        let mut hits = 0;
        let trials = 25;
        for t in 0..trials {
            let target = t % ds.n();
            let q = correlated_query(ds.vector(target), &profile, alpha, &mut rng);
            if index.search(&q).map(|m| m.id) == Some(target) {
                hits += 1;
            }
        }
        assert!(hits >= trials / 2, "hits={hits}/{trials}");
    }

    #[test]
    fn empty_query_finds_nothing() {
        let profile = BernoulliProfile::uniform(50, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(73);
        let ds = Dataset::generate(&profile, 20, &mut rng);
        let params = MinHashParams::new(0.5, 0.1).unwrap();
        let index = MinHashLsh::build(&ds, params, &mut rng);
        assert!(index.search(&SparseVec::empty()).is_none());
        assert_eq!(index.candidate_count(&SparseVec::empty()), 0);
    }

    #[test]
    fn candidate_count_grows_with_weaker_threshold() {
        let profile = BernoulliProfile::uniform(400, 0.08).unwrap();
        let mut rng = StdRng::seed_from_u64(74);
        let ds = Dataset::generate(&profile, 300, &mut rng);
        let strict = MinHashLsh::build(&ds, MinHashParams::new(0.9, 0.3).unwrap(), &mut rng);
        let loose = MinHashLsh::build(&ds, MinHashParams::new(0.4, 0.05).unwrap(), &mut rng);
        let q = ds.vector(0).clone();
        // The loose plan uses shorter bands → drastically more candidates.
        assert!(loose.candidate_count(&q) >= strict.candidate_count(&q));
    }
}
