//! MinHash LSH (banding) — Broder's scheme (\[13, 14\] in the paper).
//!
//! The classic approach to set similarity search: each vector gets `L` band
//! signatures, each the concatenation of `r` independent min-wise hashes; a
//! band collision makes two vectors candidates. A pair at Jaccard similarity
//! `j` collides in one band with probability `j^r`, so with
//! `r = ⌈ln n / ln(1/j₂)⌉` and `L = Θ(n^ρ)`, `ρ = ln j₁ / ln j₂`, the scheme
//! solves the `(j₁, j₂)`-approximate problem. Chosen Path (and a fortiori
//! the paper's structure) improves on this for sparse sets (§1.2).
//!
//! The index speaks Braun-Blanquet on the outside (like every structure in
//! the workspace): thresholds are converted through the equal-weight
//! correspondence `J = B/(2−B)` that the paper invokes for fixed-weight
//! vectors.

use rand::{Rng, SeedableRng};
use skewsearch_core::{Match, SetSimilaritySearch};
use skewsearch_datagen::Dataset;
use skewsearch_hashing::{FxHashMap, PairwiseU64};
use skewsearch_rho::rho_minhash;
use skewsearch_sets::{similarity, SparseVec};

/// Parameters for [`MinHashLsh`].
#[derive(Clone, Copy, Debug)]
pub struct MinHashParams {
    /// Braun-Blanquet threshold a result must meet (converted internally to
    /// Jaccard `j₁ = b₁/(2−b₁)`).
    pub b1: f64,
    /// Background Braun-Blanquet similarity (converted to `j₂`).
    pub b2: f64,
    /// Multiplier on the theoretical band count `n^ρ` (≈ `ln(1/δ)` for
    /// failure probability `δ`).
    pub band_factor: f64,
    /// Hard cap on `L` to bound memory.
    pub max_bands: usize,
    /// Worker threads for [`SetSimilaritySearch::search_batch`]
    /// (`0` = one per available core). Batch results are identical for any
    /// worker count.
    pub query_threads: usize,
}

impl MinHashParams {
    /// Validates `0 < b₂ < b₁ ≤ 1`.
    pub fn new(b1: f64, b2: f64) -> Result<Self, String> {
        if !(0.0 < b2 && b2 < b1 && b1 <= 1.0) {
            return Err(format!("need 0 < b2 < b1 <= 1, got b1={b1} b2={b2}"));
        }
        Ok(Self {
            b1,
            b2,
            band_factor: 3.0,
            max_bands: 4096,
            query_threads: 0,
        })
    }

    /// The Jaccard thresholds `(j₁, j₂)` after conversion.
    pub fn jaccard_thresholds(&self) -> (f64, f64) {
        (
            similarity::braun_blanquet_to_jaccard_equal_weight(self.b1),
            similarity::braun_blanquet_to_jaccard_equal_weight(self.b2),
        )
    }

    /// The banding plan `(r, L)` for a dataset of `n` vectors:
    /// `r = ⌈ln n / ln(1/j₂)⌉`, `L = ⌈band_factor · j₁^{-r}⌉ ≈ Θ(n^ρ)`.
    pub fn plan(&self, n: usize) -> (usize, usize) {
        let (j1, j2) = self.jaccard_thresholds();
        let n = n.max(2) as f64;
        let r = (n.ln() / (1.0 / j2).ln()).ceil().max(1.0) as usize;
        let l = (self.band_factor / j1.powi(r as i32)).ceil() as usize;
        (r, l.clamp(1, self.max_bands))
    }
}

/// One band: its `r` min-wise hash functions and its bucket table.
#[derive(Clone)]
struct Band {
    hashes: Vec<PairwiseU64>,
    buckets: FxHashMap<u64, Vec<u32>>,
}

impl Band {
    /// The band signature of a vector, or `None` for empty vectors.
    fn signature(&self, x: &SparseVec) -> Option<u64> {
        if x.is_empty() {
            return None;
        }
        // Combine the r minima into one 64-bit key via sequential mixing.
        let mut key = 0xcbf29ce484222325u64;
        for h in &self.hashes {
            let m = x.iter().map(|i| h.hash(i as u64)).min()?;
            key = skewsearch_hashing::mix::combine64(key, m);
        }
        Some(key)
    }
}

/// The probe stage for one band, shared by the fused and the planned query
/// paths: looks `keys` (the band signature — at most one) up in the band's
/// bucket table, feeds each globally unseen candidate to `visit`, and
/// returns `false` iff `visit` stopped the probe. The single bucket-walk
/// loop keeps both paths byte-identical by construction.
fn probe_band_keys(
    band: &Band,
    pass: u32,
    keys: &[u64],
    seen: &mut skewsearch_hashing::FxHashSet<u32>,
    visit: &mut impl FnMut(u32, u32) -> bool,
) -> bool {
    for key in keys {
        if let Some(bucket) = band.buckets.get(key) {
            for &id in bucket {
                if seen.insert(id) && !visit(pass, id) {
                    return false;
                }
            }
        }
    }
    true
}

/// MinHash LSH index.
pub struct MinHashLsh {
    vectors: Vec<SparseVec>,
    bands: Vec<Band>,
    threshold: f64,
    rows: usize,
    params: MinHashParams,
}

impl MinHashLsh {
    /// Preprocesses the dataset: `O(n · L · r · d̄)` hashing.
    pub fn build<R: Rng + ?Sized>(dataset: &Dataset, params: MinHashParams, rng: &mut R) -> Self {
        let (r, l) = params.plan(dataset.n());
        let mut seed_rng = rand::rngs::StdRng::seed_from_u64(rng.random::<u64>());
        let mut bands: Vec<Band> = (0..l)
            .map(|_| Band {
                hashes: (0..r).map(|_| PairwiseU64::sample(&mut seed_rng)).collect(),
                buckets: FxHashMap::default(),
            })
            .collect();
        for (id, x) in dataset.vectors().iter().enumerate() {
            for band in bands.iter_mut() {
                if let Some(sig) = band.signature(x) {
                    band.buckets.entry(sig).or_default().push(id as u32);
                }
            }
        }
        Self {
            vectors: dataset.vectors().to_vec(),
            bands,
            threshold: params.b1,
            rows: r,
            params,
        }
    }

    /// The banding plan in use `(rows r, bands L)`.
    pub fn plan(&self) -> (usize, usize) {
        (self.rows, self.bands.len())
    }

    /// The theoretical exponent `ρ = ln j₁ / ln j₂`.
    pub fn predicted_rho(&self) -> f64 {
        let (j1, j2) = self.params.jaccard_thresholds();
        rho_minhash(j1, j2)
    }

    /// Feeds every distinct candidate to `visit`; stops on `false`.
    pub fn probe(&self, q: &SparseVec, mut visit: impl FnMut(u32) -> bool) {
        self.probe_tagged(q, |_, id| visit(id))
    }

    /// [`MinHashLsh::probe`] with discovery coordinates: `visit` receives
    /// `(band, id)`. Each band probes exactly one bucket (the query's
    /// signature), and ids ascend within it, so `(band, 0, id)` totally
    /// orders candidate discovery — the tag contract the sharding layer's
    /// merge protocol needs.
    pub fn probe_tagged(&self, q: &SparseVec, mut visit: impl FnMut(u32, u32) -> bool) {
        let mut seen = skewsearch_hashing::FxHashSet::default();
        for (pass, band) in self.bands.iter().enumerate() {
            let Some(sig) = band.signature(q) else { return };
            if !probe_band_keys(band, pass as u32, &[sig], &mut seen, &mut visit) {
                break;
            }
        }
    }

    /// Stage 1 of the enumerate→probe→verify pipeline for MinHash: the
    /// "enumeration" is the `L · r` min-wise hash evaluations producing one
    /// band signature each, so the plan carries one single-key list per band
    /// (empty for the empty query, which has no signature).
    ///
    /// The plan is valid for this index and for any
    /// [`Shardable::shard_of_ids`](skewsearch_core::Shardable::shard_of_ids)
    /// dataset shard (shards keep the band hash functions), and, via
    /// [`QueryPlan::slice_passes`](skewsearch_core::QueryPlan::slice_passes),
    /// for band-slice shards.
    pub fn plan_query(&self, q: &SparseVec) -> skewsearch_core::QueryPlan {
        let passes = self
            .bands
            .iter()
            .map(|band| band.signature(q).map_or_else(Vec::new, |sig| vec![sig]))
            .collect();
        skewsearch_core::QueryPlan::from_passes(q.clone(), passes)
    }

    /// [`MinHashLsh::probe_tagged`] driven by a precomputed plan: only the
    /// band bucket tables are touched for a planned plan (no signature
    /// hashing); unplanned plans fall back to the fused probe. Byte-identical
    /// visit sequence — both paths share one bucket-walk loop.
    ///
    /// # Panics
    /// Panics if a planned plan's pass count differs from the band count.
    pub fn probe_plan_tagged_with(
        &self,
        plan: &skewsearch_core::QueryPlan,
        mut visit: impl FnMut(u32, u32) -> bool,
    ) {
        let Some(passes) = plan.passes() else {
            return self.probe_tagged(plan.query(), visit);
        };
        assert_eq!(
            passes.len(),
            self.bands.len(),
            "QueryPlan pass count does not match this index's bands"
        );
        let mut seen = skewsearch_hashing::FxHashSet::default();
        for ((pass, band), keys) in self.bands.iter().enumerate().zip(passes) {
            if !probe_band_keys(band, pass as u32, keys, &mut seen, &mut visit) {
                break;
            }
        }
    }

    /// Distinct candidate count for a query (cost proxy for experiments).
    pub fn candidate_count(&self, q: &SparseVec) -> usize {
        let mut count = 0usize;
        self.probe(q, |_| {
            count += 1;
            true
        });
        count
    }

    /// [`SetSimilaritySearch::search_batch`] with an explicit worker count
    /// (`0` = one per available core), ignoring
    /// [`MinHashParams::query_threads`].
    pub fn search_batch_threads(&self, queries: &[SparseVec], threads: usize) -> Vec<Vec<Match>> {
        skewsearch_core::batch_map(queries, threads, |q| self.search_all(q))
    }

    /// Verifies candidate `id` against `q`: its [`Match`] iff the similarity
    /// clears the threshold — the single verification site every search and
    /// probe entry point shares.
    fn verified(&self, q: &SparseVec, id: u32) -> Option<Match> {
        let sim = similarity::braun_blanquet(&self.vectors[id as usize], q);
        (sim >= self.threshold).then_some(Match {
            id: id as usize,
            similarity: sim,
        })
    }
}

impl SetSimilaritySearch for MinHashLsh {
    /// The early-exiting first hit — the tag projection of
    /// `search_first_tagged`, sharing its verify loop.
    fn search(&self, q: &SparseVec) -> Option<Match> {
        self.search_first_tagged(q).map(|t| t.hit)
    }

    /// Same candidate-handling contract as the LSF indexes: `probe`
    /// deduplicates ids across bands before verification and matches appear
    /// in first-discovery order (bands in build order, then bucket insertion
    /// order). Exactly the tag projection of `search_all_tagged` — one
    /// verify loop, not two to keep in lockstep.
    fn search_all(&self, q: &SparseVec) -> Vec<Match> {
        self.search_all_tagged(q)
            .into_iter()
            .map(|t| t.hit)
            .collect()
    }

    /// Genuine `(band, bucket)` discovery coordinates from
    /// [`MinHashLsh::probe_tagged`] (one bucket per band, so `step` is 0).
    fn search_all_tagged(&self, q: &SparseVec) -> Vec<skewsearch_core::TaggedMatch> {
        let mut out = Vec::new();
        self.probe_tagged(q, |pass, id| {
            if let Some(hit) = self.verified(q, id) {
                out.push(skewsearch_core::TaggedMatch { pass, step: 0, hit });
            }
            true
        });
        out
    }

    /// Early-exiting: the probe stops at the first verified hit, exactly
    /// like `search`.
    fn search_first_tagged(&self, q: &SparseVec) -> Option<skewsearch_core::TaggedMatch> {
        let mut first = None;
        self.probe_tagged(q, |pass, id| {
            first = self
                .verified(q, id)
                .map(|hit| skewsearch_core::TaggedMatch { pass, step: 0, hit });
            first.is_none()
        });
        first
    }

    /// Stage 1: one signature per band — see [`MinHashLsh::plan_query`].
    fn plan_query(&self, q: &SparseVec) -> skewsearch_core::QueryPlan {
        MinHashLsh::plan_query(self, q)
    }

    /// Stages 2+3 from a precomputed plan: band bucket lookups via
    /// [`MinHashLsh::probe_plan_tagged_with`], byte-identical to
    /// `search_all_tagged(plan.query())`.
    fn probe_plan_tagged(
        &self,
        plan: &skewsearch_core::QueryPlan,
    ) -> Vec<skewsearch_core::TaggedMatch> {
        let q = plan.query();
        let mut out = Vec::new();
        self.probe_plan_tagged_with(plan, |pass, id| {
            if let Some(hit) = self.verified(q, id) {
                out.push(skewsearch_core::TaggedMatch { pass, step: 0, hit });
            }
            true
        });
        out
    }

    /// Early-exiting planned probe: stops at the first verified hit without
    /// re-hashing signatures when the plan is planned.
    fn probe_plan_first_tagged(
        &self,
        plan: &skewsearch_core::QueryPlan,
    ) -> Option<skewsearch_core::TaggedMatch> {
        let q = plan.query();
        let mut first = None;
        self.probe_plan_tagged_with(plan, |pass, id| {
            first = self
                .verified(q, id)
                .map(|hit| skewsearch_core::TaggedMatch { pass, step: 0, hit });
            first.is_none()
        });
        first
    }

    fn search_batch(&self, queries: &[SparseVec]) -> Vec<Vec<Match>> {
        self.search_batch_threads(queries, self.params.query_threads)
    }

    fn search_batch_best(&self, queries: &[SparseVec]) -> Vec<Option<Match>> {
        skewsearch_core::batch_map(queries, self.params.query_threads, |q| self.search_best(q))
    }

    /// Band buckets as posting bytes, stored vectors, and per-band hash
    /// coefficients as aux — the same capacity-based accounting the LSF
    /// indexes report.
    fn memory_stats(&self) -> skewsearch_core::MemoryStats {
        let mut posting = 0usize;
        let mut aux = 0usize;
        for band in &self.bands {
            posting += band.buckets.capacity()
                * (std::mem::size_of::<u64>() + std::mem::size_of::<Vec<u32>>() + 1);
            posting += band
                .buckets
                // lint:allow(nondeterministic-iter, sum of bucket capacities is an order-independent reduction)
                .values()
                .map(|b| b.capacity() * std::mem::size_of::<u32>())
                .sum::<usize>();
            aux += band.hashes.capacity() * std::mem::size_of::<PairwiseU64>();
        }
        let vector_bytes = self.vectors.capacity() * std::mem::size_of::<SparseVec>()
            + self
                .vectors
                .iter()
                .map(|v| std::mem::size_of_val(v.dims()))
                .sum::<usize>();
        skewsearch_core::MemoryStats {
            posting_bytes: posting,
            vector_bytes,
            aux_bytes: aux,
        }
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn len(&self) -> usize {
        self.vectors.len()
    }
}

impl skewsearch_core::Shardable for MinHashLsh {
    /// MinHash's probe passes are its bands.
    fn passes(&self) -> usize {
        self.bands.len()
    }

    fn shard_of_passes(&self, range: std::ops::Range<usize>) -> Self {
        Self {
            vectors: self.vectors.clone(),
            bands: self.bands[range].to_vec(),
            threshold: self.threshold,
            rows: self.rows,
            params: self.params,
        }
    }

    fn shard_of_ids(&self, ids: &[u32]) -> Self {
        let local_of = skewsearch_core::shard::local_id_table(ids, self.vectors.len());
        let bands = self
            .bands
            .iter()
            .map(|band| Band {
                hashes: band.hashes.clone(),
                buckets: band
                    .buckets
                    .iter()
                    .filter_map(|(&sig, bucket)| {
                        skewsearch_core::shard::remap_bucket(bucket, &local_of)
                            .map(|local| (sig, local))
                    })
                    .collect(),
            })
            .collect();
        Self {
            vectors: ids
                .iter()
                .map(|&g| self.vectors[g as usize].clone())
                .collect(),
            bands,
            threshold: self.threshold,
            rows: self.rows,
            params: self.params,
        }
    }

    fn partition_key(&self, id: u32) -> u64 {
        skewsearch_core::set_partition_key(&self.vectors[id as usize])
    }
}

impl skewsearch_core::Persist for MinHashLsh {
    /// Kind-5 container — MinHash's own section type: the thresholds and
    /// banding parameters, the indexed vectors, and per band its min-wise
    /// hash coefficients plus its signature buckets (the shared sorted
    /// posting-map encoding) — see `docs/PERSISTENCE.md` §6.
    fn save(&self, path: &std::path::Path) -> Result<(), skewsearch_core::PersistError> {
        let mut w = skewsearch_core::persist::Writer::new();
        w.put_f64(self.threshold);
        w.put_u64(self.rows as u64);
        w.put_f64(self.params.b1);
        w.put_f64(self.params.b2);
        w.put_f64(self.params.band_factor);
        w.put_u64(self.params.max_bands as u64);
        w.put_u64(self.params.query_threads as u64);
        w.put_u64(self.vectors.len() as u64);
        let mut offsets: Vec<u64> = Vec::with_capacity(self.vectors.len() + 1);
        offsets.push(0);
        let mut total = 0u64;
        for v in &self.vectors {
            total += v.dims().len() as u64;
            offsets.push(total);
        }
        w.put_u64_slice(&offsets);
        let mut flat: Vec<u32> = Vec::with_capacity(total as usize);
        for v in &self.vectors {
            flat.extend_from_slice(v.dims());
        }
        w.put_u32_slice(&flat);
        w.put_u64(self.bands.len() as u64);
        for band in &self.bands {
            w.put_u64(band.hashes.len() as u64);
            for h in &band.hashes {
                let (a, b) = h.coefficients();
                w.put_u128(a);
                w.put_u128(b);
            }
            skewsearch_core::persist::write_bucket_map(&mut w, &band.buckets);
        }
        skewsearch_core::persist::write_container(
            path,
            skewsearch_core::persist::kind::MINHASH,
            &w.into_payload(),
        )
    }

    fn load(path: &std::path::Path) -> Result<Self, skewsearch_core::PersistError> {
        use skewsearch_core::PersistError;
        let payload = skewsearch_core::persist::read_container(
            path,
            skewsearch_core::persist::kind::MINHASH,
        )?;
        let mut r = skewsearch_core::persist::Reader::new(&payload);
        let threshold = r.get_f64()?;
        let rows = r.get_u64()? as usize;
        let b1 = r.get_f64()?;
        let b2 = r.get_f64()?;
        let band_factor = r.get_f64()?;
        let max_bands = r.get_u64()? as usize;
        let query_threads = r.get_u64()? as usize;
        if !(0.0 < b2 && b2 < b1 && b1 <= 1.0) {
            return Err(PersistError::Malformed(
                "minhash thresholds violate 0<b2<b1<=1",
            ));
        }
        if !(band_factor.is_finite() && band_factor > 0.0) || rows == 0 {
            return Err(PersistError::Malformed(
                "minhash banding parameters out of range",
            ));
        }
        let n = r.get_u64()? as usize;
        if n > u32::MAX as usize {
            return Err(PersistError::Malformed("slot count exceeds u32 id space"));
        }
        let offsets = r.get_u64_vec()?;
        let flat = r.get_u32_vec()?;
        if offsets.len() != n.checked_add(1).ok_or(PersistError::Truncated)?
            || offsets.first().copied() != Some(0)
            || offsets.last().copied() != Some(flat.len() as u64)
            || offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err(PersistError::Malformed("vector offset table inconsistent"));
        }
        let mut vectors: Vec<SparseVec> = Vec::with_capacity(n);
        for i in 0..n {
            let dims = flat
                .get(offsets[i] as usize..offsets[i + 1] as usize)
                .ok_or(PersistError::Malformed("vector offset table inconsistent"))?;
            if dims.windows(2).any(|w| w[0] >= w[1]) {
                return Err(PersistError::Malformed(
                    "vector dimensions not strictly ascending",
                ));
            }
            vectors.push(SparseVec::from_sorted(dims.to_vec()));
        }
        let band_count = r.get_u64()?;
        let mut bands: Vec<Band> = Vec::new();
        for _ in 0..band_count {
            let hash_count = r.get_u64()? as usize;
            if hash_count != rows {
                return Err(PersistError::Malformed(
                    "band hash count does not match the row count",
                ));
            }
            let mut hashes = Vec::with_capacity(rows.min(1024));
            for _ in 0..hash_count {
                let a = r.get_u128()?;
                let b = r.get_u128()?;
                hashes.push(PairwiseU64::from_coefficients(a, b));
            }
            let buckets = skewsearch_core::persist::read_bucket_map(&mut r, n, 0)?;
            bands.push(Band { hashes, buckets });
        }
        if !r.is_empty() {
            return Err(PersistError::Malformed(
                "trailing bytes after index payload",
            ));
        }
        Ok(Self {
            vectors,
            bands,
            threshold,
            rows,
            params: MinHashParams {
                b1,
                b2,
                band_factor,
                max_bands,
                query_threads,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use skewsearch_datagen::{correlated_query, BernoulliProfile};

    #[test]
    fn params_validate_and_plan() {
        assert!(MinHashParams::new(0.5, 0.6).is_err());
        let p = MinHashParams::new(0.8, 0.2).unwrap();
        let (j1, j2) = p.jaccard_thresholds();
        assert!((j1 - 0.8 / 1.2).abs() < 1e-12);
        assert!((j2 - 0.2 / 1.8).abs() < 1e-12);
        let (r, l) = p.plan(10_000);
        assert!(r >= 1 && l >= 1);
        // r should be ~ ln(1e4)/ln(9) ≈ 4.2 → 5.
        assert_eq!(r, 5);
    }

    #[test]
    fn identical_vectors_always_collide() {
        let profile = BernoulliProfile::uniform(300, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(71);
        let ds = Dataset::generate(&profile, 60, &mut rng);
        let params = MinHashParams::new(0.9, 0.15).unwrap();
        let index = MinHashLsh::build(&ds, params, &mut rng);
        for t in 0..20 {
            let q = ds.vector(t).clone();
            let hit = index.search(&q).expect("self-query must hit");
            assert!(hit.similarity >= 0.9);
        }
    }

    #[test]
    fn finds_correlated_neighbor() {
        let profile = BernoulliProfile::uniform(800, 0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(72);
        let ds = Dataset::generate(&profile, 200, &mut rng);
        let alpha = 0.9;
        let (b1, b2) = skewsearch_rho::expected_similarities(&profile, alpha);
        // Verify slightly below the expected similarity to absorb noise.
        let params = MinHashParams::new(b1 * 0.8, b2).unwrap();
        let index = MinHashLsh::build(&ds, params, &mut rng);
        let mut hits = 0;
        let trials = 25;
        for t in 0..trials {
            let target = t % ds.n();
            let q = correlated_query(ds.vector(target), &profile, alpha, &mut rng);
            if index.search(&q).map(|m| m.id) == Some(target) {
                hits += 1;
            }
        }
        assert!(hits >= trials / 2, "hits={hits}/{trials}");
    }

    #[test]
    fn planned_probe_matches_fused_search() {
        let profile = BernoulliProfile::uniform(500, 0.06).unwrap();
        let mut rng = StdRng::seed_from_u64(75);
        let ds = Dataset::generate(&profile, 150, &mut rng);
        let index = MinHashLsh::build(&ds, MinHashParams::new(0.6, 0.2).unwrap(), &mut rng);
        for t in 0..10 {
            let q = correlated_query(ds.vector(t * 7), &profile, 0.9, &mut rng);
            let plan = SetSimilaritySearch::plan_query(&index, &q);
            assert_eq!(plan.pass_count(), index.plan().1);
            assert_eq!(
                SetSimilaritySearch::probe_plan_tagged(&index, &plan),
                index.search_all_tagged(&q)
            );
            assert_eq!(
                index.probe_plan_first_tagged(&plan),
                index.search_first_tagged(&q)
            );
        }
        // Empty query: no signatures, so every planned pass is empty.
        let plan = SetSimilaritySearch::plan_query(&index, &SparseVec::empty());
        assert_eq!(plan.key_count(), 0);
        assert!(index.probe_plan(&plan).is_empty());
    }

    #[test]
    fn empty_query_finds_nothing() {
        let profile = BernoulliProfile::uniform(50, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(73);
        let ds = Dataset::generate(&profile, 20, &mut rng);
        let params = MinHashParams::new(0.5, 0.1).unwrap();
        let index = MinHashLsh::build(&ds, params, &mut rng);
        assert!(index.search(&SparseVec::empty()).is_none());
        assert_eq!(index.candidate_count(&SparseVec::empty()), 0);
    }

    #[test]
    fn candidate_count_grows_with_weaker_threshold() {
        let profile = BernoulliProfile::uniform(400, 0.08).unwrap();
        let mut rng = StdRng::seed_from_u64(74);
        let ds = Dataset::generate(&profile, 300, &mut rng);
        let strict = MinHashLsh::build(&ds, MinHashParams::new(0.9, 0.3).unwrap(), &mut rng);
        let loose = MinHashLsh::build(&ds, MinHashParams::new(0.4, 0.05).unwrap(), &mut rng);
        let q = ds.vector(0).clone();
        // The loose plan uses shorter bands → drastically more candidates.
        assert!(loose.candidate_count(&q) >= strict.candidate_count(&q));
    }
}
