//! Exact prefix filtering (Bayardo, Ma, Srikant — \[11\] in the paper).
//!
//! The canonical skew-exploiting heuristic (§1.2): order the universe by
//! *increasing* document frequency (rarest first) and observe that if
//! `|x ∩ q| ≥ t` then the `(|x| − t + 1)`-prefix of `x` and the
//! `(|q| − t + 1)`-prefix of `q` (in that global order) must intersect.
//! Indexing only prefixes keeps posting lists short precisely when the data
//! is skewed — and degenerates toward a full inverted scan (`Ω(n)` work) when
//! all frequencies are comparable, which is the regime where the paper's
//! structure keeps polynomial savings.
//!
//! For Braun-Blanquet threshold `b₁`, a match requires
//! `|x ∩ q| ≥ ⌈b₁·max(|x|,|q|)⌉ ≥ ⌈b₁|x|⌉`, so each side safely uses its own
//! `t = ⌈b₁|·|⌉`. The result is **exact**: no false negatives.

use skewsearch_core::{Match, SetSimilaritySearch};
use skewsearch_datagen::Dataset;
use skewsearch_hashing::FxHashSet;
use skewsearch_sets::{similarity, SparseVec};

/// Exact prefix-filtering index.
pub struct PrefixFilterIndex {
    vectors: Vec<SparseVec>,
    /// rank[dim] = position in the rarest-first global order.
    rank: Vec<u32>,
    /// posting[dim] = ids whose *prefix* contains `dim`.
    postings: Vec<Vec<u32>>,
    threshold: f64,
}

impl PrefixFilterIndex {
    /// Builds the index from document frequencies of `dataset` itself.
    pub fn build(dataset: &Dataset, threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "threshold must lie in (0,1], got {threshold}"
        );
        let d = dataset.d();
        // Document frequencies, then rarest-first ranking (ties by dim id
        // for determinism).
        let mut df = vec![0u32; d];
        for x in dataset.vectors() {
            for i in x.iter() {
                df[i as usize] += 1;
            }
        }
        let mut order: Vec<u32> = (0..d as u32).collect();
        order.sort_by_key(|&i| (df[i as usize], i));
        let mut rank = vec![0u32; d];
        for (pos, &dim) in order.iter().enumerate() {
            rank[dim as usize] = pos as u32;
        }

        let mut postings: Vec<Vec<u32>> = vec![Vec::new(); d];
        let vectors: Vec<SparseVec> = dataset.vectors().to_vec();
        for (id, x) in vectors.iter().enumerate() {
            for dim in prefix_dims(x, &rank, threshold) {
                postings[dim as usize].push(id as u32);
            }
        }
        Self {
            vectors,
            rank,
            postings,
            threshold,
        }
    }

    /// Total posting entries (index size diagnostic).
    pub fn posting_entries(&self) -> usize {
        self.postings.iter().map(Vec::len).sum()
    }

    /// Feeds every distinct candidate sharing a prefix dimension with `q` to
    /// `visit`; stops on `false`.
    pub fn probe(&self, q: &SparseVec, mut visit: impl FnMut(u32) -> bool) {
        let mut seen = FxHashSet::default();
        'outer: for dim in prefix_dims(q, &self.rank, self.threshold) {
            for &id in &self.postings[dim as usize] {
                if seen.insert(id) && !visit(id) {
                    break 'outer;
                }
            }
        }
    }

    /// Distinct candidate count for a query (cost proxy for experiments).
    pub fn candidate_count(&self, q: &SparseVec) -> usize {
        let mut count = 0usize;
        self.probe(q, |_| {
            count += 1;
            true
        });
        count
    }
}

/// The prefix of `x` in rarest-first order for threshold `b₁`:
/// its `|x| − ⌈b₁|x|⌉ + 1` globally rarest set dimensions.
fn prefix_dims(x: &SparseVec, rank: &[u32], b1: f64) -> Vec<u32> {
    let w = x.weight();
    if w == 0 {
        return Vec::new();
    }
    let t = (b1 * w as f64).ceil() as usize;
    let keep = w - t.min(w) + 1;
    let mut dims: Vec<u32> = x.dims().to_vec();
    dims.sort_by_key(|&i| rank[i as usize]);
    dims.truncate(keep);
    dims
}

impl SetSimilaritySearch for PrefixFilterIndex {
    fn search(&self, q: &SparseVec) -> Option<Match> {
        let mut hit = None;
        self.probe(q, |id| {
            let sim = similarity::braun_blanquet(&self.vectors[id as usize], q);
            if sim >= self.threshold {
                hit = Some(Match {
                    id: id as usize,
                    similarity: sim,
                });
                false
            } else {
                true
            }
        });
        hit
    }

    fn search_all(&self, q: &SparseVec) -> Vec<Match> {
        let mut out = Vec::new();
        self.probe(q, |id| {
            let sim = similarity::braun_blanquet(&self.vectors[id as usize], q);
            if sim >= self.threshold {
                out.push(Match {
                    id: id as usize,
                    similarity: sim,
                });
            }
            true
        });
        out
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn len(&self) -> usize {
        self.vectors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForce;
    use rand::{rngs::StdRng, SeedableRng};
    use skewsearch_datagen::BernoulliProfile;

    fn v(dims: &[u32]) -> SparseVec {
        SparseVec::from_unsorted(dims.to_vec())
    }

    #[test]
    fn prefix_length_formula() {
        // w = 10, b1 = 0.7 → t = 7 → prefix = 4.
        let rank: Vec<u32> = (0..20).collect();
        let x = v(&(0..10).collect::<Vec<_>>());
        assert_eq!(prefix_dims(&x, &rank, 0.7).len(), 4);
        // b1 = 1.0 → prefix of length 1 (exact duplicates share the rarest).
        assert_eq!(prefix_dims(&x, &rank, 1.0).len(), 1);
    }

    #[test]
    fn prefix_picks_rarest_dims() {
        // Rank makes high dim ids the rarest.
        let d = 10usize;
        let rank: Vec<u32> = (0..d as u32).rev().collect();
        let x = v(&[0, 5, 9]);
        let pre = prefix_dims(&x, &rank, 0.9); // t=3, keep 1
        assert_eq!(pre, vec![9]);
    }

    #[test]
    fn exactness_no_false_negatives_vs_brute_force() {
        let profile = BernoulliProfile::two_block(300, 0.2, 0.02).unwrap();
        let mut rng = StdRng::seed_from_u64(81);
        let ds = Dataset::generate(&profile, 250, &mut rng);
        let b1 = 0.5;
        let index = PrefixFilterIndex::build(&ds, b1);
        let brute = BruteForce::new(ds.vectors().to_vec(), b1);
        // Self-joins style check: every vector queried against the index
        // must retrieve exactly the brute-force result set.
        for t in 0..60 {
            let q = ds.vector(t * 3 % ds.n());
            let mut got: Vec<usize> = index.search_all(q).into_iter().map(|m| m.id).collect();
            let mut want: Vec<usize> = brute.search_all(q).into_iter().map(|m| m.id).collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "mismatch for query {t}");
        }
    }

    #[test]
    fn skew_shrinks_candidate_sets() {
        // Same expected weight (~35), one profile with a long rare tail (each
        // vector carries ~20 rare dims with tiny posting lists) vs a flat
        // dense profile: prefix filtering thrives only on the former — the
        // paper's point that the heuristic's power comes from skew.
        let n = 400;
        let skewed = BernoulliProfile::blocks(&[(50, 0.3), (2000, 0.01)]).unwrap();
        let flat = BernoulliProfile::uniform(100, 0.35).unwrap();
        let mut rng = StdRng::seed_from_u64(82);
        let ds_skew = Dataset::generate(&skewed, n, &mut rng);
        let ds_flat = Dataset::generate(&flat, n, &mut rng);
        let i_skew = PrefixFilterIndex::build(&ds_skew, 0.5);
        let i_flat = PrefixFilterIndex::build(&ds_flat, 0.5);
        let mut c_skew = 0usize;
        let mut c_flat = 0usize;
        for t in 0..50 {
            c_skew += i_skew.candidate_count(ds_skew.vector(t));
            c_flat += i_flat.candidate_count(ds_flat.vector(t));
        }
        assert!(
            (c_skew as f64) < 0.3 * c_flat as f64,
            "skew={c_skew} flat={c_flat}"
        );
    }

    #[test]
    fn empty_query_and_dataset_edge_cases() {
        let ds = Dataset::from_vectors(vec![v(&[1, 2])], 5);
        let index = PrefixFilterIndex::build(&ds, 0.5);
        assert!(index.search(&SparseVec::empty()).is_none());
        assert_eq!(index.candidate_count(&SparseVec::empty()), 0);
        assert_eq!(index.len(), 1);
    }
}
