//! Ablations of the paper's three design departures from Chosen Path
//! (its §3 + footnote 7), plus the hash-family choice:
//!
//! 1. **adaptive thresholds + product stopping rule** (CorrelatedScheme) vs
//!    **constant thresholds + fixed depth** (ChosenPathScheme) on identical
//!    skewed data;
//! 2. the **Lemma 11 δ-boost** on vs off (δ = 0 keeps the structure but
//!    drops the correctness margin);
//! 3. **product stopping rule** in isolation: constant CP thresholds but
//!    adaptive stopping;
//! 4. **pairwise multiply-shift vs tabulation** level hashing.

use criterion::{criterion_group, criterion_main, Criterion};
use skewsearch_bench::{bench_dataset, bench_rng};
use skewsearch_core::{
    enumerate_filters, ChosenPathScheme, CorrelatedScheme, ThresholdScheme, DEFAULT_NODE_BUDGET,
};
use skewsearch_datagen::BernoulliProfile;
use skewsearch_hashing::{PathHasherStack, PathKey, Tabulation64};
use std::hint::black_box;

const ALPHA: f64 = 2.0 / 3.0;
const N: usize = 1000;

/// CorrelatedScheme with the Lemma 11 boost removed (δ = 0).
struct NoBoostScheme {
    phat_w: Vec<f64>,
    log2_n: f64,
    depth: usize,
}

impl NoBoostScheme {
    fn new(alpha: f64, n: usize, profile: &BernoulliProfile) -> Self {
        let w = profile.sum_p();
        Self {
            phat_w: profile
                .ps()
                .iter()
                .map(|&p| (p * (1.0 - alpha) + alpha) * w)
                .collect(),
            log2_n: (n as f64).log2(),
            depth: CorrelatedScheme::new(alpha, n, profile).depth_bound(),
        }
    }
}

impl ThresholdScheme for NoBoostScheme {
    fn threshold(&self, _w: usize, depth: usize, dim: u32) -> f64 {
        let denom = self.phat_w[dim as usize] - depth as f64;
        if denom <= 1.0 {
            1.0
        } else {
            1.0 / denom
        }
    }
    fn is_complete(&self, mass: f64, _depth: usize) -> bool {
        mass >= self.log2_n
    }
    fn depth_bound(&self) -> usize {
        self.depth
    }
}

/// Chosen Path thresholds but the paper's product stopping rule.
struct ConstantThresholdProductStop {
    b1: f64,
    log2_n: f64,
    depth: usize,
}

impl ThresholdScheme for ConstantThresholdProductStop {
    fn threshold(&self, weight: usize, _depth: usize, _dim: u32) -> f64 {
        let denom = self.b1 * weight as f64;
        if denom <= 1.0 {
            1.0
        } else {
            1.0 / denom
        }
    }
    fn is_complete(&self, mass: f64, _depth: usize) -> bool {
        mass >= self.log2_n
    }
    fn depth_bound(&self) -> usize {
        self.depth
    }
}

fn enumeration_cost<S: ThresholdScheme>(
    scheme: &S,
    ds: &skewsearch_datagen::Dataset,
    profile: &BernoulliProfile,
) -> (usize, usize) {
    let mut rng = bench_rng();
    let stack = PathHasherStack::sample(&mut rng, scheme.depth_bound());
    let mut out: Vec<PathKey> = Vec::new();
    let mut filters = 0usize;
    let mut nodes = 0usize;
    for i in 0..64 {
        out.clear();
        let stats = enumerate_filters(
            ds.vector(i),
            profile,
            scheme,
            &stack,
            DEFAULT_NODE_BUDGET,
            &mut out,
        );
        filters += stats.emitted;
        nodes += stats.nodes;
    }
    (filters, nodes)
}

fn bench_ablation(c: &mut Criterion) {
    let (ds, profile) = bench_dataset(N, true);
    let correlated = CorrelatedScheme::new(ALPHA, N, &profile);
    let (b1m, b2m) = skewsearch_rho::expected_similarities(&profile, ALPHA);
    let chosen_path = ChosenPathScheme::new(b1m / 1.3, b2m, N);
    let no_boost = NoBoostScheme::new(ALPHA, N, &profile);
    let hybrid = ConstantThresholdProductStop {
        b1: b1m / 1.3,
        log2_n: (N as f64).log2(),
        depth: correlated.depth_bound(),
    };

    let mut g = c.benchmark_group("ablation_enumeration");
    g.bench_function("adaptive_full(ours)", |b| {
        b.iter(|| black_box(enumeration_cost(&correlated, &ds, &profile)))
    });
    g.bench_function("constant_fixed_depth(chosen_path)", |b| {
        b.iter(|| black_box(enumeration_cost(&chosen_path, &ds, &profile)))
    });
    g.bench_function("no_delta_boost", |b| {
        b.iter(|| black_box(enumeration_cost(&no_boost, &ds, &profile)))
    });
    g.bench_function("constant_thresholds_product_stop", |b| {
        b.iter(|| black_box(enumeration_cost(&hybrid, &ds, &profile)))
    });
    g.finish();

    // Hash-family ablation: throughput of the level-hash decision.
    let mut rng = bench_rng();
    let stack = PathHasherStack::sample(&mut rng, 4);
    let tab = Tabulation64::sample(&mut rng);
    let keys: Vec<PathKey> = (0..4096u32)
        .map(|i| PathKey::EMPTY.extend(i).extend(i ^ 7))
        .collect();
    let mut g = c.benchmark_group("ablation_hash_family");
    g.bench_function("pairwise_multiply_shift", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for k in &keys {
                acc += stack.level(1).accepts(*k, 0.3) as u32;
            }
            black_box(acc)
        })
    });
    g.bench_function("tabulation", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for k in &keys {
                acc += (tab.hash_unit(k.raw() as u64 ^ (k.raw() >> 64) as u64) < 0.3) as u32;
            }
            black_box(acc)
        })
    });
    g.finish();

    // Print the structural counts once — the ablation's real content.
    for (name, scheme) in [
        ("adaptive_full(ours)", &correlated as &dyn ThresholdScheme),
        ("constant_fixed_depth(CP)", &chosen_path),
        ("no_delta_boost", &no_boost),
        ("const_thresh_product_stop", &hybrid),
    ] {
        // dyn dispatch wrapper for printing only.
        struct Dyn<'a>(&'a dyn ThresholdScheme);
        impl ThresholdScheme for Dyn<'_> {
            fn threshold(&self, w: usize, d: usize, i: u32) -> f64 {
                self.0.threshold(w, d, i)
            }
            fn is_complete(&self, m: f64, d: usize) -> bool {
                self.0.is_complete(m, d)
            }
            fn depth_bound(&self) -> usize {
                self.0.depth_bound()
            }
        }
        let (filters, nodes) = enumeration_cost(&Dyn(scheme), &ds, &profile);
        println!("# ablation {name}: filters={filters} nodes={nodes} (64 vectors)");
    }
}

criterion_group! {
    name = benches;
    config = skewsearch_bench::quick_criterion();
    targets = bench_ablation
}
criterion_main!(benches);
