//! Batch query throughput: the sequential per-query loop vs
//! `search_batch` at 1/2/4/8 worker threads.
//!
//! The batch executor distributes queries by chunked work stealing
//! (`skewsearch_core::batch_map`), so on skewed data — where per-query cost
//! varies with `ρ(q)` — threads stay busy behind expensive stragglers.
//! Results are identical to the sequential loop at every thread count; only
//! throughput changes. On a single-core host the threaded rows sit at
//! sequential parity (thread overhead only); the speedup shows on multicore.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skewsearch_baselines::{MinHashLsh, MinHashParams};
use skewsearch_bench::{bench_dataset, bench_rng};
use skewsearch_core::{
    CorrelatedIndex, CorrelatedParams, IndexOptions, Repetitions, SetSimilaritySearch,
};
use skewsearch_datagen::correlated_query;
use skewsearch_sets::SparseVec;
use std::hint::black_box;

const ALPHA: f64 = 2.0 / 3.0;
const N: usize = 2000;
const QUERIES: usize = 64;
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn bench_batch(c: &mut Criterion) {
    let (ds, profile) = bench_dataset(N, true);
    let mut rng = bench_rng();
    let qs: Vec<SparseVec> = (0..QUERIES)
        .map(|t| correlated_query(ds.vector(t * 29 % ds.n()), &profile, ALPHA, &mut rng))
        .collect();
    let opts = IndexOptions {
        repetitions: Repetitions::Fixed(4),
        ..IndexOptions::default()
    };
    let ours = CorrelatedIndex::build(
        &ds,
        &profile,
        CorrelatedParams::new(ALPHA).unwrap().with_options(opts),
        &mut rng,
    );
    let (b1, b2) = skewsearch_rho::expected_similarities(&profile, ALPHA);
    let mh = MinHashLsh::build(
        &ds,
        MinHashParams::new((b1 / 1.3).max(b2 * 1.01), b2).unwrap(),
        &mut rng,
    );

    let mut g = c.benchmark_group(format!("batch_query_skewed_n{N}_q{QUERIES}"));
    g.bench_with_input(BenchmarkId::new("ours_sequential_loop", N), &qs, |b, qs| {
        b.iter(|| {
            for q in qs {
                black_box(ours.search_all(black_box(q)));
            }
        })
    });
    for threads in THREADS {
        g.bench_with_input(
            BenchmarkId::new(format!("ours_batch_t{threads}"), N),
            &qs,
            |b, qs| b.iter(|| black_box(ours.search_batch_threads(black_box(qs), threads))),
        );
    }
    g.bench_with_input(
        BenchmarkId::new("minhash_sequential_loop", N),
        &qs,
        |b, qs| {
            b.iter(|| {
                for q in qs {
                    black_box(mh.search_all(black_box(q)));
                }
            })
        },
    );
    for threads in [1, 4] {
        g.bench_with_input(
            BenchmarkId::new(format!("minhash_batch_t{threads}"), N),
            &qs,
            |b, qs| b.iter(|| black_box(mh.search_batch_threads(black_box(qs), threads))),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = skewsearch_bench::quick_criterion();
    targets = bench_batch
}
criterion_main!(benches);
