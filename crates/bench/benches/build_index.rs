//! Preprocessing cost: building each structure over the same skewed dataset
//! (Theorem 2's `O(d n^{1+ρᵤ+ε})` build vs the baselines').

use criterion::{criterion_group, criterion_main, Criterion};
use skewsearch_baselines::{
    ChosenPathIndex, ChosenPathParams, MinHashLsh, MinHashParams, PrefixFilterIndex,
};
use skewsearch_bench::{bench_dataset, bench_rng};
use skewsearch_core::{
    AdversarialIndex, AdversarialParams, CorrelatedIndex, CorrelatedParams, IndexOptions,
    Repetitions,
};
use std::hint::black_box;

const N: usize = 1000;
const ALPHA: f64 = 2.0 / 3.0;

fn bench_build(c: &mut Criterion) {
    let (ds, profile) = bench_dataset(N, true);
    let opts = IndexOptions {
        repetitions: Repetitions::Fixed(3),
        ..IndexOptions::default()
    };
    let mut g = c.benchmark_group(format!("build_n{N}"));
    g.bench_function("correlated_index", |b| {
        b.iter(|| {
            let mut rng = bench_rng();
            black_box(CorrelatedIndex::build(
                &ds,
                &profile,
                CorrelatedParams::new(ALPHA).unwrap().with_options(opts),
                &mut rng,
            ))
        })
    });
    g.bench_function("adversarial_index", |b| {
        b.iter(|| {
            let mut rng = bench_rng();
            black_box(AdversarialIndex::build(
                &ds,
                &profile,
                AdversarialParams::new(ALPHA / 1.3)
                    .unwrap()
                    .with_options(opts),
                &mut rng,
            ))
        })
    });
    g.bench_function("chosen_path", |b| {
        b.iter(|| {
            let mut rng = bench_rng();
            black_box(ChosenPathIndex::build(
                &ds,
                &profile,
                ChosenPathParams::for_correlated_model(&profile, ALPHA, 1.0 / 1.3)
                    .unwrap()
                    .with_options(opts),
                &mut rng,
            ))
        })
    });
    let (b1, b2) = skewsearch_rho::expected_similarities(&profile, ALPHA);
    g.bench_function("minhash", |b| {
        b.iter(|| {
            let mut rng = bench_rng();
            black_box(MinHashLsh::build(
                &ds,
                MinHashParams::new((b1 / 1.3).max(b2 * 1.01), b2).unwrap(),
                &mut rng,
            ))
        })
    });
    g.bench_function("prefix_filter", |b| {
        b.iter(|| black_box(PrefixFilterIndex::build(&ds, ALPHA / 1.3)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = skewsearch_bench::quick_criterion();
    targets = bench_build
}
criterion_main!(benches);
