//! Figure 1 bench: regenerating the ρ curves (pure exponent solving).
//!
//! Regenerates the figure once per iteration — the artifact is analytic, so
//! "reproducing Figure 1" is literally this computation.

use criterion::{criterion_group, criterion_main, Criterion};
use skewsearch_experiments::fig1;
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1");
    g.bench_function("paper_setting_50pts", |b| {
        b.iter(|| {
            let fig = fig1::paper_setting(black_box(50));
            black_box(fig.max_gap())
        })
    });
    g.bench_function("single_rho_solve", |b| {
        b.iter(|| {
            skewsearch_rho::rho_correlated_blocks(
                black_box(&[(1.0, 0.25), (1.0, 0.25 / 8.0)]),
                black_box(2.0 / 3.0),
            )
        })
    });
    g.finish();

    // Emit the artifact once so `cargo bench` leaves the figure data behind.
    let fig = fig1::paper_setting(50);
    println!("\n{}", fig.table().render_tsv());
}

criterion_group! {
    name = benches;
    config = skewsearch_bench::quick_criterion();
    targets = bench_fig1
}
criterion_main!(benches);
