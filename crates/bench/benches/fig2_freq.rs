//! Figure 2 bench: surrogate generation + frequency-plot pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use skewsearch_experiments::fig2;
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.bench_function("all_surrogates_n600", |b| {
        b.iter(|| black_box(fig2::from_surrogates(black_box(600), 7)))
    });
    let (ds, _) = skewsearch_datagen::surrogate_catalog()[1]
        .generate(2000, &mut skewsearch_bench::bench_rng());
    g.bench_function("freq_plot_of_loaded_dataset", |b| {
        b.iter(|| black_box(fig2::from_dataset("bench", black_box(&ds))))
    });
    g.finish();

    let fig = fig2::from_surrogates(1500, 42);
    println!("\n{}", fig.summary().render_tsv());
}

criterion_group! {
    name = benches;
    config = skewsearch_bench::quick_criterion();
    targets = bench_fig2
}
criterion_main!(benches);
