//! Similarity-join benchmarks: index-driven join vs nested loop, and the
//! parallel driver's speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use skewsearch_bench::{bench_dataset, bench_rng};
use skewsearch_core::{CorrelatedIndex, CorrelatedParams, IndexOptions, Repetitions};
use skewsearch_datagen::correlated_query;
use skewsearch_join::{nested_loop_join, similarity_join, similarity_join_parallel};
use skewsearch_sets::SparseVec;
use std::hint::black_box;

const N: usize = 800;
const R: usize = 120;
const ALPHA: f64 = 2.0 / 3.0;

fn bench_join(c: &mut Criterion) {
    let (ds, profile) = bench_dataset(N, true);
    let mut rng = bench_rng();
    let r: Vec<SparseVec> = (0..R)
        .map(|t| correlated_query(ds.vector(t * 5 % N), &profile, ALPHA, &mut rng))
        .collect();
    let index = CorrelatedIndex::build(
        &ds,
        &profile,
        CorrelatedParams::new(ALPHA)
            .unwrap()
            .with_options(IndexOptions {
                repetitions: Repetitions::Fixed(4),
                // similarity_join routes through search_batch; pin the
                // index's batch pool to one worker so the "sequential" row
                // stays sequential on any host.
                query_threads: 1,
                ..IndexOptions::default()
            }),
        &mut rng,
    );

    let mut g = c.benchmark_group(format!("join_r{R}_s{N}"));
    g.bench_function("lsf_index_sequential", |b| {
        b.iter(|| black_box(similarity_join(black_box(&r), &index)))
    });
    g.bench_function("lsf_index_parallel4", |b| {
        b.iter(|| black_box(similarity_join_parallel(black_box(&r), &index, 4)))
    });
    g.bench_function("nested_loop_exact", |b| {
        b.iter(|| black_box(nested_loop_join(black_box(&r), ds.vectors(), ALPHA / 1.3)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = skewsearch_bench::quick_criterion();
    targets = bench_join
}
criterion_main!(benches);
