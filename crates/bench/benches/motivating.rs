//! §1 motivating-example bench: harmonic profile + split balancing.

use criterion::{criterion_group, criterion_main, Criterion};
use skewsearch_experiments::motivating;
use std::hint::black_box;

fn bench_motivating(c: &mut Criterion) {
    let mut g = c.benchmark_group("motivating");
    g.bench_function("compute_d100k", |b| {
        b.iter(|| black_box(motivating::compute(black_box(100_000), 0.5)))
    });
    g.bench_function("balance_only", |b| {
        b.iter(|| {
            black_box(skewsearch_core::balance_split_normalized(
                black_box(0.077),
                black_box(8.6e-7),
                0.5,
                0.94,
                0.06,
            ))
        })
    });
    g.finish();

    println!(
        "\n{}",
        motivating::compute(100_000, 0.5).table().render_tsv()
    );
}

criterion_group! {
    name = benches;
    config = skewsearch_bench::quick_criterion();
    targets = bench_motivating
}
criterion_main!(benches);
