//! Mutation throughput and the price of staying queryable: steady-state
//! insert/remove pairs (tombstone + delta-segment appends, with and without
//! the auto-compaction schedule), amortized compaction, and query latency on
//! a heavily mutated index versus its from-scratch rebuild — the gap the
//! log-structured design trades against O(n) rebuild time.
//!
//! Answers are byte-identical across the mutated / compacted / rebuilt rows
//! (the contract `tests/mutation_equivalence.rs` pins); only cost changes.

use std::cell::RefCell;
use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use skewsearch_bench::{bench_dataset, bench_rng};
use skewsearch_core::{CorrelatedScheme, IndexOptions, LsfIndex, Repetitions, SetSimilaritySearch};
use skewsearch_datagen::{correlated_query, BernoulliProfile, VectorSampler};
use skewsearch_sets::SparseVec;

const ALPHA: f64 = 2.0 / 3.0;
const N: usize = 1200;
const QUERIES: usize = 32;
const REPS: usize = 8;

/// Deterministic builder: the RNG is consumed only by the build and the
/// scheme is calibrated to the fixed base size, so the "rebuild over the
/// survivors" rows probe identical hash stacks (same trick as the
/// equivalence suite's oracle).
fn build(
    vectors: Vec<SparseVec>,
    profile: &BernoulliProfile,
    mutation_buffer: usize,
) -> LsfIndex<CorrelatedScheme> {
    let mut rng = StdRng::seed_from_u64(0xBE7C);
    LsfIndex::build(
        vectors,
        profile.clone(),
        CorrelatedScheme::new(ALPHA, N, profile),
        ALPHA / 1.3,
        IndexOptions {
            repetitions: Repetitions::Fixed(REPS),
            mutation_buffer,
            ..IndexOptions::default()
        },
        &mut rng,
    )
}

fn bench_mutation(c: &mut Criterion) {
    let (ds, profile) = bench_dataset(N, true);
    let mut rng = bench_rng();
    let sampler = VectorSampler::new(&profile);
    // Fresh sets to insert, recycled round-robin by the steady-state rows.
    let pool: Vec<SparseVec> = (0..256).map(|_| sampler.sample(&mut rng)).collect();
    let qs: Vec<SparseVec> = (0..QUERIES)
        .map(|t| correlated_query(ds.vector(t * 29 % ds.n()), &profile, ALPHA, &mut rng))
        .collect();

    let mut g = c.benchmark_group(format!("mutation_skewed_n{N}"));

    // Steady state: one insert + one remove of the set just inserted. With
    // the default-sized buffer, compaction amortizes over the pairs; with
    // the buffer disabled the delta segment and tombstone set only grow —
    // the row exposes the drift the schedule exists to bound.
    for (label, buffer) in [("buffer_1024", 1024), ("unbuffered", usize::MAX)] {
        let index = RefCell::new(build(ds.vectors().to_vec(), &profile, buffer));
        let turn = RefCell::new(0usize);
        g.bench_with_input(
            BenchmarkId::new(format!("insert_remove_pair_{label}"), N),
            &pool,
            |b, pool| {
                b.iter(|| {
                    let mut index = index.borrow_mut();
                    let mut turn = turn.borrow_mut();
                    let id = index.insert_set(black_box(pool[*turn % pool.len()].clone()));
                    *turn += 1;
                    black_box(index.remove_set(id))
                })
            },
        );
    }

    // Explicit compaction, amortized over a burst of mutations.
    {
        let index = RefCell::new(build(ds.vectors().to_vec(), &profile, usize::MAX));
        let turn = RefCell::new(0usize);
        g.bench_with_input(
            BenchmarkId::new("compact_after_16_mutations", N),
            &pool,
            |b, pool| {
                b.iter(|| {
                    let mut index = index.borrow_mut();
                    let mut turn = turn.borrow_mut();
                    for _ in 0..8 {
                        let id = index.insert_set(pool[*turn % pool.len()].clone());
                        *turn += 1;
                        index.remove_set(id);
                    }
                    index.compact();
                    black_box(index.len())
                })
            },
        );
    }

    // Query latency after a heavy mutation history: 300 build-time removals
    // and 300 fresh inserts, queried (a) with the delta segment and
    // tombstones live, (b) after compaction, (c) on a from-scratch rebuild
    // over the survivors — the floor the log structure is paying against.
    let mutate = |index: &mut LsfIndex<CorrelatedScheme>| {
        for id in 0..300 {
            assert!(index.remove_set(id * 3));
        }
        for v in pool.iter().take(256) {
            index.insert_set(v.clone());
        }
    };
    let mut mutated = build(ds.vectors().to_vec(), &profile, usize::MAX);
    mutate(&mut mutated);
    let mut compacted = build(ds.vectors().to_vec(), &profile, usize::MAX);
    mutate(&mut compacted);
    compacted.compact();
    let survivors: Vec<SparseVec> = (0..mutated.slot_count())
        .filter(|&s| mutated.is_live(s))
        .map(|s| {
            if s < N {
                ds.vector(s).clone()
            } else {
                pool[s - N].clone()
            }
        })
        .collect();
    let rebuilt = build(survivors, &profile, usize::MAX);
    // Sanity: all three rows must measure an equivalent computation.
    assert_eq!(mutated.len(), rebuilt.len());
    assert_eq!(
        mutated.search_all(&qs[0]),
        compacted.search_all(&qs[0]),
        "compaction changed an answer — bench would be meaningless"
    );
    for (label, index) in [
        ("mutated", &mutated),
        ("compacted", &compacted),
        ("rebuilt", &rebuilt),
    ] {
        g.bench_with_input(
            BenchmarkId::new(format!("query_batch_{label}"), N),
            &qs,
            |b, qs| b.iter(|| black_box(index.search_batch(black_box(qs)))),
        );
    }

    g.finish();
}

criterion_group! {
    name = benches;
    config = skewsearch_bench::quick_criterion();
    targets = bench_mutation
}
criterion_main!(benches);
