//! Persistence cost: container save/load throughput and the cold-start
//! question the format exists to answer — how much faster is reopening a
//! saved index than rebuilding it from the raw vectors?
//!
//! Answers are byte-identical between the built and reloaded index
//! (`tests/persist_equivalence.rs` pins this); these rows measure only the
//! durability cost, on the same skewed dataset the other benches use.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use skewsearch_bench::bench_dataset;
use skewsearch_core::{
    CorrelatedIndex, CorrelatedParams, IndexOptions, Persist, Repetitions, SetSimilaritySearch,
    ShardStrategy, ShardedIndex,
};

const ALPHA: f64 = 2.0 / 3.0;
const N: usize = 1200;
const REPS: usize = 8;
const SHARDS: usize = 4;

fn build(
    ds: &skewsearch_datagen::Dataset,
    profile: &skewsearch_datagen::BernoulliProfile,
) -> CorrelatedIndex {
    let mut rng = StdRng::seed_from_u64(0xD15C);
    CorrelatedIndex::build(
        ds,
        profile,
        CorrelatedParams::new(ALPHA)
            .unwrap()
            .with_options(IndexOptions {
                repetitions: Repetitions::Fixed(REPS),
                ..IndexOptions::default()
            }),
        &mut rng,
    )
}

fn bench_persist(c: &mut Criterion) {
    let (ds, profile) = bench_dataset(N, true);
    let index = build(&ds, &profile);
    let sharded = ShardedIndex::build(&index, ShardStrategy::ByDataset, SHARDS);

    let dir = std::env::temp_dir().join(format!("skewsearch_bench_persist_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("correlated.skx");
    let shard_dir = dir.join("sharded");
    index.save(&file).unwrap();
    sharded.save(&shard_dir).unwrap();
    let bytes = std::fs::metadata(&file).unwrap().len();
    // Report the on-disk size as a log line, NOT in the group name: a name
    // that embeds the byte count changes whenever the encoding does, which
    // breaks `cargo bench -- --save-baseline` comparisons across commits.
    eprintln!(
        "persist_skewed_n{N}: file={bytes}B ({:.1} B/set), resident={}B ({:.1} B/set)",
        bytes as f64 / N as f64,
        index.memory_bytes(),
        index.memory_bytes() as f64 / N as f64,
    );

    let mut g = c.benchmark_group(format!("persist_skewed_n{N}"));
    g.bench_with_input(BenchmarkId::new("save", N), &index, |b, index| {
        b.iter(|| black_box(index).save(&file).unwrap())
    });
    g.bench_with_input(BenchmarkId::new("load", N), &file, |b, file| {
        b.iter(|| black_box(CorrelatedIndex::load(file).unwrap()))
    });
    // The alternative to load: rebuild from the raw vectors. The gap is the
    // cold-start win durable indexes buy.
    g.bench_with_input(BenchmarkId::new("rebuild", N), &ds, |b, ds| {
        b.iter(|| black_box(build(ds, &profile)))
    });
    g.bench_with_input(
        BenchmarkId::new("save_sharded", N),
        &sharded,
        |b, sharded| b.iter(|| black_box(sharded).save(&shard_dir).unwrap()),
    );
    g.bench_with_input(BenchmarkId::new("load_sharded", N), &shard_dir, |b, dir| {
        b.iter(|| black_box(ShardedIndex::<CorrelatedIndex>::load(dir).unwrap()))
    });
    g.finish();

    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group! {
    name = benches;
    config = skewsearch_bench::quick_criterion();
    targets = bench_persist
}
criterion_main!(benches);
