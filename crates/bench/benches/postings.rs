//! The compressed-postings trade-off, measured: bytes/set resident for a
//! `FxHashMap<u64, Vec<u32>>` bucket map vs the delta+varint
//! [`CompressedPostings`] arena over the same inverted index, and the probe
//! hot path's walk latency over each substrate.
//!
//! The budget this bench polices (ISSUE 9 acceptance): on skewed data at
//! n = 100k, the compressed substrate must hold at least a 2× bytes/set
//! reduction while the planned-probe walk stays within 15% of the
//! uncompressed baseline. Byte counts go to stderr as log lines (never into
//! group names — see `persist.rs`); latency rows are the Criterion groups.

use std::hint::black_box;

use criterion::Criterion;
use rand::{rngs::StdRng, Rng, SeedableRng};
use skewsearch_bench::bench_dataset;
use skewsearch_core::{
    CompressedPostings, CorrelatedIndex, CorrelatedParams, IndexOptions, PostingsEncoder,
    Repetitions, SetSimilaritySearch,
};
use skewsearch_hashing::FxHashMap;

const N: usize = 100_000;
const PROBES: usize = 512;

/// The inverted dim → ids index both substrates store: ids ascend within
/// each dimension because vectors are scanned in id order.
fn inverted_index(ds: &skewsearch_datagen::Dataset) -> FxHashMap<u64, Vec<u32>> {
    let mut map: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    for (id, v) in ds.vectors().iter().enumerate() {
        for &dim in v.dims() {
            map.entry(dim as u64).or_default().push(id as u32);
        }
    }
    map
}

/// Re-encodes the bucket map through the postings encoder.
fn compress(map: &FxHashMap<u64, Vec<u32>>) -> CompressedPostings {
    let mut keys: Vec<u64> = map.keys().copied().collect();
    keys.sort_unstable();
    let mut enc = PostingsEncoder::new();
    for key in keys {
        for &id in &map[&key] {
            enc.push(key, id);
        }
    }
    enc.finish()
}

/// Resident heap bytes of the uncompressed bucket map: table slots
/// (key + Vec header + control byte, by capacity) plus every bucket's
/// id storage (by capacity) — the same accounting `memory_stats` uses for
/// the delta segment.
fn map_bytes(map: &FxHashMap<u64, Vec<u32>>) -> usize {
    let slot = std::mem::size_of::<u64>() + std::mem::size_of::<Vec<u32>>() + 1;
    map.capacity() * slot
        + map
            .values()
            .map(|bucket| bucket.capacity() * std::mem::size_of::<u32>())
            .sum::<usize>()
}

/// A deterministic probe plan mixing hot and cold dimensions, in the hashed
/// (non-sorted-key) order a real probe sequence arrives in.
fn probe_plan(map: &FxHashMap<u64, Vec<u32>>) -> Vec<u64> {
    let mut keys: Vec<u64> = map.keys().copied().collect();
    keys.sort_unstable();
    let mut rng = StdRng::seed_from_u64(0x9057);
    (0..PROBES)
        .map(|_| keys[rng.random_range(0..keys.len())])
        .collect()
}

fn bench_postings(c: &mut Criterion) {
    let (ds, _profile) = bench_dataset(N, true);
    let map = inverted_index(&ds);
    let compressed = compress(&map);
    assert_eq!(
        compressed.posting_count(),
        map.values().map(Vec::len).sum::<usize>()
    );

    let raw = map_bytes(&map);
    let packed = compressed.heap_bytes();
    eprintln!(
        "postings_n100k_skewed: {} buckets, {} postings; bucket_map {}B ({:.1} B/set) vs \
         compressed {}B ({:.1} B/set) — {:.2}x reduction",
        compressed.bucket_count(),
        compressed.posting_count(),
        raw,
        raw as f64 / N as f64,
        packed,
        packed as f64 / N as f64,
        raw as f64 / packed as f64,
    );

    let plan = probe_plan(&map);
    let mut g = c.benchmark_group("postings_walk_n100k_skewed");
    g.bench_function("bucket_map", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for key in &plan {
                if let Some(bucket) = map.get(key) {
                    for &id in bucket {
                        acc = acc.wrapping_add(id as u64);
                    }
                }
            }
            black_box(acc)
        })
    });
    g.bench_function("compressed", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for key in &plan {
                if let Some(cursor) = compressed.get(*key) {
                    for id in cursor {
                        acc = acc.wrapping_add(id as u64);
                    }
                }
            }
            black_box(acc)
        })
    });
    g.finish();

    // The same budget through the full index: a real LsfIndex-backed build
    // at a scale the bench harness can afford, reporting the accounted
    // bytes/set breakdown end to end.
    let n_index = 10_000;
    let (ds, profile_small) = bench_dataset(n_index, true);
    let mut rng = StdRng::seed_from_u64(0xD15C);
    let index = CorrelatedIndex::build(
        &ds,
        &profile_small,
        CorrelatedParams::new(2.0 / 3.0)
            .unwrap()
            .with_options(IndexOptions {
                repetitions: Repetitions::Fixed(8),
                ..IndexOptions::default()
            }),
        &mut rng,
    );
    let stats = index.memory_stats();
    eprintln!(
        "correlated_index_n10k_skewed: {} — {:.1} B/set total \
         ({:.1} postings, {:.1} vectors, {:.1} aux)",
        stats,
        stats.bytes_per_set(n_index),
        stats.posting_bytes as f64 / n_index as f64,
        stats.vector_bytes as f64 / n_index as f64,
        stats.aux_bytes as f64 / n_index as f64,
    );
}

criterion::criterion_group! {
    name = benches;
    config = skewsearch_bench::quick_criterion();
    targets = bench_postings
}
criterion::criterion_main!(benches);
