//! Query latency: the paper's index vs every baseline, skewed vs uniform.
//!
//! The Theorem 1/2 shape claims at bench scale: on skewed data our query
//! stays cheap while brute force is linear; on uniform data we match Chosen
//! Path (the balanced-case recovery of §1.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skewsearch_baselines::{
    BruteForce, ChosenPathIndex, ChosenPathParams, MinHashLsh, MinHashParams, PrefixFilterIndex,
};
use skewsearch_bench::{bench_dataset, bench_rng};
use skewsearch_core::{
    CorrelatedIndex, CorrelatedParams, IndexOptions, Repetitions, SetSimilaritySearch,
};
use skewsearch_datagen::correlated_query;
use skewsearch_sets::SparseVec;
use std::hint::black_box;

const ALPHA: f64 = 2.0 / 3.0;
const N: usize = 2000;
const QUERIES: usize = 16;

fn queries(
    ds: &skewsearch_datagen::Dataset,
    profile: &skewsearch_datagen::BernoulliProfile,
) -> Vec<SparseVec> {
    let mut rng = bench_rng();
    (0..QUERIES)
        .map(|t| correlated_query(ds.vector(t * 37 % ds.n()), profile, ALPHA, &mut rng))
        .collect()
}

fn bench_queries(c: &mut Criterion) {
    for (label, skewed) in [("skewed", true), ("uniform", false)] {
        let (ds, profile) = bench_dataset(N, skewed);
        let qs = queries(&ds, &profile);
        let mut rng = bench_rng();
        let opts = IndexOptions {
            repetitions: Repetitions::Fixed(4),
            ..IndexOptions::default()
        };
        let ours = CorrelatedIndex::build(
            &ds,
            &profile,
            CorrelatedParams::new(ALPHA).unwrap().with_options(opts),
            &mut rng,
        );
        let cp = ChosenPathIndex::build(
            &ds,
            &profile,
            ChosenPathParams::for_correlated_model(&profile, ALPHA, 1.0 / 1.3)
                .unwrap()
                .with_options(opts),
            &mut rng,
        );
        let (b1, b2) = skewsearch_rho::expected_similarities(&profile, ALPHA);
        let mh = MinHashLsh::build(
            &ds,
            MinHashParams::new((b1 / 1.3).max(b2 * 1.01), b2).unwrap(),
            &mut rng,
        );
        let pf = PrefixFilterIndex::build(&ds, ALPHA / 1.3);
        let bf = BruteForce::new(ds.vectors().to_vec(), ALPHA / 1.3);

        let mut g = c.benchmark_group(format!("query_{label}_n{N}"));
        g.bench_with_input(BenchmarkId::new("ours", N), &qs, |b, qs| {
            b.iter(|| {
                for q in qs {
                    black_box(ours.search(black_box(q)));
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("chosen_path", N), &qs, |b, qs| {
            b.iter(|| {
                for q in qs {
                    black_box(cp.search(black_box(q)));
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("minhash", N), &qs, |b, qs| {
            b.iter(|| {
                for q in qs {
                    black_box(mh.search(black_box(q)));
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("prefix_filter", N), &qs, |b, qs| {
            b.iter(|| {
                for q in qs {
                    black_box(pf.search(black_box(q)));
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("brute_force", N), &qs, |b, qs| {
            b.iter(|| {
                for q in qs {
                    black_box(bf.search(black_box(q)));
                }
            })
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = skewsearch_bench::quick_criterion();
    targets = bench_queries
}
criterion_main!(benches);
