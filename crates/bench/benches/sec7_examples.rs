//! §7 worked-example bench: exponent computations at asymptotic n.

use criterion::{criterion_group, criterion_main, Criterion};
use skewsearch_experiments::sec7;
use std::hint::black_box;

fn bench_sec7(c: &mut Criterion) {
    let mut g = c.benchmark_group("sec7");
    g.bench_function("adversarial_examples", |b| {
        b.iter(|| black_box(sec7::sec71_adversarial(black_box(1usize << 40))))
    });
    g.bench_function("correlated_examples", |b| {
        b.iter(|| black_box(sec7::sec72_correlated(black_box(1usize << 40), 20.0)))
    });
    g.finish();

    println!(
        "\n{}",
        sec7::render(&sec7::sec71_adversarial(1 << 40), "Section 7.1").render_tsv()
    );
    println!(
        "{}",
        sec7::render(&sec7::sec72_correlated(1 << 40, 20.0), "Section 7.2").render_tsv()
    );
}

criterion_group! {
    name = benches;
    config = skewsearch_bench::quick_criterion();
    targets = bench_sec7
}
criterion_main!(benches);
