//! Service round-trip cost: `/search` over a real loopback socket at 1, 4,
//! and 8 concurrent clients, against the same correlated index the other
//! benches probe directly. The gap between this and `query_scaling` is the
//! whole service stack — HTTP framing, JSON codecs, the admission queue,
//! and the read lock.
//!
//! Each client-count row runs against a **fresh** server so its latency
//! histogram covers exactly that row's traffic; the measured p50/p99 are
//! printed to stderr after each row (the source of BENCHMARKS.md §service).
//! Answers over the wire are byte-identical to direct calls
//! (`tests/service_equivalence.rs` pins this); these rows measure only cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use skewsearch_bench::bench_dataset;
use skewsearch_core::{CorrelatedIndex, CorrelatedParams, IndexOptions, Repetitions};
use skewsearch_datagen::correlated_query;
use skewsearch_server::{
    share, Json, QueryService, Server, ServerConfig, ServerHooks, ServiceClient,
};
use std::hint::black_box;

const ALPHA: f64 = 2.0 / 3.0;
const N: usize = 800;
const QUERIES: usize = 32;
const CLIENTS: [usize; 3] = [1, 4, 8];

/// Deterministic build: the RNG stream is the bench's own, so every row
/// serves an identical index (`CorrelatedIndex` is not `Clone`; rebuilding
/// from the same seed is the same thing).
fn build(
    ds: &skewsearch_datagen::Dataset,
    profile: &skewsearch_datagen::BernoulliProfile,
) -> CorrelatedIndex {
    let mut rng = StdRng::seed_from_u64(0x5E8B);
    CorrelatedIndex::build(
        ds,
        profile,
        CorrelatedParams::new(ALPHA)
            .unwrap()
            .with_options(IndexOptions {
                repetitions: Repetitions::Fixed(6),
                ..IndexOptions::default()
            }),
        &mut rng,
    )
}

fn bench_service(c: &mut Criterion) {
    let (ds, profile) = bench_dataset(N, true);
    let mut rng = StdRng::seed_from_u64(0x5E8B ^ 0x9);
    let queries: Vec<Vec<u32>> = (0..QUERIES)
        .map(|t| {
            correlated_query(ds.vector(t * 17 % ds.n()), &profile, ALPHA, &mut rng)
                .iter()
                .collect()
        })
        .collect();

    let mut g = c.benchmark_group(format!("service_search_n{N}"));
    for clients in CLIENTS {
        // Fresh server per row: the histogram then covers exactly this
        // row's traffic and the stderr p50/p99 are per-concurrency numbers.
        let server = Server::bind(
            "127.0.0.1:0",
            QueryService::new(share(build(&ds, &profile))),
            ServerConfig::default(),
            ServerHooks::default(),
        )
        .expect("bind");
        let addr = server.local_addr();

        g.bench_with_input(
            BenchmarkId::new("clients", clients),
            &clients,
            |b, &clients| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for t in 0..clients {
                            let queries = &queries;
                            scope.spawn(move || {
                                let mut client = ServiceClient::connect(addr).expect("connect");
                                for dims in queries.iter().skip(t).step_by(clients) {
                                    black_box(client.search(dims, None).expect("served search"));
                                }
                            });
                        }
                    })
                })
            },
        );

        // Print the measured service-side quantiles for this row; these are
        // the numbers BENCHMARKS.md §service publishes.
        let mut probe = ServiceClient::connect(addr).expect("connect probe");
        let stats = probe.stats().expect("stats");
        let ns = |q: &str| {
            stats
                .get("latency")
                .and_then(|l| l.get(q))
                .and_then(Json::as_u64)
                .expect("latency quantile")
        };
        eprintln!(
            "[service] clients={clients}: count={} p50={}ns p99={}ns",
            ns("count"),
            ns("p50_ns"),
            ns("p99_ns"),
        );
        drop(probe);
        server.shutdown();
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = skewsearch_bench::quick_criterion();
    targets = bench_service
}
criterion_main!(benches);
