//! Sharded query throughput: the unsharded correlated index vs
//! `ShardedIndex` at 1/2/4/8 shards, both strategies, both probe modes —
//! the query-plan pipeline (`plan` rows: stage 1 once per query, broadcast
//! to shards) against legacy fused per-shard probing (`reenum` rows: each
//! `ByDataset` shard re-enumerates `F(q)`, the documented `N×` tax the
//! pipeline removes).
//!
//! Answers are byte-identical across every row (the merge protocol of
//! `skewsearch_core::shard` plus the plan-equivalence contract); only cost
//! changes. Under `ByDataset` the `plan`/`reenum` gap measures the
//! enumerate-once win — visible even single-threaded, since the tax is CPU
//! work, not parallelism. Under `ByRepetition` shards own disjoint pass
//! slices (no tax), so its `plan` rows measure pure pipeline overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skewsearch_bench::{bench_dataset, bench_rng};
use skewsearch_core::{
    CorrelatedIndex, CorrelatedParams, IndexOptions, Repetitions, SetSimilaritySearch,
    ShardStrategy, ShardedIndex,
};
use skewsearch_datagen::correlated_query;
use skewsearch_sets::SparseVec;
use std::hint::black_box;

const ALPHA: f64 = 2.0 / 3.0;
const N: usize = 2000;
const QUERIES: usize = 64;
const SHARDS: [usize; 4] = [1, 2, 4, 8];

fn bench_sharded(c: &mut Criterion) {
    let (ds, profile) = bench_dataset(N, true);
    let mut rng = bench_rng();
    let qs: Vec<SparseVec> = (0..QUERIES)
        .map(|t| correlated_query(ds.vector(t * 29 % ds.n()), &profile, ALPHA, &mut rng))
        .collect();
    let index = CorrelatedIndex::build(
        &ds,
        &profile,
        CorrelatedParams::new(ALPHA)
            .unwrap()
            .with_options(IndexOptions {
                repetitions: Repetitions::Fixed(8),
                ..IndexOptions::default()
            }),
        &mut rng,
    );

    let mut g = c.benchmark_group(format!("sharded_query_skewed_n{N}_q{QUERIES}"));
    g.bench_with_input(BenchmarkId::new("unsharded_batch", N), &qs, |b, qs| {
        b.iter(|| black_box(index.search_batch_threads(black_box(qs), 0)))
    });
    for (strategy, label) in [
        (ShardStrategy::ByRepetition, "by_repetition"),
        (ShardStrategy::ByDataset, "by_dataset"),
    ] {
        for shards in SHARDS {
            for (mode, broadcast) in [("plan", true), ("reenum", false)] {
                let sharded =
                    ShardedIndex::build(&index, strategy, shards).with_plan_broadcast(broadcast);
                // Sanity: the bench must measure an equivalent computation.
                assert_eq!(
                    sharded.search_all(&qs[0]),
                    index.search_all(&qs[0]),
                    "sharded merge diverged — bench would be meaningless"
                );
                g.bench_with_input(
                    BenchmarkId::new(format!("{label}_s{shards}_{mode}_batch"), N),
                    &qs,
                    |b, qs| b.iter(|| black_box(sharded.search_batch(black_box(qs)))),
                );
            }
        }
    }
    // Single-query fan-out latency at the widest sharding, both modes.
    for (mode, broadcast) in [("plan", true), ("reenum", false)] {
        let sharded =
            ShardedIndex::build(&index, ShardStrategy::ByDataset, 8).with_plan_broadcast(broadcast);
        g.bench_with_input(
            BenchmarkId::new(format!("by_dataset_s8_single_query_{mode}"), N),
            &qs[0],
            |b, q| b.iter(|| black_box(sharded.search_all(black_box(q)))),
        );
    }
    let sharded = ShardedIndex::build(&index, ShardStrategy::ByRepetition, 8);
    g.bench_with_input(
        BenchmarkId::new("by_repetition_s8_single_query_fanout", N),
        &qs[0],
        |b, q| b.iter(|| black_box(sharded.search_all(black_box(q)))),
    );
    g.finish();
}

criterion_group! {
    name = benches;
    config = skewsearch_bench::quick_criterion();
    targets = bench_sharded
}
criterion_main!(benches);
