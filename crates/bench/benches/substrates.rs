//! Substrate microbenchmarks: set intersection (merge vs gallop), vector
//! sampling (skip vs naive), and internal hashing (Fx vs SipHash).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::Rng;
use skewsearch_bench::bench_rng;
use skewsearch_datagen::{BernoulliProfile, VectorSampler};
use skewsearch_hashing::FxHashMap;
use skewsearch_sets::SparseVec;
use std::collections::HashMap;
use std::hint::black_box;

fn bench_intersections(c: &mut Criterion) {
    let mut rng = bench_rng();
    let mut draw = |n: usize, d: u32| -> SparseVec {
        let mut dims = Vec::with_capacity(n);
        for _ in 0..n {
            dims.push(rng.random_range(0..d));
        }
        SparseVec::from_unsorted(dims)
    };
    let a50 = draw(50, 10_000);
    let b50 = draw(50, 10_000);
    let big = draw(20_000, 100_000);
    let small = draw(40, 100_000);
    let mut g = c.benchmark_group("intersection");
    g.bench_function("merge_50x50", |b| {
        b.iter(|| black_box(a50.intersection_len(black_box(&b50))))
    });
    g.bench_function("gallop_40x20000", |b| {
        b.iter(|| black_box(small.intersection_len(black_box(&big))))
    });
    g.finish();
}

fn bench_samplers(c: &mut Criterion) {
    let profile = BernoulliProfile::zipf(50_000, 1.0, 20.0, 0.5).unwrap();
    let sampler = VectorSampler::new(&profile);
    let mut g = c.benchmark_group("sampler_zipf_d50k");
    g.bench_function("skip_sampling", |b| {
        let mut rng = bench_rng();
        b.iter(|| black_box(sampler.sample(&mut rng)))
    });
    g.bench_function("naive_per_dim", |b| {
        let mut rng = bench_rng();
        b.iter(|| black_box(sampler.sample_naive(&mut rng)))
    });
    g.finish();
}

fn bench_hashmaps(c: &mut Criterion) {
    let keys: Vec<u128> = (0..20_000u128)
        .map(|i| i.wrapping_mul(0x9E3779B9))
        .collect();
    // ns/op alone hides half the trade-off: report resident bytes for each
    // substrate next to the timing rows. Both maps store (u128, u32) entries;
    // capacity × slot size approximates the table's heap footprint (one
    // control byte per slot for the Swiss-table layout).
    {
        let mut fx: FxHashMap<u128, u32> = FxHashMap::default();
        let mut std_map: HashMap<u128, u32> = HashMap::new();
        for (i, &k) in keys.iter().enumerate() {
            fx.insert(k, i as u32);
            std_map.insert(k, i as u32);
        }
        let slot = std::mem::size_of::<u128>() + std::mem::size_of::<u32>() + 1;
        eprintln!(
            "bucket_map_u128: {} keys, fx_hashmap ~{}B resident, std_siphash ~{}B resident ({slot}B/slot)",
            keys.len(),
            fx.capacity() * slot,
            std_map.capacity() * slot,
        );
    }
    let mut g = c.benchmark_group("bucket_map_u128");
    g.bench_function("fx_hashmap", |b| {
        b.iter(|| {
            let mut m: FxHashMap<u128, u32> = FxHashMap::default();
            for (i, &k) in keys.iter().enumerate() {
                m.insert(k, i as u32);
            }
            black_box(m.len())
        })
    });
    g.bench_function("std_siphash", |b| {
        b.iter(|| {
            let mut m: HashMap<u128, u32> = HashMap::new();
            for (i, &k) in keys.iter().enumerate() {
                m.insert(k, i as u32);
            }
            black_box(m.len())
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = skewsearch_bench::quick_criterion();
    targets = bench_intersections, bench_samplers, bench_hashmaps
}
criterion_main!(benches);
