//! Table 1 bench: exact independence-ratio computation.

use criterion::{criterion_group, criterion_main, Criterion};
use skewsearch_datagen::independence_ratios;
use skewsearch_experiments::table1;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let (ds, _) = skewsearch_bench::bench_dataset(2000, true);
    let mut g = c.benchmark_group("table1");
    g.bench_function("ratios_single_dataset_n2000", |b| {
        b.iter(|| black_box(independence_ratios(black_box(&ds))))
    });
    g.bench_function("full_table_n800", |b| {
        b.iter(|| black_box(table1::from_surrogates(black_box(800), 17)))
    });
    g.finish();

    let t = table1::from_surrogates(2500, 17);
    println!("\n{}", t.table().render_tsv());
}

criterion_group! {
    name = benches;
    config = skewsearch_bench::quick_criterion();
    targets = bench_table1
}
criterion_main!(benches);
