//! # skewsearch-bench
//!
//! Shared fixtures for the Criterion benchmark suite. One bench target per
//! paper artifact (see DESIGN.md §4) plus ablations and substrate
//! microbenches:
//!
//! * `fig1_rho` — Figure 1 exponent curves;
//! * `fig2_freq` — Figure 2 frequency-plot pipeline;
//! * `table1_ratios` — Table 1 independence ratios;
//! * `sec7_examples` — §7.1/§7.2 worked-example exponents;
//! * `motivating` — §1 harmonic split balance;
//! * `query_scaling` — query latency, ours vs every baseline;
//! * `batch_query` — sequential loop vs `search_batch` at 1/2/4/8 threads;
//! * `sharded_query` — unsharded vs `ShardedIndex` at 1/2/4/8 shards,
//!   both strategies;
//! * `build_index` — preprocessing cost, ours vs every baseline;
//! * `ablation` — threshold adaptivity, stopping rule, δ-boost, hash family;
//! * `substrates` — intersections, samplers, hashers;
//! * `join` — similarity join vs nested loop, sequential vs parallel.
//!
//! All benches run with reduced sample counts so `cargo bench --workspace`
//! finishes at laptop scale; they are throughput/latency *shape* probes, not
//! publication-grade measurements.

#![forbid(unsafe_code)]

use criterion::Criterion;
use rand::{rngs::StdRng, SeedableRng};
use skewsearch_datagen::{BernoulliProfile, Dataset};
use std::time::Duration;

/// Standard bench RNG (fixed seed: benchmarks must be reproducible).
pub fn bench_rng() -> StdRng {
    StdRng::seed_from_u64(0xBE7C4)
}

/// The Figure 1 skewed profile sized for `n` vectors at `Σp = c ln n`.
pub fn skewed_profile(n: usize, c: f64) -> BernoulliProfile {
    let mass = c * (n as f64).ln();
    let pa = 0.25;
    let pb = pa / 8.0;
    BernoulliProfile::blocks(&[
        ((mass / 2.0 / pa).ceil() as usize, pa),
        ((mass / 2.0 / pb).ceil() as usize, pb),
    ])
    // lint:allow(no-panic-in-lib, bench fixture with hard-coded valid probabilities; a failure is a bug in this helper)
    .unwrap()
}

/// Uniform control with the same `Σp`.
pub fn uniform_profile(n: usize, c: f64) -> BernoulliProfile {
    let mass = c * (n as f64).ln();
    let p = 0.25;
    // lint:allow(no-panic-in-lib, bench fixture with hard-coded valid probabilities; a failure is a bug in this helper)
    BernoulliProfile::uniform((mass / p).ceil() as usize, p).unwrap()
}

/// A dataset plus its profile at the standard bench scale.
pub fn bench_dataset(n: usize, skewed: bool) -> (Dataset, BernoulliProfile) {
    let profile = if skewed {
        skewed_profile(n, 8.0)
    } else {
        uniform_profile(n, 8.0)
    };
    let mut rng = bench_rng();
    let ds = Dataset::generate(&profile, n, &mut rng);
    (ds, profile)
}

/// Short-run Criterion configuration shared by all targets.
pub fn quick_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200))
        .configure_from_args()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_requested_mass() {
        let n = 1000;
        let s = skewed_profile(n, 8.0);
        let u = uniform_profile(n, 8.0);
        let target = 8.0 * (n as f64).ln();
        assert!((s.sum_p() - target).abs() / target < 0.01);
        assert!((u.sum_p() - target).abs() / target < 0.01);
    }

    #[test]
    fn dataset_fixture_is_deterministic() {
        let (a, _) = bench_dataset(50, true);
        let (b, _) = bench_dataset(50, true);
        assert_eq!(a.vector(7), b.vector(7));
    }
}
