//! The adversarial-query index (§5, Theorem 2).
//!
//! Given a similarity threshold `b₁`, preprocesses `S ~ D^n` so that any
//! query `q` (possibly adversarially chosen) with a `b₁`-similar neighbor in
//! `S` is answered in expected time `O(d · n^{ρ(q)+ε})` where
//! `Σ_{i∈q} p_i^{ρ(q)} = b₁|q|` — i.e. the structure *adapts to the
//! difficulty of the query*: skewed queries are cheap, worst-case queries
//! match the Chosen Path bound.

use crate::index::{IndexOptions, LsfIndex, QueryStats};
use crate::scheme::AdversarialScheme;
use crate::traits::{Match, SetSimilaritySearch};
use rand::Rng;
use skewsearch_datagen::{BernoulliProfile, Dataset};
use skewsearch_rho::rho_adversarial_query;
use skewsearch_sets::SparseVec;

/// Parameters for [`AdversarialIndex`].
#[derive(Clone, Copy, Debug)]
pub struct AdversarialParams {
    /// Similarity threshold `b₁` the returned vector must meet.
    pub b1: f64,
    /// Index tuning (repetitions, node budget).
    pub options: IndexOptions,
}

impl AdversarialParams {
    /// Validates `b₁ ∈ (0, 1]`.
    pub fn new(b1: f64) -> Result<Self, String> {
        if !(b1 > 0.0 && b1 <= 1.0) {
            return Err(format!("b1 must lie in (0, 1], got {b1}"));
        }
        Ok(Self {
            b1,
            options: IndexOptions::default(),
        })
    }

    /// Overrides the index options.
    pub fn with_options(mut self, options: IndexOptions) -> Self {
        self.options = options;
        self
    }
}

/// The paper's §5 data structure: skew-adaptive LSF with thresholds
/// `s(x, j, i) = 1/(b₁|x| − j)` and the product stopping rule.
pub struct AdversarialIndex {
    inner: LsfIndex<AdversarialScheme>,
}

impl AdversarialIndex {
    /// Preprocesses the dataset (Theorem 2: `O(d n^{1+ρᵤ+ε})` expected time,
    /// `O(n^{1+ρᵤ+ε} + dn)` expected space).
    pub fn build<R: Rng + ?Sized>(
        dataset: &Dataset,
        profile: &BernoulliProfile,
        params: AdversarialParams,
        rng: &mut R,
    ) -> Self {
        let scheme = AdversarialScheme::new(params.b1, dataset.n().max(2), profile);
        let inner = LsfIndex::build(
            dataset.vectors().to_vec(),
            profile.clone(),
            scheme,
            params.b1,
            params.options,
            rng,
        );
        Self { inner }
    }

    /// The predicted per-query exponent `ρ(q)` of Theorem 2, from the item
    /// probabilities of the query's set bits: `Σ_{i∈q} p_i^ρ = b₁|q|`.
    ///
    /// Purely analytical — the search itself never needs it.
    pub fn predicted_rho(&self, q: &SparseVec) -> f64 {
        let ps: Vec<f64> = q.iter().map(|i| self.inner.profile().p(i)).collect();
        rho_adversarial_query(&ps, self.inner.scheme().b1())
    }

    /// Search with probing statistics.
    pub fn search_with_stats(&self, q: &SparseVec) -> (Option<Match>, QueryStats) {
        self.inner.search_with_stats(q)
    }

    /// Distinct candidates the structure examines for `q` (the `n^{ρ(q)}`
    /// quantity).
    pub fn distinct_candidates(&self, q: &SparseVec) -> (Vec<u32>, QueryStats) {
        self.inner.distinct_candidates(q)
    }

    /// [`SetSimilaritySearch::search_batch`] with an explicit worker count
    /// (`0` = one per available core).
    pub fn search_batch_threads(&self, queries: &[SparseVec], threads: usize) -> Vec<Vec<Match>> {
        self.inner.search_batch_threads(queries, threads)
    }

    /// [`AdversarialIndex::distinct_candidates`] over a query batch on
    /// `threads` workers (`0` = one per available core).
    pub fn distinct_candidates_batch(
        &self,
        queries: &[SparseVec],
        threads: usize,
    ) -> Vec<(Vec<u32>, QueryStats)> {
        self.inner.distinct_candidates_batch(queries, threads)
    }

    /// Build statistics.
    pub fn build_stats(&self) -> &crate::index::BuildStats {
        self.inner.build_stats()
    }
}

impl SetSimilaritySearch for AdversarialIndex {
    fn search(&self, q: &SparseVec) -> Option<Match> {
        self.inner.search(q)
    }
    /// Delegates to [`LsfIndex::search_all`](crate::LsfIndex), inheriting its
    /// dedup-before-verify, first-discovery ordering contract.
    fn search_all(&self, q: &SparseVec) -> Vec<Match> {
        self.inner.search_all(q)
    }
    fn search_all_tagged(&self, q: &SparseVec) -> Vec<crate::TaggedMatch> {
        self.inner.search_all_tagged(q)
    }
    fn search_first_tagged(&self, q: &SparseVec) -> Option<crate::TaggedMatch> {
        self.inner.search_first_tagged(q)
    }
    fn plan_query(&self, q: &SparseVec) -> crate::QueryPlan {
        self.inner.plan_query(q)
    }
    fn probe_plan_tagged(&self, plan: &crate::QueryPlan) -> Vec<crate::TaggedMatch> {
        SetSimilaritySearch::probe_plan_tagged(&self.inner, plan)
    }
    fn probe_plan_first_tagged(&self, plan: &crate::QueryPlan) -> Option<crate::TaggedMatch> {
        self.inner.probe_plan_first_tagged(plan)
    }
    /// Delegates so the inner LSF engine's per-repetition deadline polling
    /// is kept (the trait default would only poll once up front).
    fn probe_plan_tagged_deadline(
        &self,
        plan: &crate::QueryPlan,
        expired: &(dyn Fn() -> bool + Sync),
    ) -> Result<Vec<crate::TaggedMatch>, crate::traits::DeadlineExceeded> {
        self.inner.probe_plan_tagged_deadline(plan, expired)
    }
    fn search_batch(&self, queries: &[SparseVec]) -> Vec<Vec<Match>> {
        self.inner.search_batch(queries)
    }
    fn search_batch_best(&self, queries: &[SparseVec]) -> Vec<Option<Match>> {
        self.inner.search_batch_best(queries)
    }
    /// Mutable: delegates to the inner LSF index's log-structured insert.
    fn insert(
        &mut self,
        set: SparseVec,
    ) -> Result<crate::traits::SetId, crate::traits::MutationError> {
        self.inner.insert(set)
    }
    fn remove(&mut self, id: crate::traits::SetId) -> Result<bool, crate::traits::MutationError> {
        self.inner.remove(id)
    }
    fn supports_mutation(&self) -> bool {
        true
    }
    fn memory_stats(&self) -> crate::traits::MemoryStats {
        self.inner.memory_stats()
    }
    fn threshold(&self) -> f64 {
        self.inner.threshold()
    }
    fn len(&self) -> usize {
        self.inner.len()
    }
}

impl crate::shard::Shardable for AdversarialIndex {
    fn passes(&self) -> usize {
        self.inner.repetition_count()
    }
    fn shard_of_passes(&self, range: std::ops::Range<usize>) -> Self {
        Self {
            inner: self.inner.shard_of_passes(range),
        }
    }
    fn shard_of_ids(&self, ids: &[u32]) -> Self {
        Self {
            inner: self.inner.shard_of_ids(ids),
        }
    }
    fn partition_key(&self, id: u32) -> u64 {
        crate::shard::set_partition_key(&self.inner.vectors()[id as usize])
    }
    fn slot_count(&self) -> usize {
        self.inner.slot_count()
    }
}

impl crate::persist::Persist for AdversarialIndex {
    /// Kind-3 container: the wrapper adds no state of its own, so the
    /// payload is the embedded LSF payload verbatim — only the container
    /// kind distinguishes the file (see `docs/PERSISTENCE.md` §5).
    fn save(&self, path: &std::path::Path) -> Result<(), crate::persist::PersistError> {
        let version = crate::persist::effective_write_version();
        let mut w = crate::persist::Writer::new();
        self.inner.write_payload(&mut w, version);
        crate::persist::write_container_versioned(
            path,
            crate::persist::kind::ADVERSARIAL,
            &w.into_payload(),
            version,
        )
    }

    fn load(path: &std::path::Path) -> Result<Self, crate::persist::PersistError> {
        let (payload, version) =
            crate::persist::read_container_versioned(path, crate::persist::kind::ADVERSARIAL)?;
        let mut r = crate::persist::Reader::new(&payload);
        let inner = LsfIndex::read_payload(&mut r, version)?;
        if !r.is_empty() {
            return Err(crate::persist::PersistError::Malformed(
                "trailing bytes after index payload",
            ));
        }
        Ok(Self { inner })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Repetitions;
    use rand::{rngs::StdRng, SeedableRng};
    use skewsearch_sets::similarity;

    /// Plants a near-duplicate pair in otherwise-random data and checks the
    /// adversarial index retrieves it.
    #[test]
    fn finds_planted_similar_pair() {
        let profile = BernoulliProfile::two_block(800, 0.15, 0.01).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let mut ds = Dataset::generate(&profile, 250, &mut rng);
        // Plant: vector 0 modified in a handful of positions becomes the query.
        let x = ds.vector(0).clone();
        let mut dims = x.dims().to_vec();
        dims.truncate(dims.len().saturating_sub(2)); // drop two rare-ish bits
        let q = SparseVec::from_unsorted(dims);
        let b1 = similarity::braun_blanquet(&x, &q) - 0.05;
        assert!(b1 > 0.5, "planted pair should be very similar, b1={b1}");
        ds = Dataset::from_vectors(ds.vectors().to_vec(), ds.d());

        let params = AdversarialParams::new(b1)
            .unwrap()
            .with_options(IndexOptions {
                repetitions: Repetitions::Fixed(12),
                ..IndexOptions::default()
            });
        let index = AdversarialIndex::build(&ds, &profile, params, &mut rng);
        let hit = index.search(&q);
        assert!(hit.is_some(), "planted pair not found");
        assert!(hit.unwrap().similarity >= b1);
    }

    #[test]
    fn rejects_invalid_b1() {
        assert!(AdversarialParams::new(0.0).is_err());
        assert!(AdversarialParams::new(1.2).is_err());
        assert!(AdversarialParams::new(0.5).is_ok());
    }

    #[test]
    fn predicted_rho_is_smaller_for_rarer_queries() {
        let profile = BernoulliProfile::two_block(400, 0.25, 0.002).unwrap();
        let mut rng = StdRng::seed_from_u64(32);
        let ds = Dataset::generate(&profile, 100, &mut rng);
        let params = AdversarialParams::new(0.4)
            .unwrap()
            .with_options(IndexOptions {
                repetitions: Repetitions::Fixed(2),
                ..IndexOptions::default()
            });
        let index = AdversarialIndex::build(&ds, &profile, params, &mut rng);
        // A query of frequent bits vs a query of rare bits.
        let q_freq = SparseVec::from_unsorted((0..40).collect());
        let q_rare = SparseVec::from_unsorted((200..240).collect());
        let rho_f = index.predicted_rho(&q_freq);
        let rho_r = index.predicted_rho(&q_rare);
        assert!(
            rho_r < rho_f,
            "rare query should be easier: {rho_r} !< {rho_f}"
        );
    }

    #[test]
    fn no_false_positives_below_threshold() {
        let profile = BernoulliProfile::uniform(300, 0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(33);
        let ds = Dataset::generate(&profile, 200, &mut rng);
        let params = AdversarialParams::new(0.6)
            .unwrap()
            .with_options(IndexOptions {
                repetitions: Repetitions::Fixed(4),
                ..IndexOptions::default()
            });
        let index = AdversarialIndex::build(&ds, &profile, params, &mut rng);
        let sampler = skewsearch_datagen::VectorSampler::new(&profile);
        for _ in 0..25 {
            let q = sampler.sample(&mut rng);
            // Independent draws have similarity ~0.05 ≪ 0.6: must return None.
            assert!(index.search(&q).is_none());
        }
    }
}
