//! The batch query executor: chunked work stealing over std scoped threads.
//!
//! Answering a batch of queries is embarrassingly parallel — each query only
//! *reads* the index — but query costs are wildly uneven on skewed data (the
//! whole point of the paper: `ρ(q)` varies per query), so static chunking
//! leaves threads idle behind one expensive straggler chunk. [`batch_map`]
//! instead lets workers *claim* small chunks from a shared atomic cursor:
//! cheap queries drain quickly and their workers steal the remaining work.
//!
//! Results are returned **in input order regardless of thread count**, so a
//! batched call is observably identical to the sequential loop — the
//! invariant `tests/batch_equivalence.rs` pins down.
//!
//! Batches and mutations compose by exclusion, not interleaving: the
//! executor borrows the index shared (`&self`) for the whole batch, so the
//! borrow checker statically rules out a concurrent `insert`/`remove` —
//! every batch observes one frozen snapshot of a (possibly mutated) index,
//! and `tests/mutation_equivalence.rs` checks batched answers against that
//! snapshot's rebuild.

use std::sync::atomic::{AtomicUsize, Ordering};

/// How many items a worker claims per cursor fetch in [`batch_map`]. Small
/// enough to balance skewed per-query costs, large enough to amortize the
/// atomic traffic. [`batch_map_chunked`] takes the chunk size explicitly.
pub const CLAIM_CHUNK: usize = 8;

/// Resolves a requested worker count: `0` means "one worker per available
/// core", anything else is taken literally (and capped by the item count at
/// the call site).
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Applies `f` to every item on `threads` workers (std scoped threads),
/// distributing work through a shared atomic cursor in small fixed-size
/// chunks. Returns outputs in input order.
///
/// `threads = 0` resolves to the available parallelism; `threads = 1` (or a
/// batch of fewer than two items) degenerates to a plain sequential map with
/// no thread or atomic overhead.
pub fn batch_map<Q, T, F>(items: &[Q], threads: usize, f: F) -> Vec<T>
where
    Q: Sync,
    T: Send,
    F: Fn(&Q) -> T + Sync,
{
    batch_map_chunked(items, threads, CLAIM_CHUNK, f)
}

/// [`batch_map`] with an explicit claim-chunk size.
///
/// The default [`CLAIM_CHUNK`] of 8 amortizes cursor traffic over large query
/// batches, but it also means any batch of ≤ 8 items lands on a single
/// worker. Callers fanning out over a *small number of expensive items* — the
/// sharded index's per-query fan-out across `N ≤ 8` shards is the motivating
/// case — pass `claim_chunk = 1` so every shard probe gets its own worker.
/// Output is identical for every `(threads, claim_chunk)` pair.
pub fn batch_map_chunked<Q, T, F>(items: &[Q], threads: usize, claim_chunk: usize, f: F) -> Vec<T>
where
    Q: Sync,
    T: Send,
    F: Fn(&Q) -> T + Sync,
{
    let claim_chunk = claim_chunk.max(1);
    // Spawn no more workers than there are claimable chunks — extra threads
    // could never receive work.
    let threads = resolve_threads(threads).min(items.len().div_ceil(claim_chunk).max(1));
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    let runs: Vec<(usize, Vec<T>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || {
                    let mut runs: Vec<(usize, Vec<T>)> = Vec::new();
                    loop {
                        // Relaxed is sound here: the cursor is only a
                        // work-claim ticket. `fetch_add` is atomic under any
                        // ordering, so two workers can never claim the same
                        // chunk; results are placed by `start` offset and
                        // the `scope` join synchronizes all writes before
                        // the slots are read. No other memory depends on
                        // observing this counter's value.
                        let start = cursor.fetch_add(claim_chunk, Ordering::Relaxed);
                        if start >= items.len() {
                            break;
                        }
                        let end = (start + claim_chunk).min(items.len());
                        runs.push((start, items[start..end].iter().map(f).collect()));
                    }
                    runs
                })
            })
            .collect();
        handles
            .into_iter()
            // lint:allow(no-panic-in-lib, join only errs when the worker itself panicked in `f` — re-raising the caller's own panic is the correct propagation)
            .flat_map(|h| h.join().expect("batch worker panicked"))
            .collect()
    });

    for (start, outputs) in runs {
        for (off, out) in outputs.into_iter().enumerate() {
            slots[start + off] = Some(out);
        }
    }
    slots
        .into_iter()
        // lint:allow(no-panic-in-lib, the claim loop covers 0..len exactly once so every slot is Some; an empty slot is a lost answer and must not be silently dropped)
        .map(|s| s.expect("every claimed chunk fills its slots"))
        .collect()
}

/// Groups equal items so repeated work is paid once: returns
/// `(representatives, slot_of)` where `representatives` indexes the first
/// occurrence of each distinct item (in first-appearance order) and
/// `slot_of[i]` is the position in `representatives` answering item `i`.
///
/// This is the dedup behind [`batch_map_distinct`] and the join layer's
/// plan-once-per-distinct-query guarantee: a probe batch with duplicate sets
/// (common after `ByDataset`'s content-hash co-location) enumerates, plans,
/// and probes each *distinct* query exactly once.
pub fn distinct_slots<Q: std::hash::Hash + Eq>(items: &[Q]) -> (Vec<usize>, Vec<usize>) {
    let mut first: skewsearch_hashing::FxHashMap<&Q, usize> =
        skewsearch_hashing::FxHashMap::default();
    let mut representatives = Vec::new();
    let mut slot_of = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let next = representatives.len();
        let slot = *first.entry(item).or_insert(next);
        if slot == next {
            representatives.push(i);
        }
        slot_of.push(slot);
    }
    (representatives, slot_of)
}

/// [`batch_map`] that evaluates `f` **once per distinct item**: equal items
/// (by `Eq`/`Hash`) share one evaluation, whose output is cloned into every
/// occurrence's slot. Output equals `batch_map(items, threads, f)` whenever
/// `f` is a pure function of the item — which every search structure in this
/// workspace is (indexes are immutable at query time).
///
/// The distinct evaluations still run on the work-stealing executor, so a
/// heavily duplicated batch both shrinks and stays parallel.
pub fn batch_map_distinct<Q, T, F>(items: &[Q], threads: usize, f: F) -> Vec<T>
where
    Q: Sync + std::hash::Hash + Eq,
    T: Send + Clone,
    F: Fn(&Q) -> T + Sync,
{
    let (representatives, slot_of) = distinct_slots(items);
    if representatives.len() == items.len() {
        return batch_map(items, threads, f);
    }
    let distinct: Vec<&Q> = representatives.iter().map(|&i| &items[i]).collect();
    let outputs = batch_map(&distinct, threads, |q| f(q));
    slot_of.into_iter().map(|s| outputs[s].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_for_any_thread_count() {
        let items: Vec<usize> = (0..103).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 2).collect();
        for threads in [0, 1, 2, 3, 8, 64] {
            let got = batch_map(&items, threads, |x| x * 2);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn handles_empty_and_singleton_batches() {
        let empty: Vec<u32> = vec![];
        assert!(batch_map(&empty, 4, |x| *x).is_empty());
        assert_eq!(batch_map(&[7u32], 4, |x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_is_still_ordered() {
        // Front-loaded costs force stealing: early items sleep, late ones
        // return immediately.
        let items: Vec<u64> = (0..40).collect();
        let got = batch_map(&items, 4, |&x| {
            if x < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x
        });
        assert_eq!(got, items);
    }

    #[test]
    fn resolve_threads_semantics() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn chunked_variant_is_identical_for_any_chunk_size() {
        let items: Vec<usize> = (0..57).collect();
        let expect: Vec<usize> = items.iter().map(|x| x + 3).collect();
        for chunk in [0, 1, 2, 7, 8, 1000] {
            for threads in [1, 3, 8] {
                let got = batch_map_chunked(&items, threads, chunk, |x| x + 3);
                assert_eq!(got, expect, "chunk={chunk} threads={threads}");
            }
        }
    }

    #[test]
    fn distinct_slots_groups_equal_items_in_first_appearance_order() {
        let items = vec!["a", "b", "a", "c", "b", "a"];
        let (reps, slot_of) = distinct_slots(&items);
        assert_eq!(reps, vec![0, 1, 3]);
        assert_eq!(slot_of, vec![0, 1, 0, 2, 1, 0]);
        let empty: Vec<u32> = vec![];
        assert_eq!(distinct_slots(&empty), (vec![], vec![]));
    }

    #[test]
    fn batch_map_distinct_equals_batch_map_and_counts_evaluations() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let items = vec![3u32, 5, 3, 3, 7, 5, 11];
        let expect: Vec<u32> = items.iter().map(|x| x * 2).collect();
        for threads in [1, 4] {
            let calls = AtomicUsize::new(0);
            let got = batch_map_distinct(&items, threads, |x| {
                calls.fetch_add(1, Ordering::Relaxed);
                x * 2
            });
            assert_eq!(got, expect, "threads={threads}");
            assert_eq!(calls.load(Ordering::Relaxed), 4, "one call per distinct");
        }
        // All-distinct batches take the direct path.
        let unique = vec![1u32, 2, 3];
        assert_eq!(batch_map_distinct(&unique, 2, |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn chunk_of_one_parallelizes_small_fanouts() {
        // With claim_chunk = 1, a 4-item fan-out actually uses 4 workers
        // (batch_map's chunk of 8 would collapse it to one). Verified
        // indirectly: results stay ordered and all items are processed.
        let items: Vec<u64> = (0..4).collect();
        let got = batch_map_chunked(&items, 4, 1, |&x| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            x * 10
        });
        assert_eq!(got, vec![0, 10, 20, 30]);
    }
}
