//! The correlated-query index (§6, Theorem 1).
//!
//! For queries `q ~ D_α(x)` with `x ∈ S`, the scheme biases path sampling by
//! the conditional probability `p̂_i = Pr[x_i = 1 | q_i = 1] = p_i(1−α) + α`,
//! boosted by `1 + δ = 1 + 3/√(αC)` (Lemma 11), and verifies at
//! `b₁ = α/1.3` (Lemma 10 separates correlated pairs at `≥ α/1.3` from
//! independent pairs at `≤ α/1.5` w.h.p.). Expected query cost is
//! `O(d · n^{ρ+ε})` with `Σ p^{1+ρ}/p̂ = Σ p`.

use crate::index::{IndexOptions, LsfIndex, QueryStats};
use crate::scheme::CorrelatedScheme;
use crate::traits::{Match, SetSimilaritySearch};
use rand::Rng;
use skewsearch_datagen::{BernoulliProfile, Dataset};
use skewsearch_rho::rho_correlated;
use skewsearch_sets::SparseVec;

/// Lemma 10's verification threshold: correlated pairs have similarity
/// `≥ α/1.3` w.h.p.
pub const B1_DIVISOR: f64 = 1.3;

/// Lemma 10's separation bound: independent pairs have similarity `≤ α/1.5`
/// w.h.p.
pub const B2_DIVISOR: f64 = 1.5;

/// Parameters for [`CorrelatedIndex`].
#[derive(Clone, Copy, Debug)]
pub struct CorrelatedParams {
    /// The target correlation `α ∈ (0, 1]`.
    pub alpha: f64,
    /// Index tuning (repetitions, node budget).
    pub options: IndexOptions,
}

impl CorrelatedParams {
    /// Validates `α ∈ (0, 1]`.
    pub fn new(alpha: f64) -> Result<Self, String> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(format!("alpha must lie in (0, 1], got {alpha}"));
        }
        Ok(Self {
            alpha,
            options: IndexOptions::default(),
        })
    }

    /// Overrides the index options.
    pub fn with_options(mut self, options: IndexOptions) -> Self {
        self.options = options;
        self
    }
}

/// Model-assumption diagnostics surfaced by [`CorrelatedIndex::diagnostics`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ModelDiagnostics {
    /// The paper's `C` (`Σp / ln n`).
    pub c: f64,
    /// Warnings about violated §6 assumptions (empty = all hold).
    pub warnings: Vec<String>,
}

/// The paper's §6 data structure for α-correlated queries (Theorem 1).
pub struct CorrelatedIndex {
    inner: LsfIndex<CorrelatedScheme>,
    alpha: f64,
    diagnostics: ModelDiagnostics,
}

impl CorrelatedIndex {
    /// Preprocesses the dataset. Violations of the §6 model assumptions
    /// (`Cα ≥ 15`, `p_i ≤ α/2`) do not fail the build — the structure still
    /// works, with weaker guarantees — but are reported via
    /// [`CorrelatedIndex::diagnostics`].
    pub fn build<R: Rng + ?Sized>(
        dataset: &Dataset,
        profile: &BernoulliProfile,
        params: CorrelatedParams,
        rng: &mut R,
    ) -> Self {
        let n = dataset.n().max(2);
        let alpha = params.alpha;
        let c = profile.c_constant(n);
        let mut warnings = Vec::new();
        if c * alpha < 15.0 {
            warnings.push(format!(
                "Lemma 11 assumes Cα ≥ 15; here Cα = {:.2} — success probability \
                 may fall below the advertised bound",
                c * alpha
            ));
        }
        let max_p = profile.max_p();
        if max_p > alpha / 2.0 {
            warnings.push(format!(
                "§6 assumes all p_i ≤ α/2 = {:.3}; max p_i = {max_p:.3}",
                alpha / 2.0
            ));
        }
        let scheme = CorrelatedScheme::new(alpha, n, profile);
        let inner = LsfIndex::build(
            dataset.vectors().to_vec(),
            profile.clone(),
            scheme,
            alpha / B1_DIVISOR,
            params.options,
            rng,
        );
        Self {
            inner,
            alpha,
            diagnostics: ModelDiagnostics { c, warnings },
        }
    }

    /// The target correlation `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Model-assumption diagnostics collected at build time.
    pub fn diagnostics(&self) -> &ModelDiagnostics {
        &self.diagnostics
    }

    /// Theorem 1's predicted exponent ρ for this profile and α
    /// (`Σ p^{1+ρ}/p̂ = Σ p`). Analytical; the search never needs it.
    pub fn predicted_rho(&self) -> f64 {
        rho_correlated(self.inner.profile(), self.alpha)
    }

    /// Search with probing statistics.
    pub fn search_with_stats(&self, q: &SparseVec) -> (Option<Match>, QueryStats) {
        self.inner.search_with_stats(q)
    }

    /// Distinct candidates examined for `q` (the `n^ρ` quantity of
    /// Theorem 1).
    pub fn distinct_candidates(&self, q: &SparseVec) -> (Vec<u32>, QueryStats) {
        self.inner.distinct_candidates(q)
    }

    /// [`SetSimilaritySearch::search_batch`] with an explicit worker count
    /// (`0` = one per available core).
    pub fn search_batch_threads(&self, queries: &[SparseVec], threads: usize) -> Vec<Vec<Match>> {
        self.inner.search_batch_threads(queries, threads)
    }

    /// [`CorrelatedIndex::distinct_candidates`] over a query batch on
    /// `threads` workers (`0` = one per available core).
    pub fn distinct_candidates_batch(
        &self,
        queries: &[SparseVec],
        threads: usize,
    ) -> Vec<(Vec<u32>, QueryStats)> {
        self.inner.distinct_candidates_batch(queries, threads)
    }

    /// Build statistics.
    pub fn build_stats(&self) -> &crate::index::BuildStats {
        self.inner.build_stats()
    }
}

impl SetSimilaritySearch for CorrelatedIndex {
    fn search(&self, q: &SparseVec) -> Option<Match> {
        self.inner.search(q)
    }
    /// Delegates to [`LsfIndex::search_all`](crate::LsfIndex), inheriting its
    /// dedup-before-verify, first-discovery ordering contract.
    fn search_all(&self, q: &SparseVec) -> Vec<Match> {
        self.inner.search_all(q)
    }
    fn search_all_tagged(&self, q: &SparseVec) -> Vec<crate::TaggedMatch> {
        self.inner.search_all_tagged(q)
    }
    fn search_first_tagged(&self, q: &SparseVec) -> Option<crate::TaggedMatch> {
        self.inner.search_first_tagged(q)
    }
    fn plan_query(&self, q: &SparseVec) -> crate::QueryPlan {
        self.inner.plan_query(q)
    }
    fn probe_plan_tagged(&self, plan: &crate::QueryPlan) -> Vec<crate::TaggedMatch> {
        SetSimilaritySearch::probe_plan_tagged(&self.inner, plan)
    }
    fn probe_plan_first_tagged(&self, plan: &crate::QueryPlan) -> Option<crate::TaggedMatch> {
        self.inner.probe_plan_first_tagged(plan)
    }
    /// Delegates so the inner LSF engine's per-repetition deadline polling
    /// is kept (the trait default would only poll once up front).
    fn probe_plan_tagged_deadline(
        &self,
        plan: &crate::QueryPlan,
        expired: &(dyn Fn() -> bool + Sync),
    ) -> Result<Vec<crate::TaggedMatch>, crate::traits::DeadlineExceeded> {
        self.inner.probe_plan_tagged_deadline(plan, expired)
    }
    fn search_batch(&self, queries: &[SparseVec]) -> Vec<Vec<Match>> {
        self.inner.search_batch(queries)
    }
    fn search_batch_best(&self, queries: &[SparseVec]) -> Vec<Option<Match>> {
        self.inner.search_batch_best(queries)
    }
    /// Mutable: delegates to the inner LSF index's log-structured insert.
    fn insert(
        &mut self,
        set: SparseVec,
    ) -> Result<crate::traits::SetId, crate::traits::MutationError> {
        self.inner.insert(set)
    }
    fn remove(&mut self, id: crate::traits::SetId) -> Result<bool, crate::traits::MutationError> {
        self.inner.remove(id)
    }
    fn supports_mutation(&self) -> bool {
        true
    }
    fn memory_stats(&self) -> crate::traits::MemoryStats {
        self.inner.memory_stats()
    }
    fn threshold(&self) -> f64 {
        self.inner.threshold()
    }
    fn len(&self) -> usize {
        self.inner.len()
    }
}

impl crate::shard::Shardable for CorrelatedIndex {
    fn passes(&self) -> usize {
        self.inner.repetition_count()
    }
    fn shard_of_passes(&self, range: std::ops::Range<usize>) -> Self {
        Self {
            inner: self.inner.shard_of_passes(range),
            alpha: self.alpha,
            diagnostics: self.diagnostics.clone(),
        }
    }
    fn shard_of_ids(&self, ids: &[u32]) -> Self {
        Self {
            inner: self.inner.shard_of_ids(ids),
            alpha: self.alpha,
            diagnostics: self.diagnostics.clone(),
        }
    }
    fn partition_key(&self, id: u32) -> u64 {
        crate::shard::set_partition_key(&self.inner.vectors()[id as usize])
    }
    fn slot_count(&self) -> usize {
        self.inner.slot_count()
    }
}

impl crate::persist::Persist for CorrelatedIndex {
    /// Kind-2 container: `α`, the model diagnostics (`C` + warnings), then
    /// the embedded LSF payload — see `docs/PERSISTENCE.md` §5.
    fn save(&self, path: &std::path::Path) -> Result<(), crate::persist::PersistError> {
        let version = crate::persist::effective_write_version();
        let mut w = crate::persist::Writer::new();
        w.put_f64(self.alpha);
        w.put_f64(self.diagnostics.c);
        w.put_u64(self.diagnostics.warnings.len() as u64);
        for warning in &self.diagnostics.warnings {
            w.put_str(warning);
        }
        self.inner.write_payload(&mut w, version);
        crate::persist::write_container_versioned(
            path,
            crate::persist::kind::CORRELATED,
            &w.into_payload(),
            version,
        )
    }

    fn load(path: &std::path::Path) -> Result<Self, crate::persist::PersistError> {
        use crate::persist::PersistError;
        let (payload, version) =
            crate::persist::read_container_versioned(path, crate::persist::kind::CORRELATED)?;
        let mut r = crate::persist::Reader::new(&payload);
        let alpha = r.get_f64()?;
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(PersistError::Malformed("correlated alpha out of (0,1]"));
        }
        let c = r.get_f64()?;
        let warning_count = r.get_u64()?;
        let mut warnings = Vec::new();
        for _ in 0..warning_count {
            warnings.push(r.get_string()?);
        }
        let inner = LsfIndex::read_payload(&mut r, version)?;
        if !r.is_empty() {
            return Err(PersistError::Malformed(
                "trailing bytes after index payload",
            ));
        }
        Ok(Self {
            inner,
            alpha,
            diagnostics: ModelDiagnostics { c, warnings },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Repetitions;
    use rand::{rngs::StdRng, SeedableRng};
    use skewsearch_datagen::correlated_query;

    fn opts(reps: usize) -> IndexOptions {
        IndexOptions {
            repetitions: Repetitions::Fixed(reps),
            ..IndexOptions::default()
        }
    }

    #[test]
    fn recall_on_correlated_queries() {
        let profile = BernoulliProfile::two_block(1200, 0.2, 0.02).unwrap();
        let mut rng = StdRng::seed_from_u64(41);
        let ds = Dataset::generate(&profile, 400, &mut rng);
        let alpha = 0.8;
        let params = CorrelatedParams::new(alpha).unwrap().with_options(opts(10));
        let index = CorrelatedIndex::build(&ds, &profile, params, &mut rng);
        let trials = 50;
        let mut hits = 0;
        for t in 0..trials {
            let target = (t * 7) % ds.n();
            let q = correlated_query(ds.vector(target), &profile, alpha, &mut rng);
            if let Some(m) = index.search(&q) {
                if m.id == target {
                    hits += 1;
                }
            }
        }
        assert!(hits >= trials * 4 / 5, "recall {hits}/{trials}");
    }

    #[test]
    fn threshold_is_alpha_over_1_3() {
        let profile = BernoulliProfile::uniform(200, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let ds = Dataset::generate(&profile, 50, &mut rng);
        let params = CorrelatedParams::new(0.65).unwrap().with_options(opts(1));
        let index = CorrelatedIndex::build(&ds, &profile, params, &mut rng);
        assert!((index.threshold() - 0.65 / 1.3).abs() < 1e-12);
        assert_eq!(index.alpha(), 0.65);
    }

    #[test]
    fn diagnostics_flag_small_c_alpha() {
        // Tiny profile: Σp = 2, n = 1000 ⇒ C ≈ 0.29, Cα ≪ 15.
        let profile = BernoulliProfile::uniform(20, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(43);
        let ds = Dataset::generate(&profile, 1000, &mut rng);
        let params = CorrelatedParams::new(0.5).unwrap().with_options(opts(1));
        let index = CorrelatedIndex::build(&ds, &profile, params, &mut rng);
        assert!(!index.diagnostics().warnings.is_empty());
        assert!(index.diagnostics().c < 1.0);
    }

    #[test]
    fn diagnostics_clean_when_assumptions_hold() {
        // Σp = 240, n = 100 ⇒ C ≈ 52, Cα = 36 ≥ 15; max p = 0.3 ≤ α/2 = 0.35.
        let profile = BernoulliProfile::two_block(1600, 0.25, 0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(44);
        let ds = Dataset::generate(&profile, 100, &mut rng);
        let params = CorrelatedParams::new(0.7).unwrap().with_options(opts(1));
        let index = CorrelatedIndex::build(&ds, &profile, params, &mut rng);
        assert!(
            index.diagnostics().warnings.is_empty(),
            "unexpected warnings: {:?}",
            index.diagnostics().warnings
        );
    }

    #[test]
    fn predicted_rho_matches_solver() {
        let profile = BernoulliProfile::two_block(300, 0.25, 0.25 / 8.0).unwrap();
        let mut rng = StdRng::seed_from_u64(45);
        let ds = Dataset::generate(&profile, 100, &mut rng);
        let params = CorrelatedParams::new(2.0 / 3.0)
            .unwrap()
            .with_options(opts(1));
        let index = CorrelatedIndex::build(&ds, &profile, params, &mut rng);
        let direct = rho_correlated(&profile, 2.0 / 3.0);
        assert!((index.predicted_rho() - direct).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_alpha() {
        assert!(CorrelatedParams::new(0.0).is_err());
        assert!(CorrelatedParams::new(-0.3).is_err());
        assert!(CorrelatedParams::new(1.01).is_err());
    }
}
