//! The recursive path-enumeration engine: computing `F(x)`.
//!
//! Implements the recursion of §3:
//!
//! ```text
//! F_{j+1}(x) = { v ∘ i  |  v ∈ F_j(x),  ∏_{k≤j} p_{i_k} > 1/n,
//!                i ∈ x \ v,  h_{j+1}(v ∘ i) < s(x, j, i) }
//! F(x)       = ∪_j { v ∈ F_j(x) : ∏ p_{i_k} ≤ 1/n }
//! ```
//!
//! as a depth-first traversal with an explicit scratch path (sampling
//! **without replacement** — `i ∈ x \ v` — is one of the paper's departures
//! from Chosen Path, footnote 7). The stopping product is tracked as mass
//! `Σ log₂(1/p_i)`; the generic [`ThresholdScheme`]
//! supplies both `s(x, j, i)` and the completion rule so the same engine runs
//! the §5 scheme, the §6 scheme, and the Chosen Path baseline.
//!
//! A node *budget* guarantees termination on pathological inputs (e.g.
//! adversarial thresholds clamped to 1); exceeding it truncates enumeration
//! and is reported in [`EnumStats`] — correctness degrades gracefully to
//! "missed filters", never to wrong answers, because candidates are always
//! verified.

use crate::scheme::ThresholdScheme;
use skewsearch_datagen::BernoulliProfile;
use skewsearch_hashing::{PathHasherStack, PathKey};
use skewsearch_sets::SparseVec;

/// Default per-vector node budget (expansion attempts across the DFS).
pub const DEFAULT_NODE_BUDGET: usize = 1 << 21;

/// Process-wide count of filter-set enumerations (instrumentation).
static ENUMERATIONS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Process-wide count of [`enumerate_filters_with`] invocations — one per
/// `(vector, hash stack)` pair, so a full `F(q)` derivation over `R`
/// repetitions adds exactly `R`.
///
/// This is the counting hook the plan-pipeline tests use to assert that a
/// `ByDataset`-sharded index enumerates each query's filter set **once**
/// regardless of shard count (`tests/enumeration_count.rs`); the counter is
/// a single relaxed atomic increment per enumeration, negligible next to the
/// DFS it counts. It is process-global and monotone — measure *deltas*, and
/// serialize measured regions against other enumerating threads.
///
/// Incremental mutations are counted too: one
/// [`crate::LsfIndex::insert_set`] enumerates the new set once per
/// repetition (`R` increments — the same as that vector would cost inside a
/// build), removals and [`crate::LsfIndex::compact`] enumerate **nothing**,
/// and queries after mutations still cost exactly `R` at any shard count
/// (also pinned by `tests/enumeration_count.rs`).
pub fn enumeration_count() -> u64 {
    // Relaxed is sound: the counter is a monotone statistic read for its
    // value alone — no other memory is published through it, and callers
    // serialize measured regions themselves (see above).
    ENUMERATIONS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Statistics from one enumeration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EnumStats {
    /// Completed paths (filters) emitted.
    pub emitted: usize,
    /// Accepted path extensions (tree edges explored).
    pub nodes: usize,
    /// True iff the node budget cut enumeration short.
    pub truncated: bool,
    /// True iff some path hit the depth cap before completing (only possible
    /// when the hasher stack is shallower than the theoretical bound).
    pub depth_capped: bool,
}

/// Precomputed enumeration inputs for one vector: every scheme threshold
/// `s(x, j, i)` and per-dimension mass `log₂(1/p_i)` the DFS can touch,
/// evaluated once up front.
///
/// Thresholds and masses depend only on the vector, the profile, and the
/// scheme — **not** on the repetition's hash stack — so a query builds this
/// context once and reuses it across all `R = Θ(log n)` repetitions instead
/// of re-deriving `F(q)`'s inputs per repetition (the hot-path hoist the
/// ROADMAP called for). [`LsfIndex::probe`](crate::LsfIndex::probe) does
/// exactly that; [`enumerate_filters`] builds a throwaway context for
/// single-shot callers.
pub struct EnumContext<'a> {
    x: &'a SparseVec,
    /// Depth-major threshold matrix: `thresholds[j · |x| + t]` is
    /// `s(x, j, dims[t])` for `j < max_depth`.
    thresholds: Vec<f64>,
    /// `masses[t] = log₂(1/p_{dims[t]})`.
    masses: Vec<f64>,
    max_depth: usize,
}

impl<'a> EnumContext<'a> {
    /// Evaluates all thresholds and masses for `x` up to `max_depth` (use the
    /// hasher stack's depth, which index builds size to
    /// [`ThresholdScheme::depth_bound`]).
    pub fn new<S: ThresholdScheme>(
        x: &'a SparseVec,
        profile: &BernoulliProfile,
        scheme: &S,
        max_depth: usize,
    ) -> Self {
        let weight = x.weight();
        let dims = x.dims();
        let mut thresholds = Vec::with_capacity(max_depth * dims.len());
        for depth in 0..max_depth {
            thresholds.extend(dims.iter().map(|&i| scheme.threshold(weight, depth, i)));
        }
        Self {
            x,
            thresholds,
            masses: dims.iter().map(|&i| profile.log2_inv_p(i)).collect(),
            max_depth,
        }
    }

    /// The vector this context was built for.
    pub fn vector(&self) -> &SparseVec {
        self.x
    }
}

/// Enumerates `F(x)` into `out`, returning traversal statistics.
///
/// `hashers` must be the stack drawn at preprocessing time — queries *must*
/// reuse the preprocessing stack or no filter can ever coincide.
///
/// Convenience wrapper building a fresh [`EnumContext`] per call; callers
/// that enumerate the same vector under several stacks (the index's
/// repetition probing) should build the context once and call
/// [`enumerate_filters_with`].
pub fn enumerate_filters<S: ThresholdScheme>(
    x: &SparseVec,
    profile: &BernoulliProfile,
    scheme: &S,
    hashers: &PathHasherStack,
    node_budget: usize,
    out: &mut Vec<PathKey>,
) -> EnumStats {
    let context = EnumContext::new(x, profile, scheme, hashers.max_depth());
    enumerate_filters_with(&context, scheme, hashers, node_budget, out)
}

/// Enumerates `F(x)` from a prebuilt [`EnumContext`] — byte-identical output
/// to [`enumerate_filters`], without re-evaluating thresholds or masses.
///
/// `scheme` supplies only the (cheap) completion rule; the per-`(j, i)`
/// thresholds come from the context.
///
/// # Panics
/// Panics if `hashers` is deeper than the context was built for.
pub fn enumerate_filters_with<S: ThresholdScheme>(
    context: &EnumContext<'_>,
    scheme: &S,
    hashers: &PathHasherStack,
    node_budget: usize,
    out: &mut Vec<PathKey>,
) -> EnumStats {
    // Relaxed is sound: a monotone event count with no ordering obligations;
    // the enumeration's outputs flow through return values, never through
    // this counter.
    ENUMERATIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut stats = EnumStats::default();
    if context.x.is_empty() {
        return stats;
    }
    assert!(
        hashers.max_depth() <= context.max_depth,
        "EnumContext depth {} shallower than hasher stack {}",
        context.max_depth,
        hashers.max_depth()
    );
    let mut path: Vec<u32> = Vec::with_capacity(hashers.max_depth());
    let mut ctx = Ctx {
        cache: context,
        scheme,
        hashers,
        node_budget,
        out,
        stats: &mut stats,
    };
    dfs(&mut ctx, PathKey::EMPTY, 0.0, &mut path);
    stats
}

struct Ctx<'a, S: ThresholdScheme> {
    cache: &'a EnumContext<'a>,
    scheme: &'a S,
    hashers: &'a PathHasherStack,
    node_budget: usize,
    out: &'a mut Vec<PathKey>,
    stats: &'a mut EnumStats,
}

fn dfs<S: ThresholdScheme>(ctx: &mut Ctx<'_, S>, key: PathKey, mass: f64, path: &mut Vec<u32>) {
    let depth = path.len();
    let level = ctx.hashers.level(depth);
    let cache = ctx.cache;
    let dims = cache.x.dims();
    let row = &cache.thresholds[depth * dims.len()..(depth + 1) * dims.len()];
    for (t, &i) in dims.iter().enumerate() {
        if ctx.stats.nodes >= ctx.node_budget {
            ctx.stats.truncated = true;
            return;
        }
        // Without replacement: skip dimensions already on the path. Paths are
        // at most a few dozen long, so a linear scan beats any set structure.
        if path.contains(&i) {
            continue;
        }
        let s = row[t];
        if s <= 0.0 {
            continue;
        }
        let key2 = key.extend(i);
        if !level.accepts(key2, s) {
            continue;
        }
        ctx.stats.nodes += 1;
        let mass2 = mass + cache.masses[t];
        if ctx.scheme.is_complete(mass2, depth + 1) {
            ctx.out.push(key2);
            ctx.stats.emitted += 1;
        } else if depth + 1 < ctx.hashers.max_depth() {
            path.push(i);
            dfs(ctx, key2, mass2, path);
            path.pop();
            if ctx.stats.truncated {
                return;
            }
        } else {
            ctx.stats.depth_capped = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{AdversarialScheme, ChosenPathScheme, CorrelatedScheme};
    use rand::{rngs::StdRng, SeedableRng};
    use skewsearch_datagen::VectorSampler;

    fn profile() -> BernoulliProfile {
        BernoulliProfile::two_block(200, 0.25, 0.02).unwrap()
    }

    fn stack(seed: u64, depth: usize) -> PathHasherStack {
        let mut rng = StdRng::seed_from_u64(seed);
        PathHasherStack::sample(&mut rng, depth)
    }

    #[test]
    fn empty_vector_yields_no_filters() {
        let p = profile();
        let scheme = AdversarialScheme::new(0.5, 256, &p);
        let h = stack(1, scheme.depth_bound());
        let mut out = Vec::new();
        let stats = enumerate_filters(
            &SparseVec::empty(),
            &p,
            &scheme,
            &h,
            DEFAULT_NODE_BUDGET,
            &mut out,
        );
        assert_eq!(stats.emitted, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn enumeration_is_deterministic_given_stack() {
        let p = profile();
        let scheme = AdversarialScheme::new(0.4, 256, &p);
        let h = stack(2, scheme.depth_bound());
        let mut rng = StdRng::seed_from_u64(3);
        let x = VectorSampler::new(&p).sample(&mut rng);
        let mut out1 = Vec::new();
        let mut out2 = Vec::new();
        let s1 = enumerate_filters(&x, &p, &scheme, &h, DEFAULT_NODE_BUDGET, &mut out1);
        let s2 = enumerate_filters(&x, &p, &scheme, &h, DEFAULT_NODE_BUDGET, &mut out2);
        assert_eq!(out1, out2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn different_stacks_give_different_filters() {
        let p = profile();
        let scheme = AdversarialScheme::new(0.4, 256, &p);
        let h1 = stack(4, scheme.depth_bound());
        let h2 = stack(5, scheme.depth_bound());
        let mut rng = StdRng::seed_from_u64(6);
        let x = VectorSampler::new(&p).sample(&mut rng);
        let mut out1 = Vec::new();
        let mut out2 = Vec::new();
        enumerate_filters(&x, &p, &scheme, &h1, DEFAULT_NODE_BUDGET, &mut out1);
        enumerate_filters(&x, &p, &scheme, &h2, DEFAULT_NODE_BUDGET, &mut out2);
        assert_ne!(out1, out2);
    }

    #[test]
    fn identical_vectors_share_all_filters() {
        // F(x) is a deterministic function of x given the stack.
        let p = profile();
        let scheme = CorrelatedScheme::new(0.6, 256, &p);
        let h = stack(7, scheme.depth_bound());
        let mut rng = StdRng::seed_from_u64(8);
        let x = VectorSampler::new(&p).sample(&mut rng);
        let y = x.clone();
        let mut fx = Vec::new();
        let mut fy = Vec::new();
        enumerate_filters(&x, &p, &scheme, &h, DEFAULT_NODE_BUDGET, &mut fx);
        enumerate_filters(&y, &p, &scheme, &h, DEFAULT_NODE_BUDGET, &mut fy);
        assert_eq!(fx, fy);
    }

    #[test]
    fn filters_only_use_set_dimensions() {
        // A vector disjoint from x can share no filter with it: their filter
        // sets must be disjoint (paths consist of the owner's 1-bits).
        let p = profile();
        let scheme = CorrelatedScheme::new(0.6, 256, &p);
        let h = stack(9, scheme.depth_bound());
        let a = SparseVec::from_unsorted((0..60).collect());
        let b = SparseVec::from_unsorted((60..120).collect());
        let mut fa = Vec::new();
        let mut fb = Vec::new();
        enumerate_filters(&a, &p, &scheme, &h, DEFAULT_NODE_BUDGET, &mut fa);
        enumerate_filters(&b, &p, &scheme, &h, DEFAULT_NODE_BUDGET, &mut fb);
        let sa: std::collections::HashSet<_> = fa.iter().collect();
        assert!(fb.iter().all(|k| !sa.contains(k)));
        assert!(
            !fa.is_empty() && !fb.is_empty(),
            "test should be non-vacuous"
        );
    }

    #[test]
    fn cached_context_matches_direct_enumeration_across_stacks() {
        // The hoisted EnumContext must be observably identical to direct
        // enumeration under every hash stack (it is what probe reuses
        // across repetitions).
        let p = profile();
        let scheme = CorrelatedScheme::new(0.7, 256, &p);
        let mut rng = StdRng::seed_from_u64(99);
        let x = VectorSampler::new(&p).sample(&mut rng);
        let ctx = EnumContext::new(&x, &p, &scheme, scheme.depth_bound());
        assert_eq!(ctx.vector(), &x);
        for seed in 20..26 {
            let h = stack(seed, scheme.depth_bound());
            let mut direct = Vec::new();
            let mut cached = Vec::new();
            let sd = enumerate_filters(&x, &p, &scheme, &h, DEFAULT_NODE_BUDGET, &mut direct);
            let sc = enumerate_filters_with(&ctx, &scheme, &h, DEFAULT_NODE_BUDGET, &mut cached);
            assert_eq!(direct, cached, "seed={seed}");
            assert_eq!(sd, sc, "seed={seed}");
        }
    }

    #[test]
    fn node_budget_truncates() {
        let p = BernoulliProfile::uniform(64, 0.45).unwrap();
        // b1 small → huge thresholds → wide tree; tiny budget must truncate.
        let scheme = AdversarialScheme::new(0.05, 1 << 20, &p);
        let h = stack(10, scheme.depth_bound());
        let x = SparseVec::from_unsorted((0..64).collect());
        let mut out = Vec::new();
        let stats = enumerate_filters(&x, &p, &scheme, &h, 100, &mut out);
        assert!(stats.truncated);
        assert!(stats.nodes <= 101);
    }

    #[test]
    fn chosen_path_emits_only_at_depth_k() {
        let p = BernoulliProfile::uniform(100, 0.3).unwrap();
        let scheme = ChosenPathScheme::new(0.8, 0.3, 64); // k = ceil(ln64/ln(1/0.3))
        let k = scheme.k();
        let h = stack(11, k);
        let x = SparseVec::from_unsorted((0..100).collect());
        let mut out = Vec::new();
        let stats = enumerate_filters(&x, &p, &scheme, &h, DEFAULT_NODE_BUDGET, &mut out);
        assert_eq!(stats.emitted, out.len());
        assert!(!stats.depth_capped);
        // All emitted keys are depth-k paths; spot-check count consistency:
        // expected branching ~ |x| * 1/(b1|x|) = 1/b1 per level ⇒ ~(1/b1)^k
        // paths. Loose sanity bound only.
        assert!(out.len() < 10_000);
    }

    #[test]
    fn correlated_pair_shares_filters_far_more_than_independent() {
        // The crux of the construction: correlated pairs collide, independent
        // pairs (essentially) don't.
        let p = profile();
        let n = 512;
        let scheme = CorrelatedScheme::new(0.8, n, &p);
        let h = stack(12, scheme.depth_bound());
        let sampler = VectorSampler::new(&p);
        let mut rng = StdRng::seed_from_u64(13);
        let trials = 60;
        let mut shared_corr = 0usize;
        let mut shared_indep = 0usize;
        for _ in 0..trials {
            let x = sampler.sample(&mut rng);
            let q = skewsearch_datagen::correlated_query(&x, &p, 0.8, &mut rng);
            let z = sampler.sample(&mut rng);
            let mut fx = Vec::new();
            let mut fq = Vec::new();
            let mut fz = Vec::new();
            enumerate_filters(&x, &p, &scheme, &h, DEFAULT_NODE_BUDGET, &mut fx);
            enumerate_filters(&q, &p, &scheme, &h, DEFAULT_NODE_BUDGET, &mut fq);
            enumerate_filters(&z, &p, &scheme, &h, DEFAULT_NODE_BUDGET, &mut fz);
            let sx: std::collections::HashSet<_> = fx.iter().collect();
            if fq.iter().any(|k| sx.contains(k)) {
                shared_corr += 1;
            }
            if fz.iter().any(|k| sx.contains(k)) {
                shared_indep += 1;
            }
        }
        assert!(
            shared_corr > shared_indep + trials / 4,
            "corr={shared_corr} indep={shared_indep} of {trials}"
        );
    }

    #[test]
    fn mass_accumulation_matches_product_rule() {
        // Build a tiny deterministic scenario: all thresholds 1 (always
        // extend) by using b1 tiny weight... instead use a scheme wrapper.
        struct AlwaysExtend {
            log2_n: f64,
        }
        impl ThresholdScheme for AlwaysExtend {
            fn threshold(&self, _w: usize, _j: usize, _i: u32) -> f64 {
                1.0
            }
            fn is_complete(&self, mass: f64, _d: usize) -> bool {
                mass >= self.log2_n
            }
            fn depth_bound(&self) -> usize {
                8
            }
        }
        // Two dims with p = 1/4 each (2 bits of mass): n = 16 ⇒ need 4 bits
        // ⇒ exactly paths of length 2: (0,1) and (1,0).
        let p = BernoulliProfile::uniform(2, 0.25).unwrap();
        let scheme = AlwaysExtend { log2_n: 4.0 };
        let h = stack(14, 8);
        let x = SparseVec::from_unsorted(vec![0, 1]);
        let mut out = Vec::new();
        let stats = enumerate_filters(&x, &p, &scheme, &h, DEFAULT_NODE_BUDGET, &mut out);
        assert_eq!(stats.emitted, 2, "both orderings complete at depth 2");
        assert_eq!(out.len(), 2);
        assert_ne!(out[0], out[1], "order-sensitive keys");
    }

    #[test]
    fn rarer_bits_terminate_paths_earlier() {
        // With very rare dims (large mass), paths complete at depth 1;
        // with common dims they must go deeper — the skew-adaptive rule.
        struct AlwaysExtend {
            log2_n: f64,
        }
        impl ThresholdScheme for AlwaysExtend {
            fn threshold(&self, _w: usize, _j: usize, _i: u32) -> f64 {
                1.0
            }
            fn is_complete(&self, mass: f64, _d: usize) -> bool {
                mass >= self.log2_n
            }
            fn depth_bound(&self) -> usize {
                16
            }
        }
        let rare = BernoulliProfile::uniform(3, 1.0 / 1024.0).unwrap(); // 10 bits each
        let scheme = AlwaysExtend { log2_n: 10.0 };
        let h = stack(15, 16);
        let x = SparseVec::from_unsorted(vec![0, 1, 2]);
        let mut out = Vec::new();
        let stats = enumerate_filters(&x, &rare, &scheme, &h, DEFAULT_NODE_BUDGET, &mut out);
        // Each single rare dim is already a complete filter: 3 length-1 paths.
        assert_eq!(stats.emitted, 3);
        assert_eq!(stats.nodes, 3, "no deeper exploration happened");
    }
}
