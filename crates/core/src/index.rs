//! The inverted filter index with independent repetitions.
//!
//! Preprocessing (§3): compute `F(x)` for every `x ∈ S` and build an inverted
//! index `filter → {x : f ∈ F(x)}`. A query enumerates `F(q)` with the *same*
//! hash stack and verifies every vector sharing a filter.
//!
//! Lemma 5 guarantees a shared filter for close pairs with probability only
//! `≥ 1/log n` per hash-stack draw, so the index keeps `R = Θ(log n)`
//! independent **repetitions** (footnote 6 of the paper) and a query probes
//! them in order until a verified hit.
//!
//! Two hot-path engineering choices on top of the paper's construction:
//!
//! * a query hoists its enumeration inputs (thresholds, masses) into one
//!   [`EnumContext`] shared by all repetitions
//!   instead of re-deriving them per repetition;
//! * 128-bit path keys are *interned* to 64-bit bucket keys through a
//!   per-repetition [`TabulationU128`] draw, halving the inverted index's
//!   key width (an interning collision merges two buckets and at worst
//!   causes a spurious verification — never a wrong answer).

use crate::batch::batch_map;
use crate::engine::{enumerate_filters_with, EnumContext, EnumStats, DEFAULT_NODE_BUDGET};
use crate::plan::QueryPlan;
use crate::scheme::ThresholdScheme;
use crate::traits::{Match, SetSimilaritySearch};
use rand::{Rng, SeedableRng};
use skewsearch_datagen::BernoulliProfile;
use skewsearch_hashing::{FxHashMap, FxHashSet, PathHasherStack, TabulationU128};
use skewsearch_sets::{similarity, SparseVec};

/// How many independent repetitions to build.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Repetitions {
    /// `⌈factor · ln n⌉` repetitions (Lemma 5's `1/log n` success per
    /// repetition makes `Θ(log n)` the natural boost; `factor ≈ 1` gives
    /// constant success probability, larger factors give high probability).
    Auto {
        /// Multiplier on `ln n`.
        factor: f64,
    },
    /// Exactly this many repetitions.
    Fixed(usize),
}

impl Repetitions {
    /// Resolves to a concrete count for a dataset of `n` vectors.
    pub fn resolve(self, n: usize) -> usize {
        match self {
            Repetitions::Auto { factor } => {
                ((n.max(2) as f64).ln() * factor).ceil().max(1.0) as usize
            }
            Repetitions::Fixed(r) => r.max(1),
        }
    }
}

impl Default for Repetitions {
    fn default() -> Self {
        Repetitions::Auto { factor: 1.0 }
    }
}

/// Tuning knobs shared by all LSF indexes.
#[derive(Clone, Copy, Debug)]
pub struct IndexOptions {
    /// Repetition policy.
    pub repetitions: Repetitions,
    /// Per-vector node budget for path enumeration.
    pub node_budget: usize,
    /// Build threads. `1` = sequential; more parallelizes filter enumeration
    /// across vectors (std scoped threads). The built index is
    /// **identical** for any thread count: chunks are merged in id order.
    pub build_threads: usize,
    /// Worker threads used by [`SetSimilaritySearch::search_batch`] (and
    /// `search_batch_best`). `0` = one worker per available core. Batch
    /// results are **identical** for any worker count — see
    /// [`crate::batch::batch_map`].
    pub query_threads: usize,
}

impl Default for IndexOptions {
    fn default() -> Self {
        Self {
            repetitions: Repetitions::default(),
            node_budget: DEFAULT_NODE_BUDGET,
            build_threads: 1,
            query_threads: 0,
        }
    }
}

/// Aggregate statistics from building an index.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildStats {
    /// Repetitions built.
    pub repetitions: usize,
    /// Total filters stored across vectors and repetitions.
    pub total_filters: usize,
    /// Distinct buckets across repetitions.
    pub distinct_buckets: usize,
    /// Largest single bucket.
    pub max_bucket: usize,
    /// Vectors whose enumeration hit the node budget (any repetition).
    pub truncated_vectors: usize,
    /// Vectors whose enumeration hit the depth cap (any repetition).
    pub depth_capped_vectors: usize,
}

impl BuildStats {
    /// Mean stored filters per vector per repetition.
    pub fn avg_filters_per_vector(&self, n: usize) -> f64 {
        if n == 0 || self.repetitions == 0 {
            return 0.0;
        }
        self.total_filters as f64 / (n as f64 * self.repetitions as f64)
    }
}

/// Statistics from answering one query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Filters enumerated for the query (across probed repetitions).
    pub filters: usize,
    /// Posting-list entries touched.
    pub candidates: usize,
    /// Distinct vectors verified with a similarity computation.
    pub verified: usize,
    /// Repetitions probed before returning.
    pub repetitions_probed: usize,
}

/// One repetition: an independently drawn hash stack, its key interner, and
/// its inverted index over interned 64-bit bucket keys.
struct Repetition {
    hashers: PathHasherStack,
    interner: TabulationU128,
    buckets: FxHashMap<u64, Vec<u32>>,
}

/// The probe stage for one pass, shared by the fused and the planned query
/// paths: looks `keys` up in the repetition's bucket table in order, feeds
/// each *globally unseen* candidate to `visit` with its discovery coordinate
/// `(pass, step, id)`, and returns `false` iff `visit` stopped the probe.
///
/// Both front ends — lazy per-repetition enumeration
/// ([`LsfIndex::probe_tagged`]) and a precomputed [`QueryPlan`]
/// ([`LsfIndex::probe_plan_tagged`]) — funnel through this one loop, which is
/// what keeps their answers byte-identical by construction.
fn probe_pass_keys(
    rep: &Repetition,
    pass: u32,
    keys: &[u64],
    seen: &mut FxHashSet<u32>,
    stats: &mut QueryStats,
    visit: &mut impl FnMut(u32, u32, u32) -> bool,
) -> bool {
    stats.repetitions_probed += 1;
    stats.filters += keys.len();
    for (step, key) in keys.iter().enumerate() {
        if let Some(bucket) = rep.buckets.get(key) {
            stats.candidates += bucket.len();
            for &id in bucket {
                if seen.insert(id) {
                    stats.verified += 1;
                    if !visit(pass, step as u32, id) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Per-chunk enumeration result (`pairs` in ascending id order, keys already
/// interned to 64 bits).
struct ChunkFilters {
    pairs: Vec<(u32, u64)>,
    truncated: Vec<u32>,
    depth_capped: Vec<u32>,
}

/// Enumerates `F(x)` for every vector, optionally fanning out over
/// contiguous id chunks with std scoped threads. Chunks are returned
/// in id order, so downstream merging is thread-count independent.
fn enumerate_chunked<S: ThresholdScheme>(
    vectors: &[SparseVec],
    profile: &BernoulliProfile,
    scheme: &S,
    hashers: &PathHasherStack,
    interner: &TabulationU128,
    node_budget: usize,
    threads: usize,
) -> Vec<ChunkFilters> {
    let enumerate_chunk = |base: usize, slice: &[SparseVec]| -> ChunkFilters {
        let mut chunk = ChunkFilters {
            pairs: Vec::new(),
            truncated: Vec::new(),
            depth_capped: Vec::new(),
        };
        let mut scratch: Vec<skewsearch_hashing::PathKey> = Vec::new();
        for (off, x) in slice.iter().enumerate() {
            let id = (base + off) as u32;
            scratch.clear();
            let context = EnumContext::new(x, profile, scheme, hashers.max_depth());
            let stats: EnumStats =
                enumerate_filters_with(&context, scheme, hashers, node_budget, &mut scratch);
            if stats.truncated {
                chunk.truncated.push(id);
            }
            if stats.depth_capped {
                chunk.depth_capped.push(id);
            }
            chunk
                .pairs
                .extend(scratch.iter().map(|k| (id, interner.hash(k.raw()))));
        }
        chunk
    };

    let threads = threads.max(1).min(vectors.len().max(1));
    if threads <= 1 {
        return vec![enumerate_chunk(0, vectors)];
    }
    let chunk_len = vectors.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = vectors
            .chunks(chunk_len)
            .enumerate()
            .map(|(c, slice)| {
                let f = &enumerate_chunk;
                scope.spawn(move || f(c * chunk_len, slice))
            })
            .collect();
        handles
            .into_iter()
            // lint:allow(no-panic-in-lib, join only errs when the enumeration worker itself panicked — re-raising the caller's own panic is the correct propagation)
            .map(|h| h.join().expect("build worker panicked"))
            .collect()
    })
}

/// A locality-sensitive filtering index over a dataset, generic in the
/// [`ThresholdScheme`]. This is the shared machinery behind
/// [`crate::AdversarialIndex`], [`crate::CorrelatedIndex`], and the Chosen
/// Path baseline.
pub struct LsfIndex<S: ThresholdScheme> {
    profile: BernoulliProfile,
    vectors: Vec<SparseVec>,
    scheme: S,
    reps: Vec<Repetition>,
    verify_threshold: f64,
    node_budget: usize,
    query_threads: usize,
    build_stats: BuildStats,
}

impl<S: ThresholdScheme> LsfIndex<S> {
    /// Builds the index: draws `R` hash stacks, enumerates `F(x)` for every
    /// vector under each, and fills the inverted indexes.
    ///
    /// `verify_threshold` is the Braun-Blanquet bar `b₁` candidates must
    /// clear.
    ///
    /// Deterministic under a fixed `rng` seed, for any
    /// [`IndexOptions::build_threads`] count.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::{rngs::StdRng, SeedableRng};
    /// use skewsearch_core::{CorrelatedScheme, IndexOptions, LsfIndex, SetSimilaritySearch};
    /// use skewsearch_datagen::{BernoulliProfile, Dataset};
    ///
    /// let mut rng = StdRng::seed_from_u64(1);
    /// let profile = BernoulliProfile::two_block(400, 0.2, 0.02).unwrap();
    /// let data = Dataset::generate(&profile, 200, &mut rng);
    /// let scheme = CorrelatedScheme::new(0.8, data.n(), &profile);
    /// let index = LsfIndex::build(
    ///     data.vectors().to_vec(),
    ///     profile.clone(),
    ///     scheme,
    ///     0.8 / 1.3, // verification threshold b₁ (Lemma 10)
    ///     IndexOptions::default(),
    ///     &mut rng,
    /// );
    /// assert_eq!(index.len(), 200);
    /// // A vector queried with itself shares all its filters and is found.
    /// let hit = index.search(data.vector(0)).expect("self-query hits");
    /// assert!(hit.similarity >= index.threshold());
    /// ```
    pub fn build<R: Rng + ?Sized>(
        vectors: Vec<SparseVec>,
        profile: BernoulliProfile,
        scheme: S,
        verify_threshold: f64,
        options: IndexOptions,
        rng: &mut R,
    ) -> Self
    where
        S: Sync,
    {
        assert!(
            (0.0..=1.0).contains(&verify_threshold),
            "verification threshold must lie in [0,1]"
        );
        let n = vectors.len();
        let r = options.repetitions.resolve(n);
        let depth = scheme.depth_bound();
        let mut build_stats = BuildStats {
            repetitions: r,
            ..BuildStats::default()
        };
        let mut truncated: FxHashSet<u32> = FxHashSet::default();
        let mut depth_capped: FxHashSet<u32> = FxHashSet::default();

        // Each repetition gets an independent stack seeded from the caller's
        // RNG; builds stay deterministic under a fixed seed (and under any
        // thread count: chunk results are merged in id order).
        let mut reps = Vec::with_capacity(r);
        for _ in 0..r {
            let mut stack_rng = rand::rngs::StdRng::seed_from_u64(rng.random::<u64>());
            let hashers = PathHasherStack::sample(&mut stack_rng, depth);
            let interner = TabulationU128::sample(&mut stack_rng);
            let chunks = enumerate_chunked(
                &vectors,
                &profile,
                &scheme,
                &hashers,
                &interner,
                options.node_budget,
                options.build_threads,
            );
            let mut buckets: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
            for chunk in chunks {
                build_stats.total_filters += chunk.pairs.len();
                for (id, key) in chunk.pairs {
                    buckets.entry(key).or_default().push(id);
                }
                truncated.extend(chunk.truncated);
                depth_capped.extend(chunk.depth_capped);
            }
            build_stats.distinct_buckets += buckets.len();
            build_stats.max_bucket = build_stats
                .max_bucket
                // lint:allow(nondeterministic-iter, max over bucket sizes is an order-independent reduction — the result is the same for every visit order)
                .max(buckets.values().map(Vec::len).max().unwrap_or(0));
            reps.push(Repetition {
                hashers,
                interner,
                buckets,
            });
        }
        build_stats.truncated_vectors = truncated.len();
        build_stats.depth_capped_vectors = depth_capped.len();

        Self {
            profile,
            vectors,
            scheme,
            reps,
            verify_threshold,
            node_budget: options.node_budget,
            query_threads: options.query_threads,
            build_stats,
        }
    }

    /// Build statistics.
    pub fn build_stats(&self) -> &BuildStats {
        &self.build_stats
    }

    /// The scheme driving this index.
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// The indexed vectors.
    pub fn vectors(&self) -> &[SparseVec] {
        &self.vectors
    }

    /// The profile the index was built against.
    pub fn profile(&self) -> &BernoulliProfile {
        &self.profile
    }

    /// Core probing loop. Enumerates the query's filters repetition by
    /// repetition and feeds each *distinct* candidate to `visit` in
    /// first-discovery order; stops when `visit` returns `false`. Returns
    /// query statistics.
    ///
    /// The enumeration inputs (scheme thresholds, dimension masses) are
    /// hoisted into one [`EnumContext`] built up front and shared by every
    /// repetition — only the hash-stack acceptance decisions differ per
    /// repetition.
    pub fn probe(&self, q: &SparseVec, mut visit: impl FnMut(u32) -> bool) -> QueryStats {
        self.probe_tagged(q, |_, _, id| visit(id))
    }

    /// [`LsfIndex::probe`] with discovery coordinates: `visit` receives
    /// `(pass, step, id)` where `pass` is the repetition index and `step` the
    /// position of the discovering filter in the query's enumeration order.
    ///
    /// Within one `(pass, step)` bucket, ids ascend (buckets are filled in id
    /// order at build time), so `(pass, step, id)` totally orders candidate
    /// discovery — the invariant the sharding layer's merge protocol
    /// ([`crate::shard::ShardedIndex`]) rests on.
    pub fn probe_tagged(
        &self,
        q: &SparseVec,
        mut visit: impl FnMut(u32, u32, u32) -> bool,
    ) -> QueryStats {
        let mut stats = QueryStats::default();
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        let mut filters = Vec::new();
        let mut keys: Vec<u64> = Vec::new();
        let context = EnumContext::new(q, &self.profile, &self.scheme, self.scheme.depth_bound());
        for (pass, rep) in self.reps.iter().enumerate() {
            filters.clear();
            enumerate_filters_with(
                &context,
                &self.scheme,
                &rep.hashers,
                self.node_budget,
                &mut filters,
            );
            keys.clear();
            keys.extend(filters.iter().map(|k| rep.interner.hash(k.raw())));
            if !probe_pass_keys(rep, pass as u32, &keys, &mut seen, &mut stats, &mut visit) {
                break;
            }
        }
        stats
    }

    /// Stage 1 of the pipeline: enumerates `F(q)` under every repetition's
    /// hash stack — thresholds and masses hoisted once into an
    /// [`EnumContext`] — and interns the path keys into the per-repetition
    /// 64-bit bucket keys, packaged as a reusable [`QueryPlan`].
    ///
    /// The plan is valid for this index, for any [`LsfIndex::shard_of_ids`]
    /// dataset shard of it (shards keep the parent's hash stacks and
    /// interners, so the plan is shard-invariant — the fact the sharding
    /// layer's enumerate-once broadcast rests on), and, via
    /// [`QueryPlan::slice_passes`], for any [`LsfIndex::shard_of_passes`]
    /// pass-slice shard.
    ///
    /// Unlike the fused probe, planning always enumerates **all**
    /// repetitions up front (no early exit) — that is the price of
    /// reusability, repaid as soon as a second consumer probes the plan.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::{rngs::StdRng, SeedableRng};
    /// use skewsearch_core::{CorrelatedScheme, IndexOptions, LsfIndex, SetSimilaritySearch};
    /// use skewsearch_datagen::{BernoulliProfile, Dataset};
    ///
    /// let mut rng = StdRng::seed_from_u64(2);
    /// let profile = BernoulliProfile::two_block(400, 0.2, 0.02).unwrap();
    /// let data = Dataset::generate(&profile, 120, &mut rng);
    /// let scheme = CorrelatedScheme::new(0.8, data.n(), &profile);
    /// let index = LsfIndex::build(
    ///     data.vectors().to_vec(),
    ///     profile.clone(),
    ///     scheme,
    ///     0.8 / 1.3,
    ///     IndexOptions::default(),
    ///     &mut rng,
    /// );
    /// let plan = index.plan_query(data.vector(0));
    /// // One key list per repetition, probing reproduces the fused search.
    /// assert_eq!(plan.pass_count(), index.repetition_count());
    /// assert_eq!(index.probe_plan(&plan), index.search_all(data.vector(0)));
    /// ```
    pub fn plan_query(&self, q: &SparseVec) -> QueryPlan {
        let mut filters = Vec::new();
        let context = EnumContext::new(q, &self.profile, &self.scheme, self.scheme.depth_bound());
        let passes = self
            .reps
            .iter()
            .map(|rep| {
                filters.clear();
                enumerate_filters_with(
                    &context,
                    &self.scheme,
                    &rep.hashers,
                    self.node_budget,
                    &mut filters,
                );
                filters.iter().map(|k| rep.interner.hash(k.raw())).collect()
            })
            .collect();
        QueryPlan::from_passes(q.clone(), passes)
    }

    /// [`LsfIndex::probe_tagged`] driven by a precomputed [`QueryPlan`]
    /// instead of live enumeration: only the inverted index is touched for a
    /// planned plan. Unplanned plans fall back to the fused probe.
    ///
    /// Byte-identical visit sequence to the fused probe of `plan.query()` —
    /// both paths share one bucket-walk loop.
    ///
    /// # Panics
    /// Panics if a planned plan's pass count differs from this index's
    /// repetition count (a plan from a foreign index — probing it silently
    /// would corrupt answers).
    pub fn probe_plan_tagged(
        &self,
        plan: &QueryPlan,
        mut visit: impl FnMut(u32, u32, u32) -> bool,
    ) -> QueryStats {
        let Some(passes) = plan.passes() else {
            return self.probe_tagged(plan.query(), visit);
        };
        assert_eq!(
            passes.len(),
            self.reps.len(),
            "QueryPlan pass count does not match this index's repetitions"
        );
        let mut stats = QueryStats::default();
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        for ((pass, rep), keys) in self.reps.iter().enumerate().zip(passes) {
            if !probe_pass_keys(rep, pass as u32, keys, &mut seen, &mut stats, &mut visit) {
                break;
            }
        }
        stats
    }

    /// Verifies candidate `id` against `q`: its [`Match`] iff the similarity
    /// clears the index's threshold. Stage 3's single verification site,
    /// shared by every search/probe entry point.
    fn verified(&self, q: &SparseVec, id: u32) -> Option<Match> {
        let sim = similarity::braun_blanquet(&self.vectors[id as usize], q);
        (sim >= self.verify_threshold).then_some(Match {
            id: id as usize,
            similarity: sim,
        })
    }

    /// [`SetSimilaritySearch::search`] with statistics.
    pub fn search_with_stats(&self, q: &SparseVec) -> (Option<Match>, QueryStats) {
        let mut hit = None;
        let stats = self.probe(q, |id| {
            hit = self.verified(q, id);
            hit.is_none()
        });
        (hit, stats)
    }

    /// Distinct candidate ids the index would verify for `q` (no similarity
    /// filtering) — the quantity the paper's `n^ρ` bounds govern.
    pub fn distinct_candidates(&self, q: &SparseVec) -> (Vec<u32>, QueryStats) {
        let mut ids = Vec::new();
        let stats = self.probe(q, |id| {
            ids.push(id);
            true
        });
        (ids, stats)
    }

    /// [`SetSimilaritySearch::search_batch`] with an explicit worker count
    /// (`0` = one per available core), ignoring the build-time
    /// [`IndexOptions::query_threads`]. Results are identical for every
    /// worker count.
    pub fn search_batch_threads(&self, queries: &[SparseVec], threads: usize) -> Vec<Vec<Match>> {
        batch_map(queries, threads, |q| self.search_all(q))
    }

    /// [`SetSimilaritySearch::search_batch_best`] with an explicit worker
    /// count (`0` = one per available core).
    pub fn search_batch_best_threads(
        &self,
        queries: &[SparseVec],
        threads: usize,
    ) -> Vec<Option<Match>> {
        batch_map(queries, threads, |q| self.search_best(q))
    }

    /// [`LsfIndex::distinct_candidates`] over a query batch on `threads`
    /// workers (`0` = one per available core). Element `i` is exactly
    /// `self.distinct_candidates(&queries[i])`.
    pub fn distinct_candidates_batch(
        &self,
        queries: &[SparseVec],
        threads: usize,
    ) -> Vec<(Vec<u32>, QueryStats)> {
        batch_map(queries, threads, |q| self.distinct_candidates(q))
    }

    /// Number of probe passes (= built repetitions).
    pub fn repetition_count(&self) -> usize {
        self.reps.len()
    }

    /// Clones out a shard of this index owning the repetition slice
    /// `range` over the **full** dataset (the `ByRepetition` sharding
    /// primitive — see [`crate::shard`]). The shard's repetition `r` is
    /// byte-identical to this index's repetition `range.start + r`.
    ///
    /// An empty `range` yields a valid index that never finds anything.
    ///
    /// # Panics
    /// Panics if `range.end` exceeds [`LsfIndex::repetition_count`].
    pub fn shard_of_passes(&self, range: std::ops::Range<usize>) -> Self
    where
        S: Clone,
    {
        let reps: Vec<Repetition> = self.reps[range]
            .iter()
            .map(|rep| Repetition {
                hashers: rep.hashers.clone(),
                interner: rep.interner.clone(),
                buckets: rep.buckets.clone(),
            })
            .collect();
        self.shard_from_reps(self.vectors.clone(), reps)
    }

    /// Clones out a shard owning only the vectors with the given **global**
    /// ids (ascending), remapped to local ids `0..ids.len()` (the
    /// `ByDataset` sharding primitive — see [`crate::shard`]). The shard
    /// keeps every repetition's hash stack and interner, with each bucket
    /// filtered down to the shard's ids; bucket order (ascending global id)
    /// is preserved under the monotone remap.
    ///
    /// # Panics
    /// Panics if `ids` is not strictly ascending or contains an id `≥ len()`.
    pub fn shard_of_ids(&self, ids: &[u32]) -> Self
    where
        S: Clone,
    {
        let local_of = crate::shard::local_id_table(ids, self.vectors.len());
        let vectors: Vec<SparseVec> = ids
            .iter()
            .map(|&g| self.vectors[g as usize].clone())
            .collect();
        let reps: Vec<Repetition> = self
            .reps
            .iter()
            .map(|rep| Repetition {
                hashers: rep.hashers.clone(),
                interner: rep.interner.clone(),
                buckets: rep
                    .buckets
                    .iter()
                    .filter_map(|(&key, bucket)| {
                        crate::shard::remap_bucket(bucket, &local_of).map(|local| (key, local))
                    })
                    .collect(),
            })
            .collect();
        self.shard_from_reps(vectors, reps)
    }

    /// Assembles a shard from cloned repetitions, recomputing the storage
    /// statistics (the per-vector truncation counters are a build-time
    /// artifact of the parent and are zeroed in shards).
    fn shard_from_reps(&self, vectors: Vec<SparseVec>, reps: Vec<Repetition>) -> Self
    where
        S: Clone,
    {
        let build_stats = BuildStats {
            repetitions: reps.len(),
            total_filters: reps
                .iter()
                // lint:allow(nondeterministic-iter, sum of bucket sizes is an order-independent reduction)
                .map(|r| r.buckets.values().map(Vec::len).sum::<usize>())
                .sum(),
            distinct_buckets: reps.iter().map(|r| r.buckets.len()).sum(),
            max_bucket: reps
                .iter()
                // lint:allow(nondeterministic-iter, max over bucket sizes is an order-independent reduction)
                .flat_map(|r| r.buckets.values().map(Vec::len))
                .max()
                .unwrap_or(0),
            truncated_vectors: 0,
            depth_capped_vectors: 0,
        };
        Self {
            profile: self.profile.clone(),
            vectors,
            scheme: self.scheme.clone(),
            reps,
            verify_threshold: self.verify_threshold,
            node_budget: self.node_budget,
            query_threads: self.query_threads,
            build_stats,
        }
    }
}

impl<S: ThresholdScheme> SetSimilaritySearch for LsfIndex<S> {
    /// The early-exiting first hit — the tag projection of
    /// `search_first_tagged`, sharing its verify loop
    /// ([`LsfIndex::search_with_stats`] keeps its own for stats-bearing
    /// callers).
    fn search(&self, q: &SparseVec) -> Option<Match> {
        self.search_first_tagged(q).map(|t| t.hit)
    }

    /// Implements the trait's dedup-then-verify contract: [`LsfIndex::probe`]
    /// deduplicates candidate ids across repetitions *before* the similarity
    /// computation, and matches are pushed in first-discovery probe order.
    ///
    /// Exactly the tag projection of
    /// [`LsfIndex::search_all_tagged`](SetSimilaritySearch::search_all_tagged)
    /// — one verify loop, not two to keep in lockstep.
    fn search_all(&self, q: &SparseVec) -> Vec<Match> {
        self.search_all_tagged(q)
            .into_iter()
            .map(|t| t.hit)
            .collect()
    }

    /// Genuine `(repetition, filter)` discovery coordinates from
    /// [`LsfIndex::probe_tagged`] — the tags the sharded merge protocol
    /// requires.
    fn search_all_tagged(&self, q: &SparseVec) -> Vec<crate::traits::TaggedMatch> {
        let mut out = Vec::new();
        self.probe_tagged(q, |pass, step, id| {
            if let Some(hit) = self.verified(q, id) {
                out.push(crate::traits::TaggedMatch { pass, step, hit });
            }
            true
        });
        out
    }

    /// Early-exiting: the probe stops at the first verified hit, exactly
    /// like [`LsfIndex::search`].
    fn search_first_tagged(&self, q: &SparseVec) -> Option<crate::traits::TaggedMatch> {
        let mut first = None;
        self.probe_tagged(q, |pass, step, id| {
            first = self
                .verified(q, id)
                .map(|hit| crate::traits::TaggedMatch { pass, step, hit });
            first.is_none()
        });
        first
    }

    /// Stage 1: full enumeration + interning, one key list per repetition —
    /// see [`LsfIndex::plan_query`].
    fn plan_query(&self, q: &SparseVec) -> QueryPlan {
        LsfIndex::plan_query(self, q)
    }

    /// Stages 2+3 from a precomputed plan: bucket lookups via
    /// [`LsfIndex::probe_plan_tagged`], verification via the shared verify
    /// site — byte-identical to `search_all_tagged(plan.query())`.
    fn probe_plan_tagged(&self, plan: &QueryPlan) -> Vec<crate::traits::TaggedMatch> {
        let q = plan.query();
        let mut out = Vec::new();
        LsfIndex::probe_plan_tagged(self, plan, |pass, step, id| {
            if let Some(hit) = self.verified(q, id) {
                out.push(crate::traits::TaggedMatch { pass, step, hit });
            }
            true
        });
        out
    }

    /// Early-exiting planned probe: stops at the first verified hit, exactly
    /// like `search_first_tagged(plan.query())` — but without enumeration
    /// when the plan is planned.
    fn probe_plan_first_tagged(&self, plan: &QueryPlan) -> Option<crate::traits::TaggedMatch> {
        let q = plan.query();
        let mut first = None;
        LsfIndex::probe_plan_tagged(self, plan, |pass, step, id| {
            first = self
                .verified(q, id)
                .map(|hit| crate::traits::TaggedMatch { pass, step, hit });
            first.is_none()
        });
        first
    }

    fn search_batch(&self, queries: &[SparseVec]) -> Vec<Vec<Match>> {
        self.search_batch_threads(queries, self.query_threads)
    }

    fn search_batch_best(&self, queries: &[SparseVec]) -> Vec<Option<Match>> {
        self.search_batch_best_threads(queries, self.query_threads)
    }

    fn threshold(&self) -> f64 {
        self.verify_threshold
    }

    fn len(&self) -> usize {
        self.vectors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::CorrelatedScheme;
    use rand::rngs::StdRng;
    use skewsearch_datagen::{correlated_query, Dataset};

    fn small_setup() -> (Dataset, BernoulliProfile, StdRng) {
        let profile = BernoulliProfile::two_block(600, 0.2, 0.02).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let ds = Dataset::generate(&profile, 300, &mut rng);
        (ds, profile, rng)
    }

    fn build_correlated(
        ds: &Dataset,
        profile: &BernoulliProfile,
        alpha: f64,
        reps: usize,
        rng: &mut StdRng,
    ) -> LsfIndex<CorrelatedScheme> {
        let scheme = CorrelatedScheme::new(alpha, ds.n(), profile);
        LsfIndex::build(
            ds.vectors().to_vec(),
            profile.clone(),
            scheme,
            alpha / 1.3,
            IndexOptions {
                repetitions: Repetitions::Fixed(reps),
                ..IndexOptions::default()
            },
            rng,
        )
    }

    #[test]
    fn repetitions_resolve() {
        assert_eq!(Repetitions::Fixed(5).resolve(10), 5);
        assert_eq!(Repetitions::Fixed(0).resolve(10), 1);
        let auto = Repetitions::Auto { factor: 1.0 }.resolve(1000);
        assert_eq!(auto, (1000f64).ln().ceil() as usize);
    }

    #[test]
    fn finds_planted_correlated_vector() {
        let (ds, profile, mut rng) = small_setup();
        let alpha = 0.8;
        let index = build_correlated(&ds, &profile, alpha, 8, &mut rng);
        let mut found = 0;
        let trials = 40;
        for t in 0..trials {
            let target = t % ds.n();
            let q = correlated_query(ds.vector(target), &profile, alpha, &mut rng);
            if let Some(m) = index.search(&q) {
                // Any hit must clear the threshold; usually it's the target.
                assert!(m.similarity >= index.threshold());
                if m.id == target {
                    found += 1;
                }
            }
        }
        assert!(found >= trials * 3 / 4, "found {found}/{trials}");
    }

    #[test]
    fn search_never_returns_below_threshold() {
        let (ds, profile, mut rng) = small_setup();
        let index = build_correlated(&ds, &profile, 0.7, 4, &mut rng);
        let sampler = skewsearch_datagen::VectorSampler::new(&profile);
        for _ in 0..30 {
            let q = sampler.sample(&mut rng);
            if let Some(m) = index.search(&q) {
                assert!(m.similarity >= index.threshold());
            }
        }
    }

    #[test]
    fn search_all_is_deduplicated_and_verified() {
        let (ds, profile, mut rng) = small_setup();
        let alpha = 0.85;
        let index = build_correlated(&ds, &profile, alpha, 8, &mut rng);
        let q = correlated_query(ds.vector(7), &profile, alpha, &mut rng);
        let all = index.search_all(&q);
        let mut ids: Vec<usize> = all.iter().map(|m| m.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate ids in search_all");
        for m in &all {
            assert!(m.similarity >= index.threshold());
        }
    }

    #[test]
    fn build_stats_are_populated() {
        let (ds, profile, mut rng) = small_setup();
        let index = build_correlated(&ds, &profile, 0.7, 3, &mut rng);
        let st = index.build_stats();
        assert_eq!(st.repetitions, 3);
        assert!(st.total_filters > 0);
        assert!(st.distinct_buckets > 0);
        assert!(st.max_bucket >= 1);
        assert!(st.avg_filters_per_vector(ds.n()) > 0.0);
    }

    #[test]
    fn query_stats_track_probing() {
        let (ds, profile, mut rng) = small_setup();
        let alpha = 0.8;
        let index = build_correlated(&ds, &profile, alpha, 6, &mut rng);
        let q = correlated_query(ds.vector(3), &profile, alpha, &mut rng);
        let (hit, stats) = index.search_with_stats(&q);
        assert!(stats.repetitions_probed >= 1);
        assert!(stats.filters > 0);
        if hit.is_some() {
            assert!(stats.verified >= 1);
            // Early exit: should not have probed every repetition unless the
            // hit came late.
            assert!(stats.repetitions_probed <= 6);
        }
    }

    #[test]
    fn distinct_candidates_contains_search_hits() {
        let (ds, profile, mut rng) = small_setup();
        let alpha = 0.85;
        let index = build_correlated(&ds, &profile, alpha, 6, &mut rng);
        let q = correlated_query(ds.vector(11), &profile, alpha, &mut rng);
        let (cands, _) = index.distinct_candidates(&q);
        if let Some(m) = index.search(&q) {
            assert!(cands.contains(&(m.id as u32)));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let profile = BernoulliProfile::two_block(400, 0.2, 0.02).unwrap();
        let mut rng1 = StdRng::seed_from_u64(99);
        let ds1 = Dataset::generate(&profile, 150, &mut rng1);
        let idx1 = build_correlated(&ds1, &profile, 0.8, 4, &mut rng1);
        let mut rng2 = StdRng::seed_from_u64(99);
        let ds2 = Dataset::generate(&profile, 150, &mut rng2);
        let idx2 = build_correlated(&ds2, &profile, 0.8, 4, &mut rng2);
        let q = correlated_query(ds1.vector(0), &profile, 0.8, &mut rng1);
        let (c1, s1) = idx1.distinct_candidates(&q);
        let (c2, s2) = idx2.distinct_candidates(&q);
        assert_eq!(c1, c2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn parallel_build_is_identical_to_sequential() {
        let profile = BernoulliProfile::two_block(500, 0.2, 0.02).unwrap();
        let mut rng = StdRng::seed_from_u64(777);
        let ds = Dataset::generate(&profile, 120, &mut rng);
        let build = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(31337);
            let scheme = CorrelatedScheme::new(0.8, ds.n(), &profile);
            LsfIndex::build(
                ds.vectors().to_vec(),
                profile.clone(),
                scheme,
                0.8 / 1.3,
                IndexOptions {
                    repetitions: Repetitions::Fixed(3),
                    build_threads: threads,
                    ..IndexOptions::default()
                },
                &mut rng,
            )
        };
        let seq = build(1);
        for threads in [2, 4, 7] {
            let par = build(threads);
            // Identical stats and identical probing behaviour on queries.
            assert_eq!(
                seq.build_stats().total_filters,
                par.build_stats().total_filters,
                "threads={threads}"
            );
            assert_eq!(
                seq.build_stats().distinct_buckets,
                par.build_stats().distinct_buckets
            );
            let mut rng = StdRng::seed_from_u64(1);
            for t in 0..10 {
                let q = correlated_query(ds.vector(t), &profile, 0.8, &mut rng);
                assert_eq!(
                    seq.distinct_candidates(&q).0,
                    par.distinct_candidates(&q).0,
                    "threads={threads} query={t}"
                );
            }
        }
    }

    #[test]
    fn planned_probe_is_byte_identical_to_fused_search() {
        let (ds, profile, mut rng) = small_setup();
        let alpha = 0.8;
        let index = build_correlated(&ds, &profile, alpha, 7, &mut rng);
        for t in 0..15 {
            let q = correlated_query(ds.vector(t * 13 % ds.n()), &profile, alpha, &mut rng);
            let plan = index.plan_query(&q);
            assert_eq!(plan.pass_count(), index.repetition_count());
            assert_eq!(
                SetSimilaritySearch::probe_plan_tagged(&index, &plan),
                index.search_all_tagged(&q),
                "query {t}"
            );
            assert_eq!(index.probe_plan(&plan), index.search_all(&q));
            assert_eq!(
                index.probe_plan_first_tagged(&plan),
                index.search_first_tagged(&q)
            );
        }
        // Degenerate: the empty query plans to empty key lists and finds
        // nothing, exactly like the fused path.
        let plan = index.plan_query(&SparseVec::empty());
        assert_eq!(plan.pass_count(), index.repetition_count());
        assert_eq!(plan.key_count(), 0);
        assert!(index.probe_plan(&plan).is_empty());
    }

    #[test]
    fn unplanned_plan_falls_back_to_fused_probe() {
        let (ds, profile, mut rng) = small_setup();
        let index = build_correlated(&ds, &profile, 0.8, 4, &mut rng);
        let q = correlated_query(ds.vector(5), &profile, 0.8, &mut rng);
        let plan = crate::plan::QueryPlan::unplanned(q.clone());
        assert_eq!(
            SetSimilaritySearch::probe_plan_tagged(&index, &plan),
            index.search_all_tagged(&q)
        );
    }

    #[test]
    #[should_panic(expected = "pass count")]
    fn foreign_plan_pass_count_mismatch_panics() {
        let (ds, profile, mut rng) = small_setup();
        let index = build_correlated(&ds, &profile, 0.8, 4, &mut rng);
        let plan = crate::plan::QueryPlan::from_passes(SparseVec::empty(), vec![vec![]; 3]);
        let _ = SetSimilaritySearch::probe_plan_tagged(&index, &plan);
    }

    #[test]
    fn sliced_plan_drives_pass_slice_shards() {
        // A pass-slice shard's probe of plan.slice_passes(range) equals its
        // own fused search — the cross-machine ByRepetition fan-out shape.
        let (ds, profile, mut rng) = small_setup();
        let index = build_correlated(&ds, &profile, 0.8, 6, &mut rng);
        let q = correlated_query(ds.vector(9), &profile, 0.8, &mut rng);
        let plan = index.plan_query(&q);
        for range in [0..2, 2..6, 0..6, 3..3] {
            let shard = index.shard_of_passes(range.clone());
            let sliced = plan.slice_passes(range.clone());
            assert_eq!(
                SetSimilaritySearch::probe_plan_tagged(&shard, &sliced),
                shard.search_all_tagged(&q),
                "range {range:?}"
            );
        }
    }

    #[test]
    fn dataset_shards_share_the_parents_plan() {
        // shard_of_ids keeps hash stacks and interners, so plan_query is
        // shard-invariant — the contract the broadcast layer rests on.
        let (ds, profile, mut rng) = small_setup();
        let index = build_correlated(&ds, &profile, 0.8, 5, &mut rng);
        let q = correlated_query(ds.vector(2), &profile, 0.8, &mut rng);
        let plan = index.plan_query(&q);
        let shard = index.shard_of_ids(&[0, 3, 5, 17, 44]);
        assert_eq!(shard.plan_query(&q), plan);
        assert_eq!(
            SetSimilaritySearch::probe_plan_tagged(&shard, &plan),
            shard.search_all_tagged(&q)
        );
    }

    #[test]
    fn empty_index_finds_nothing() {
        let profile = BernoulliProfile::uniform(50, 0.2).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let scheme = CorrelatedScheme::new(0.5, 2, &profile);
        let index: LsfIndex<CorrelatedScheme> = LsfIndex::build(
            vec![],
            profile.clone(),
            scheme,
            0.5,
            IndexOptions::default(),
            &mut rng,
        );
        assert!(index.is_empty());
        let q = SparseVec::from_unsorted(vec![1, 2, 3]);
        assert!(index.search(&q).is_none());
        assert!(index.search_all(&q).is_empty());
    }
}
