//! The inverted filter index with independent repetitions.
//!
//! Preprocessing (§3): compute `F(x)` for every `x ∈ S` and build an inverted
//! index `filter → {x : f ∈ F(x)}`. A query enumerates `F(q)` with the *same*
//! hash stack and verifies every vector sharing a filter.
//!
//! Lemma 5 guarantees a shared filter for close pairs with probability only
//! `≥ 1/log n` per hash-stack draw, so the index keeps `R = Θ(log n)`
//! independent **repetitions** (footnote 6 of the paper) and a query probes
//! them in order until a verified hit.
//!
//! Two hot-path engineering choices on top of the paper's construction:
//!
//! * a query hoists its enumeration inputs (thresholds, masses) into one
//!   [`EnumContext`] shared by all repetitions
//!   instead of re-deriving them per repetition;
//! * 128-bit path keys are *interned* to 64-bit bucket keys through a
//!   per-repetition [`TabulationU128`] draw, halving the inverted index's
//!   key width (an interning collision merges two buckets and at worst
//!   causes a spurious verification — never a wrong answer).

use crate::batch::batch_map;
use crate::engine::{enumerate_filters_with, EnumContext, EnumStats, DEFAULT_NODE_BUDGET};
use crate::persist::{
    compress_bucket_map, effective_write_version, kind, read_bucket_map, read_container_versioned,
    read_postings, write_bucket_map, write_container_versioned, write_postings,
    write_postings_as_bucket_map, Persist, PersistError, PersistScheme, Reader, Writer,
};
use crate::plan::QueryPlan;
use crate::postings::{CompressedPostings, PostingsEncoder};
use crate::scheme::ThresholdScheme;
use crate::traits::{Match, MemoryStats, SetSimilaritySearch};
use rand::{Rng, SeedableRng};
use skewsearch_datagen::BernoulliProfile;
use skewsearch_hashing::{FxHashMap, FxHashSet, PathHasherStack, TabulationU128};
use skewsearch_sets::{similarity, SparseVec};

/// How many independent repetitions to build.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Repetitions {
    /// `⌈factor · ln n⌉` repetitions (Lemma 5's `1/log n` success per
    /// repetition makes `Θ(log n)` the natural boost; `factor ≈ 1` gives
    /// constant success probability, larger factors give high probability).
    Auto {
        /// Multiplier on `ln n`.
        factor: f64,
    },
    /// Exactly this many repetitions.
    Fixed(usize),
}

impl Repetitions {
    /// Resolves to a concrete count for a dataset of `n` vectors.
    pub fn resolve(self, n: usize) -> usize {
        match self {
            Repetitions::Auto { factor } => {
                ((n.max(2) as f64).ln() * factor).ceil().max(1.0) as usize
            }
            Repetitions::Fixed(r) => r.max(1),
        }
    }
}

impl Default for Repetitions {
    fn default() -> Self {
        Repetitions::Auto { factor: 1.0 }
    }
}

/// Tuning knobs shared by all LSF indexes.
#[derive(Clone, Copy, Debug)]
pub struct IndexOptions {
    /// Repetition policy.
    pub repetitions: Repetitions,
    /// Per-vector node budget for path enumeration.
    pub node_budget: usize,
    /// Build threads. `1` = sequential; more parallelizes filter enumeration
    /// across vectors (std scoped threads). The built index is
    /// **identical** for any thread count: chunks are merged in id order.
    pub build_threads: usize,
    /// Worker threads used by [`SetSimilaritySearch::search_batch`] (and
    /// `search_batch_best`). `0` = one worker per available core. Batch
    /// results are **identical** for any worker count — see
    /// [`crate::batch::batch_map`].
    pub query_threads: usize,
    /// How many pending mutations (inserts + removals since the last
    /// compaction) the delta segment absorbs before the index compacts
    /// itself — see [`LsfIndex::compact`]. Compaction is answer-invariant,
    /// so this knob trades write amortization against probe-time delta
    /// lookups without observable effect; `usize::MAX` disables automatic
    /// compaction entirely.
    pub mutation_buffer: usize,
}

impl Default for IndexOptions {
    fn default() -> Self {
        Self {
            repetitions: Repetitions::default(),
            node_budget: DEFAULT_NODE_BUDGET,
            build_threads: 1,
            query_threads: 0,
            mutation_buffer: 1024,
        }
    }
}

/// Aggregate statistics from building an index.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildStats {
    /// Repetitions built.
    pub repetitions: usize,
    /// Total filters stored across vectors and repetitions.
    pub total_filters: usize,
    /// Distinct buckets across repetitions.
    pub distinct_buckets: usize,
    /// Largest single bucket.
    pub max_bucket: usize,
    /// Vectors whose enumeration hit the node budget (any repetition).
    pub truncated_vectors: usize,
    /// Vectors whose enumeration hit the depth cap (any repetition).
    pub depth_capped_vectors: usize,
}

impl BuildStats {
    /// Mean stored filters per vector per repetition.
    pub fn avg_filters_per_vector(&self, n: usize) -> f64 {
        if n == 0 || self.repetitions == 0 {
            return 0.0;
        }
        self.total_filters as f64 / (n as f64 * self.repetitions as f64)
    }
}

/// Statistics from answering one query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Filters enumerated for the query (across probed repetitions).
    pub filters: usize,
    /// Posting-list entries touched.
    pub candidates: usize,
    /// Distinct vectors verified with a similarity computation.
    pub verified: usize,
    /// Repetitions probed before returning.
    pub repetitions_probed: usize,
}

/// One repetition: an independently drawn hash stack, its key interner, and
/// its inverted index over interned 64-bit bucket keys.
///
/// The inverted index is log-structured: `base` is the immutable **base
/// segment** (filled at build time or by [`LsfIndex::compact`]), stored as
/// [`CompressedPostings`] — sorted keys + byte offsets into one delta+varint
/// arena — and `delta` is the small mutable segment absorbing incremental
/// inserts as plain uncompressed buckets. A probe walks the base bucket for
/// a key (streaming-decoded by a [`crate::postings::PostingsCursor`], zero
/// allocation), then the delta bucket. Every id in `delta` exceeds every id
/// in `base` (inserts are assigned ids past `LsfIndex::base_len`), so the
/// concatenated walk visits ids in exactly the ascending order a
/// from-scratch build over the same sets would store — which is what keeps
/// mutated answers byte-identical to a rebuild. Build and compaction are
/// the only two sites that encode a base segment.
struct Repetition {
    hashers: PathHasherStack,
    interner: TabulationU128,
    base: CompressedPostings,
    delta: FxHashMap<u64, Vec<u32>>,
}

/// The probe stage for one pass, shared by the fused and the planned query
/// paths: looks `keys` up in the repetition's bucket table in order, feeds
/// each *globally unseen* candidate to `visit` with its discovery coordinate
/// `(pass, step, id)`, and returns `false` iff `visit` stopped the probe.
///
/// Both front ends — lazy per-repetition enumeration
/// ([`LsfIndex::probe_tagged`]) and a precomputed [`QueryPlan`]
/// ([`LsfIndex::probe_plan_tagged`]) — funnel through this one loop, which is
/// what keeps their answers byte-identical by construction.
fn probe_pass_keys(
    rep: &Repetition,
    pass: u32,
    keys: &[u64],
    seen: &mut FxHashSet<u32>,
    stats: &mut QueryStats,
    visit: &mut impl FnMut(u32, u32, u32) -> bool,
) -> bool {
    stats.repetitions_probed += 1;
    stats.filters += keys.len();
    for (step, key) in keys.iter().enumerate() {
        // Base segment first, then the delta segment: delta ids all exceed
        // base ids, so this is ascending-id order — the order a rebuild
        // would store (see [`Repetition`]). The base bucket is streamed
        // straight out of the compressed arena — no decode buffer.
        if let Some(cursor) = rep.base.get(*key) {
            for id in cursor {
                stats.candidates += 1;
                if seen.insert(id) {
                    stats.verified += 1;
                    if !visit(pass, step as u32, id) {
                        return false;
                    }
                }
            }
        }
        if let Some(bucket) = rep.delta.get(key) {
            stats.candidates += bucket.len();
            for &id in bucket {
                if seen.insert(id) {
                    stats.verified += 1;
                    if !visit(pass, step as u32, id) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Per-chunk enumeration result (`pairs` in ascending id order, keys already
/// interned to 64 bits).
struct ChunkFilters {
    pairs: Vec<(u32, u64)>,
    truncated: Vec<u32>,
    depth_capped: Vec<u32>,
}

/// Enumerates `F(x)` for every vector, optionally fanning out over
/// contiguous id chunks with std scoped threads. Chunks are returned
/// in id order, so downstream merging is thread-count independent.
fn enumerate_chunked<S: ThresholdScheme>(
    vectors: &[SparseVec],
    profile: &BernoulliProfile,
    scheme: &S,
    hashers: &PathHasherStack,
    interner: &TabulationU128,
    node_budget: usize,
    threads: usize,
) -> Vec<ChunkFilters> {
    let enumerate_chunk = |base: usize, slice: &[SparseVec]| -> ChunkFilters {
        let mut chunk = ChunkFilters {
            pairs: Vec::new(),
            truncated: Vec::new(),
            depth_capped: Vec::new(),
        };
        let mut scratch: Vec<skewsearch_hashing::PathKey> = Vec::new();
        for (off, x) in slice.iter().enumerate() {
            let id = (base + off) as u32;
            scratch.clear();
            let context = EnumContext::new(x, profile, scheme, hashers.max_depth());
            let stats: EnumStats =
                enumerate_filters_with(&context, scheme, hashers, node_budget, &mut scratch);
            if stats.truncated {
                chunk.truncated.push(id);
            }
            if stats.depth_capped {
                chunk.depth_capped.push(id);
            }
            chunk
                .pairs
                .extend(scratch.iter().map(|k| (id, interner.hash(k.raw()))));
        }
        chunk
    };

    let threads = threads.max(1).min(vectors.len().max(1));
    if threads <= 1 {
        return vec![enumerate_chunk(0, vectors)];
    }
    let chunk_len = vectors.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = vectors
            .chunks(chunk_len)
            .enumerate()
            .map(|(c, slice)| {
                let f = &enumerate_chunk;
                scope.spawn(move || f(c * chunk_len, slice))
            })
            .collect();
        handles
            .into_iter()
            // lint:allow(no-panic-in-lib, join only errs when the enumeration worker itself panicked — re-raising the caller's own panic is the correct propagation)
            .map(|h| h.join().expect("build worker panicked"))
            .collect()
    })
}

/// A locality-sensitive filtering index over a dataset, generic in the
/// [`ThresholdScheme`]. This is the shared machinery behind
/// [`crate::AdversarialIndex`], [`crate::CorrelatedIndex`], and the Chosen
/// Path baseline.
pub struct LsfIndex<S: ThresholdScheme> {
    profile: BernoulliProfile,
    vectors: Vec<SparseVec>,
    scheme: S,
    reps: Vec<Repetition>,
    verify_threshold: f64,
    node_budget: usize,
    query_threads: usize,
    build_stats: BuildStats,
    /// Slots `0..base_len` live in the base segments; slots `base_len..`
    /// were inserted since the last compaction and live in the deltas.
    base_len: usize,
    /// Liveness per slot; `false` = tombstoned (filtered at the single
    /// [`LsfIndex::verified`] site). Slots are never reused.
    alive: Vec<bool>,
    /// Count of `true` entries in `alive` — the trait's `len()`.
    live: usize,
    /// Mutations (inserts + removals) since the last compaction.
    pending: usize,
    /// Auto-compaction threshold ([`IndexOptions::mutation_buffer`]).
    mutation_buffer: usize,
    /// Compactions performed so far (observable via
    /// [`LsfIndex::compaction_count`]; tests pin that compaction timing is
    /// answer-invariant).
    compactions: u64,
}

impl<S: ThresholdScheme> LsfIndex<S> {
    /// Builds the index: draws `R` hash stacks, enumerates `F(x)` for every
    /// vector under each, and fills the inverted indexes.
    ///
    /// `verify_threshold` is the Braun-Blanquet bar `b₁` candidates must
    /// clear.
    ///
    /// Deterministic under a fixed `rng` seed, for any
    /// [`IndexOptions::build_threads`] count.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::{rngs::StdRng, SeedableRng};
    /// use skewsearch_core::{CorrelatedScheme, IndexOptions, LsfIndex, SetSimilaritySearch};
    /// use skewsearch_datagen::{BernoulliProfile, Dataset};
    ///
    /// let mut rng = StdRng::seed_from_u64(1);
    /// let profile = BernoulliProfile::two_block(400, 0.2, 0.02).unwrap();
    /// let data = Dataset::generate(&profile, 200, &mut rng);
    /// let scheme = CorrelatedScheme::new(0.8, data.n(), &profile);
    /// let index = LsfIndex::build(
    ///     data.vectors().to_vec(),
    ///     profile.clone(),
    ///     scheme,
    ///     0.8 / 1.3, // verification threshold b₁ (Lemma 10)
    ///     IndexOptions::default(),
    ///     &mut rng,
    /// );
    /// assert_eq!(index.len(), 200);
    /// // A vector queried with itself shares all its filters and is found.
    /// let hit = index.search(data.vector(0)).expect("self-query hits");
    /// assert!(hit.similarity >= index.threshold());
    /// ```
    pub fn build<R: Rng + ?Sized>(
        vectors: Vec<SparseVec>,
        profile: BernoulliProfile,
        scheme: S,
        verify_threshold: f64,
        options: IndexOptions,
        rng: &mut R,
    ) -> Self
    where
        S: Sync,
    {
        assert!(
            (0.0..=1.0).contains(&verify_threshold),
            "verification threshold must lie in [0,1]"
        );
        let n = vectors.len();
        let r = options.repetitions.resolve(n);
        let depth = scheme.depth_bound();
        let mut build_stats = BuildStats {
            repetitions: r,
            ..BuildStats::default()
        };
        let mut truncated: FxHashSet<u32> = FxHashSet::default();
        let mut depth_capped: FxHashSet<u32> = FxHashSet::default();

        // Each repetition gets an independent stack seeded from the caller's
        // RNG; builds stay deterministic under a fixed seed (and under any
        // thread count: chunk results are merged in id order).
        let mut reps = Vec::with_capacity(r);
        for _ in 0..r {
            let mut stack_rng = rand::rngs::StdRng::seed_from_u64(rng.random::<u64>());
            let hashers = PathHasherStack::sample(&mut stack_rng, depth);
            let interner = TabulationU128::sample(&mut stack_rng);
            let chunks = enumerate_chunked(
                &vectors,
                &profile,
                &scheme,
                &hashers,
                &interner,
                options.node_budget,
                options.build_threads,
            );
            // Concatenate chunks (already in ascending id order) and stable-
            // sort by key: within each key the ids stay ascending — exactly
            // the encoder's input contract, for any thread count.
            let mut pairs: Vec<(u32, u64)> = Vec::new();
            for chunk in chunks {
                build_stats.total_filters += chunk.pairs.len();
                pairs.extend(chunk.pairs);
                truncated.extend(chunk.truncated);
                depth_capped.extend(chunk.depth_capped);
            }
            pairs.sort_by_key(|&(_, key)| key);
            let mut enc = PostingsEncoder::new();
            for (id, key) in pairs {
                enc.push(key, id);
            }
            let base = enc.finish();
            build_stats.distinct_buckets += base.bucket_count();
            build_stats.max_bucket = build_stats.max_bucket.max(base.max_bucket_len());
            reps.push(Repetition {
                hashers,
                interner,
                base,
                delta: FxHashMap::default(),
            });
        }
        build_stats.truncated_vectors = truncated.len();
        build_stats.depth_capped_vectors = depth_capped.len();

        Self {
            profile,
            vectors,
            scheme,
            reps,
            verify_threshold,
            node_budget: options.node_budget,
            query_threads: options.query_threads,
            build_stats,
            base_len: n,
            alive: vec![true; n],
            live: n,
            pending: 0,
            mutation_buffer: options.mutation_buffer,
            compactions: 0,
        }
    }

    /// Build statistics.
    pub fn build_stats(&self) -> &BuildStats {
        &self.build_stats
    }

    /// The scheme driving this index.
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// The indexed vectors.
    pub fn vectors(&self) -> &[SparseVec] {
        &self.vectors
    }

    /// The profile the index was built against.
    pub fn profile(&self) -> &BernoulliProfile {
        &self.profile
    }

    /// Core probing loop. Enumerates the query's filters repetition by
    /// repetition and feeds each *distinct* candidate to `visit` in
    /// first-discovery order; stops when `visit` returns `false`. Returns
    /// query statistics.
    ///
    /// The enumeration inputs (scheme thresholds, dimension masses) are
    /// hoisted into one [`EnumContext`] built up front and shared by every
    /// repetition — only the hash-stack acceptance decisions differ per
    /// repetition.
    pub fn probe(&self, q: &SparseVec, mut visit: impl FnMut(u32) -> bool) -> QueryStats {
        self.probe_tagged(q, |_, _, id| visit(id))
    }

    /// [`LsfIndex::probe`] with discovery coordinates: `visit` receives
    /// `(pass, step, id)` where `pass` is the repetition index and `step` the
    /// position of the discovering filter in the query's enumeration order.
    ///
    /// Within one `(pass, step)` bucket, ids ascend (buckets are filled in id
    /// order at build time), so `(pass, step, id)` totally orders candidate
    /// discovery — the invariant the sharding layer's merge protocol
    /// ([`crate::shard::ShardedIndex`]) rests on.
    pub fn probe_tagged(
        &self,
        q: &SparseVec,
        mut visit: impl FnMut(u32, u32, u32) -> bool,
    ) -> QueryStats {
        let mut stats = QueryStats::default();
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        let mut filters = Vec::new();
        let mut keys: Vec<u64> = Vec::new();
        let context = EnumContext::new(q, &self.profile, &self.scheme, self.scheme.depth_bound());
        for (pass, rep) in self.reps.iter().enumerate() {
            filters.clear();
            enumerate_filters_with(
                &context,
                &self.scheme,
                &rep.hashers,
                self.node_budget,
                &mut filters,
            );
            keys.clear();
            keys.extend(filters.iter().map(|k| rep.interner.hash(k.raw())));
            if !probe_pass_keys(rep, pass as u32, &keys, &mut seen, &mut stats, &mut visit) {
                break;
            }
        }
        stats
    }

    /// Stage 1 of the pipeline: enumerates `F(q)` under every repetition's
    /// hash stack — thresholds and masses hoisted once into an
    /// [`EnumContext`] — and interns the path keys into the per-repetition
    /// 64-bit bucket keys, packaged as a reusable [`QueryPlan`].
    ///
    /// The plan is valid for this index, for any [`LsfIndex::shard_of_ids`]
    /// dataset shard of it (shards keep the parent's hash stacks and
    /// interners, so the plan is shard-invariant — the fact the sharding
    /// layer's enumerate-once broadcast rests on), and, via
    /// [`QueryPlan::slice_passes`], for any [`LsfIndex::shard_of_passes`]
    /// pass-slice shard.
    ///
    /// Unlike the fused probe, planning always enumerates **all**
    /// repetitions up front (no early exit) — that is the price of
    /// reusability, repaid as soon as a second consumer probes the plan.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::{rngs::StdRng, SeedableRng};
    /// use skewsearch_core::{CorrelatedScheme, IndexOptions, LsfIndex, SetSimilaritySearch};
    /// use skewsearch_datagen::{BernoulliProfile, Dataset};
    ///
    /// let mut rng = StdRng::seed_from_u64(2);
    /// let profile = BernoulliProfile::two_block(400, 0.2, 0.02).unwrap();
    /// let data = Dataset::generate(&profile, 120, &mut rng);
    /// let scheme = CorrelatedScheme::new(0.8, data.n(), &profile);
    /// let index = LsfIndex::build(
    ///     data.vectors().to_vec(),
    ///     profile.clone(),
    ///     scheme,
    ///     0.8 / 1.3,
    ///     IndexOptions::default(),
    ///     &mut rng,
    /// );
    /// let plan = index.plan_query(data.vector(0));
    /// // One key list per repetition, probing reproduces the fused search.
    /// assert_eq!(plan.pass_count(), index.repetition_count());
    /// assert_eq!(index.probe_plan(&plan), index.search_all(data.vector(0)));
    /// ```
    pub fn plan_query(&self, q: &SparseVec) -> QueryPlan {
        let mut filters = Vec::new();
        let context = EnumContext::new(q, &self.profile, &self.scheme, self.scheme.depth_bound());
        let passes = self
            .reps
            .iter()
            .map(|rep| {
                filters.clear();
                enumerate_filters_with(
                    &context,
                    &self.scheme,
                    &rep.hashers,
                    self.node_budget,
                    &mut filters,
                );
                filters.iter().map(|k| rep.interner.hash(k.raw())).collect()
            })
            .collect();
        QueryPlan::from_passes(q.clone(), passes)
    }

    /// [`LsfIndex::probe_tagged`] driven by a precomputed [`QueryPlan`]
    /// instead of live enumeration: only the inverted index is touched for a
    /// planned plan. Unplanned plans fall back to the fused probe.
    ///
    /// Byte-identical visit sequence to the fused probe of `plan.query()` —
    /// both paths share one bucket-walk loop.
    ///
    /// # Panics
    /// Panics if a planned plan's pass count differs from this index's
    /// repetition count (a plan from a foreign index — probing it silently
    /// would corrupt answers).
    pub fn probe_plan_tagged(
        &self,
        plan: &QueryPlan,
        mut visit: impl FnMut(u32, u32, u32) -> bool,
    ) -> QueryStats {
        let Some(passes) = plan.passes() else {
            return self.probe_tagged(plan.query(), visit);
        };
        assert_eq!(
            passes.len(),
            self.reps.len(),
            "QueryPlan pass count does not match this index's repetitions"
        );
        let mut stats = QueryStats::default();
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        for ((pass, rep), keys) in self.reps.iter().enumerate().zip(passes) {
            if !probe_pass_keys(rep, pass as u32, keys, &mut seen, &mut stats, &mut visit) {
                break;
            }
        }
        stats
    }

    /// Verifies candidate `id` against `q`: its [`Match`] iff the slot is
    /// live and the similarity clears the index's threshold. Stage 3's
    /// single verification site, shared by every search/probe entry point —
    /// which makes it the single place tombstones are filtered: a removed
    /// set may still be probed out of a stale bucket, but it can never be
    /// answered.
    fn verified(&self, q: &SparseVec, id: u32) -> Option<Match> {
        if !self.alive[id as usize] {
            return None;
        }
        let sim = similarity::braun_blanquet(&self.vectors[id as usize], q);
        (sim >= self.verify_threshold).then_some(Match {
            id: id as usize,
            similarity: sim,
        })
    }

    /// [`SetSimilaritySearch::search`] with statistics.
    pub fn search_with_stats(&self, q: &SparseVec) -> (Option<Match>, QueryStats) {
        let mut hit = None;
        let stats = self.probe(q, |id| {
            hit = self.verified(q, id);
            hit.is_none()
        });
        (hit, stats)
    }

    /// Distinct candidate ids the index would verify for `q` (no similarity
    /// filtering) — the quantity the paper's `n^ρ` bounds govern.
    pub fn distinct_candidates(&self, q: &SparseVec) -> (Vec<u32>, QueryStats) {
        let mut ids = Vec::new();
        let stats = self.probe(q, |id| {
            ids.push(id);
            true
        });
        (ids, stats)
    }

    /// [`SetSimilaritySearch::search_batch`] with an explicit worker count
    /// (`0` = one per available core), ignoring the build-time
    /// [`IndexOptions::query_threads`]. Results are identical for every
    /// worker count.
    pub fn search_batch_threads(&self, queries: &[SparseVec], threads: usize) -> Vec<Vec<Match>> {
        batch_map(queries, threads, |q| self.search_all(q))
    }

    /// [`SetSimilaritySearch::search_batch_best`] with an explicit worker
    /// count (`0` = one per available core).
    pub fn search_batch_best_threads(
        &self,
        queries: &[SparseVec],
        threads: usize,
    ) -> Vec<Option<Match>> {
        batch_map(queries, threads, |q| self.search_best(q))
    }

    /// [`LsfIndex::distinct_candidates`] over a query batch on `threads`
    /// workers (`0` = one per available core). Element `i` is exactly
    /// `self.distinct_candidates(&queries[i])`.
    pub fn distinct_candidates_batch(
        &self,
        queries: &[SparseVec],
        threads: usize,
    ) -> Vec<(Vec<u32>, QueryStats)> {
        batch_map(queries, threads, |q| self.distinct_candidates(q))
    }

    /// Number of probe passes (= built repetitions).
    pub fn repetition_count(&self) -> usize {
        self.reps.len()
    }

    /// Resident heap bytes of this index by role — the accounting behind
    /// the memory-diet target. `posting_bytes` is exact for the compressed
    /// base segments (three flat arrays, measured by capacity) and a
    /// load-factor-aware estimate for the uncompressed delta maps;
    /// `aux_bytes` covers hash coefficients, interner tables, and the
    /// tombstone bitmap. Deterministic for a deterministic build — which
    /// is what lets `benches/postings.rs` compare substrates.
    pub fn memory_stats(&self) -> MemoryStats {
        let mut posting = 0usize;
        let mut aux = 0usize;
        for rep in &self.reps {
            posting += rep.base.heap_bytes();
            // Delta estimate: per-slot map overhead (key + Vec header +
            // control byte) plus each bucket's id storage.
            posting += rep.delta.capacity()
                * (std::mem::size_of::<u64>() + std::mem::size_of::<Vec<u32>>() + 1);
            posting += rep
                .delta
                // lint:allow(nondeterministic-iter, sum of bucket capacities is an order-independent reduction)
                .values()
                .map(|b| b.capacity() * std::mem::size_of::<u32>())
                .sum::<usize>();
            aux += rep.interner.to_words().len() * std::mem::size_of::<u64>();
            aux += rep.hashers.levels().len() * 3 * std::mem::size_of::<u128>();
        }
        aux += self.alive.capacity();
        let vector_bytes = self.vectors.capacity() * std::mem::size_of::<SparseVec>()
            + self
                .vectors
                .iter()
                .map(|v| std::mem::size_of_val(v.dims()))
                .sum::<usize>();
        MemoryStats {
            posting_bytes: posting,
            vector_bytes,
            aux_bytes: aux,
        }
    }

    /// Incrementally indexes `set` in the delta segments and returns its
    /// slot id (the infallible core of [`SetSimilaritySearch::insert`]).
    ///
    /// Enumerates `F(set)` once per repetition with the index's **existing**
    /// hash stacks — exactly the work one vector costs at build time — and
    /// appends the new id to each matching delta bucket. The id is
    /// `slot_count()` before the call; ids ascend with insertion order and
    /// are never reused. May trigger an automatic [`LsfIndex::compact`]
    /// (answer-invariant) once [`IndexOptions::mutation_buffer`] mutations
    /// have accumulated.
    ///
    /// After any interleaving of inserts and removals, every answer surface
    /// is byte-identical to a freshly built index over the surviving sets
    /// (under the monotone slot-id renumbering; pinned by
    /// `tests/mutation_equivalence.rs`).
    pub fn insert_set(&mut self, set: SparseVec) -> usize {
        let id = self.vectors.len();
        let mut filters: Vec<skewsearch_hashing::PathKey> = Vec::new();
        let context =
            EnumContext::new(&set, &self.profile, &self.scheme, self.scheme.depth_bound());
        for rep in &mut self.reps {
            filters.clear();
            enumerate_filters_with(
                &context,
                &self.scheme,
                &rep.hashers,
                self.node_budget,
                &mut filters,
            );
            for key in filters.iter().map(|k| rep.interner.hash(k.raw())) {
                rep.delta.entry(key).or_default().push(id as u32);
            }
        }
        self.vectors.push(set);
        self.alive.push(true);
        self.live += 1;
        self.pending += 1;
        self.maybe_compact();
        id
    }

    /// Tombstones slot `id`: `true` iff a live set was removed (the
    /// infallible core of [`SetSimilaritySearch::remove`]). Unassigned and
    /// already-dead ids return `false`; removal never panics and a retired
    /// id never comes back.
    ///
    /// The tombstone is honored immediately at the single verification
    /// site (`verified`) — the dead set can still be *probed* (its bucket
    /// entries linger until the next [`LsfIndex::compact`]) but can never
    /// be answered.
    pub fn remove_set(&mut self, id: usize) -> bool {
        if id >= self.alive.len() || !self.alive[id] {
            return false;
        }
        self.alive[id] = false;
        self.live -= 1;
        self.pending += 1;
        self.maybe_compact();
        true
    }

    /// Merges the delta segments into the base segments and prunes
    /// tombstoned ids from every bucket. A no-op when nothing is pending.
    ///
    /// **Answer-invariant**: each bucket key is merged independently — base
    /// survivors (ascending ids) followed by that key's delta ids (also
    /// ascending, and all larger) — so the post-compaction walk order for
    /// every key equals the pre-compaction walk order minus dead ids, which
    /// the `verified` tombstone check was already filtering. Queries before
    /// and after compaction answer byte-identically
    /// (`tests/mutation_equivalence.rs` interleaves explicit compactions).
    ///
    /// Dead slots' vector payloads are released (slot ids are never reused,
    /// so the slots themselves remain, empty).
    pub fn compact(&mut self) {
        if self.pending == 0 {
            return;
        }
        let alive = &self.alive;
        for rep in &mut self.reps {
            // Re-encode the base segment: a sorted-merge of the old base
            // (already in ascending key order) with the delta keys, pruning
            // tombstoned ids as they stream past. Per key the encoder sees
            // base survivors (ascending ids) then that key's delta ids
            // (also ascending, all larger) — the pre-compaction walk order
            // minus dead ids, which is what keeps compaction
            // answer-invariant.
            // lint:allow(nondeterministic-iter, the delta keys are collected and sorted before the merge — the encoding is independent of the map's iteration order)
            let mut delta_keys: Vec<u64> = rep.delta.keys().copied().collect();
            delta_keys.sort_unstable();
            let mut enc = PostingsEncoder::new();
            let push_delta = |enc: &mut PostingsEncoder, key: u64| {
                if let Some(bucket) = rep.delta.get(&key) {
                    for &id in bucket {
                        if alive[id as usize] {
                            enc.push(key, id);
                        }
                    }
                }
            };
            let mut di = 0usize;
            for (key, cursor) in rep.base.iter() {
                while di < delta_keys.len() && delta_keys[di] < key {
                    push_delta(&mut enc, delta_keys[di]);
                    di += 1;
                }
                for id in cursor {
                    if alive[id as usize] {
                        enc.push(key, id);
                    }
                }
                if di < delta_keys.len() && delta_keys[di] == key {
                    push_delta(&mut enc, key);
                    di += 1;
                }
            }
            while di < delta_keys.len() {
                push_delta(&mut enc, delta_keys[di]);
                di += 1;
            }
            rep.base = enc.finish();
            rep.delta = FxHashMap::default();
        }
        for (slot, &alive) in self.alive.iter().enumerate() {
            if !alive {
                self.vectors[slot] = SparseVec::empty();
            }
        }
        self.base_len = self.vectors.len();
        self.pending = 0;
        self.compactions += 1;
    }

    /// Compacts iff the pending-mutation count has reached the buffer
    /// threshold.
    fn maybe_compact(&mut self) {
        if self.pending >= self.mutation_buffer {
            self.compact();
        }
    }

    /// Total slots ever assigned (live + tombstoned). Slot ids returned by
    /// [`LsfIndex::insert_set`] are always `< slot_count()`, and
    /// [`Match::id`] values are slot ids.
    pub fn slot_count(&self) -> usize {
        self.vectors.len()
    }

    /// Mutations (inserts + removals) absorbed since the last compaction.
    pub fn pending_mutations(&self) -> usize {
        self.pending
    }

    /// Compactions performed so far (automatic and explicit).
    pub fn compaction_count(&self) -> u64 {
        self.compactions
    }

    /// Whether slot `id` currently holds a live set.
    pub fn is_live(&self, id: usize) -> bool {
        id < self.alive.len() && self.alive[id]
    }

    /// Clones out a shard of this index owning the repetition slice
    /// `range` over the **full** dataset (the `ByRepetition` sharding
    /// primitive — see [`crate::shard`]). The shard's repetition `r` is
    /// byte-identical to this index's repetition `range.start + r`.
    ///
    /// An empty `range` yields a valid index that never finds anything.
    ///
    /// # Panics
    /// Panics if `range.end` exceeds [`LsfIndex::repetition_count`].
    pub fn shard_of_passes(&self, range: std::ops::Range<usize>) -> Self
    where
        S: Clone,
    {
        let reps: Vec<Repetition> = self.reps[range]
            .iter()
            .map(|rep| Repetition {
                hashers: rep.hashers.clone(),
                interner: rep.interner.clone(),
                base: rep.base.clone(),
                delta: rep.delta.clone(),
            })
            .collect();
        // Pass-slice shards keep the full dataset, so the parent's mutation
        // state (tombstones, segment boundary, pending count) carries over
        // verbatim.
        self.shard_from_reps(
            self.vectors.clone(),
            reps,
            self.alive.clone(),
            self.base_len,
            self.pending,
        )
    }

    /// Clones out a shard owning only the vectors with the given **global**
    /// ids (ascending), remapped to local ids `0..ids.len()` (the
    /// `ByDataset` sharding primitive — see [`crate::shard`]). The shard
    /// keeps every repetition's hash stack and interner, with each bucket
    /// filtered down to the shard's ids; bucket order (ascending global id)
    /// is preserved under the monotone remap.
    ///
    /// # Panics
    /// Panics if `ids` is not strictly ascending or contains an id `≥ len()`.
    pub fn shard_of_ids(&self, ids: &[u32]) -> Self
    where
        S: Clone,
    {
        let local_of = crate::shard::local_id_table(ids, self.vectors.len());
        let vectors: Vec<SparseVec> = ids
            .iter()
            .map(|&g| self.vectors[g as usize].clone())
            .collect();
        let remap = |buckets: &FxHashMap<u64, Vec<u32>>| -> FxHashMap<u64, Vec<u32>> {
            // lint:allow(nondeterministic-iter, filtering every bucket into a new map is a per-key transform — the resulting map does not depend on visit order)
            buckets
                .iter()
                .filter_map(|(&key, bucket)| {
                    crate::shard::remap_bucket(bucket, &local_of).map(|local| (key, local))
                })
                .collect()
        };
        // The base segment decodes bucket by bucket (key-ordered, ids
        // ascending) into a reused scratch buffer, remaps, and re-encodes —
        // the monotone remap preserves both encoder invariants.
        let mut scratch: Vec<u32> = Vec::new();
        let reps: Vec<Repetition> = self
            .reps
            .iter()
            .map(|rep| {
                let mut enc = PostingsEncoder::new();
                for (key, cursor) in rep.base.iter() {
                    scratch.clear();
                    scratch.extend(cursor);
                    if let Some(local) = crate::shard::remap_bucket(&scratch, &local_of) {
                        for id in local {
                            enc.push(key, id);
                        }
                    }
                }
                Repetition {
                    hashers: rep.hashers.clone(),
                    interner: rep.interner.clone(),
                    base: enc.finish(),
                    delta: remap(&rep.delta),
                }
            })
            .collect();
        // Mutation state restricted to the shard's slots: liveness follows
        // each global id; the local segment boundary is where the shard's
        // ids cross the parent's (`ids` ascends, so partition_point finds
        // it); the pending count is the shard's share of unpruned
        // tombstones plus its delta entries — conservative is fine, the
        // count only gates when compaction *may* run, never what it yields.
        let alive: Vec<bool> = ids.iter().map(|&g| self.alive[g as usize]).collect();
        let base_len = ids.partition_point(|&g| (g as usize) < self.base_len);
        let pending = if self.pending == 0 {
            0
        } else {
            let deltas: usize = reps
                .iter()
                // lint:allow(nondeterministic-iter, sum of delta-bucket sizes is an order-independent reduction)
                .map(|r| r.delta.values().map(Vec::len).sum::<usize>())
                .sum();
            deltas + alive.iter().filter(|a| !**a).count()
        };
        self.shard_from_reps(vectors, reps, alive, base_len, pending)
    }

    /// Assembles a shard from cloned repetitions plus its slice of the
    /// parent's mutation state, recomputing the storage statistics (the
    /// per-vector truncation counters are a build-time artifact of the
    /// parent and are zeroed in shards).
    fn shard_from_reps(
        &self,
        vectors: Vec<SparseVec>,
        reps: Vec<Repetition>,
        alive: Vec<bool>,
        base_len: usize,
        pending: usize,
    ) -> Self
    where
        S: Clone,
    {
        let live = alive.iter().filter(|a| **a).count();
        let build_stats = BuildStats {
            repetitions: reps.len(),
            total_filters: reps.iter().map(|r| r.base.posting_count()).sum(),
            distinct_buckets: reps.iter().map(|r| r.base.bucket_count()).sum(),
            max_bucket: reps
                .iter()
                .map(|r| r.base.max_bucket_len())
                .max()
                .unwrap_or(0),
            truncated_vectors: 0,
            depth_capped_vectors: 0,
        };
        Self {
            profile: self.profile.clone(),
            vectors,
            scheme: self.scheme.clone(),
            reps,
            verify_threshold: self.verify_threshold,
            node_budget: self.node_budget,
            query_threads: self.query_threads,
            build_stats,
            base_len,
            alive,
            live,
            pending,
            mutation_buffer: self.mutation_buffer,
            compactions: 0,
        }
    }
}

impl<S: ThresholdScheme> SetSimilaritySearch for LsfIndex<S> {
    /// The early-exiting first hit — the tag projection of
    /// `search_first_tagged`, sharing its verify loop
    /// ([`LsfIndex::search_with_stats`] keeps its own for stats-bearing
    /// callers).
    fn search(&self, q: &SparseVec) -> Option<Match> {
        self.search_first_tagged(q).map(|t| t.hit)
    }

    /// Implements the trait's dedup-then-verify contract: [`LsfIndex::probe`]
    /// deduplicates candidate ids across repetitions *before* the similarity
    /// computation, and matches are pushed in first-discovery probe order.
    ///
    /// Exactly the tag projection of
    /// [`LsfIndex::search_all_tagged`](SetSimilaritySearch::search_all_tagged)
    /// — one verify loop, not two to keep in lockstep.
    fn search_all(&self, q: &SparseVec) -> Vec<Match> {
        self.search_all_tagged(q)
            .into_iter()
            .map(|t| t.hit)
            .collect()
    }

    /// Genuine `(repetition, filter)` discovery coordinates from
    /// [`LsfIndex::probe_tagged`] — the tags the sharded merge protocol
    /// requires.
    fn search_all_tagged(&self, q: &SparseVec) -> Vec<crate::traits::TaggedMatch> {
        let mut out = Vec::new();
        self.probe_tagged(q, |pass, step, id| {
            if let Some(hit) = self.verified(q, id) {
                out.push(crate::traits::TaggedMatch { pass, step, hit });
            }
            true
        });
        out
    }

    /// Early-exiting: the probe stops at the first verified hit, exactly
    /// like [`LsfIndex::search`].
    fn search_first_tagged(&self, q: &SparseVec) -> Option<crate::traits::TaggedMatch> {
        let mut first = None;
        self.probe_tagged(q, |pass, step, id| {
            first = self
                .verified(q, id)
                .map(|hit| crate::traits::TaggedMatch { pass, step, hit });
            first.is_none()
        });
        first
    }

    /// Stage 1: full enumeration + interning, one key list per repetition —
    /// see [`LsfIndex::plan_query`].
    fn plan_query(&self, q: &SparseVec) -> QueryPlan {
        LsfIndex::plan_query(self, q)
    }

    /// Stages 2+3 from a precomputed plan: bucket lookups via
    /// [`LsfIndex::probe_plan_tagged`], verification via the shared verify
    /// site — byte-identical to `search_all_tagged(plan.query())`.
    fn probe_plan_tagged(&self, plan: &QueryPlan) -> Vec<crate::traits::TaggedMatch> {
        let q = plan.query();
        let mut out = Vec::new();
        LsfIndex::probe_plan_tagged(self, plan, |pass, step, id| {
            if let Some(hit) = self.verified(q, id) {
                out.push(crate::traits::TaggedMatch { pass, step, hit });
            }
            true
        });
        out
    }

    /// Early-exiting planned probe: stops at the first verified hit, exactly
    /// like `search_first_tagged(plan.query())` — but without enumeration
    /// when the plan is planned.
    fn probe_plan_first_tagged(&self, plan: &QueryPlan) -> Option<crate::traits::TaggedMatch> {
        let q = plan.query();
        let mut first = None;
        LsfIndex::probe_plan_tagged(self, plan, |pass, step, id| {
            first = self
                .verified(q, id)
                .map(|hit| crate::traits::TaggedMatch { pass, step, hit });
            first.is_none()
        });
        first
    }

    /// Deadline-aware planned probe at per-repetition granularity: the
    /// expiry check is re-polled before every pass (the natural cancellation
    /// point of the pipeline — each pass is one bucket-walk over one
    /// repetition), so a firing deadline abandons the probe within one
    /// repetition's worth of work. Unplanned plans poll once and fall back
    /// to the fused path.
    ///
    /// Shares the private `probe_pass_keys` walk with every other probe
    /// entry point, so a never-firing check yields exactly
    /// [`SetSimilaritySearch::probe_plan_tagged`].
    fn probe_plan_tagged_deadline(
        &self,
        plan: &QueryPlan,
        expired: &(dyn Fn() -> bool + Sync),
    ) -> Result<Vec<crate::traits::TaggedMatch>, crate::traits::DeadlineExceeded> {
        if expired() {
            return Err(crate::traits::DeadlineExceeded);
        }
        let Some(passes) = plan.passes() else {
            return Ok(SetSimilaritySearch::probe_plan_tagged(self, plan));
        };
        assert_eq!(
            passes.len(),
            self.reps.len(),
            "QueryPlan pass count does not match this index's repetitions"
        );
        let q = plan.query();
        let mut out = Vec::new();
        let mut stats = QueryStats::default();
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        for ((pass, rep), keys) in self.reps.iter().enumerate().zip(passes) {
            if pass > 0 && expired() {
                return Err(crate::traits::DeadlineExceeded);
            }
            probe_pass_keys(
                rep,
                pass as u32,
                keys,
                &mut seen,
                &mut stats,
                &mut |pass, step, id| {
                    if let Some(hit) = self.verified(q, id) {
                        out.push(crate::traits::TaggedMatch { pass, step, hit });
                    }
                    true
                },
            );
        }
        Ok(out)
    }

    fn search_batch(&self, queries: &[SparseVec]) -> Vec<Vec<Match>> {
        self.search_batch_threads(queries, self.query_threads)
    }

    fn search_batch_best(&self, queries: &[SparseVec]) -> Vec<Option<Match>> {
        self.search_batch_best_threads(queries, self.query_threads)
    }

    /// Infallible delegation to [`LsfIndex::insert_set`] — the LSF index is
    /// mutable, per its `supports_mutation` contract.
    fn insert(
        &mut self,
        set: SparseVec,
    ) -> Result<crate::traits::SetId, crate::traits::MutationError> {
        Ok(self.insert_set(set))
    }

    /// Infallible delegation to [`LsfIndex::remove_set`].
    fn remove(&mut self, id: crate::traits::SetId) -> Result<bool, crate::traits::MutationError> {
        Ok(self.remove_set(id))
    }

    fn supports_mutation(&self) -> bool {
        true
    }

    /// Genuine accounting — see [`LsfIndex::memory_stats`].
    fn memory_stats(&self) -> MemoryStats {
        LsfIndex::memory_stats(self)
    }

    fn threshold(&self) -> f64 {
        self.verify_threshold
    }

    /// Live sets only — tombstoned slots no longer count (see
    /// [`LsfIndex::slot_count`] for the total).
    fn len(&self) -> usize {
        self.live
    }
}

// --- persistence -----------------------------------------------------------
//
// The index is deterministic given its hash-function draws, so its payload
// is plain data: scheme calibration, profile, vectors, the `alive` bitmap
// and watermark counters, and per repetition the level-hash coefficients,
// interner tables, and both posting segments. Byte layout is specified in
// `docs/PERSISTENCE.md` §4; the container framing lives in
// [`crate::persist`].

impl<S: ThresholdScheme + PersistScheme> LsfIndex<S> {
    /// Appends this index's complete state to `w` as the kind-1 payload of
    /// `docs/PERSISTENCE.md` §4, encoded for container format `version`:
    /// under v2 the base segments persist as compressed postings (sorted
    /// keys + byte offsets + the delta/varint arena, verbatim); under v1
    /// they are expanded to the legacy uncompressed bucket-map layout. The
    /// delta segments use the bucket-map layout in both versions. Public
    /// because the wrapper indexes in `skewsearch-baselines` embed this
    /// payload after their own fields; most callers want [`Persist::save`]
    /// instead.
    pub fn write_payload(&self, w: &mut Writer, version: u32) {
        w.put_u32(S::SCHEME_TAG);
        self.scheme.encode_scheme(w);
        w.put_f64_slice(self.profile.ps());
        w.put_f64(self.verify_threshold);
        w.put_u64(self.node_budget as u64);
        w.put_u64(self.query_threads as u64);
        w.put_u64(self.mutation_buffer as u64);
        w.put_u64(self.compactions);
        w.put_u64(self.base_len as u64);
        w.put_u64(self.pending as u64);
        w.put_u64(self.build_stats.repetitions as u64);
        w.put_u64(self.build_stats.total_filters as u64);
        w.put_u64(self.build_stats.distinct_buckets as u64);
        w.put_u64(self.build_stats.max_bucket as u64);
        w.put_u64(self.build_stats.truncated_vectors as u64);
        w.put_u64(self.build_stats.depth_capped_vectors as u64);
        // Vectors: one offset table plus one flat dimension stream.
        w.put_u64(self.vectors.len() as u64);
        let mut offsets: Vec<u64> = Vec::with_capacity(self.vectors.len() + 1);
        offsets.push(0);
        let mut total = 0u64;
        for v in &self.vectors {
            total += v.dims().len() as u64;
            offsets.push(total);
        }
        w.put_u64_slice(&offsets);
        let mut flat: Vec<u32> = Vec::with_capacity(total as usize);
        for v in &self.vectors {
            flat.extend_from_slice(v.dims());
        }
        w.put_u32_slice(&flat);
        w.put_bitmap(&self.alive);
        w.put_u64(self.reps.len() as u64);
        for rep in &self.reps {
            let levels = rep.hashers.levels();
            w.put_u64(levels.len() as u64);
            for level in levels {
                let (a1, a2, b) = level.coefficients();
                w.put_u128(a1);
                w.put_u128(a2);
                w.put_u128(b);
            }
            w.put_u64_slice(&rep.interner.to_words());
            if version >= 2 {
                write_postings(w, &rep.base);
            } else {
                write_postings_as_bucket_map(w, &rep.base);
            }
            write_bucket_map(w, &rep.delta);
        }
    }

    /// Decodes an index from a payload written by
    /// [`LsfIndex::write_payload`] for container format `version` (v1 base
    /// segments are re-encoded to compressed postings on the way in),
    /// validating every structural invariant the query path relies on
    /// (offset tables monotone, ids in range and ascending, varint streams
    /// well-formed, hasher stacks exactly `depth_bound` deep, delta ids
    /// past the base watermark). Never panics: corrupt bytes yield a
    /// [`PersistError`]. Most callers want [`Persist::load`] instead.
    pub fn read_payload(r: &mut Reader<'_>, version: u32) -> Result<Self, PersistError> {
        let tag = r.get_u32()?;
        if tag != S::SCHEME_TAG {
            return Err(PersistError::Malformed(
                "scheme tag does not match the requested scheme type",
            ));
        }
        let scheme = S::decode_scheme(r)?;
        let ps = r.get_f64_vec()?;
        let profile = BernoulliProfile::new(ps)
            .map_err(|_| PersistError::Malformed("profile probabilities out of range"))?;
        let verify_threshold = r.get_f64()?;
        if !(0.0..=1.0).contains(&verify_threshold) {
            return Err(PersistError::Malformed("verify threshold out of [0,1]"));
        }
        let node_budget = r.get_u64()? as usize;
        let query_threads = r.get_u64()? as usize;
        let mutation_buffer = r.get_u64()? as usize;
        let compactions = r.get_u64()?;
        let base_len = r.get_u64()? as usize;
        let pending = r.get_u64()? as usize;
        let build_stats = BuildStats {
            repetitions: r.get_u64()? as usize,
            total_filters: r.get_u64()? as usize,
            distinct_buckets: r.get_u64()? as usize,
            max_bucket: r.get_u64()? as usize,
            truncated_vectors: r.get_u64()? as usize,
            depth_capped_vectors: r.get_u64()? as usize,
        };
        let n = r.get_u64()? as usize;
        if n > u32::MAX as usize {
            return Err(PersistError::Malformed("slot count exceeds u32 id space"));
        }
        let offsets = r.get_u64_vec()?;
        let flat = r.get_u32_vec()?;
        if offsets.len() != n.checked_add(1).ok_or(PersistError::Truncated)?
            || offsets.first().copied() != Some(0)
            || offsets.last().copied() != Some(flat.len() as u64)
            || offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err(PersistError::Malformed("vector offset table inconsistent"));
        }
        let mut vectors: Vec<SparseVec> = Vec::with_capacity(n);
        for i in 0..n {
            let dims = flat
                .get(offsets[i] as usize..offsets[i + 1] as usize)
                .ok_or(PersistError::Malformed("vector offset table inconsistent"))?;
            if dims.windows(2).any(|w| w[0] >= w[1]) {
                return Err(PersistError::Malformed(
                    "vector dimensions not strictly ascending",
                ));
            }
            vectors.push(SparseVec::from_sorted(dims.to_vec()));
        }
        let alive = r.get_bitmap()?;
        if alive.len() != n {
            return Err(PersistError::Malformed("liveness bitmap length mismatch"));
        }
        if base_len > n {
            return Err(PersistError::Malformed("base watermark past slot count"));
        }
        let live = alive.iter().filter(|a| **a).count();
        let rep_count = r.get_u64()?;
        let mut reps: Vec<Repetition> = Vec::new();
        for _ in 0..rep_count {
            let level_count = r.get_u64()?;
            if level_count != scheme.depth_bound() as u64 {
                return Err(PersistError::Malformed(
                    "hasher stack depth does not match the scheme's depth bound",
                ));
            }
            let mut levels = Vec::new();
            for _ in 0..level_count {
                let a1 = r.get_u128()?;
                let a2 = r.get_u128()?;
                let b = r.get_u128()?;
                levels.push(skewsearch_hashing::LevelHasher::from_coefficients(
                    a1, a2, b,
                ));
            }
            let words = r.get_u64_vec()?;
            let interner = TabulationU128::from_words(&words).ok_or(PersistError::Malformed(
                "interner table word count mismatch",
            ))?;
            let base = if version >= 2 {
                read_postings(r, n, 0)?
            } else {
                compress_bucket_map(&read_bucket_map(r, n, 0)?)
            };
            let delta = read_bucket_map(r, n, base_len as u32)?;
            reps.push(Repetition {
                hashers: PathHasherStack::from_levels(levels),
                interner,
                base,
                delta,
            });
        }
        Ok(Self {
            profile,
            vectors,
            scheme,
            reps,
            verify_threshold,
            node_budget,
            query_threads,
            build_stats,
            base_len,
            alive,
            live,
            pending,
            mutation_buffer,
            compactions,
        })
    }
}

impl<S: ThresholdScheme + PersistScheme> Persist for LsfIndex<S> {
    fn save(&self, path: &std::path::Path) -> Result<(), PersistError> {
        // Resolve the write version once: the payload encoding and the
        // container header must agree.
        let version = effective_write_version();
        let mut w = Writer::new();
        self.write_payload(&mut w, version);
        write_container_versioned(path, kind::LSF, &w.into_payload(), version)
    }

    fn load(path: &std::path::Path) -> Result<Self, PersistError> {
        let (payload, version) = read_container_versioned(path, kind::LSF)?;
        let mut r = Reader::new(&payload);
        let index = Self::read_payload(&mut r, version)?;
        if !r.is_empty() {
            return Err(PersistError::Malformed(
                "trailing bytes after index payload",
            ));
        }
        Ok(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::CorrelatedScheme;
    use rand::rngs::StdRng;
    use skewsearch_datagen::{correlated_query, Dataset};

    fn small_setup() -> (Dataset, BernoulliProfile, StdRng) {
        let profile = BernoulliProfile::two_block(600, 0.2, 0.02).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let ds = Dataset::generate(&profile, 300, &mut rng);
        (ds, profile, rng)
    }

    fn build_correlated(
        ds: &Dataset,
        profile: &BernoulliProfile,
        alpha: f64,
        reps: usize,
        rng: &mut StdRng,
    ) -> LsfIndex<CorrelatedScheme> {
        let scheme = CorrelatedScheme::new(alpha, ds.n(), profile);
        LsfIndex::build(
            ds.vectors().to_vec(),
            profile.clone(),
            scheme,
            alpha / 1.3,
            IndexOptions {
                repetitions: Repetitions::Fixed(reps),
                ..IndexOptions::default()
            },
            rng,
        )
    }

    #[test]
    fn repetitions_resolve() {
        assert_eq!(Repetitions::Fixed(5).resolve(10), 5);
        assert_eq!(Repetitions::Fixed(0).resolve(10), 1);
        let auto = Repetitions::Auto { factor: 1.0 }.resolve(1000);
        assert_eq!(auto, (1000f64).ln().ceil() as usize);
    }

    #[test]
    fn finds_planted_correlated_vector() {
        let (ds, profile, mut rng) = small_setup();
        let alpha = 0.8;
        let index = build_correlated(&ds, &profile, alpha, 8, &mut rng);
        let mut found = 0;
        let trials = 40;
        for t in 0..trials {
            let target = t % ds.n();
            let q = correlated_query(ds.vector(target), &profile, alpha, &mut rng);
            if let Some(m) = index.search(&q) {
                // Any hit must clear the threshold; usually it's the target.
                assert!(m.similarity >= index.threshold());
                if m.id == target {
                    found += 1;
                }
            }
        }
        assert!(found >= trials * 3 / 4, "found {found}/{trials}");
    }

    #[test]
    fn search_never_returns_below_threshold() {
        let (ds, profile, mut rng) = small_setup();
        let index = build_correlated(&ds, &profile, 0.7, 4, &mut rng);
        let sampler = skewsearch_datagen::VectorSampler::new(&profile);
        for _ in 0..30 {
            let q = sampler.sample(&mut rng);
            if let Some(m) = index.search(&q) {
                assert!(m.similarity >= index.threshold());
            }
        }
    }

    #[test]
    fn search_all_is_deduplicated_and_verified() {
        let (ds, profile, mut rng) = small_setup();
        let alpha = 0.85;
        let index = build_correlated(&ds, &profile, alpha, 8, &mut rng);
        let q = correlated_query(ds.vector(7), &profile, alpha, &mut rng);
        let all = index.search_all(&q);
        let mut ids: Vec<usize> = all.iter().map(|m| m.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate ids in search_all");
        for m in &all {
            assert!(m.similarity >= index.threshold());
        }
    }

    #[test]
    fn build_stats_are_populated() {
        let (ds, profile, mut rng) = small_setup();
        let index = build_correlated(&ds, &profile, 0.7, 3, &mut rng);
        let st = index.build_stats();
        assert_eq!(st.repetitions, 3);
        assert!(st.total_filters > 0);
        assert!(st.distinct_buckets > 0);
        assert!(st.max_bucket >= 1);
        assert!(st.avg_filters_per_vector(ds.n()) > 0.0);
    }

    #[test]
    fn query_stats_track_probing() {
        let (ds, profile, mut rng) = small_setup();
        let alpha = 0.8;
        let index = build_correlated(&ds, &profile, alpha, 6, &mut rng);
        let q = correlated_query(ds.vector(3), &profile, alpha, &mut rng);
        let (hit, stats) = index.search_with_stats(&q);
        assert!(stats.repetitions_probed >= 1);
        assert!(stats.filters > 0);
        if hit.is_some() {
            assert!(stats.verified >= 1);
            // Early exit: should not have probed every repetition unless the
            // hit came late.
            assert!(stats.repetitions_probed <= 6);
        }
    }

    #[test]
    fn distinct_candidates_contains_search_hits() {
        let (ds, profile, mut rng) = small_setup();
        let alpha = 0.85;
        let index = build_correlated(&ds, &profile, alpha, 6, &mut rng);
        let q = correlated_query(ds.vector(11), &profile, alpha, &mut rng);
        let (cands, _) = index.distinct_candidates(&q);
        if let Some(m) = index.search(&q) {
            assert!(cands.contains(&(m.id as u32)));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let profile = BernoulliProfile::two_block(400, 0.2, 0.02).unwrap();
        let mut rng1 = StdRng::seed_from_u64(99);
        let ds1 = Dataset::generate(&profile, 150, &mut rng1);
        let idx1 = build_correlated(&ds1, &profile, 0.8, 4, &mut rng1);
        let mut rng2 = StdRng::seed_from_u64(99);
        let ds2 = Dataset::generate(&profile, 150, &mut rng2);
        let idx2 = build_correlated(&ds2, &profile, 0.8, 4, &mut rng2);
        let q = correlated_query(ds1.vector(0), &profile, 0.8, &mut rng1);
        let (c1, s1) = idx1.distinct_candidates(&q);
        let (c2, s2) = idx2.distinct_candidates(&q);
        assert_eq!(c1, c2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn parallel_build_is_identical_to_sequential() {
        let profile = BernoulliProfile::two_block(500, 0.2, 0.02).unwrap();
        let mut rng = StdRng::seed_from_u64(777);
        let ds = Dataset::generate(&profile, 120, &mut rng);
        let build = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(31337);
            let scheme = CorrelatedScheme::new(0.8, ds.n(), &profile);
            LsfIndex::build(
                ds.vectors().to_vec(),
                profile.clone(),
                scheme,
                0.8 / 1.3,
                IndexOptions {
                    repetitions: Repetitions::Fixed(3),
                    build_threads: threads,
                    ..IndexOptions::default()
                },
                &mut rng,
            )
        };
        let seq = build(1);
        for threads in [2, 4, 7] {
            let par = build(threads);
            // Identical stats and identical probing behaviour on queries.
            assert_eq!(
                seq.build_stats().total_filters,
                par.build_stats().total_filters,
                "threads={threads}"
            );
            assert_eq!(
                seq.build_stats().distinct_buckets,
                par.build_stats().distinct_buckets
            );
            let mut rng = StdRng::seed_from_u64(1);
            for t in 0..10 {
                let q = correlated_query(ds.vector(t), &profile, 0.8, &mut rng);
                assert_eq!(
                    seq.distinct_candidates(&q).0,
                    par.distinct_candidates(&q).0,
                    "threads={threads} query={t}"
                );
            }
        }
    }

    #[test]
    fn planned_probe_is_byte_identical_to_fused_search() {
        let (ds, profile, mut rng) = small_setup();
        let alpha = 0.8;
        let index = build_correlated(&ds, &profile, alpha, 7, &mut rng);
        for t in 0..15 {
            let q = correlated_query(ds.vector(t * 13 % ds.n()), &profile, alpha, &mut rng);
            let plan = index.plan_query(&q);
            assert_eq!(plan.pass_count(), index.repetition_count());
            assert_eq!(
                SetSimilaritySearch::probe_plan_tagged(&index, &plan),
                index.search_all_tagged(&q),
                "query {t}"
            );
            assert_eq!(index.probe_plan(&plan), index.search_all(&q));
            assert_eq!(
                index.probe_plan_first_tagged(&plan),
                index.search_first_tagged(&q)
            );
        }
        // Degenerate: the empty query plans to empty key lists and finds
        // nothing, exactly like the fused path.
        let plan = index.plan_query(&SparseVec::empty());
        assert_eq!(plan.pass_count(), index.repetition_count());
        assert_eq!(plan.key_count(), 0);
        assert!(index.probe_plan(&plan).is_empty());
    }

    #[test]
    fn unplanned_plan_falls_back_to_fused_probe() {
        let (ds, profile, mut rng) = small_setup();
        let index = build_correlated(&ds, &profile, 0.8, 4, &mut rng);
        let q = correlated_query(ds.vector(5), &profile, 0.8, &mut rng);
        let plan = crate::plan::QueryPlan::unplanned(q.clone());
        assert_eq!(
            SetSimilaritySearch::probe_plan_tagged(&index, &plan),
            index.search_all_tagged(&q)
        );
    }

    #[test]
    #[should_panic(expected = "pass count")]
    fn foreign_plan_pass_count_mismatch_panics() {
        let (ds, profile, mut rng) = small_setup();
        let index = build_correlated(&ds, &profile, 0.8, 4, &mut rng);
        let plan = crate::plan::QueryPlan::from_passes(SparseVec::empty(), vec![vec![]; 3]);
        let _ = SetSimilaritySearch::probe_plan_tagged(&index, &plan);
    }

    #[test]
    fn sliced_plan_drives_pass_slice_shards() {
        // A pass-slice shard's probe of plan.slice_passes(range) equals its
        // own fused search — the cross-machine ByRepetition fan-out shape.
        let (ds, profile, mut rng) = small_setup();
        let index = build_correlated(&ds, &profile, 0.8, 6, &mut rng);
        let q = correlated_query(ds.vector(9), &profile, 0.8, &mut rng);
        let plan = index.plan_query(&q);
        for range in [0..2, 2..6, 0..6, 3..3] {
            let shard = index.shard_of_passes(range.clone());
            let sliced = plan.slice_passes(range.clone());
            assert_eq!(
                SetSimilaritySearch::probe_plan_tagged(&shard, &sliced),
                shard.search_all_tagged(&q),
                "range {range:?}"
            );
        }
    }

    #[test]
    fn dataset_shards_share_the_parents_plan() {
        // shard_of_ids keeps hash stacks and interners, so plan_query is
        // shard-invariant — the contract the broadcast layer rests on.
        let (ds, profile, mut rng) = small_setup();
        let index = build_correlated(&ds, &profile, 0.8, 5, &mut rng);
        let q = correlated_query(ds.vector(2), &profile, 0.8, &mut rng);
        let plan = index.plan_query(&q);
        let shard = index.shard_of_ids(&[0, 3, 5, 17, 44]);
        assert_eq!(shard.plan_query(&q), plan);
        assert_eq!(
            SetSimilaritySearch::probe_plan_tagged(&shard, &plan),
            shard.search_all_tagged(&q)
        );
    }

    /// Builds over `vectors` with a dedicated RNG consumed *only* by the
    /// build and a scheme calibrated to a fixed `n` — so two builds with the
    /// same seed draw identical hash stacks and interners no matter how many
    /// vectors each indexes. This is the rebuild oracle the mutation tests
    /// compare against.
    fn build_fixed(
        vectors: Vec<SparseVec>,
        profile: &BernoulliProfile,
        mutation_buffer: usize,
    ) -> LsfIndex<CorrelatedScheme> {
        let scheme = CorrelatedScheme::new(0.8, 300, profile);
        let mut rng = StdRng::seed_from_u64(0xB111D);
        LsfIndex::build(
            vectors,
            profile.clone(),
            scheme,
            0.8 / 1.3,
            IndexOptions {
                repetitions: Repetitions::Fixed(5),
                mutation_buffer,
                ..IndexOptions::default()
            },
            &mut rng,
        )
    }

    /// A mutated index and the from-scratch build over its survivors answer
    /// byte-identically (under the monotone slot renumbering), and explicit
    /// compaction at any point never changes an answer.
    #[test]
    fn mutated_index_answers_like_a_rebuild() {
        let (ds, profile, _rng) = small_setup();
        let mut index = build_fixed(ds.vectors()[..200].to_vec(), &profile, usize::MAX);
        // Interleave: remove some build-time sets, insert some fresh ones.
        for id in [3usize, 50, 51, 199, 0] {
            assert!(index.remove_set(id));
        }
        for t in 200..230 {
            assert_eq!(index.insert_set(ds.vector(t).clone()), t);
        }
        assert!(index.remove_set(210));
        assert_eq!(index.len(), 200 - 5 + 30 - 1);
        assert_eq!(index.slot_count(), 230);

        // Survivors in ascending slot order + slot → compact-id map.
        let survivors: Vec<usize> = (0..index.slot_count())
            .filter(|&s| index.is_live(s))
            .collect();
        // Slot `s` always holds `ds.vector(s)`: build took 0..200, inserts
        // appended 200..230 in order.
        let vectors: Vec<SparseVec> = survivors.iter().map(|&s| ds.vector(s).clone()).collect();
        let rebuilt = build_fixed(vectors, &profile, usize::MAX);
        let compact_of: FxHashMap<usize, usize> =
            survivors.iter().enumerate().map(|(c, &s)| (s, c)).collect();

        let check = |index: &LsfIndex<CorrelatedScheme>| {
            let mut rng = StdRng::seed_from_u64(7);
            for t in 0..25 {
                let q = correlated_query(ds.vector(t * 11 % 230), &profile, 0.8, &mut rng);
                let got: Vec<(usize, f64)> = index
                    .search_all(&q)
                    .into_iter()
                    .map(|m| (compact_of[&m.id], m.similarity))
                    .collect();
                let want: Vec<(usize, f64)> = rebuilt
                    .search_all(&q)
                    .into_iter()
                    .map(|m| (m.id, m.similarity))
                    .collect();
                assert_eq!(got, want, "query {t}");
                assert_eq!(
                    index.search(&q).map(|m| (compact_of[&m.id], m.similarity)),
                    rebuilt.search(&q).map(|m| (m.id, m.similarity)),
                );
            }
        };
        check(&index);
        // Compaction is answer-invariant.
        assert_eq!(index.compaction_count(), 0);
        index.compact();
        assert_eq!(index.compaction_count(), 1);
        assert_eq!(index.pending_mutations(), 0);
        check(&index);
    }

    #[test]
    fn tombstoned_ids_are_probed_but_never_answered() {
        let (ds, profile, _rng) = small_setup();
        let mut index = build_fixed(ds.vectors()[..150].to_vec(), &profile, usize::MAX);
        // Self-queries: every live vector finds itself at similarity 1.
        let victim = 42usize;
        let q = ds.vector(victim).clone();
        assert!(index
            .search_all(&q)
            .iter()
            .any(|m| m.id == victim && m.similarity == 1.0));
        assert!(index.remove_set(victim));
        // Still a candidate (its bucket entries linger until compaction) …
        let (cands, _) = index.distinct_candidates(&q);
        assert!(cands.contains(&(victim as u32)), "stale probe expected");
        // … but never an answer, from any surface.
        assert!(index.search_all(&q).iter().all(|m| m.id != victim));
        assert!(index.search(&q).map(|m| m.id) != Some(victim));
        let plan = index.plan_query(&q);
        assert!(index.probe_plan(&plan).iter().all(|m| m.id != victim));
        // After compaction the stale bucket entries are gone too.
        index.compact();
        let (cands, _) = index.distinct_candidates(&q);
        assert!(!cands.contains(&(victim as u32)), "compaction prunes");
        assert!(index.search_all(&q).iter().all(|m| m.id != victim));
    }

    #[test]
    fn compact_on_clean_index_is_a_noop() {
        let (ds, profile, _rng) = small_setup();
        let mut index = build_fixed(ds.vectors()[..100].to_vec(), &profile, usize::MAX);
        index.compact();
        assert_eq!(index.compaction_count(), 0, "empty delta: no compaction");
        // A mutate-compact cycle, then another explicit compact: also a noop.
        let id = index.insert_set(ds.vector(100).clone());
        assert!(index.remove_set(id));
        index.compact();
        assert_eq!(index.compaction_count(), 1);
        index.compact();
        assert_eq!(index.compaction_count(), 1, "nothing pending: no-op");
    }

    #[test]
    fn auto_compaction_triggers_at_the_buffer_threshold() {
        let (ds, profile, _rng) = small_setup();
        let mut index = build_fixed(ds.vectors()[..100].to_vec(), &profile, 4);
        assert_eq!(index.pending_mutations(), 0);
        index.insert_set(ds.vector(100).clone());
        index.insert_set(ds.vector(101).clone());
        assert!(index.remove_set(3));
        assert_eq!(index.pending_mutations(), 3);
        assert_eq!(index.compaction_count(), 0);
        index.insert_set(ds.vector(102).clone());
        assert_eq!(index.compaction_count(), 1, "4th mutation compacts");
        assert_eq!(index.pending_mutations(), 0);
        assert!(!index.is_live(3));
        assert!(index.is_live(102));
    }

    #[test]
    fn mutation_bookkeeping_and_degenerate_removes() {
        let (ds, profile, _rng) = small_setup();
        let mut index = build_fixed(ds.vectors()[..50].to_vec(), &profile, usize::MAX);
        assert!(index.supports_mutation());
        // Ids are dense, monotone, and never reused.
        assert_eq!(index.insert_set(ds.vector(50).clone()), 50);
        assert!(index.remove_set(50));
        assert_eq!(index.insert_set(ds.vector(50).clone()), 51, "no reuse");
        // Removal is idempotent; unassigned ids are refused.
        assert!(!index.remove_set(50), "already dead");
        assert!(!index.remove_set(999), "never assigned");
        assert_eq!(index.len(), 51);
        assert_eq!(index.slot_count(), 52);
        // Trait-level mutation is infallible here.
        let via_trait = SetSimilaritySearch::insert(&mut index, ds.vector(51).clone());
        assert_eq!(via_trait, Ok(52));
        assert_eq!(SetSimilaritySearch::remove(&mut index, 52), Ok(true));
        assert_eq!(SetSimilaritySearch::remove(&mut index, 52), Ok(false));
        // Emptying the index entirely leaves a valid structure.
        for id in 0..index.slot_count() {
            let _ = index.remove_set(id);
        }
        assert_eq!(index.len(), 0);
        assert!(index.is_empty());
        let q = ds.vector(0).clone();
        assert!(index.search(&q).is_none());
        assert!(index.search_all(&q).is_empty());
        index.compact();
        assert!(index.search_all(&q).is_empty());
    }

    #[test]
    fn empty_index_finds_nothing() {
        let profile = BernoulliProfile::uniform(50, 0.2).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let scheme = CorrelatedScheme::new(0.5, 2, &profile);
        let index: LsfIndex<CorrelatedScheme> = LsfIndex::build(
            vec![],
            profile.clone(),
            scheme,
            0.5,
            IndexOptions::default(),
            &mut rng,
        );
        assert!(index.is_empty());
        let q = SparseVec::from_unsorted(vec![1, 2, 3]);
        assert!(index.search(&q).is_none());
        assert!(index.search_all(&q).is_empty());
    }
}
