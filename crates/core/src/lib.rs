//! # skewsearch-core
//!
//! The primary contribution of "Set Similarity Search for Skewed Data"
//! (McCauley, Mikkelsen, Pagh — PODS 2018): a recursive, data-dependent
//! locality-sensitive **filtering** structure whose path sampling adapts to
//! the item-frequency distribution `D[p₁, …, p_d]`.
//!
//! ## The construction (§3)
//!
//! Every vector `x` is mapped to a set of filters `F(x)`; each filter is a
//! *path* — an ordered sequence of dimensions on which `x` is 1. Paths grow
//! recursively: a set bit `i` extends path `v` at depth `j` iff
//! `h_{j+1}(v ∘ i) < s(x, j, i)` for a fixed stack of pairwise-independent
//! hashes, sampling **without replacement**, and a path completes (becomes a
//! filter) as soon as the product of its item probabilities drops to `1/n` —
//! the skew-adaptive stopping rule. An inverted index over filters turns a
//! query into a short list of candidates that are verified exactly under
//! Braun-Blanquet similarity.
//!
//! ## Entry points
//!
//! * [`CorrelatedIndex`] — Theorem 1: queries `q ~ D_α(x)`; thresholds
//!   biased by `p̂_i = p_i(1−α) + α`, verification at `α/1.3`.
//! * [`AdversarialIndex`] — Theorem 2: arbitrary queries at threshold `b₁`;
//!   thresholds `1/(b₁|x| − j)`, per-query cost exponent `ρ(q)`.
//! * [`SplitIndex`] — the §1 motivating example (frequent/rare split with
//!   balanced exponents), kept as an instructive comparison point.
//! * [`LsfIndex`] + [`ThresholdScheme`] — the generic engine, also used by
//!   the Chosen Path baseline in `skewsearch-baselines`.
//!
//! All structures implement [`SetSimilaritySearch`], including its batch
//! interface: [`SetSimilaritySearch::search_batch`] answers a query slice on
//! a work-stealing thread pool ([`batch`]) with results identical to the
//! sequential loop. Queries run an explicit enumerate→probe→verify pipeline:
//! [`SetSimilaritySearch::plan_query`] derives a reusable [`QueryPlan`]
//! ([`plan`]) that [`SetSimilaritySearch::probe_plan`] consumes with bucket
//! lookups only — byte-identical to the fused search. Any structure can
//! additionally be partitioned across shards by [`ShardedIndex`] ([`shard`])
//! — by repetition slice or by hash-partitioned dataset, where one plan per
//! query broadcasts to all shards — with answers byte-identical to the
//! unsharded structure. Built indexes are durable: [`persist::Persist`]
//! saves any of them to a versioned, checksummed container file and loads
//! it back with byte-identical answers, and [`ShardedIndex::save`] writes a
//! whole deployment (manifest + per-shard files) to a directory.
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use skewsearch_core::{CorrelatedIndex, CorrelatedParams, SetSimilaritySearch};
//! use skewsearch_datagen::{correlated_query, BernoulliProfile, Dataset};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let profile = BernoulliProfile::two_block(2000, 0.2, 0.02).unwrap();
//! let data = Dataset::generate(&profile, 500, &mut rng);
//! let index = CorrelatedIndex::build(
//!     &data,
//!     &profile,
//!     CorrelatedParams::new(0.8).unwrap(),
//!     &mut rng,
//! );
//! let q = correlated_query(data.vector(42), &profile, 0.8, &mut rng);
//! if let Some(hit) = index.search(&q) {
//!     assert!(hit.similarity >= index.threshold());
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adversarial;
pub mod batch;
pub mod correlated;
pub mod engine;
pub mod index;
pub mod persist;
pub mod plan;
pub mod postings;
pub mod scheme;
pub mod shard;
pub mod split;
pub mod traits;

pub use adversarial::{AdversarialIndex, AdversarialParams};
pub use batch::{
    batch_map, batch_map_chunked, batch_map_distinct, distinct_slots, resolve_threads,
};
pub use correlated::{CorrelatedIndex, CorrelatedParams, ModelDiagnostics};
pub use engine::{
    enumerate_filters, enumerate_filters_with, enumeration_count, EnumContext, EnumStats,
    DEFAULT_NODE_BUDGET,
};
pub use index::{BuildStats, IndexOptions, LsfIndex, QueryStats, Repetitions};
pub use persist::{Persist, PersistError, PersistScheme, ShardManifest, ShardManifestEntry};
pub use plan::QueryPlan;
pub use postings::{CompressedPostings, PostingsCursor, PostingsEncoder, PostingsError};
pub use scheme::{AdversarialScheme, ChosenPathScheme, CorrelatedScheme, ThresholdScheme};
pub use shard::{set_partition_key, ShardStrategy, Shardable, ShardedIndex};
pub use split::{
    balance_split, balance_split_normalized, balanced_exponents, SplitIndex, SplitParams,
};
pub use traits::{
    DeadlineExceeded, Match, MemoryStats, MutationError, SetId, SetSimilaritySearch, TaggedMatch,
};
