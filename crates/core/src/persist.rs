//! Versioned, checksummed on-disk persistence for built indexes.
//!
//! Every structure in this workspace is deterministic given its hash-function
//! draws, so an index is fully described by plain data: the scheme
//! calibration, the per-repetition hash stacks and key interners, the
//! inverted-index postings, the indexed vectors, and the mutation-log state
//! (`alive` bitmap + segment watermark). This module defines a hand-rolled
//! little-endian container for exactly that data — no serialization
//! dependency, matching the workspace's vendored-deps discipline — so a
//! built index can be saved once and reloaded with **byte-identical
//! answers** on every surface (`tests/persist_equivalence.rs` pins this for
//! all five index types, sharded and mutated included).
//!
//! ## Container layout
//!
//! Every `.skx` file is one 32-byte header followed by one payload:
//!
//! ```text
//! offset  size  field
//! 0       8     magic "SKSWIDX1"
//! 8       4     format version (u32 LE, currently 2)
//! 12      4     container kind (u32 LE, see `kind::*`)
//! 16      8     payload length in bytes (u64 LE)
//! 24      8     FNV-1a-64 checksum of the payload (u64 LE)
//! 32      —     payload
//! ```
//!
//! The header is 32 bytes and every variable-length field in the payload is
//! length-prefixed and padded to an 8-byte boundary, so all hot arrays are
//! 8-byte-aligned relative to the file start. Today `load` is a single read
//! into owned buffers; the alignment discipline is what will later allow an
//! `mmap`-based zero-copy loader without a format change. The full byte-level
//! specification (precise enough to write an independent decoder) lives in
//! `docs/PERSISTENCE.md`.
//!
//! Corrupt or mismatched files are rejected with a typed [`PersistError`] —
//! never a panic (skewcheck's `no-panic-in-lib` contract holds here like
//! everywhere else in the library).
//!
//! ## Entry points
//!
//! * [`Persist`] — `save(&Path)` / `load(&Path)` on [`crate::LsfIndex`],
//!   [`crate::CorrelatedIndex`], [`crate::AdversarialIndex`], and (in
//!   `skewsearch-baselines`) `ChosenPathIndex` and `MinHashLsh`.
//! * [`crate::ShardedIndex::save`] / [`crate::ShardedIndex::load`] — a
//!   directory of per-shard `.skx` files plus a [`ShardManifest`] recording
//!   strategy, shard count, and the local→global id maps, restoring a
//!   sharded deployment byte-identically.
//! * [`Writer`] / [`Reader`] — the little-endian encoding primitives, public
//!   so sibling crates (baselines) encode their own section types.

use crate::shard::ShardStrategy;
use skewsearch_hashing::FxHashMap;
use std::path::Path;

/// File magic: the first 8 bytes of every container written by this module.
pub const MAGIC: [u8; 8] = *b"SKSWIDX1";

/// Current container format version. Bump on any layout change; readers
/// reject files whose version they do not understand (see
/// `docs/PERSISTENCE.md` for the version-bump policy).
///
/// Version history: **1** — uncompressed bucket maps everywhere; **2** —
/// LSF base segments persist as compressed postings (sorted keys + byte
/// offsets + delta/varint arena, `docs/PERSISTENCE.md` §format-v2). Readers
/// accept `1..=FORMAT_VERSION`; writers emit [`FORMAT_VERSION`] unless the
/// `SKEWSEARCH_FORCE_V1` environment toggle pins the legacy layout.
pub const FORMAT_VERSION: u32 = 2;

/// The version new containers are written at: [`FORMAT_VERSION`], unless
/// the environment variable `SKEWSEARCH_FORCE_V1=1` forces the legacy v1
/// layout (used by CI to keep the v1 write/read fallback exercised).
pub fn effective_write_version() -> u32 {
    match std::env::var("SKEWSEARCH_FORCE_V1") {
        Ok(v) if v == "1" => 1,
        _ => FORMAT_VERSION,
    }
}

/// Container kinds: what structure a `.skx` file holds. A reader checks the
/// kind before touching the payload, so loading a file as the wrong type
/// fails with [`PersistError::WrongKind`] instead of misinterpreting bytes.
pub mod kind {
    /// A bare [`crate::LsfIndex`] (any scheme; the scheme tag is inside the
    /// payload).
    pub const LSF: u32 = 1;
    /// A [`crate::CorrelatedIndex`] (α + diagnostics, then the LSF payload).
    pub const CORRELATED: u32 = 2;
    /// An [`crate::AdversarialIndex`] (the LSF payload verbatim).
    pub const ADVERSARIAL: u32 = 3;
    /// A Chosen Path index (`b₂`, then the LSF payload).
    pub const CHOSEN_PATH: u32 = 4;
    /// A MinHash LSH index (its own section type: band hash coefficients +
    /// band buckets).
    pub const MINHASH: u32 = 5;
    /// A [`crate::ShardedIndex`] manifest (strategy, owner table, per-shard
    /// files + id maps — see [`super::ShardManifest`]).
    pub const MANIFEST: u32 = 6;
}

/// Why a save or load failed. Every decode path returns one of these —
/// corrupt, truncated, or mismatched files are *reported*, never panicked
/// on.
///
/// # Examples
///
/// ```
/// use skewsearch_core::persist::{Persist, PersistError};
/// use skewsearch_core::{CorrelatedIndex};
///
/// // Loading a file that is not a container fails with BadMagic.
/// let path = std::env::temp_dir().join(format!(
///     "skewsearch_doctest_badmagic_{}.skx",
///     std::process::id()
/// ));
/// std::fs::write(&path, b"definitely not an index container, just prose").unwrap();
/// let err = match CorrelatedIndex::load(&path) {
///     Err(e) => e,
///     Ok(_) => unreachable!("garbage must not load"),
/// };
/// assert!(matches!(err, PersistError::BadMagic));
/// std::fs::remove_file(&path).unwrap();
/// ```
#[derive(Debug)]
pub enum PersistError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — it is not a container at all
    /// (or the first bytes were corrupted).
    BadMagic,
    /// The container's format version is not one this reader understands.
    UnsupportedVersion(u32),
    /// The container holds a different structure than the caller asked for
    /// (e.g. loading a MinHash file as a `CorrelatedIndex`).
    WrongKind {
        /// The kind the caller expected (see [`kind`]).
        expected: u32,
        /// The kind recorded in the file header.
        found: u32,
    },
    /// The payload bytes do not hash to the checksum in the header: the file
    /// was corrupted after it was written.
    ChecksumMismatch,
    /// The file ended before the declared payload did, or a field ran past
    /// the end of the payload.
    Truncated,
    /// The payload decoded structurally but violated a format invariant
    /// (the message names which one).
    Malformed(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a skewsearch index file (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported format version {v} (this reader understands 1..={FORMAT_VERSION})"
                )
            }
            PersistError::WrongKind { expected, found } => {
                write!(
                    f,
                    "container kind mismatch: expected {expected}, file holds {found}"
                )
            }
            PersistError::ChecksumMismatch => write!(f, "payload checksum mismatch (corrupt file)"),
            PersistError::Truncated => write!(f, "file truncated: a field ran past the payload"),
            PersistError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// FNV-1a 64-bit hash of `bytes` — the container checksum.
///
/// Chosen because it is trivially specified (two constants, one loop), has
/// no dependencies, and detects the corruption classes that matter for a
/// local index file (truncation, bit flips, torn writes). It is **not** a
/// cryptographic integrity check; see `docs/PERSISTENCE.md`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Little-endian payload encoder. All multi-byte values are little-endian;
/// every array is length-prefixed (`u64` element count) and padded so the
/// next field starts on an 8-byte boundary.
///
/// # Examples
///
/// ```
/// use skewsearch_core::persist::{Reader, Writer};
///
/// let mut w = Writer::new();
/// w.put_u64(42);
/// w.put_f64(0.8);
/// w.put_u32_slice(&[1, 2, 3]);
/// let payload = w.into_payload();
/// assert_eq!(payload.len() % 8, 0);
///
/// let mut r = Reader::new(&payload);
/// assert_eq!(r.get_u64().unwrap(), 42);
/// assert_eq!(r.get_f64().unwrap(), 0.8);
/// assert_eq!(r.get_u32_vec().unwrap(), vec![1, 2, 3]);
/// assert!(r.is_empty());
/// ```
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty payload buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the payload bytes (always a multiple
    /// of 8 long, given the padding discipline).
    pub fn into_payload(self) -> Vec<u8> {
        self.buf
    }

    fn pad_to_8(&mut self) {
        while self.buf.len() % 8 != 0 {
            self.buf.push(0);
        }
    }

    /// Writes a `u32` followed by 4 padding bytes (fields stay 8-aligned).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self.buf.extend_from_slice(&[0u8; 4]);
    }

    /// Writes a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u128` as two `u64` words, low word first.
    pub fn put_u128(&mut self, v: u128) {
        self.put_u64(v as u64);
        self.put_u64((v >> 64) as u64);
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a length-prefixed `u64` array.
    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u64(v);
        }
    }

    /// Writes a length-prefixed `f64` array (bit patterns).
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Writes a length-prefixed `u32` array, padded to an 8-byte boundary.
    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        self.pad_to_8();
    }

    /// Writes a length-prefixed raw byte array, padded to an 8-byte
    /// boundary — the encoding of the compressed postings arena.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
        self.pad_to_8();
    }

    /// Writes a length-prefixed UTF-8 string, padded to an 8-byte boundary.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
        self.pad_to_8();
    }

    /// Writes a `bool` slice packed into `u64` words, LSB-first: bit `i` of
    /// the packed stream is element `i` (word `i / 64`, bit `i % 64`). The
    /// element count is written first, then the word array — the encoding of
    /// the `alive` tombstone bitmap.
    pub fn put_bitmap(&mut self, bits: &[bool]) {
        self.put_u64(bits.len() as u64);
        let words = bits.len().div_ceil(64);
        self.put_u64(words as u64);
        for w in 0..words {
            let mut word = 0u64;
            for b in 0..64 {
                let i = w * 64 + b;
                if i < bits.len() && bits[i] {
                    word |= 1u64 << b;
                }
            }
            self.put_u64(word);
        }
    }
}

/// Little-endian payload decoder: a cursor over a payload slice. Every read
/// is bounds-checked and returns [`PersistError::Truncated`] on overrun —
/// decoding never panics, whatever the bytes.
///
/// See [`Writer`] for the encoding rules and a round-trip example.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `payload`.
    pub fn new(payload: &'a [u8]) -> Self {
        Self {
            buf: payload,
            pos: 0,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// True iff the cursor has consumed the whole payload.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).ok_or(PersistError::Truncated)?;
        let slice = self.buf.get(self.pos..end).ok_or(PersistError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn skip_pad_to_8(&mut self) -> Result<(), PersistError> {
        let rem = self.pos % 8;
        if rem != 0 {
            self.take(8 - rem)?;
        }
        Ok(())
    }

    /// Reads a `u32` (and its 4 padding bytes).
    pub fn get_u32(&mut self) -> Result<u32, PersistError> {
        let bytes = self.take(8)?;
        let mut le = [0u8; 4];
        le.copy_from_slice(&bytes[..4]);
        Ok(u32::from_le_bytes(le))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, PersistError> {
        let bytes = self.take(8)?;
        let mut le = [0u8; 8];
        le.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(le))
    }

    /// Reads a `u128` (two `u64` words, low first).
    pub fn get_u128(&mut self) -> Result<u128, PersistError> {
        let lo = self.get_u64()?;
        let hi = self.get_u64()?;
        Ok(((hi as u128) << 64) | lo as u128)
    }

    /// Reads an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `u64` declared as a length/count, bounding it by the bytes
    /// actually remaining (`elem_size` bytes per element) so a corrupt count
    /// cannot trigger an enormous allocation.
    fn get_len(&mut self, elem_size: usize) -> Result<usize, PersistError> {
        let n = self.get_u64()?;
        let n: usize = n.try_into().map_err(|_| PersistError::Truncated)?;
        let need = n.checked_mul(elem_size).ok_or(PersistError::Truncated)?;
        if need > self.remaining() {
            return Err(PersistError::Truncated);
        }
        Ok(n)
    }

    /// Reads a length-prefixed `u64` array.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>, PersistError> {
        let n = self.get_len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_u64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `f64` array.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>, PersistError> {
        let n = self.get_len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed, 8-padded `u32` array.
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>, PersistError> {
        let n = self.get_len(4)?;
        let mut out = Vec::with_capacity(n);
        for chunk in self.take(n * 4)?.chunks_exact(4) {
            let mut le = [0u8; 4];
            le.copy_from_slice(chunk);
            out.push(u32::from_le_bytes(le));
        }
        self.skip_pad_to_8()?;
        Ok(out)
    }

    /// Reads a length-prefixed, 8-padded raw byte array written by
    /// [`Writer::put_bytes`].
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, PersistError> {
        let n = self.get_len(1)?;
        let out = self.take(n)?.to_vec();
        self.skip_pad_to_8()?;
        Ok(out)
    }

    /// Reads a length-prefixed, 8-padded UTF-8 string.
    pub fn get_string(&mut self) -> Result<String, PersistError> {
        let n = self.get_len(1)?;
        let bytes = self.take(n)?;
        let s = std::str::from_utf8(bytes)
            .map_err(|_| PersistError::Malformed("string field is not UTF-8"))?
            .to_owned();
        self.skip_pad_to_8()?;
        Ok(s)
    }

    /// Reads a packed bitmap written by [`Writer::put_bitmap`].
    pub fn get_bitmap(&mut self) -> Result<Vec<bool>, PersistError> {
        let bits = self.get_u64()?;
        let bits: usize = bits.try_into().map_err(|_| PersistError::Truncated)?;
        let words = self.get_len(8)?;
        if words != bits.div_ceil(64) {
            return Err(PersistError::Malformed("bitmap word count mismatch"));
        }
        let mut out = Vec::with_capacity(bits);
        for _ in 0..words {
            let word = self.get_u64()?;
            for b in 0..64 {
                if out.len() < bits {
                    out.push(word & (1u64 << b) != 0);
                }
            }
        }
        Ok(out)
    }
}

/// Encodes one inverted-index posting map as three aligned arrays: sorted
/// keys, a bucket offset table (`keys.len() + 1` entries into the id
/// stream), and the concatenated bucket ids. Sorting the keys makes the
/// encoding independent of the map's iteration order — and since probes
/// only ever `get` by key, rebuild insertion order is answer-invariant too.
/// Shared by the LSF repetitions and the MinHash band tables.
pub fn write_bucket_map(w: &mut Writer, map: &FxHashMap<u64, Vec<u32>>) {
    // lint:allow(nondeterministic-iter, the keys are collected and sorted before any byte is written — the encoding is independent of the map's iteration order)
    let mut keys: Vec<u64> = map.keys().copied().collect();
    keys.sort_unstable();
    let mut offsets: Vec<u64> = Vec::with_capacity(keys.len() + 1);
    offsets.push(0);
    let mut flat: Vec<u32> = Vec::new();
    for key in &keys {
        if let Some(bucket) = map.get(key) {
            flat.extend_from_slice(bucket);
        }
        offsets.push(flat.len() as u64);
    }
    w.put_u64_slice(&keys);
    w.put_u64_slice(&offsets);
    w.put_u32_slice(&flat);
}

/// Decodes a posting map written by [`write_bucket_map`], enforcing the
/// invariants the probe loops rely on: keys strictly ascending, the offset
/// table monotone and consistent with the id stream, and every bucket's ids
/// strictly ascending within `min_id..n_slots` (`min_id > 0` for LSF delta
/// segments, whose ids must all lie past the base-segment watermark).
pub fn read_bucket_map(
    r: &mut Reader<'_>,
    n_slots: usize,
    min_id: u32,
) -> Result<FxHashMap<u64, Vec<u32>>, PersistError> {
    let keys = r.get_u64_vec()?;
    let offsets = r.get_u64_vec()?;
    let flat = r.get_u32_vec()?;
    if keys.windows(2).any(|w| w[0] >= w[1]) {
        return Err(PersistError::Malformed(
            "bucket keys not strictly ascending",
        ));
    }
    if offsets.len() != keys.len() + 1
        || offsets.first().copied() != Some(0)
        || offsets.last().copied() != Some(flat.len() as u64)
        || offsets.windows(2).any(|w| w[0] > w[1])
    {
        return Err(PersistError::Malformed("bucket offset table inconsistent"));
    }
    let mut map: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    map.reserve(keys.len());
    for (i, &key) in keys.iter().enumerate() {
        let start = offsets[i] as usize;
        let end = offsets[i + 1] as usize;
        let bucket = flat
            .get(start..end)
            .ok_or(PersistError::Malformed("bucket offset table inconsistent"))?;
        if bucket.windows(2).any(|w| w[0] >= w[1]) {
            return Err(PersistError::Malformed("bucket ids not strictly ascending"));
        }
        if bucket
            .iter()
            .any(|&id| id < min_id || id as usize >= n_slots)
        {
            return Err(PersistError::Malformed("bucket id outside slot range"));
        }
        map.insert(key, bucket.to_vec());
    }
    Ok(map)
}

/// Writes one [`crate::postings::CompressedPostings`] as three aligned
/// fields: the sorted key array, the **byte**-offset table
/// (`keys.len() + 1` entries into the arena), and the delta+varint arena
/// itself, persisted verbatim — the format-v2 base-segment encoding
/// (`docs/PERSISTENCE.md` §format-v2). Contrast with [`write_bucket_map`],
/// whose offsets count *ids*, not bytes.
pub fn write_postings(w: &mut Writer, p: &crate::postings::CompressedPostings) {
    // lint:allow(nondeterministic-iter, CompressedPostings::keys is the sorted key array of the compressed encoding — a Vec accessor, not a hash map)
    w.put_u64_slice(p.keys());
    w.put_u64_slice(p.offsets());
    w.put_bytes(p.arena());
}

/// Decodes a posting map written by [`write_postings`], delegating every
/// structural check (key order, offset consistency, varint well-formedness,
/// strictly ascending ids in `min_id..n_slots`) to
/// [`crate::postings::CompressedPostings::from_parts`]. Corruption maps to
/// [`PersistError::Malformed`] naming the violated invariant.
pub fn read_postings(
    r: &mut Reader<'_>,
    n_slots: usize,
    min_id: u32,
) -> Result<crate::postings::CompressedPostings, PersistError> {
    use crate::postings::PostingsError;
    let keys = r.get_u64_vec()?;
    let offsets = r.get_u64_vec()?;
    let arena = r.get_bytes()?;
    crate::postings::CompressedPostings::from_parts(keys, offsets, arena, n_slots, min_id).map_err(
        |e| {
            PersistError::Malformed(match e {
                PostingsError::Truncated => "postings varint truncated mid-bucket",
                PostingsError::Overflow => "postings varint exceeds u32 range",
                PostingsError::NonMonotone => "postings bucket ids not strictly ascending",
                PostingsError::KeyOrder => "postings keys not strictly ascending",
                PostingsError::OffsetTable => "postings offset table inconsistent",
                PostingsError::IdOutOfRange => "postings id outside slot range",
            })
        },
    )
}

/// Writes a [`crate::postings::CompressedPostings`] in the **v1**
/// bucket-map layout (sorted keys, id-count offsets, flat id array) so a
/// current index can still produce files legacy readers accept — the
/// `SKEWSEARCH_FORCE_V1` write path.
pub fn write_postings_as_bucket_map(w: &mut Writer, p: &crate::postings::CompressedPostings) {
    let mut keys: Vec<u64> = Vec::with_capacity(p.bucket_count());
    let mut offsets: Vec<u64> = Vec::with_capacity(p.bucket_count() + 1);
    offsets.push(0);
    let mut flat: Vec<u32> = Vec::with_capacity(p.posting_count());
    for (key, cursor) in p.iter() {
        keys.push(key);
        flat.extend(cursor);
        offsets.push(flat.len() as u64);
    }
    w.put_u64_slice(&keys);
    w.put_u64_slice(&offsets);
    w.put_u32_slice(&flat);
}

/// Re-encodes a decoded v1 bucket map as compressed postings — the upgrade
/// half of the v1 read fallback. Infallible: [`read_bucket_map`] has
/// already enforced sorted keys and strictly ascending in-range ids, which
/// is exactly the encoder's input contract.
pub fn compress_bucket_map(map: &FxHashMap<u64, Vec<u32>>) -> crate::postings::CompressedPostings {
    // lint:allow(nondeterministic-iter, the keys are collected and sorted before any posting is encoded — the result is independent of the map's iteration order)
    let mut keys: Vec<u64> = map.keys().copied().collect();
    keys.sort_unstable();
    let mut enc = crate::postings::PostingsEncoder::new();
    for key in keys {
        if let Some(bucket) = map.get(&key) {
            for &id in bucket {
                enc.push(key, id);
            }
        }
    }
    enc.finish()
}

/// Writes a container file: header (magic, version, `kind`, length,
/// checksum) followed by `payload`. The write goes to a `.tmp` sibling first
/// and is renamed into place, so a crash mid-write never leaves a
/// half-written file at `path`.
///
/// Stamps [`effective_write_version`] — callers producing version-dependent
/// payloads (the LSF family) must encode for that same version; see
/// [`write_container_versioned`].
pub fn write_container(path: &Path, kind: u32, payload: &[u8]) -> Result<(), PersistError> {
    write_container_versioned(path, kind, payload, effective_write_version())
}

/// [`write_container`] with an explicit header version — the LSF save path
/// resolves [`effective_write_version`] once, encodes its payload for that
/// version, and stamps the same number here so header and payload can never
/// disagree.
pub fn write_container_versioned(
    path: &Path,
    kind: u32,
    payload: &[u8],
    version: u32,
) -> Result<(), PersistError> {
    let mut file = Vec::with_capacity(32 + payload.len());
    file.extend_from_slice(&MAGIC);
    file.extend_from_slice(&version.to_le_bytes());
    file.extend_from_slice(&kind.to_le_bytes());
    file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    file.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    file.extend_from_slice(payload);
    let tmp = path.with_extension("skx.tmp");
    std::fs::write(&tmp, &file)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads and validates a container file, returning its payload. Checks, in
/// order: magic, format version, container kind, declared payload length,
/// and the FNV-1a-64 checksum — each failure maps to its own
/// [`PersistError`] variant. Version-independent payloads (MinHash,
/// manifests) use this; version-dependent ones use
/// [`read_container_versioned`].
pub fn read_container(path: &Path, expected_kind: u32) -> Result<Vec<u8>, PersistError> {
    read_container_versioned(path, expected_kind).map(|(payload, _)| payload)
}

/// [`read_container`] that also returns the file's format version, so the
/// caller can pick the matching payload decoder. Accepts every version in
/// `1..=FORMAT_VERSION`; anything else is [`PersistError::UnsupportedVersion`].
pub fn read_container_versioned(
    path: &Path,
    expected_kind: u32,
) -> Result<(Vec<u8>, u32), PersistError> {
    let bytes = std::fs::read(path)?;
    let header = bytes.get(..32).ok_or(PersistError::Truncated)?;
    if header[..8] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let field_u32 = |off: usize| {
        let mut le = [0u8; 4];
        le.copy_from_slice(&header[off..off + 4]);
        u32::from_le_bytes(le)
    };
    let field_u64 = |off: usize| {
        let mut le = [0u8; 8];
        le.copy_from_slice(&header[off..off + 8]);
        u64::from_le_bytes(le)
    };
    let version = field_u32(8);
    if !(1..=FORMAT_VERSION).contains(&version) {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let found = field_u32(12);
    if found != expected_kind {
        return Err(PersistError::WrongKind {
            expected: expected_kind,
            found,
        });
    }
    let declared: usize = field_u64(16)
        .try_into()
        .map_err(|_| PersistError::Truncated)?;
    let payload = bytes.get(32..).ok_or(PersistError::Truncated)?;
    if payload.len() != declared {
        return Err(PersistError::Truncated);
    }
    if fnv1a64(payload) != field_u64(24) {
        return Err(PersistError::ChecksumMismatch);
    }
    Ok((payload.to_vec(), version))
}

/// A structure that can round-trip through one `.skx` container file.
///
/// The contract, pinned by `tests/persist_equivalence.rs`: for any built
/// (and possibly mutated) index, `save` then `load` yields an index whose
/// every answer surface — `search`, `search_all`, `search_all_tagged`,
/// `search_batch`, plans, joins — is **byte-identical** to the original's,
/// and which keeps mutating from exactly the original's mutation-log
/// watermark (same next id, same pending count, same compaction behavior).
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use skewsearch_core::persist::Persist;
/// use skewsearch_core::{CorrelatedIndex, CorrelatedParams, SetSimilaritySearch};
/// use skewsearch_datagen::{correlated_query, BernoulliProfile, Dataset};
///
/// let mut rng = StdRng::seed_from_u64(9);
/// let profile = BernoulliProfile::two_block(400, 0.2, 0.02).unwrap();
/// let data = Dataset::generate(&profile, 120, &mut rng);
/// let index = CorrelatedIndex::build(
///     &data,
///     &profile,
///     CorrelatedParams::new(0.8).unwrap(),
///     &mut rng,
/// );
///
/// let path = std::env::temp_dir().join(format!(
///     "skewsearch_doctest_persist_{}.skx",
///     std::process::id()
/// ));
/// index.save(&path).unwrap();
/// let restored = CorrelatedIndex::load(&path).unwrap();
/// std::fs::remove_file(&path).unwrap();
///
/// let q = correlated_query(data.vector(5), &profile, 0.8, &mut rng);
/// assert_eq!(restored.search_all(&q), index.search_all(&q));
/// assert_eq!(restored.threshold(), index.threshold());
/// ```
pub trait Persist: Sized {
    /// Writes the structure to one container file at `path` (atomically:
    /// temp file + rename).
    fn save(&self, path: &Path) -> Result<(), PersistError>;

    /// Reads the structure back from a file written by
    /// [`Persist::save`]. Fails with a typed [`PersistError`] on corrupt,
    /// truncated, or wrong-kind files.
    fn load(path: &Path) -> Result<Self, PersistError>;
}

/// A [`crate::ThresholdScheme`] that can round-trip its calibration through
/// a payload. Implemented by the three concrete schemes; [`crate::LsfIndex`]
/// is persistable exactly when its scheme is.
pub trait PersistScheme: Sized {
    /// Scheme tag written into the LSF payload (1 = adversarial,
    /// 2 = correlated, 3 = chosen path). Distinct per implementor, so a
    /// payload can never be decoded under the wrong scheme.
    const SCHEME_TAG: u32;

    /// Appends the scheme's calibration to `w`.
    fn encode_scheme(&self, w: &mut Writer);

    /// Decodes a calibration previously written by
    /// [`PersistScheme::encode_scheme`].
    fn decode_scheme(r: &mut Reader<'_>) -> Result<Self, PersistError>;
}

/// One shard's entry in a [`ShardManifest`]: where its container file lives
/// and how to lift its local answers back to global coordinates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardManifestEntry {
    /// File name of the shard's container, relative to the manifest's
    /// directory (e.g. `shard-0003.skx`).
    pub file: String,
    /// Added to the shard's pass tags (`ByRepetition` slices; 0 otherwise).
    pub pass_offset: u32,
    /// Local id → global id (`ByDataset`; `None` when ids are already
    /// global, i.e. under `ByRepetition`).
    pub id_map: Option<Vec<u32>>,
}

/// The manifest of a saved [`crate::ShardedIndex`]: everything the wrapper
/// needs beyond the shards themselves, written as the `manifest.skx`
/// container (kind [`kind::MANIFEST`]) in the deployment directory.
///
/// [`crate::ShardedIndex::save`] produces one; [`crate::ShardedIndex::load`]
/// consumes one and re-opens every referenced shard file, restoring answers
/// byte-identically — see the "restoring a sharded deployment" walkthrough
/// in `docs/PERSISTENCE.md`.
///
/// # Examples
///
/// ```
/// use skewsearch_core::persist::{ShardManifest, ShardManifestEntry};
/// use skewsearch_core::ShardStrategy;
///
/// let manifest = ShardManifest {
///     strategy: ShardStrategy::ByDataset,
///     threshold: 0.6,
///     len: 3,
///     next_id: 3,
///     plan_broadcast: true,
///     owner: vec![(0, 0), (1, 0), (0, 1)],
///     shards: vec![
///         ShardManifestEntry {
///             file: "shard-0000.skx".into(),
///             pass_offset: 0,
///             id_map: Some(vec![0, 2]),
///         },
///         ShardManifestEntry {
///             file: "shard-0001.skx".into(),
///             pass_offset: 0,
///             id_map: Some(vec![1]),
///         },
///     ],
/// };
/// // The encoding round-trips exactly.
/// let payload = manifest.encode();
/// let back = ShardManifest::decode(&payload).unwrap();
/// assert_eq!(back, manifest);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ShardManifest {
    /// The decomposition strategy the deployment was built with.
    pub strategy: ShardStrategy,
    /// The wrapper's verification threshold.
    pub threshold: f64,
    /// Live set count across shards.
    pub len: usize,
    /// The next global [`crate::SetId`] to assign (the mutation-log
    /// watermark of the wrapper itself).
    pub next_id: usize,
    /// Whether the enumerate-once plan broadcast is enabled.
    pub plan_broadcast: bool,
    /// Global id → `(shard, local id)` under `ByDataset`; empty under
    /// `ByRepetition`.
    pub owner: Vec<(u32, u32)>,
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardManifestEntry>,
}

impl ShardManifest {
    /// Encodes the manifest into a container payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u32(match self.strategy {
            ShardStrategy::ByRepetition => 1,
            ShardStrategy::ByDataset => 2,
        });
        w.put_f64(self.threshold);
        w.put_u64(self.len as u64);
        w.put_u64(self.next_id as u64);
        w.put_u32(self.plan_broadcast as u32);
        w.put_u64(self.owner.len() as u64);
        for &(shard, local) in &self.owner {
            w.buf.extend_from_slice(&shard.to_le_bytes());
            w.buf.extend_from_slice(&local.to_le_bytes());
        }
        w.put_u64(self.shards.len() as u64);
        for entry in &self.shards {
            w.put_u32(entry.pass_offset);
            match &entry.id_map {
                Some(map) => {
                    w.put_u32(1);
                    w.put_u32_slice(map);
                }
                None => w.put_u32(0),
            }
            w.put_str(&entry.file);
        }
        w.into_payload()
    }

    /// Decodes a manifest payload written by [`ShardManifest::encode`].
    pub fn decode(payload: &[u8]) -> Result<Self, PersistError> {
        let mut r = Reader::new(payload);
        let strategy = match r.get_u32()? {
            1 => ShardStrategy::ByRepetition,
            2 => ShardStrategy::ByDataset,
            _ => return Err(PersistError::Malformed("unknown shard strategy tag")),
        };
        let threshold = r.get_f64()?;
        let len = r.get_u64()? as usize;
        let next_id = r.get_u64()? as usize;
        let plan_broadcast = match r.get_u32()? {
            0 => false,
            1 => true,
            _ => return Err(PersistError::Malformed("plan_broadcast flag not 0/1")),
        };
        let owners = r.get_len(8)?;
        let mut owner = Vec::with_capacity(owners);
        for _ in 0..owners {
            let packed = r.get_u64()?;
            owner.push((packed as u32, (packed >> 32) as u32));
        }
        let shard_count = r.get_len(16)?;
        let mut shards = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let pass_offset = r.get_u32()?;
            let id_map = match r.get_u32()? {
                0 => None,
                1 => Some(r.get_u32_vec()?),
                _ => return Err(PersistError::Malformed("id-map flag not 0/1")),
            };
            let file = r.get_string()?;
            shards.push(ShardManifestEntry {
                file,
                pass_offset,
                id_map,
            });
        }
        if !r.is_empty() {
            return Err(PersistError::Malformed("trailing bytes after manifest"));
        }
        Ok(Self {
            strategy,
            threshold,
            len,
            next_id,
            plan_broadcast,
            owner,
            shards,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static UNIQUE: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "skewsearch_persist_unit_{tag}_{}_{}.skx",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u32(7);
        w.put_u64(u64::MAX);
        w.put_u128(0x0123_4567_89AB_CDEF_0011_2233_4455_6677);
        w.put_f64(-0.25);
        w.put_u64_slice(&[1, 2, 3]);
        w.put_f64_slice(&[0.5, f64::INFINITY]);
        w.put_u32_slice(&[9, 8, 7, 6, 5]);
        w.put_str("héllo");
        w.put_bitmap(&[true, false, true]);
        let payload = w.into_payload();
        assert_eq!(payload.len() % 8, 0);

        let mut r = Reader::new(&payload);
        assert_eq!(r.get_u32().unwrap(), 7);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(
            r.get_u128().unwrap(),
            0x0123_4567_89AB_CDEF_0011_2233_4455_6677
        );
        assert_eq!(r.get_f64().unwrap(), -0.25);
        assert_eq!(r.get_u64_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_f64_vec().unwrap(), vec![0.5, f64::INFINITY]);
        assert_eq!(r.get_u32_vec().unwrap(), vec![9, 8, 7, 6, 5]);
        assert_eq!(r.get_string().unwrap(), "héllo");
        assert_eq!(r.get_bitmap().unwrap(), vec![true, false, true]);
        assert!(r.is_empty());
    }

    #[test]
    fn bitmaps_round_trip_across_word_boundaries() {
        for n in [0usize, 1, 63, 64, 65, 128, 200] {
            let bits: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            let mut w = Writer::new();
            w.put_bitmap(&bits);
            let payload = w.into_payload();
            let mut r = Reader::new(&payload);
            assert_eq!(r.get_bitmap().unwrap(), bits, "n={n}");
            assert!(r.is_empty());
        }
    }

    #[test]
    fn reader_rejects_overruns_without_panicking() {
        let mut w = Writer::new();
        w.put_u64(3);
        let payload = w.into_payload();
        let mut r = Reader::new(&payload);
        assert_eq!(r.get_u64().unwrap(), 3);
        assert!(matches!(r.get_u64(), Err(PersistError::Truncated)));
        // A declared length far past the buffer must not allocate or panic.
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let payload = w.into_payload();
        let mut r = Reader::new(&payload);
        assert!(matches!(r.get_u64_vec(), Err(PersistError::Truncated)));
    }

    #[test]
    fn container_header_is_validated_field_by_field() {
        let path = temp_path("header");
        write_container(&path, kind::LSF, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();

        // Round trip.
        assert_eq!(
            read_container(&path, kind::LSF).unwrap(),
            vec![1, 2, 3, 4, 5, 6, 7, 8]
        );
        // Wrong kind.
        assert!(matches!(
            read_container(&path, kind::MINHASH),
            Err(PersistError::WrongKind {
                expected: kind::MINHASH,
                found: kind::LSF
            })
        ));

        let original = std::fs::read(&path).unwrap();
        // Bad magic.
        let mut bad = original.clone();
        bad[0] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_container(&path, kind::LSF),
            Err(PersistError::BadMagic)
        ));
        // Unsupported version.
        let mut bad = original.clone();
        bad[8] = 99;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_container(&path, kind::LSF),
            Err(PersistError::UnsupportedVersion(99))
        ));
        // Truncated payload.
        std::fs::write(&path, &original[..original.len() - 1]).unwrap();
        assert!(matches!(
            read_container(&path, kind::LSF),
            Err(PersistError::Truncated)
        ));
        // Header shorter than 32 bytes.
        std::fs::write(&path, &original[..16]).unwrap();
        assert!(matches!(
            read_container(&path, kind::LSF),
            Err(PersistError::Truncated)
        ));
        // Flipped payload byte fails the checksum.
        let mut bad = original.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_container(&path, kind::LSF),
            Err(PersistError::ChecksumMismatch)
        ));
        // Missing file is an Io error.
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            read_container(&path, kind::LSF),
            Err(PersistError::Io(_))
        ));
    }

    #[test]
    fn fnv_vector() {
        // Standard FNV-1a-64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn manifest_round_trips_and_rejects_bad_tags() {
        let manifest = ShardManifest {
            strategy: ShardStrategy::ByRepetition,
            threshold: 0.42,
            len: 10,
            next_id: 12,
            plan_broadcast: false,
            owner: vec![],
            shards: vec![ShardManifestEntry {
                file: "shard-0000.skx".into(),
                pass_offset: 3,
                id_map: None,
            }],
        };
        let payload = manifest.encode();
        assert_eq!(ShardManifest::decode(&payload).unwrap(), manifest);
        // Corrupting the strategy tag yields Malformed, not a panic.
        let mut bad = payload.clone();
        bad[0] = 9;
        assert!(matches!(
            ShardManifest::decode(&bad),
            Err(PersistError::Malformed(_))
        ));
        // Trailing garbage is rejected.
        let mut long = payload.clone();
        long.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            ShardManifest::decode(&long),
            Err(PersistError::Malformed(_))
        ));
    }
}
