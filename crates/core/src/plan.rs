//! The reusable query plan: stage 1 of the enumerate→probe→verify pipeline.
//!
//! The paper's query procedure (§3) has two separable halves: *enumerate*
//! the query's filter set `F(q)` under the preprocessing hash stacks, then
//! *probe* the inverted index with those filters (LSF-Join distributes
//! exactly this split by shipping precomputed filter keys to partitions).
//! Our fused probe loop interleaves the two per repetition, which is optimal
//! for a single index — but a sharded index that partitions the *dataset*
//! keeps the same hash stacks in every shard, so enumeration is
//! shard-invariant and fusing it into the per-shard probe re-pays the
//! enumeration cost once per shard (`N×` per query).
//!
//! [`QueryPlan`] materializes stage 1 as plain owned data: the query vector
//! plus, per probe pass (LSF repetition / MinHash band), the interned 64-bit
//! bucket keys in enumeration order. A plan is produced once by
//! [`SetSimilaritySearch::plan_query`](crate::SetSimilaritySearch::plan_query)
//! and consumed any number of times by
//! [`SetSimilaritySearch::probe_plan`](crate::SetSimilaritySearch::probe_plan)
//! — by the index that planned it, or by any dataset shard of that index.
//! Because it is nothing but a `SparseVec` and a `Vec<Vec<u64>>`, a future
//! network fan-out can serialize it verbatim and ship `(plan, shard)` pairs
//! instead of re-enumerating remotely.

use skewsearch_sets::SparseVec;

/// A precomputed probe plan for one query: the owned query vector plus the
/// interned bucket keys to probe, per pass, in enumeration order.
///
/// Two flavors exist:
///
/// * **planned** ([`QueryPlan::from_passes`]) — carries one key list per
///   probe pass; a consuming index probes buckets only, never re-running
///   filter enumeration;
/// * **unplanned** ([`QueryPlan::unplanned`]) — carries only the query;
///   consumers fall back to their fused enumerate-and-probe path. This is
///   the degradation mode for structures without a bucketed probe (brute
///   force, prefix filtering).
///
/// The defining contract, pinned by `tests/plan_equivalence.rs` for every
/// index type in the workspace: probing a plan yields **byte-identical**
/// results to the fused search it was split out of,
/// `index.probe_plan(&index.plan_query(q)) == index.search_all(q)`.
///
/// Plans are additionally **mutation-invariant**: a plan depends only on
/// the index's hash stacks, key interners, and scheme — never on its
/// buckets or vectors — and incremental `insert`/`remove` touch none of
/// those, so `plan_query(q)` returns the same plan before and after any
/// mutation sequence, and a plan derived earlier stays valid (probing it
/// simply sees the index's current contents). This is what keeps the
/// sharded enumerate-once broadcast correct for mutated shards
/// (`tests/enumeration_count.rs` pins the post-insert broadcast).
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use skewsearch_core::{CorrelatedIndex, CorrelatedParams, SetSimilaritySearch};
/// use skewsearch_datagen::{correlated_query, BernoulliProfile, Dataset};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let profile = BernoulliProfile::two_block(800, 0.2, 0.02).unwrap();
/// let data = Dataset::generate(&profile, 200, &mut rng);
/// let index = CorrelatedIndex::build(
///     &data,
///     &profile,
///     CorrelatedParams::new(0.8).unwrap(),
///     &mut rng,
/// );
/// let q = correlated_query(data.vector(3), &profile, 0.8, &mut rng);
/// // Stage 1 once …
/// let plan = index.plan_query(&q);
/// assert!(plan.is_planned());
/// // … stages 2+3 as often as needed, byte-identical to the fused path.
/// assert_eq!(index.probe_plan(&plan), index.search_all(&q));
/// assert_eq!(index.probe_plan(&plan), index.probe_plan(&plan));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryPlan {
    query: SparseVec,
    /// `passes[p]` = interned bucket keys of pass `p`, in enumeration order.
    /// `None` marks an unplanned plan (fused fallback).
    passes: Option<Vec<Vec<u64>>>,
}

impl QueryPlan {
    /// A plan carrying only the query: consumers fall back to their fused
    /// enumerate-and-probe path. This is what the trait-level default
    /// [`plan_query`](crate::SetSimilaritySearch::plan_query) produces.
    pub fn unplanned(query: SparseVec) -> Self {
        Self {
            query,
            passes: None,
        }
    }

    /// A fully planned query: `passes[p]` holds pass `p`'s interned bucket
    /// keys in enumeration order. The pass count must equal the consuming
    /// index's pass count (its repetitions / bands) — planned probes check
    /// this and panic on a mismatch rather than silently misprobe.
    pub fn from_passes(query: SparseVec, passes: Vec<Vec<u64>>) -> Self {
        Self {
            query,
            passes: Some(passes),
        }
    }

    /// The query this plan was built for (verification always needs it).
    pub fn query(&self) -> &SparseVec {
        &self.query
    }

    /// The per-pass key lists, or `None` for an unplanned plan.
    pub fn passes(&self) -> Option<&[Vec<u64>]> {
        self.passes.as_deref()
    }

    /// True iff this plan carries precomputed keys (stage 2 can skip
    /// enumeration entirely).
    pub fn is_planned(&self) -> bool {
        self.passes.is_some()
    }

    /// Number of planned passes (0 for unplanned plans).
    pub fn pass_count(&self) -> usize {
        self.passes.as_ref().map_or(0, Vec::len)
    }

    /// Total planned keys across passes (0 for unplanned plans) — the
    /// enumeration work this plan saves each additional consumer.
    pub fn key_count(&self) -> usize {
        self.passes
            .as_ref()
            .map_or(0, |p| p.iter().map(Vec::len).sum())
    }

    /// Restricts a planned plan to the pass slice `range` — the plan a
    /// pass-slice shard ([`Shardable::shard_of_passes`]) consumes, since its
    /// pass `r` is the parent's pass `range.start + r`. Slicing an unplanned
    /// plan yields an unplanned plan.
    ///
    /// [`Shardable::shard_of_passes`]: crate::shard::Shardable::shard_of_passes
    ///
    /// # Panics
    /// Panics if `range` exceeds [`QueryPlan::pass_count`] on a planned plan.
    pub fn slice_passes(&self, range: std::ops::Range<usize>) -> Self {
        Self {
            query: self.query.clone(),
            passes: self.passes.as_ref().map(|p| p[range].to_vec()),
        }
    }

    /// Decomposes into `(query, passes)` — the plain owned data a
    /// serialization layer would ship.
    pub fn into_parts(self) -> (SparseVec, Option<Vec<Vec<u64>>>) {
        (self.query, self.passes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unplanned_plans_carry_only_the_query() {
        let q = SparseVec::from_unsorted(vec![3, 1, 4]);
        let plan = QueryPlan::unplanned(q.clone());
        assert!(!plan.is_planned());
        assert_eq!(plan.query(), &q);
        assert_eq!(plan.passes(), None);
        assert_eq!(plan.pass_count(), 0);
        assert_eq!(plan.key_count(), 0);
        let sliced = plan.slice_passes(0..0);
        assert!(!sliced.is_planned());
        assert_eq!(sliced.query(), &q);
    }

    #[test]
    fn planned_plans_expose_passes_and_counts() {
        let q = SparseVec::from_unsorted(vec![7]);
        let plan = QueryPlan::from_passes(q.clone(), vec![vec![1, 2], vec![], vec![3]]);
        assert!(plan.is_planned());
        assert_eq!(plan.pass_count(), 3);
        assert_eq!(plan.key_count(), 3);
        assert_eq!(plan.passes().unwrap()[0], vec![1, 2]);
        let (query, passes) = plan.clone().into_parts();
        assert_eq!(query, q);
        assert_eq!(passes.unwrap().len(), 3);
    }

    #[test]
    fn slice_passes_restricts_planned_plans() {
        let q = SparseVec::empty();
        let plan = QueryPlan::from_passes(q, vec![vec![1], vec![2], vec![3], vec![4]]);
        let mid = plan.slice_passes(1..3);
        assert_eq!(mid.pass_count(), 2);
        assert_eq!(mid.passes().unwrap(), &[vec![2], vec![3]]);
        assert_eq!(plan.slice_passes(4..4).pass_count(), 0);
    }

    #[test]
    #[should_panic]
    fn slice_past_end_of_planned_plan_panics() {
        let plan = QueryPlan::from_passes(SparseVec::empty(), vec![vec![1]]);
        let _ = plan.slice_passes(0..2);
    }
}
