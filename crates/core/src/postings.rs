//! Compressed posting storage: delta + varint bucket arenas.
//!
//! The base segment of every [`crate::LsfIndex`] repetition is an inverted
//! index `interned 64-bit bucket key → ascending set ids`. Storing each
//! bucket as its own heap `Vec<u32>` inside a hash map costs, per bucket,
//! a map entry (key + `Vec` header + load-factor slack) plus 4 bytes per
//! posting — at millions of indexed sets the per-repetition bucket maps
//! dominate resident memory. This module replaces that representation for
//! the *immutable* base segment with three flat arrays:
//!
//! * `keys` — the bucket keys, strictly ascending (looked up by binary
//!   search);
//! * `offsets` — `keys.len() + 1` byte offsets into the arena, so bucket
//!   `i` occupies `arena[offsets[i]..offsets[i + 1]]`;
//! * `arena` — one contiguous byte stream holding every bucket,
//!   delta-encoded (first id absolute, then successive gaps, which are
//!   strictly positive because ids ascend) and LEB128-varint-compressed.
//!
//! Under skew the popular buckets are long and their id gaps small, so most
//! postings compress to one or two bytes — the bytes-per-posting currency
//! that LSF-Join (Rashtchian–Sharma–Woodruff 2020) identifies as the
//! communication and memory cost of filtering at scale. The probe hot path
//! decodes lazily through [`PostingsCursor`], a zero-allocation streaming
//! iterator feeding the index's single verification site unchanged.
//!
//! Encoding happens at exactly two sites — [`crate::LsfIndex`] build and
//! compaction — through [`PostingsEncoder`]. Decoding untrusted bytes (the
//! format-v2 persistence payload) goes through
//! [`CompressedPostings::from_parts`], which validates every structural
//! invariant and reports violations as a typed [`PostingsError`]; nothing in
//! this module panics on malformed input (skewcheck's `no-panic-in-lib`
//! contract).

/// Why a compressed postings payload was rejected by
/// [`CompressedPostings::from_parts`]. Every variant is a structural
/// invariant violation in untrusted bytes — reported, never panicked on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PostingsError {
    /// A varint ran past the end of its bucket's arena block.
    Truncated,
    /// A varint encoded a value outside `u32` range (more than 5 bytes, or
    /// a fifth byte with bits past bit 31), or a decoded id overflowed.
    Overflow,
    /// A gap of zero: posting ids within a bucket must strictly ascend.
    NonMonotone,
    /// Bucket keys are not strictly ascending.
    KeyOrder,
    /// The offset table is inconsistent (wrong length, wrong endpoints, or
    /// not strictly ascending — empty buckets are never encoded).
    OffsetTable,
    /// A decoded id lies outside the permitted `min_id..n_slots` range.
    IdOutOfRange,
}

impl std::fmt::Display for PostingsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PostingsError::Truncated => write!(f, "varint truncated mid-bucket"),
            PostingsError::Overflow => write!(f, "varint exceeds u32 range"),
            PostingsError::NonMonotone => write!(f, "zero gap: bucket ids not strictly ascending"),
            PostingsError::KeyOrder => write!(f, "bucket keys not strictly ascending"),
            PostingsError::OffsetTable => write!(f, "bucket offset table inconsistent"),
            PostingsError::IdOutOfRange => write!(f, "posting id outside the slot range"),
        }
    }
}

impl std::error::Error for PostingsError {}

/// Appends `v` to `arena` as a LEB128 varint (7 payload bits per byte,
/// high bit = continuation; at most 5 bytes for a `u32`).
#[inline]
fn put_varint(arena: &mut Vec<u8>, mut v: u32) {
    while v >= 0x80 {
        arena.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    arena.push(v as u8);
}

/// Strict varint decode for untrusted bytes: the value and the bytes
/// consumed, or a typed error on truncation / `u32` overflow.
#[inline]
fn get_varint_strict(bytes: &[u8]) -> Result<(u32, usize), PostingsError> {
    let mut value = 0u32;
    let mut shift = 0u32;
    for (i, &b) in bytes.iter().enumerate().take(5) {
        if shift == 28 && (b & !0x0F) != 0 && (b & 0x80) == 0 {
            // Fifth byte carries bits past bit 31 — the value is not a u32.
            return Err(PostingsError::Overflow);
        }
        value |= ((b & 0x7F) as u32) << shift;
        if b & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    if bytes.len() >= 5 {
        // Five continuation bytes: whatever follows, the value needs > 32 bits.
        return Err(PostingsError::Overflow);
    }
    Err(PostingsError::Truncated)
}

/// An immutable, compressed posting map: sorted bucket keys, a byte-offset
/// table, and one flat delta+varint arena (see the module docs for the
/// layout). The base-segment storage of every [`crate::LsfIndex`]
/// repetition.
///
/// Lookups ([`CompressedPostings::get`]) binary-search the key array and
/// return a streaming [`PostingsCursor`] over the bucket's block; no bucket
/// is ever materialized. Construction goes through [`PostingsEncoder`]
/// (trusted, build/compact) or [`CompressedPostings::from_parts`]
/// (untrusted, persistence).
///
/// # Examples
///
/// ```
/// use skewsearch_core::postings::PostingsEncoder;
///
/// let mut enc = PostingsEncoder::new();
/// for id in [3u32, 4, 1000] {
///     enc.push(7, id);
/// }
/// enc.push(9, 12);
/// let postings = enc.finish();
/// assert_eq!(postings.bucket_count(), 2);
/// assert_eq!(postings.posting_count(), 4);
/// let ids: Vec<u32> = postings.get(7).into_iter().flatten().collect();
/// assert_eq!(ids, vec![3, 4, 1000]);
/// assert!(postings.get(8).is_none());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompressedPostings {
    /// Bucket keys, strictly ascending.
    keys: Vec<u64>,
    /// `keys.len() + 1` byte offsets into `arena`; bucket `i` is
    /// `arena[offsets[i] as usize..offsets[i + 1] as usize]`.
    offsets: Vec<u64>,
    /// The delta+varint byte stream holding every bucket.
    arena: Vec<u8>,
    /// Total postings across buckets (counted at encode/validate time).
    postings: usize,
    /// Largest single bucket (counted at encode/validate time).
    max_bucket: usize,
}

impl CompressedPostings {
    /// The empty posting map (no keys, no arena).
    pub fn new() -> Self {
        Self {
            keys: Vec::new(),
            offsets: vec![0],
            arena: Vec::new(),
            postings: 0,
            max_bucket: 0,
        }
    }

    /// Reassembles a posting map from its persisted parts, validating every
    /// invariant the probe path relies on: keys strictly ascending, the
    /// offset table consistent with the arena, every bucket a well-formed
    /// varint stream with strictly positive gaps, and every decoded id in
    /// `min_id..n_slots`. Corrupt bytes yield a typed [`PostingsError`],
    /// never a panic. The format-v2 read path of `docs/PERSISTENCE.md` §4.
    pub fn from_parts(
        keys: Vec<u64>,
        offsets: Vec<u64>,
        arena: Vec<u8>,
        n_slots: usize,
        min_id: u32,
    ) -> Result<Self, PostingsError> {
        if keys.windows(2).any(|w| w[0] >= w[1]) {
            return Err(PostingsError::KeyOrder);
        }
        let expected_len = keys
            .len()
            .checked_add(1)
            .ok_or(PostingsError::OffsetTable)?;
        if offsets.len() != expected_len
            || offsets.first().copied() != Some(0)
            || offsets.last().copied() != Some(arena.len() as u64)
            || offsets.windows(2).any(|w| w[0] >= w[1])
        {
            return Err(PostingsError::OffsetTable);
        }
        let mut postings = 0usize;
        let mut max_bucket = 0usize;
        for i in 0..keys.len() {
            let start = offsets[i] as usize;
            let end = offsets[i + 1] as usize;
            let block = arena.get(start..end).ok_or(PostingsError::OffsetTable)?;
            let mut pos = 0usize;
            let mut prev = 0u32;
            let mut first = true;
            let mut len = 0usize;
            while pos < block.len() {
                let tail = block.get(pos..).ok_or(PostingsError::Truncated)?;
                let (v, consumed) = get_varint_strict(tail)?;
                pos += consumed;
                let id = if first {
                    first = false;
                    v
                } else {
                    if v == 0 {
                        return Err(PostingsError::NonMonotone);
                    }
                    prev.checked_add(v).ok_or(PostingsError::Overflow)?
                };
                if id < min_id || id as usize >= n_slots {
                    return Err(PostingsError::IdOutOfRange);
                }
                prev = id;
                len += 1;
            }
            postings += len;
            max_bucket = max_bucket.max(len);
        }
        Ok(Self {
            keys,
            offsets,
            arena,
            postings,
            max_bucket,
        })
    }

    /// The streaming cursor over `key`'s bucket, or `None` when the key has
    /// no bucket. The probe hot path: one binary search, zero allocation.
    #[inline]
    pub fn get(&self, key: u64) -> Option<PostingsCursor<'_>> {
        let i = self.keys.binary_search(&key).ok()?;
        let start = *self.offsets.get(i)? as usize;
        let end = *self.offsets.get(i + 1)? as usize;
        Some(PostingsCursor::new(self.arena.get(start..end)?))
    }

    /// Iterates buckets in ascending key order as `(key, cursor)` pairs —
    /// the traversal compaction, dataset sharding, and the v1 persistence
    /// fallback use.
    pub fn iter(&self) -> impl Iterator<Item = (u64, PostingsCursor<'_>)> + '_ {
        self.keys.iter().enumerate().map(move |(i, &key)| {
            let start = self.offsets[i] as usize;
            let end = self.offsets[i + 1] as usize;
            let block = self.arena.get(start..end).unwrap_or(&[]);
            (key, PostingsCursor::new(block))
        })
    }

    /// Number of buckets (distinct keys).
    pub fn bucket_count(&self) -> usize {
        self.keys.len()
    }

    /// Total postings across all buckets.
    pub fn posting_count(&self) -> usize {
        self.postings
    }

    /// Size of the largest bucket.
    pub fn max_bucket_len(&self) -> usize {
        self.max_bucket
    }

    /// True iff no bucket is stored.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Heap bytes resident in this structure (keys + offsets + arena,
    /// by capacity) — the posting-side term of
    /// [`crate::traits::MemoryStats`].
    pub fn heap_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<u64>()
            + self.offsets.capacity() * std::mem::size_of::<u64>()
            + self.arena.capacity()
    }

    /// The sorted key array (persisted verbatim by the format-v2 payload).
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// The byte-offset table (persisted verbatim by the format-v2 payload).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The delta+varint arena (persisted verbatim by the format-v2 payload).
    pub fn arena(&self) -> &[u8] {
        &self.arena
    }
}

/// Zero-allocation streaming decoder over one bucket's arena block: yields
/// the bucket's ids in ascending order.
///
/// Built only over blocks that were encoded by [`PostingsEncoder`] or
/// validated by [`CompressedPostings::from_parts`]; on bytes that are
/// nevertheless malformed the cursor *terminates* (yields `None`) instead
/// of panicking or looping.
#[derive(Clone, Debug)]
pub struct PostingsCursor<'a> {
    block: &'a [u8],
    pos: usize,
    prev: u32,
    started: bool,
}

impl<'a> PostingsCursor<'a> {
    /// A cursor at the start of `block`.
    #[inline]
    fn new(block: &'a [u8]) -> Self {
        Self {
            block,
            pos: 0,
            prev: 0,
            started: false,
        }
    }
}

impl Iterator for PostingsCursor<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.pos >= self.block.len() {
            return None;
        }
        let mut value = 0u32;
        let mut shift = 0u32;
        loop {
            let b = *self.block.get(self.pos)?;
            self.pos += 1;
            value |= ((b & 0x7F) as u32) << shift;
            if b & 0x80 == 0 {
                break;
            }
            shift += 7;
            if shift > 28 {
                // Malformed varint (validated arenas never produce this):
                // terminate rather than misdecode.
                self.pos = self.block.len();
                return None;
            }
        }
        let id = if self.started {
            // Gaps are strictly positive in well-formed blocks; checked_add
            // turns a corrupt overflowing gap into termination, not a panic.
            self.prev.checked_add(value)?
        } else {
            self.started = true;
            value
        };
        self.prev = id;
        Some(id)
    }
}

/// Builder for a [`CompressedPostings`] from an ordered posting stream —
/// the two trusted encode sites are [`crate::LsfIndex`] build (pairs sorted
/// by key, ids ascending within a key) and compaction (sorted-key merge of
/// base and delta segments).
///
/// # Examples
///
/// See [`CompressedPostings`].
#[derive(Debug, Default)]
pub struct PostingsEncoder {
    keys: Vec<u64>,
    offsets: Vec<u64>,
    arena: Vec<u8>,
    postings: usize,
    max_bucket: usize,
    /// Postings in the bucket currently being written.
    run: usize,
    /// Last id pushed into the current bucket.
    prev_id: u32,
}

impl PostingsEncoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends posting `id` to `key`'s bucket.
    ///
    /// Callers must push keys in non-decreasing order and, within one key,
    /// ids in strictly ascending order — the invariant both encode sites
    /// hold by construction and these asserts prove.
    #[inline]
    pub fn push(&mut self, key: u64, id: u32) {
        match self.keys.last() {
            Some(&last) if last == key => {
                assert!(
                    id > self.prev_id,
                    "posting ids must strictly ascend within a bucket"
                );
                put_varint(&mut self.arena, id - self.prev_id);
                self.run += 1;
            }
            last => {
                assert!(
                    last.is_none_or(|&l| l < key),
                    "bucket keys must be pushed in ascending order"
                );
                self.close_bucket();
                self.keys.push(key);
                put_varint(&mut self.arena, id);
                self.run = 1;
            }
        }
        self.prev_id = id;
        self.postings += 1;
    }

    /// Records the byte boundary of the bucket being written, if any.
    fn close_bucket(&mut self) {
        if self.run > 0 {
            self.offsets.push(self.arena.len() as u64);
            self.max_bucket = self.max_bucket.max(self.run);
            self.run = 0;
        }
    }

    /// Finalizes the encoding. The returned structure's arrays are shrunk
    /// to fit — the whole point is the memory diet.
    pub fn finish(mut self) -> CompressedPostings {
        self.close_bucket();
        let mut offsets = Vec::with_capacity(self.keys.len() + 1);
        offsets.push(0u64);
        offsets.extend_from_slice(&self.offsets);
        self.keys.shrink_to_fit();
        self.arena.shrink_to_fit();
        CompressedPostings {
            keys: self.keys,
            offsets,
            arena: self.arena,
            postings: self.postings,
            max_bucket: self.max_bucket,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode(buckets: &[(u64, &[u32])]) -> CompressedPostings {
        let mut enc = PostingsEncoder::new();
        for &(key, ids) in buckets {
            for &id in ids {
                enc.push(key, id);
            }
        }
        enc.finish()
    }

    #[test]
    fn varints_round_trip_at_width_boundaries() {
        for v in [0u32, 1, 127, 128, 129, 16383, 16384, 1 << 21, u32::MAX] {
            let mut arena = Vec::new();
            put_varint(&mut arena, v);
            assert!(arena.len() <= 5);
            let (back, used) = get_varint_strict(&arena).unwrap();
            assert_eq!(back, v);
            assert_eq!(used, arena.len());
        }
    }

    #[test]
    fn strict_varint_rejects_truncation_and_overflow() {
        // Continuation bit set on the last available byte.
        assert_eq!(get_varint_strict(&[0x80]), Err(PostingsError::Truncated));
        assert_eq!(
            get_varint_strict(&[0xFF, 0xFF]),
            Err(PostingsError::Truncated)
        );
        // Five continuation bytes can only encode > 32 bits.
        assert_eq!(
            get_varint_strict(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01]),
            Err(PostingsError::Overflow)
        );
        // Fifth byte with bits past bit 31.
        assert_eq!(
            get_varint_strict(&[0xFF, 0xFF, 0xFF, 0xFF, 0x1F]),
            Err(PostingsError::Overflow)
        );
        // Fifth byte carrying exactly the top 4 bits is fine (u32::MAX).
        assert_eq!(
            get_varint_strict(&[0xFF, 0xFF, 0xFF, 0xFF, 0x0F]),
            Ok((u32::MAX, 5))
        );
    }

    #[test]
    fn encode_decode_round_trips() {
        let buckets: Vec<(u64, &[u32])> = vec![
            (2, &[0]),
            (5, &[1, 2, 3, 1000, 1001]),
            (9, &[7]),
            (u64::MAX, &[0, u32::MAX]),
        ];
        let p = encode(&buckets);
        assert_eq!(p.bucket_count(), 4);
        assert_eq!(p.posting_count(), 9);
        assert_eq!(p.max_bucket_len(), 5);
        for (key, ids) in &buckets {
            let got: Vec<u32> = p.get(*key).into_iter().flatten().collect();
            assert_eq!(&got, ids, "key {key}");
        }
        assert!(p.get(3).is_none());
        assert!(p.get(0).is_none());
        // Key-ordered iteration sees every bucket.
        let walked: Vec<(u64, Vec<u32>)> = p.iter().map(|(k, c)| (k, c.collect())).collect();
        let want: Vec<(u64, Vec<u32>)> =
            buckets.iter().map(|&(k, ids)| (k, ids.to_vec())).collect();
        assert_eq!(walked, want);
    }

    #[test]
    fn empty_postings_behave() {
        let p = CompressedPostings::new();
        assert!(p.is_empty());
        assert_eq!(p.bucket_count(), 0);
        assert_eq!(p.posting_count(), 0);
        assert!(p.get(0).is_none());
        assert_eq!(p.iter().count(), 0);
        let q = PostingsEncoder::new().finish();
        assert_eq!(q.bucket_count(), 0);
        assert!(q.get(42).is_none());
        // from_parts accepts the canonical empty encoding.
        let r = CompressedPostings::from_parts(vec![], vec![0], vec![], 10, 0).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn from_parts_accepts_what_the_encoder_writes() {
        let p = encode(&[(1, &[0, 5, 6]), (4, &[2]), (8, &[0, 1, 2, 3])]);
        let q = CompressedPostings::from_parts(
            p.keys().to_vec(),
            p.offsets().to_vec(),
            p.arena().to_vec(),
            7,
            0,
        )
        .unwrap();
        assert_eq!(q.posting_count(), p.posting_count());
        assert_eq!(q.max_bucket_len(), p.max_bucket_len());
        let a: Vec<(u64, Vec<u32>)> = p.iter().map(|(k, c)| (k, c.collect())).collect();
        let b: Vec<(u64, Vec<u32>)> = q.iter().map(|(k, c)| (k, c.collect())).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn from_parts_rejects_structural_corruption() {
        let p = encode(&[(1, &[0, 5]), (4, &[2])]);
        let (keys, offsets, arena) = (p.keys().to_vec(), p.offsets().to_vec(), p.arena().to_vec());

        // Keys out of order.
        let mut bad = keys.clone();
        bad.swap(0, 1);
        assert_eq!(
            CompressedPostings::from_parts(bad, offsets.clone(), arena.clone(), 10, 0),
            Err(PostingsError::KeyOrder)
        );
        // Offset table too short.
        assert_eq!(
            CompressedPostings::from_parts(
                keys.clone(),
                offsets[..2].to_vec(),
                arena.clone(),
                10,
                0
            ),
            Err(PostingsError::OffsetTable)
        );
        // Endpoint past the arena.
        let mut bad = offsets.clone();
        if let Some(last) = bad.last_mut() {
            *last += 1;
        }
        assert_eq!(
            CompressedPostings::from_parts(keys.clone(), bad, arena.clone(), 10, 0),
            Err(PostingsError::OffsetTable)
        );
        // Truncated arena (drop the final byte, shrink the endpoint).
        let mut short = arena.clone();
        short.pop();
        let mut bad = offsets.clone();
        if let Some(last) = bad.last_mut() {
            *last -= 1;
        }
        assert!(CompressedPostings::from_parts(keys.clone(), bad, short, 10, 0).is_err());
        // Id outside the slot range.
        assert_eq!(
            CompressedPostings::from_parts(keys.clone(), offsets.clone(), arena.clone(), 5, 0),
            Err(PostingsError::IdOutOfRange)
        );
        // Id below the minimum (delta-segment watermark).
        assert_eq!(
            CompressedPostings::from_parts(keys, offsets, arena, 10, 1),
            Err(PostingsError::IdOutOfRange)
        );
    }

    #[test]
    fn from_parts_rejects_zero_gaps_and_overflow() {
        // Hand-built block: id 3, then gap 0 (duplicate id).
        let arena = vec![3u8, 0u8];
        assert_eq!(
            CompressedPostings::from_parts(vec![1], vec![0, 2], arena, 10, 0),
            Err(PostingsError::NonMonotone)
        );
        // id u32::MAX then gap 1 overflows the id space.
        let mut arena = Vec::new();
        put_varint(&mut arena, u32::MAX);
        put_varint(&mut arena, 1);
        let len = arena.len() as u64;
        assert_eq!(
            CompressedPostings::from_parts(vec![1], vec![0, len], arena, usize::MAX, 0),
            Err(PostingsError::Overflow)
        );
        // A varint that never terminates inside its block.
        let arena = vec![0x80u8, 0x80, 0x80];
        assert_eq!(
            CompressedPostings::from_parts(vec![1], vec![0, 3], arena, 10, 0),
            Err(PostingsError::Truncated)
        );
    }

    #[test]
    fn cursor_terminates_on_malformed_bytes_instead_of_panicking() {
        // Bypass validation: cursor directly over garbage blocks.
        for block in [
            &[0x80u8, 0x80, 0x80, 0x80, 0x80, 0x80][..], // endless continuation
            &[0xFFu8][..],                               // truncated
            &[0x05u8, 0x80][..],                         // valid id then truncated gap
        ] {
            let ids: Vec<u32> = PostingsCursor::new(block).collect();
            assert!(ids.len() <= 1, "cursor must stop, got {ids:?}");
        }
        // Overflowing gap: 5 then u32::MAX stops cleanly.
        let mut block = Vec::new();
        put_varint(&mut block, 5);
        put_varint(&mut block, u32::MAX);
        let ids: Vec<u32> = PostingsCursor::new(&block).collect();
        assert_eq!(ids, vec![5]);
    }

    #[test]
    fn heap_bytes_track_the_three_arrays() {
        let p = encode(&[(1, &[0, 1, 2, 3, 4, 5, 6, 7])]);
        let floor = p.keys().len() * 8 + p.offsets().len() * 8 + p.arena().len();
        assert!(p.heap_bytes() >= floor);
        // Dense ascending ids are one byte each after the first.
        assert_eq!(p.arena().len(), 8);
    }
}
