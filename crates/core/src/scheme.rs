//! Threshold schemes: the function `s(x, j, i)` and the stopping rule.
//!
//! §3 of the paper: "The data structure comes with a (deterministic) function
//! `s` which maps each vector x, path-length j and bit i to a threshold
//! `s(x, j, i) ∈ \[0, 1\]`. … `s` is how our data structure adapts to the
//! distribution — previous data structures essentially used a constant
//! function for s." A scheme also decides when a path is *complete* (becomes
//! a filter): the paper's skew-adaptive rule stops a path `v` once
//! `∏_{i∈v} p_i ≤ 1/n`, which we track as accumulated mass
//! `Σ_{i∈v} log₂(1/p_i) ≥ log₂ n`; Chosen Path instead uses a fixed depth.

use skewsearch_datagen::BernoulliProfile;

/// A threshold scheme: sampling thresholds plus stopping rule.
///
/// `threshold` may return values outside `\[0, 1\]`; the engine treats
/// `s ≤ 0` as "never extend" and `s ≥ 1` as "always extend" (the level hash
/// is uniform on `[0, 1)`).
///
/// Schemes are `Sync + Send`: indexes share them across build workers and
/// the batch-query thread pool ([`crate::SetSimilaritySearch::search_batch`]).
/// Every scheme is plain immutable data, so this costs implementors nothing.
pub trait ThresholdScheme: Sync + Send {
    /// `s(x, j, i)` where `weight = |x|`, `depth = j` (0-based number of
    /// dimensions already on the path), `dim = i`.
    fn threshold(&self, weight: usize, depth: usize, dim: u32) -> f64;

    /// Whether a path with accumulated mass `Σ log₂(1/p)` and length `depth`
    /// is complete (a filter).
    fn is_complete(&self, mass: f64, depth: usize) -> bool;

    /// A safe upper bound on the depth any in-progress path can reach (used
    /// to size the level-hasher stack).
    fn depth_bound(&self) -> usize;
}

/// §5 scheme (adversarial queries, Theorem 2):
/// `s(x, j, i) = 1 / (b₁|x| − j)`, with the product stopping rule.
#[derive(Clone, Debug)]
pub struct AdversarialScheme {
    b1: f64,
    /// `log₂ n` — stopping mass.
    log2_n: f64,
    depth_bound: usize,
}

impl AdversarialScheme {
    /// Creates the scheme for similarity threshold `b1` over a dataset of
    /// `n` vectors drawn from `profile`.
    pub fn new(b1: f64, n: usize, profile: &BernoulliProfile) -> Self {
        assert!(b1 > 0.0 && b1 <= 1.0, "b1 must lie in (0,1], got {b1}");
        assert!(n >= 2, "need n >= 2");
        let log2_n = (n as f64).log2();
        Self {
            b1,
            log2_n,
            depth_bound: product_rule_depth_bound(log2_n, profile),
        }
    }

    /// The verification threshold `b₁`.
    pub fn b1(&self) -> f64 {
        self.b1
    }
}

impl ThresholdScheme for AdversarialScheme {
    #[inline]
    fn threshold(&self, weight: usize, depth: usize, _dim: u32) -> f64 {
        let denom = self.b1 * weight as f64 - depth as f64;
        if denom <= 1.0 {
            // b₁|x| − j ≤ 1 ⇒ threshold ≥ 1: always extend (clamped).
            1.0
        } else {
            1.0 / denom
        }
    }

    #[inline]
    fn is_complete(&self, mass: f64, _depth: usize) -> bool {
        mass >= self.log2_n
    }

    fn depth_bound(&self) -> usize {
        self.depth_bound
    }
}

/// §6 scheme (correlated queries, Theorem 1):
/// `s(x, j, i) = (1 + δ) / (p̂_i · C log n − j)` with
/// `p̂_i = p_i(1−α) + α`, `δ = 3/√(αC)`, `C log n = Σ_i p_i`, and the
/// product stopping rule.
#[derive(Clone, Debug)]
pub struct CorrelatedScheme {
    /// `p̂_i · Σp` per dimension (denominator base).
    phat_w: Vec<f64>,
    /// `1 + δ`.
    one_plus_delta: f64,
    log2_n: f64,
    depth_bound: usize,
}

impl CorrelatedScheme {
    /// Creates the scheme for correlation `alpha` over `n` vectors from
    /// `profile`. `C` is derived from the profile: `C = Σp / ln n`.
    pub fn new(alpha: f64, n: usize, profile: &BernoulliProfile) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must lie in (0,1], got {alpha}"
        );
        assert!(n >= 2, "need n >= 2");
        let w = profile.sum_p();
        let c = profile.c_constant(n);
        let delta = 3.0 / (alpha * c).sqrt();
        let phat_w = profile
            .ps()
            .iter()
            .map(|&p| (p * (1.0 - alpha) + alpha) * w)
            .collect();
        let log2_n = (n as f64).log2();
        Self {
            phat_w,
            one_plus_delta: 1.0 + delta,
            log2_n,
            depth_bound: product_rule_depth_bound(log2_n, profile),
        }
    }

    /// The boost `1 + δ = 1 + 3/√(αC)` from Lemma 11.
    pub fn one_plus_delta(&self) -> f64 {
        self.one_plus_delta
    }
}

impl ThresholdScheme for CorrelatedScheme {
    #[inline]
    fn threshold(&self, _weight: usize, depth: usize, dim: u32) -> f64 {
        let denom = self.phat_w[dim as usize] - depth as f64;
        if denom <= self.one_plus_delta {
            1.0
        } else {
            self.one_plus_delta / denom
        }
    }

    #[inline]
    fn is_complete(&self, mass: f64, _depth: usize) -> bool {
        mass >= self.log2_n
    }

    fn depth_bound(&self) -> usize {
        self.depth_bound
    }
}

/// Chosen Path \[18\] scheme: constant thresholds `s = 1/(b₁|x|)` and a fixed
/// depth `k = ⌈ln n / ln(1/b₂)⌉` instead of the product stopping rule. This
/// is the non-adaptive baseline the paper generalizes; realizing it on the
/// same engine makes Figure 1 an apples-to-apples comparison.
#[derive(Clone, Debug)]
pub struct ChosenPathScheme {
    b1: f64,
    k: usize,
}

impl ChosenPathScheme {
    /// Creates the scheme for the `(b₁, b₂)`-approximate problem on `n`
    /// vectors.
    pub fn new(b1: f64, b2: f64, n: usize) -> Self {
        assert!(
            0.0 < b2 && b2 < b1 && b1 <= 1.0,
            "need 0 < b2 < b1 <= 1, got b1={b1} b2={b2}"
        );
        assert!(n >= 2);
        let k = ((n as f64).ln() / (1.0 / b2).ln()).ceil().max(1.0) as usize;
        Self { b1, k }
    }

    /// The fixed path depth `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The verification threshold `b₁`.
    pub fn b1(&self) -> f64 {
        self.b1
    }
}

impl ThresholdScheme for ChosenPathScheme {
    #[inline]
    fn threshold(&self, weight: usize, _depth: usize, _dim: u32) -> f64 {
        let denom = self.b1 * weight as f64;
        if denom <= 1.0 {
            1.0
        } else {
            1.0 / denom
        }
    }

    #[inline]
    fn is_complete(&self, _mass: f64, depth: usize) -> bool {
        depth >= self.k
    }

    fn depth_bound(&self) -> usize {
        self.k
    }
}

/// Depth bound for product-rule schemes: a path completes once its mass
/// reaches `log₂ n`, and every extension adds at least `min_i log₂(1/p_i)`,
/// so no in-progress path exceeds `⌈log₂ n / min-mass⌉ + 1` dimensions.
/// Capped at [`MAX_DEPTH_CAP`] for near-1 probabilities.
fn product_rule_depth_bound(log2_n: f64, profile: &BernoulliProfile) -> usize {
    let min_mass = profile
        .ps()
        .iter()
        .map(|&p| -p.log2())
        .fold(f64::MAX, f64::min);
    let bound = (log2_n / min_mass.max(1e-9)).ceil() as usize + 1;
    bound.min(MAX_DEPTH_CAP)
}

/// Hard cap on path depth (and hasher-stack size). Reached only for
/// probabilities extremely close to 1, far outside the paper's `p ≤ 1/2`
/// model; paths hitting the cap are dropped and counted as truncations.
pub const MAX_DEPTH_CAP: usize = 256;

// --- persistence -----------------------------------------------------------
//
// Schemes are plain calibration data, so persisting one is just writing its
// fields. The impls live here (not in `persist.rs`) because the fields are
// private; each scheme gets a distinct tag so a payload can never be decoded
// under the wrong scheme (see `docs/PERSISTENCE.md` §4).

use crate::persist::{PersistError, PersistScheme, Reader, Writer};

impl PersistScheme for AdversarialScheme {
    const SCHEME_TAG: u32 = 1;

    fn encode_scheme(&self, w: &mut Writer) {
        w.put_f64(self.b1);
        w.put_f64(self.log2_n);
        w.put_u64(self.depth_bound as u64);
    }

    fn decode_scheme(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let b1 = r.get_f64()?;
        let log2_n = r.get_f64()?;
        let depth_bound = r.get_u64()? as usize;
        if !(b1 > 0.0 && b1 <= 1.0) {
            return Err(PersistError::Malformed("adversarial b1 out of (0,1]"));
        }
        if !(log2_n.is_finite() && log2_n >= 1.0) {
            return Err(PersistError::Malformed("adversarial log2_n out of range"));
        }
        if depth_bound == 0 || depth_bound > MAX_DEPTH_CAP {
            return Err(PersistError::Malformed(
                "adversarial depth bound out of range",
            ));
        }
        Ok(Self {
            b1,
            log2_n,
            depth_bound,
        })
    }
}

impl PersistScheme for CorrelatedScheme {
    const SCHEME_TAG: u32 = 2;

    fn encode_scheme(&self, w: &mut Writer) {
        w.put_f64(self.one_plus_delta);
        w.put_f64(self.log2_n);
        w.put_u64(self.depth_bound as u64);
        w.put_f64_slice(&self.phat_w);
    }

    fn decode_scheme(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let one_plus_delta = r.get_f64()?;
        let log2_n = r.get_f64()?;
        let depth_bound = r.get_u64()? as usize;
        let phat_w = r.get_f64_vec()?;
        if !(one_plus_delta.is_finite() && one_plus_delta >= 1.0) {
            return Err(PersistError::Malformed("correlated 1+δ out of range"));
        }
        if !(log2_n.is_finite() && log2_n >= 1.0) {
            return Err(PersistError::Malformed("correlated log2_n out of range"));
        }
        if depth_bound == 0 || depth_bound > MAX_DEPTH_CAP {
            return Err(PersistError::Malformed(
                "correlated depth bound out of range",
            ));
        }
        if phat_w.iter().any(|v| !v.is_finite()) {
            return Err(PersistError::Malformed("correlated p̂·Σp not finite"));
        }
        Ok(Self {
            phat_w,
            one_plus_delta,
            log2_n,
            depth_bound,
        })
    }
}

impl PersistScheme for ChosenPathScheme {
    const SCHEME_TAG: u32 = 3;

    fn encode_scheme(&self, w: &mut Writer) {
        w.put_f64(self.b1);
        w.put_u64(self.k as u64);
    }

    fn decode_scheme(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let b1 = r.get_f64()?;
        let k = r.get_u64()? as usize;
        if !(b1 > 0.0 && b1 <= 1.0) {
            return Err(PersistError::Malformed("chosen-path b1 out of (0,1]"));
        }
        // Chosen Path's fixed depth is not subject to MAX_DEPTH_CAP (that cap
        // applies to product-rule schemes); just rule out absurd values that
        // would make the hasher stack allocation a corruption amplifier.
        if k == 0 || k > 1 << 20 {
            return Err(PersistError::Malformed("chosen-path depth out of range"));
        }
        Ok(Self { b1, k })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> BernoulliProfile {
        BernoulliProfile::two_block(100, 0.25, 0.01).unwrap()
    }

    #[test]
    fn adversarial_threshold_formula() {
        let s = AdversarialScheme::new(0.5, 1024, &profile());
        // 1/(b1*w - j) = 1/(0.5*40 - 3) = 1/17.
        assert!((s.threshold(40, 3, 0) - 1.0 / 17.0).abs() < 1e-12);
        // Thresholds grow with depth (fewer remaining slots).
        assert!(s.threshold(40, 10, 0) > s.threshold(40, 3, 0));
        // Degenerate denominator clamps to 1.
        assert_eq!(s.threshold(2, 1, 0), 1.0);
    }

    #[test]
    fn adversarial_stopping_rule_is_product_based() {
        let s = AdversarialScheme::new(0.5, 1024, &profile());
        // log2(1024) = 10 bits of mass required.
        assert!(!s.is_complete(9.99, 3));
        assert!(s.is_complete(10.0, 3));
        assert!(s.is_complete(10.0, 1)); // depth irrelevant
    }

    #[test]
    fn correlated_threshold_decreases_with_phat() {
        let p = profile();
        let s = CorrelatedScheme::new(0.5, 1024, &p);
        // dim 0 (p = 0.25) has larger p̂ than dim 99 (p = 0.01): rarer bits
        // get *larger* thresholds — the aggressive skew-exploiting choice.
        assert!(s.threshold(40, 0, 99) > s.threshold(40, 0, 0));
        // Both shrink as the sampling-without-replacement denominator grows.
        assert!(s.threshold(40, 5, 0) > s.threshold(40, 0, 0));
    }

    #[test]
    fn correlated_delta_matches_lemma11() {
        let p = profile();
        let n = 1024;
        let alpha = 0.5;
        let s = CorrelatedScheme::new(alpha, n, &p);
        let c = p.c_constant(n);
        assert!((s.one_plus_delta() - (1.0 + 3.0 / (alpha * c).sqrt())).abs() < 1e-12);
    }

    #[test]
    fn chosen_path_fixed_depth() {
        let s = ChosenPathScheme::new(0.5, 0.1, 10_000);
        // k = ceil(ln 1e4 / ln 10) = 4.
        assert_eq!(s.k(), 4);
        assert!(!s.is_complete(1e9, 3)); // mass ignored
        assert!(s.is_complete(0.0, 4));
        // Constant threshold across depth.
        assert_eq!(s.threshold(40, 0, 7), s.threshold(40, 3, 2));
    }

    #[test]
    fn depth_bound_reflects_min_mass() {
        // p max = 0.25 → min mass 2 bits → bound = ceil(10/2)+1 = 6.
        let s = AdversarialScheme::new(0.5, 1024, &profile());
        assert_eq!(s.depth_bound(), 6);
        // Near-1 probabilities hit the cap.
        let dense = BernoulliProfile::uniform(4, 0.999).unwrap();
        let s2 = AdversarialScheme::new(0.5, 1 << 30, &dense);
        assert_eq!(s2.depth_bound(), MAX_DEPTH_CAP);
    }
}
