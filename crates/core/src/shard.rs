//! The sharding layer: partition any index across `N` shards without
//! changing a single byte of any answer.
//!
//! The ROADMAP's "millions of users" north star needs indexes that outgrow
//! one allocation and one build. The paper's filter family distributes
//! naturally (LSF-Join makes the same observation for the join setting):
//! repetitions are embarrassingly parallel, and hash-partitioning the sets
//! keeps shards balanced even under the skewed distributions this workspace
//! targets. [`ShardedIndex`] packages both decompositions behind the normal
//! [`SetSimilaritySearch`] interface:
//!
//! * [`ShardStrategy::ByRepetition`] — each shard owns a contiguous slice of
//!   the probe passes (LSF repetitions / MinHash bands) over the **full**
//!   dataset. Shard builds and probes are independent; a candidate can
//!   surface in several shards, so the merge deduplicates across shards.
//! * [`ShardStrategy::ByDataset`] — the vectors are hash-partitioned by set
//!   content ([`set_partition_key`]); each shard is a full index over its
//!   slice with local ids. Every candidate lives in exactly one shard, so
//!   cross-shard dedup is vacuous and the merge only reorders and remaps.
//!
//! ## The merge protocol
//!
//! Both strategies reconstruct the unsharded index's `search_all` output
//! **byte-identically** (`tests/shard_equivalence.rs` pins this down for all
//! five index types). The key fact: every structure here emits matches in
//! first-discovery order, and a candidate's first discovery happens at a
//! lexicographically minimal `(pass, step)` coordinate — repetition/band,
//! then filter/bucket — with ids ascending inside one coordinate (bucket
//! insertion order). So the unsharded output order is exactly "sort
//! candidates by `(pass, step, id)` of their first discovery". Shards report
//! that coordinate per match ([`SetSimilaritySearch::search_all_tagged`]);
//! the merge offsets passes (`ByRepetition`), remaps local ids to global
//! (`ByDataset`), sorts by `(pass, step, id)`, and drops all but the first
//! occurrence of each id. Dedup-before-verify holds *within* each shard
//! exactly as in the unsharded index, and the merge never re-verifies —
//! but note that under `ByRepetition` a candidate surfacing in several
//! pass-slices is verified once *per owning shard* (up to `N` similarity
//! computations for a hot candidate; the per-shard `seen` sets cannot see
//! each other). `ByDataset` has no such duplication: every candidate lives
//! in exactly one shard.
//!
//! Cross-shard fan-out and shard construction both run on the existing
//! work-stealing executor ([`crate::batch::batch_map_chunked`] with a claim
//! chunk of 1, so a handful of expensive shard probes actually spread across
//! workers).
//!
//! ## The plan broadcast (enumerate once, probe everywhere)
//!
//! `ByDataset` shards share the parent's hash stacks and key interners, so a
//! query's filter set `F(q)` — and hence its [`QueryPlan`] — is
//! **shard-invariant**. The wrapper therefore runs the pipeline's stage 1
//! exactly once per query ([`SetSimilaritySearch::plan_query`] on one shard)
//! and broadcasts the resulting plan to every shard's
//! [`SetSimilaritySearch::probe_plan_tagged`], which only touches the
//! shard's inverted index. This removes the former `N×` enumeration tax the
//! fused path paid (each shard re-deriving `F(q)`), and, because a plan is
//! plain owned data, it is exactly what a cross-machine fan-out would
//! serialize and ship. `ByRepetition` shards own *disjoint* pass slices, so
//! each shard plans its own slice — total enumeration is the unsharded `1×`
//! either way. [`ShardedIndex::with_plan_broadcast`] can disable the
//! broadcast (fused per-shard probing) for measurement; answers are
//! byte-identical in both modes, and `tests/enumeration_count.rs` pins the
//! exactly-one-enumeration claim with the counting hook
//! [`crate::engine::enumeration_count`].
//!
//! ## Trade-offs (documented, not hidden)
//!
//! `ByRepetition` duplicates the dataset into every shard (memory `N·|S|`)
//! but enumerates query filters once per shard slice — total probe work
//! matches the unsharded index. `ByDataset` partitions the vectors (memory
//! `≈ |S|` plus per-shard hash stacks) and, with the plan broadcast,
//! enumerates once per query like the unsharded index — only bucket probing
//! and verification run per shard. Both keep per-shard structures small
//! enough to build, rebuild, and eventually place on separate machines.

use crate::batch::{batch_map, batch_map_chunked};
use crate::index::LsfIndex;
use crate::plan::QueryPlan;
use crate::scheme::ThresholdScheme;
use crate::traits::{
    DeadlineExceeded, Match, MutationError, SetId, SetSimilaritySearch, TaggedMatch,
};
use skewsearch_hashing::{mix, FxHashSet};
use skewsearch_sets::SparseVec;

/// How a [`ShardedIndex`] decomposes the underlying index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardStrategy {
    /// Each shard owns a contiguous slice of the probe passes (repetitions /
    /// bands) over the full dataset.
    ByRepetition,
    /// Vectors are hash-partitioned by set content; each shard is a full
    /// index over its slice.
    ByDataset,
}

/// An index that knows how to split itself into shards. Implemented by every
/// index structure in the workspace (the LSF family and MinHash); the
/// sharded wrapper is generic over this trait.
///
/// Implementations must uphold the tag contract of
/// [`SetSimilaritySearch::search_all_tagged`] with *genuine* probe
/// coordinates — the byte-identical merge guarantee of [`ShardedIndex`]
/// holds only then — and the **plan-invariance contract**: dataset shards
/// keep the parent's probe-plan structure, i.e.
/// `self.shard_of_ids(ids).plan_query(q) == self.plan_query(q)` for every
/// query. The wrapper's enumerate-once broadcast plans on one shard and
/// probes the same [`QueryPlan`] on all of them; a shard that redrew hash
/// stacks would silently probe the wrong buckets.
pub trait Shardable: SetSimilaritySearch + Sized {
    /// Number of probe passes (repetitions / bands) this index runs.
    fn passes(&self) -> usize;

    /// Clones out a shard owning the pass slice `range` over the full
    /// dataset. Shard pass `r` must be byte-identical to this index's pass
    /// `range.start + r`. An empty range yields an index that finds nothing.
    fn shard_of_passes(&self, range: std::ops::Range<usize>) -> Self;

    /// Clones out a shard owning only the vectors with the given global ids
    /// (strictly ascending), remapped to local ids `0..ids.len()`.
    fn shard_of_ids(&self, ids: &[u32]) -> Self;

    /// Stable content-hash of the indexed vector `id`, used to assign it to
    /// a dataset shard. Equal sets always land in the same shard.
    fn partition_key(&self, id: u32) -> u64;

    /// Total id slots ever assigned, live or not. For frozen structures this
    /// is `len()` (the default); mutable structures report retired
    /// (tombstoned) slots too, and [`ShardedIndex::build`] partitions *all*
    /// of them so local/global id maps stay dense and monotone.
    fn slot_count(&self) -> usize {
        self.len()
    }
}

/// Stable 64-bit content hash of a set, for dataset partitioning: mixes each
/// dimension through [`mix::splitmix64`] and folds with [`mix::combine64`],
/// so the key depends only on the set's contents (not its id), and duplicate
/// sets co-locate on one shard.
pub fn set_partition_key(x: &SparseVec) -> u64 {
    x.iter().fold(0x9E37_79B9_7F4A_7C15, |acc, i| {
        mix::combine64(acc, mix::splitmix64(i as u64))
    })
}

/// Builds the global→local id table a dataset shard uses to filter buckets:
/// `table[g]` is `g`'s local id when the shard owns `g`, `u32::MAX`
/// otherwise. Shared by every [`Shardable::shard_of_ids`] implementation.
///
/// # Panics
/// Panics if `ids` is not strictly ascending or contains an id `≥ len`.
pub fn local_id_table(ids: &[u32], len: usize) -> Vec<u32> {
    assert!(
        ids.windows(2).all(|w| w[0] < w[1]),
        "shard ids must be strictly ascending"
    );
    let mut table = vec![u32::MAX; len];
    for (local, &global) in ids.iter().enumerate() {
        table[global as usize] = local as u32;
    }
    table
}

/// Filters one bucket down to a shard's ids, remapping globals to locals via
/// a [`local_id_table`]; `None` when the shard owns none of the bucket.
/// Bucket order (ascending global id) is preserved — the table is monotone —
/// which is what keeps shard probes in the unsharded discovery order.
pub fn remap_bucket(bucket: &[u32], local_of: &[u32]) -> Option<Vec<u32>> {
    let local: Vec<u32> = bucket
        .iter()
        .map(|&id| local_of[id as usize])
        .filter(|&l| l != u32::MAX)
        .collect();
    (!local.is_empty()).then_some(local)
}

/// One shard plus the bookkeeping the merge needs to globalize its answers.
struct Shard<S> {
    index: S,
    /// Added to the shard's pass tags (`ByRepetition` slices; 0 otherwise).
    pass_offset: u32,
    /// Local id → global id (`ByDataset`; `None` when ids are already
    /// global).
    id_map: Option<Vec<u32>>,
}

impl<S> Shard<S> {
    /// Lifts a shard-local tagged match into global coordinates: offsets the
    /// pass (`ByRepetition`) and remaps the id (`ByDataset`).
    fn globalize(&self, mut t: TaggedMatch) -> TaggedMatch {
        t.pass += self.pass_offset;
        if let Some(map) = &self.id_map {
            t.hit.id = map[t.hit.id] as usize;
        }
        t
    }
}

/// A sharded index: `N` shards of an underlying [`Shardable`] index, merged
/// behind [`SetSimilaritySearch`] with answers **byte-identical** to the
/// unsharded index — same matches, same similarities, same order, for
/// `search`, `search_all`, `search_batch`, and `search_batch_best`.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use skewsearch_core::{
///     CorrelatedIndex, CorrelatedParams, SetSimilaritySearch, ShardStrategy, ShardedIndex,
/// };
/// use skewsearch_datagen::{correlated_query, BernoulliProfile, Dataset};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let profile = BernoulliProfile::two_block(800, 0.2, 0.02).unwrap();
/// let data = Dataset::generate(&profile, 200, &mut rng);
/// let index = CorrelatedIndex::build(
///     &data,
///     &profile,
///     CorrelatedParams::new(0.8).unwrap(),
///     &mut rng,
/// );
/// let sharded = ShardedIndex::build(&index, ShardStrategy::ByDataset, 4);
/// let q = correlated_query(data.vector(3), &profile, 0.8, &mut rng);
/// assert_eq!(sharded.search_all(&q), index.search_all(&q));
/// ```
pub struct ShardedIndex<S> {
    shards: Vec<Shard<S>>,
    strategy: ShardStrategy,
    threshold: f64,
    len: usize,
    /// The next global [`SetId`] to hand out — starts at the source index's
    /// slot count, so the wrapper assigns exactly the ids the unsharded
    /// index would.
    next_id: usize,
    /// Global id → `(shard, local id)` under `ByDataset` (every slot, live
    /// or tombstoned, lives in exactly one shard); empty under
    /// `ByRepetition`, where ids are already global in every shard.
    owner: Vec<(u32, u32)>,
    /// Workers for the per-query cross-shard fan-out (`0` = one per core).
    fanout_threads: usize,
    /// Workers for `search_batch` across queries (`0` = one per core).
    query_threads: usize,
    /// Route probes through the query-plan pipeline (stage 1 once per query,
    /// stage 2 per shard) instead of fused per-shard enumerate-and-probe.
    /// Answers are byte-identical either way; this is the `N×`→`1×`
    /// enumeration win under `ByDataset`.
    plan_broadcast: bool,
}

impl<S: Shardable + Send + Sync> ShardedIndex<S> {
    /// Partitions `index` into `shards` shards under `strategy`. Shard
    /// construction fans out on the work-stealing executor.
    ///
    /// Shard counts exceeding the pass count (`ByRepetition`) or vector
    /// count (`ByDataset`) produce empty shards, which are valid and simply
    /// contribute nothing.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn build(index: &S, strategy: ShardStrategy, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        let slot_count = index.slot_count();
        let mut owner = Vec::new();
        let built = match strategy {
            ShardStrategy::ByRepetition => {
                let passes = index.passes();
                // Balanced contiguous slices; later slices may be empty when
                // shards > passes.
                let ranges: Vec<std::ops::Range<usize>> = (0..shards)
                    .map(|k| (k * passes / shards)..((k + 1) * passes / shards))
                    .collect();
                batch_map_chunked(&ranges, 0, 1, |range| Shard {
                    index: index.shard_of_passes(range.clone()),
                    pass_offset: range.start as u32,
                    id_map: None,
                })
            }
            ShardStrategy::ByDataset => {
                // Every slot is routed, tombstoned ones included: that keeps
                // each shard's local↔global map dense and monotone, so a
                // mutated source index shards exactly like a frozen one.
                let mut ids: Vec<Vec<u32>> = vec![Vec::new(); shards];
                for id in 0..slot_count as u32 {
                    ids[(index.partition_key(id) % shards as u64) as usize].push(id);
                }
                owner = vec![(0, 0); slot_count];
                for (shard_ix, ids) in ids.iter().enumerate() {
                    for (local, &global) in ids.iter().enumerate() {
                        owner[global as usize] = (shard_ix as u32, local as u32);
                    }
                }
                batch_map_chunked(&ids, 0, 1, |ids| Shard {
                    index: index.shard_of_ids(ids),
                    pass_offset: 0,
                    id_map: Some(ids.clone()),
                })
            }
        };
        Self {
            shards: built,
            strategy,
            threshold: index.threshold(),
            len: index.len(),
            next_id: slot_count,
            owner,
            fanout_threads: 0,
            query_threads: 0,
            plan_broadcast: true,
        }
    }

    /// Sets the worker count for the per-query cross-shard fan-out
    /// (`0` = one per core). Purely a throughput knob — results are
    /// identical for every value.
    pub fn with_fanout_threads(mut self, threads: usize) -> Self {
        self.fanout_threads = threads;
        self
    }

    /// Sets the worker count [`SetSimilaritySearch::search_batch`] uses
    /// across queries (`0` = one per core). Results are identical for every
    /// value.
    pub fn with_query_threads(mut self, threads: usize) -> Self {
        self.query_threads = threads;
        self
    }

    /// Enables or disables the query-plan broadcast (default: enabled).
    ///
    /// Enabled, every probe runs the three-stage pipeline: stage 1
    /// ([`SetSimilaritySearch::plan_query`]) once per query — on one shard
    /// under `ByDataset` (plans are shard-invariant there), per pass-slice
    /// under `ByRepetition` — and stage 2
    /// ([`SetSimilaritySearch::probe_plan_tagged`]) per shard. Disabled,
    /// shards run their fused enumerate-and-probe path, re-paying the
    /// enumeration once per `ByDataset` shard (the pre-pipeline behaviour,
    /// kept for measurement — `benches/sharded_query.rs` reports both).
    ///
    /// Purely a cost knob: answers are **byte-identical** in both modes.
    pub fn with_plan_broadcast(mut self, enabled: bool) -> Self {
        self.plan_broadcast = enabled;
        self
    }

    /// The decomposition strategy.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// Number of shards (including empty ones).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Indexed-vector count per shard. Under `ByRepetition` every shard
    /// reports the full dataset; under `ByDataset` the counts partition it.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.index.len()).collect()
    }

    /// Stage 1 for a `ByDataset` broadcast: plan the query once, on the
    /// first shard. Plans are shard-invariant under dataset partitioning
    /// (the [`Shardable`] plan-invariance contract: every shard keeps the
    /// parent's hash stacks and interners), so any shard — even one owning
    /// zero vectors — derives the exact plan the parent index would.
    fn broadcast_plan(&self, q: &SparseVec) -> QueryPlan {
        self.shards[0].index.plan_query(q)
    }

    /// Fans the query across shards (`threads` workers, claim chunk 1, so
    /// each shard probe can take its own worker), globalizes tags and ids,
    /// and merges back into the unsharded discovery order: sort by
    /// `(pass, step, id)`, then keep only the first occurrence of each id.
    ///
    /// With the plan broadcast (default), the fan-out runs the pipeline:
    /// under `ByDataset` one [`QueryPlan`] is derived up front and every
    /// shard probe consumes `&plan` — exactly one `F(q)` enumeration per
    /// query, no matter the shard count; under `ByRepetition` each shard
    /// plans its own (disjoint) pass slice, which is the same `1×` total.
    fn merged_tagged(&self, q: &SparseVec, threads: usize) -> Vec<TaggedMatch> {
        let per_shard: Vec<Vec<TaggedMatch>> = match (self.plan_broadcast, self.strategy) {
            (true, ShardStrategy::ByDataset) => {
                let plan = self.broadcast_plan(q);
                batch_map_chunked(&self.shards, threads, 1, |shard| {
                    shard.index.probe_plan_tagged(&plan)
                })
            }
            (true, ShardStrategy::ByRepetition) => {
                batch_map_chunked(&self.shards, threads, 1, |shard| {
                    shard.index.probe_plan_tagged(&shard.index.plan_query(q))
                })
            }
            (false, _) => batch_map_chunked(&self.shards, threads, 1, |shard| {
                shard.index.search_all_tagged(q)
            }),
        };
        let mut all: Vec<TaggedMatch> = Vec::with_capacity(per_shard.iter().map(Vec::len).sum());
        for (shard, tagged) in self.shards.iter().zip(per_shard) {
            all.extend(tagged.into_iter().map(|t| shard.globalize(t)));
        }
        all.sort_by_key(|t| (t.pass, t.step, t.hit.id));
        let mut seen: FxHashSet<usize> = FxHashSet::default();
        all.retain(|t| seen.insert(t.hit.id));
        all
    }

    /// `search`'s merge: every shard early-exits at its own first verified
    /// hit; the shard minima are globalized and the `(pass, step, id)`-
    /// minimum among them is the global first discovery — no shard ever
    /// materializes its full match list.
    ///
    /// Under the `ByDataset` broadcast the shards early-exit their *probes*
    /// against one shared plan (stage 1 runs in full once — cheaper than
    /// `N` lazy re-enumerations from the first repetition on).
    /// `ByRepetition` keeps the fused lazy path: its shards own disjoint
    /// pass slices, so planning a slice in full would do strictly more
    /// enumeration than the early-exiting probe needs.
    fn merged_first(&self, q: &SparseVec, threads: usize) -> Option<TaggedMatch> {
        let per_shard: Vec<Option<TaggedMatch>> =
            if self.plan_broadcast && self.strategy == ShardStrategy::ByDataset {
                let plan = self.broadcast_plan(q);
                batch_map_chunked(&self.shards, threads, 1, |shard| {
                    shard.index.probe_plan_first_tagged(&plan)
                })
            } else {
                batch_map_chunked(&self.shards, threads, 1, |shard| {
                    shard.index.search_first_tagged(q)
                })
            };
        self.shards
            .iter()
            .zip(per_shard)
            .filter_map(|(shard, first)| first.map(|t| shard.globalize(t)))
            .min_by_key(|t| (t.pass, t.step, t.hit.id))
    }
}

impl<S: Shardable + crate::persist::Persist + Send + Sync> ShardedIndex<S> {
    /// Saves the whole deployment into `dir` (created if missing): one
    /// container file per shard (`shard-0000.skx`, `shard-0001.skx`, …) plus
    /// a `manifest.skx` recording the strategy, thresholds, watermark, owner
    /// table, and each shard's file, pass offset, and local→global id map —
    /// see [`crate::persist::ShardManifest`] and the "restoring a sharded
    /// deployment" walkthrough in `docs/PERSISTENCE.md`.
    ///
    /// [`ShardedIndex::load`] on the same directory restores a wrapper whose
    /// every answer surface is byte-identical to this one's.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::{rngs::StdRng, SeedableRng};
    /// use skewsearch_core::{
    ///     CorrelatedIndex, CorrelatedParams, SetSimilaritySearch, ShardStrategy, ShardedIndex,
    /// };
    /// use skewsearch_datagen::{correlated_query, BernoulliProfile, Dataset};
    ///
    /// let mut rng = StdRng::seed_from_u64(21);
    /// let profile = BernoulliProfile::two_block(400, 0.2, 0.02).unwrap();
    /// let data = Dataset::generate(&profile, 100, &mut rng);
    /// let index = CorrelatedIndex::build(
    ///     &data,
    ///     &profile,
    ///     CorrelatedParams::new(0.8).unwrap(),
    ///     &mut rng,
    /// );
    /// let sharded = ShardedIndex::build(&index, ShardStrategy::ByDataset, 2);
    ///
    /// let dir = std::env::temp_dir().join(format!(
    ///     "skewsearch_doctest_deployment_{}",
    ///     std::process::id()
    /// ));
    /// sharded.save(&dir).unwrap();
    /// let restored: ShardedIndex<CorrelatedIndex> = ShardedIndex::load(&dir).unwrap();
    /// std::fs::remove_dir_all(&dir).unwrap();
    ///
    /// let q = correlated_query(data.vector(4), &profile, 0.8, &mut rng);
    /// assert_eq!(restored.search_all(&q), sharded.search_all(&q));
    /// assert_eq!(restored.shard_count(), sharded.shard_count());
    /// ```
    pub fn save(&self, dir: &std::path::Path) -> Result<(), crate::persist::PersistError> {
        std::fs::create_dir_all(dir)?;
        let mut entries = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            let file = format!("shard-{i:04}.skx");
            shard.index.save(&dir.join(&file))?;
            entries.push(crate::persist::ShardManifestEntry {
                file,
                pass_offset: shard.pass_offset,
                id_map: shard.id_map.clone(),
            });
        }
        let manifest = crate::persist::ShardManifest {
            strategy: self.strategy,
            threshold: self.threshold,
            len: self.len,
            next_id: self.next_id,
            plan_broadcast: self.plan_broadcast,
            owner: self.owner.clone(),
            shards: entries,
        };
        crate::persist::write_container(
            &dir.join("manifest.skx"),
            crate::persist::kind::MANIFEST,
            &manifest.encode(),
        )
    }

    /// Restores a deployment saved by [`ShardedIndex::save`]: reads and
    /// validates `dir/manifest.skx`, then loads every shard file it lists.
    /// Fails with a typed [`crate::persist::PersistError`] on a corrupt
    /// manifest, a missing or corrupt shard file, or a manifest listing no
    /// shards — never panics.
    ///
    /// The fan-out/batch worker counts are runtime knobs, not index state;
    /// they reset to their defaults (one worker per core) and can be re-set
    /// with [`ShardedIndex::with_fanout_threads`] /
    /// [`ShardedIndex::with_query_threads`].
    pub fn load(dir: &std::path::Path) -> Result<Self, crate::persist::PersistError> {
        let payload = crate::persist::read_container(
            &dir.join("manifest.skx"),
            crate::persist::kind::MANIFEST,
        )?;
        let manifest = crate::persist::ShardManifest::decode(&payload)?;
        if manifest.shards.is_empty() {
            return Err(crate::persist::PersistError::Malformed(
                "manifest lists no shards",
            ));
        }
        let mut shards = Vec::with_capacity(manifest.shards.len());
        for entry in &manifest.shards {
            let index = S::load(&dir.join(&entry.file))?;
            shards.push(Shard {
                index,
                pass_offset: entry.pass_offset,
                id_map: entry.id_map.clone(),
            });
        }
        Ok(Self {
            shards,
            strategy: manifest.strategy,
            threshold: manifest.threshold,
            len: manifest.len,
            next_id: manifest.next_id,
            owner: manifest.owner,
            fanout_threads: 0,
            query_threads: 0,
            plan_broadcast: manifest.plan_broadcast,
        })
    }
}

impl<S: Shardable + Send + Sync> SetSimilaritySearch for ShardedIndex<S> {
    /// Exactly the hit the unsharded index's early-exiting `search` returns,
    /// found without running any shard past its own first verified hit.
    fn search(&self, q: &SparseVec) -> Option<Match> {
        self.merged_first(q, self.fanout_threads).map(|t| t.hit)
    }

    fn search_all(&self, q: &SparseVec) -> Vec<Match> {
        self.merged_tagged(q, self.fanout_threads)
            .into_iter()
            .map(|t| t.hit)
            .collect()
    }

    /// Merged tags are already the *unsharded* index's global `(pass, step)`
    /// coordinates, so downstream consumers see coordinates indistinguishable
    /// from the unsharded index's.
    fn search_all_tagged(&self, q: &SparseVec) -> Vec<TaggedMatch> {
        self.merged_tagged(q, self.fanout_threads)
    }

    fn search_first_tagged(&self, q: &SparseVec) -> Option<TaggedMatch> {
        self.merged_first(q, self.fanout_threads)
    }

    /// Deadline-aware fan-out under the same merge protocol as
    /// [`ShardedIndex::search_all_tagged`]: the shared expiry check is
    /// threaded through to every shard's own
    /// [`SetSimilaritySearch::probe_plan_tagged_deadline`] (per-repetition
    /// granularity for LSF shards), so each shard cancels independently; if
    /// *any* shard reports [`DeadlineExceeded`] the whole query does — a
    /// merge over a partial shard set would silently drop matches.
    ///
    /// With a never-firing check the merged `Ok` value is byte-identical to
    /// the undeadlined fan-out (same plan broadcast, same
    /// `(pass, step, id)` sort-and-dedup).
    fn probe_plan_tagged_deadline(
        &self,
        plan: &QueryPlan,
        expired: &(dyn Fn() -> bool + Sync),
    ) -> Result<Vec<TaggedMatch>, DeadlineExceeded> {
        if expired() {
            return Err(DeadlineExceeded);
        }
        let q = plan.query();
        let threads = self.fanout_threads;
        let per_shard: Vec<Result<Vec<TaggedMatch>, DeadlineExceeded>> =
            match (self.plan_broadcast, self.strategy) {
                (true, ShardStrategy::ByDataset) => {
                    let plan = self.broadcast_plan(q);
                    // Stage boundary: enumeration just ran in full once.
                    if expired() {
                        return Err(DeadlineExceeded);
                    }
                    batch_map_chunked(&self.shards, threads, 1, |shard| {
                        shard.index.probe_plan_tagged_deadline(&plan, expired)
                    })
                }
                (true, ShardStrategy::ByRepetition) => {
                    batch_map_chunked(&self.shards, threads, 1, |shard| {
                        shard
                            .index
                            .probe_plan_tagged_deadline(&shard.index.plan_query(q), expired)
                    })
                }
                (false, _) => batch_map_chunked(&self.shards, threads, 1, |shard| {
                    if expired() {
                        Err(DeadlineExceeded)
                    } else {
                        Ok(shard.index.search_all_tagged(q))
                    }
                }),
            };
        let mut all: Vec<TaggedMatch> = Vec::new();
        for (shard, tagged) in self.shards.iter().zip(per_shard) {
            all.extend(tagged?.into_iter().map(|t| shard.globalize(t)));
        }
        all.sort_by_key(|t| (t.pass, t.step, t.hit.id));
        let mut seen: FxHashSet<usize> = FxHashSet::default();
        all.retain(|t| seen.insert(t.hit.id));
        Ok(all)
    }

    /// Parallelizes across *queries* (the shard fan-out inside each query
    /// stays sequential to avoid nested oversubscription); results equal
    /// `queries.iter().map(|q| self.search_all(q))` regardless.
    fn search_batch(&self, queries: &[SparseVec]) -> Vec<Vec<Match>> {
        batch_map(queries, self.query_threads, |q| {
            self.merged_tagged(q, 1)
                .into_iter()
                .map(|t| t.hit)
                .collect()
        })
    }

    fn search_batch_best(&self, queries: &[SparseVec]) -> Vec<Option<Match>> {
        batch_map(queries, self.query_threads, |q| {
            self.merged_tagged(q, 1)
                .into_iter()
                .map(|t| t.hit)
                .max_by(|a, b| a.similarity.total_cmp(&b.similarity))
        })
    }

    /// Routes the insert to its owning shard and assigns the exact global
    /// [`SetId`] the unsharded index would: under `ByDataset` the new set
    /// goes to the shard its content hash selects (the same routing
    /// [`ShardedIndex::build`] uses, so duplicates still co-locate) and the
    /// fresh global id is appended to that shard's id map (which stays
    /// monotone — the merge protocol is untouched); under `ByRepetition`
    /// every shard indexes the set under its own pass slice, so the total
    /// enumeration work equals one unsharded insert.
    ///
    /// Errs with [`MutationError::Unsupported`] — before touching anything —
    /// iff the underlying index type is read-only.
    fn insert(&mut self, set: SparseVec) -> Result<SetId, MutationError> {
        if !self.supports_mutation() {
            return Err(MutationError::Unsupported);
        }
        let global = self.next_id;
        match self.strategy {
            ShardStrategy::ByDataset => {
                let shard_ix = (set_partition_key(&set) % self.shards.len() as u64) as usize;
                let shard = &mut self.shards[shard_ix];
                let local = shard.index.insert(set)?;
                if let Some(map) = shard.id_map.as_mut() {
                    assert_eq!(local, map.len(), "shard-local ids must stay dense");
                    map.push(global as u32);
                }
                self.owner.push((shard_ix as u32, local as u32));
            }
            ShardStrategy::ByRepetition => {
                for shard in &mut self.shards {
                    let local = shard.index.insert(set.clone())?;
                    assert_eq!(local, global, "ByRepetition shard ids are global");
                }
            }
        }
        self.next_id += 1;
        self.len += 1;
        Ok(global)
    }

    /// Tombstones the set in whichever shard(s) hold it: the owner-table
    /// lookup under `ByDataset`, a broadcast under `ByRepetition` (every
    /// shard keeps its own liveness for the full dataset). Same semantics
    /// as the unsharded remove: `Ok(false)` for unassigned or already-dead
    /// ids, and ids are never reused.
    fn remove(&mut self, id: SetId) -> Result<bool, MutationError> {
        if !self.supports_mutation() {
            return Err(MutationError::Unsupported);
        }
        let removed = match self.strategy {
            ShardStrategy::ByDataset => {
                if id >= self.owner.len() {
                    false
                } else {
                    let (shard_ix, local) = self.owner[id];
                    self.shards[shard_ix as usize]
                        .index
                        .remove(local as usize)?
                }
            }
            ShardStrategy::ByRepetition => {
                let mut removed = false;
                for shard in &mut self.shards {
                    // Every shard sees the same full-dataset liveness, so
                    // each reports the same answer.
                    removed = shard.index.remove(id)?;
                }
                removed
            }
        };
        if removed {
            self.len -= 1;
        }
        Ok(removed)
    }

    /// Mutable exactly when every shard's underlying index is.
    fn supports_mutation(&self) -> bool {
        self.shards.iter().all(|s| s.index.supports_mutation())
    }

    /// Sum of the shards' accounting plus the wrapper's own owner table.
    fn memory_stats(&self) -> crate::traits::MemoryStats {
        let mut total = crate::traits::MemoryStats::default();
        for shard in &self.shards {
            let s = shard.index.memory_stats();
            total.posting_bytes += s.posting_bytes;
            total.vector_bytes += s.vector_bytes;
            total.aux_bytes += s.aux_bytes;
        }
        total.aux_bytes += self.owner.capacity() * std::mem::size_of::<(u32, u32)>();
        total
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Live sets only, kept in lockstep with the shards' own counts.
    fn len(&self) -> usize {
        self.len
    }
}

impl<S: ThresholdScheme + Clone> Shardable for LsfIndex<S> {
    fn passes(&self) -> usize {
        self.repetition_count()
    }

    fn shard_of_passes(&self, range: std::ops::Range<usize>) -> Self {
        LsfIndex::shard_of_passes(self, range)
    }

    fn shard_of_ids(&self, ids: &[u32]) -> Self {
        LsfIndex::shard_of_ids(self, ids)
    }

    fn partition_key(&self, id: u32) -> u64 {
        set_partition_key(&self.vectors()[id as usize])
    }

    fn slot_count(&self) -> usize {
        LsfIndex::slot_count(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IndexOptions, Repetitions};
    use crate::scheme::CorrelatedScheme;
    use rand::{rngs::StdRng, SeedableRng};
    use skewsearch_datagen::{correlated_query, BernoulliProfile, Dataset};

    fn fixture(reps: usize) -> (LsfIndex<CorrelatedScheme>, Vec<SparseVec>) {
        let profile = BernoulliProfile::two_block(500, 0.2, 0.02).unwrap();
        let mut rng = StdRng::seed_from_u64(0x5AAD);
        let ds = Dataset::generate(&profile, 160, &mut rng);
        let scheme = CorrelatedScheme::new(0.8, ds.n(), &profile);
        let index = LsfIndex::build(
            ds.vectors().to_vec(),
            profile.clone(),
            scheme,
            0.8 / 1.3,
            IndexOptions {
                repetitions: Repetitions::Fixed(reps),
                ..IndexOptions::default()
            },
            &mut rng,
        );
        let queries: Vec<SparseVec> = (0..25)
            .map(|t| correlated_query(ds.vector(t * 7 % ds.n()), &profile, 0.8, &mut rng))
            .chain(std::iter::once(SparseVec::empty()))
            .collect();
        (index, queries)
    }

    #[test]
    fn both_strategies_reproduce_unsharded_output() {
        let (index, queries) = fixture(6);
        for strategy in [ShardStrategy::ByRepetition, ShardStrategy::ByDataset] {
            for shards in [1, 2, 5] {
                let sharded = ShardedIndex::build(&index, strategy, shards);
                assert_eq!(sharded.len(), index.len());
                assert_eq!(sharded.threshold(), index.threshold());
                for q in &queries {
                    assert_eq!(
                        sharded.search_all(q),
                        index.search_all(q),
                        "{strategy:?} shards={shards}"
                    );
                    assert_eq!(sharded.search(q), index.search(q));
                }
            }
        }
    }

    #[test]
    fn empty_shards_are_harmless() {
        let (index, queries) = fixture(3);
        // 3 repetitions over 8 shards: at least five shards own no passes.
        let by_rep = ShardedIndex::build(&index, ShardStrategy::ByRepetition, 8);
        assert_eq!(by_rep.shard_count(), 8);
        for q in &queries {
            assert_eq!(by_rep.search_all(q), index.search_all(q));
        }
    }

    #[test]
    fn by_dataset_partitions_the_vectors() {
        let (index, _) = fixture(4);
        let sharded = ShardedIndex::build(&index, ShardStrategy::ByDataset, 4);
        assert_eq!(sharded.strategy(), ShardStrategy::ByDataset);
        assert_eq!(sharded.shard_lens().iter().sum::<usize>(), index.len());
        // Content hashing spreads 160 vectors over 4 shards non-degenerately.
        assert!(sharded.shard_lens().iter().filter(|&&l| l > 0).count() >= 2);
    }

    #[test]
    fn fanout_and_query_threads_never_change_results() {
        let (index, queries) = fixture(5);
        let reference = ShardedIndex::build(&index, ShardStrategy::ByRepetition, 4);
        let expect = reference.search_batch(&queries);
        for threads in [0, 1, 2, 8] {
            let sharded = ShardedIndex::build(&index, ShardStrategy::ByRepetition, 4)
                .with_fanout_threads(threads)
                .with_query_threads(threads);
            assert_eq!(sharded.search_batch(&queries), expect, "threads={threads}");
            for q in queries.iter().take(5) {
                assert_eq!(sharded.search_all(q), reference.search_all(q));
            }
        }
    }

    #[test]
    fn plan_broadcast_modes_are_byte_identical() {
        let (index, queries) = fixture(6);
        for strategy in [ShardStrategy::ByRepetition, ShardStrategy::ByDataset] {
            for shards in [1, 3, 8] {
                let planned = ShardedIndex::build(&index, strategy, shards);
                let fused =
                    ShardedIndex::build(&index, strategy, shards).with_plan_broadcast(false);
                for q in &queries {
                    let reference = index.search_all_tagged(q);
                    assert_eq!(
                        planned.search_all_tagged(q),
                        reference,
                        "{strategy:?} shards={shards} planned"
                    );
                    assert_eq!(
                        fused.search_all_tagged(q),
                        reference,
                        "{strategy:?} shards={shards} fused"
                    );
                    assert_eq!(planned.search(q), fused.search(q));
                    assert_eq!(planned.search_first_tagged(q), index.search_first_tagged(q));
                }
            }
        }
    }

    #[test]
    fn sharded_indexes_compose() {
        // Tags stay global through a merge, so sharding a sharded index
        // still reproduces the original output.
        let (index, queries) = fixture(6);
        let inner = ShardedIndex::build(&index, ShardStrategy::ByRepetition, 3);
        for q in &queries {
            let once = inner.search_all_tagged(q);
            let direct = index.search_all_tagged(q);
            assert_eq!(once, direct);
        }
    }

    #[test]
    fn partition_key_is_content_based() {
        let a = SparseVec::from_unsorted(vec![3, 1, 4, 15]);
        let b = SparseVec::from_unsorted(vec![15, 4, 3, 1]);
        assert_eq!(set_partition_key(&a), set_partition_key(&b));
        let c = SparseVec::from_unsorted(vec![3, 1, 4]);
        assert_ne!(set_partition_key(&a), set_partition_key(&c));
        assert_eq!(
            set_partition_key(&SparseVec::empty()),
            0x9E37_79B9_7F4A_7C15
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let (index, _) = fixture(2);
        let _ = ShardedIndex::build(&index, ShardStrategy::ByRepetition, 0);
    }

    /// Fresh vectors (drawn apart from the fixture) to insert after build.
    fn extra_vectors(n: usize) -> Vec<SparseVec> {
        let profile = BernoulliProfile::two_block(500, 0.2, 0.02).unwrap();
        let mut rng = StdRng::seed_from_u64(0xFEED);
        Dataset::generate(&profile, n, &mut rng).vectors().to_vec()
    }

    #[test]
    fn mutated_sharded_equals_mutated_unsharded() {
        let (mut index, queries) = fixture(5);
        let extras = extra_vectors(30);
        // Apply one mutation script to the unsharded index and to every
        // sharded wrapper; all must agree on ids and on every answer.
        let script = |target: &mut dyn FnMut(usize, Option<SparseVec>) -> usize| {
            let mut ids = Vec::new();
            for v in extras.iter().take(20) {
                ids.push(target(usize::MAX, Some(v.clone())));
            }
            for id in [0usize, 7, 155, ids[0], ids[5]] {
                target(id, None);
            }
            for v in extras.iter().skip(20) {
                ids.push(target(usize::MAX, Some(v.clone())));
            }
        };
        let mut apply_unsharded = |id: usize, set: Option<SparseVec>| -> usize {
            match set {
                Some(set) => index.insert_set(set),
                None => {
                    index.remove_set(id);
                    id
                }
            }
        };
        script(&mut apply_unsharded);
        for strategy in [ShardStrategy::ByRepetition, ShardStrategy::ByDataset] {
            for shards in [1, 3, 8] {
                let (fresh, _) = fixture(5);
                let mut sharded = ShardedIndex::build(&fresh, strategy, shards);
                assert!(sharded.supports_mutation());
                let mut apply_sharded = |id: usize, set: Option<SparseVec>| -> usize {
                    match set {
                        Some(set) => sharded.insert(set).expect("LSF shards are mutable"),
                        None => {
                            sharded.remove(id).expect("LSF shards are mutable");
                            id
                        }
                    }
                };
                script(&mut apply_sharded);
                assert_eq!(sharded.len(), index.len(), "{strategy:?} {shards}");
                for q in &queries {
                    assert_eq!(
                        sharded.search_all_tagged(q),
                        index.search_all_tagged(q),
                        "{strategy:?} shards={shards}"
                    );
                    assert_eq!(sharded.search(q), index.search(q));
                }
            }
        }
    }

    #[test]
    fn sharded_insert_assigns_unsharded_ids_and_routes_by_content() {
        let (index, _) = fixture(4);
        let extras = extra_vectors(10);
        for strategy in [ShardStrategy::ByRepetition, ShardStrategy::ByDataset] {
            let mut sharded = ShardedIndex::build(&index, strategy, 4);
            let before = sharded.len();
            for (k, v) in extras.iter().enumerate() {
                // Global ids continue exactly where the source index stopped.
                assert_eq!(sharded.insert(v.clone()), Ok(index.len() + k));
            }
            assert_eq!(sharded.len(), before + extras.len());
            // Duplicate content co-locates: inserting a copy of an indexed
            // vector must land on the shard already holding it (ByDataset).
            if strategy == ShardStrategy::ByDataset {
                let lens_before = sharded.shard_lens();
                let dup = index.vectors()[3].clone();
                let expected_shard =
                    (set_partition_key(&dup) % sharded.shard_count() as u64) as usize;
                sharded.insert(dup).unwrap();
                let lens_after = sharded.shard_lens();
                for s in 0..sharded.shard_count() {
                    let grew = usize::from(s == expected_shard);
                    assert_eq!(lens_after[s], lens_before[s] + grew);
                }
            }
            // Remove semantics mirror the unsharded index.
            assert_eq!(sharded.remove(index.len()), Ok(true));
            assert_eq!(sharded.remove(index.len()), Ok(false), "idempotent");
            assert_eq!(sharded.remove(123_456), Ok(false), "never assigned");
        }
    }

    #[test]
    fn sharding_a_mutated_index_reproduces_its_answers() {
        // Build shards FROM an already-mutated source: tombstoned slots and
        // delta segments must survive both decompositions.
        let (mut index, queries) = fixture(5);
        let extras = extra_vectors(15);
        for v in &extras {
            index.insert_set(v.clone());
        }
        for id in [2usize, 90, 160, 165] {
            assert!(index.remove_set(id));
        }
        assert!(index.pending_mutations() > 0);
        for strategy in [ShardStrategy::ByRepetition, ShardStrategy::ByDataset] {
            for shards in [1, 3, 8] {
                let sharded = ShardedIndex::build(&index, strategy, shards);
                assert_eq!(sharded.len(), index.len());
                for q in &queries {
                    assert_eq!(
                        sharded.search_all_tagged(q),
                        index.search_all_tagged(q),
                        "{strategy:?} shards={shards}"
                    );
                }
            }
        }
    }
}
