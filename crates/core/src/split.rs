//! The frequent/rare split search of the §1 motivating example.
//!
//! For a universe ordered by decreasing frequency, split every vector into a
//! *frequent* part (dims `< cut`) and a *rare* part (dims `≥ cut`). If
//! `|x ∩ q| ≥ i₁|q|`, then for any `ℓ ∈ (0, i₁)` either
//! `|x_f ∩ q_f| ≥ ℓ|q|` or `|x_r ∩ q_r| ≥ (i₁−ℓ)|q|`, so two sub-searches
//! (one per part) solve the original problem at combined cost
//! `n^{ρ_f} + n^{ρ_r}` with
//!
//! ```text
//! ρ_f = log(ℓ)      / log(i_f),       i_f = E|x ∩ q_f| / |q|,
//! ρ_r = log(i₁ − ℓ) / log(i_r),       i_r = E|x ∩ q_r| / |q|,
//! ```
//!
//! and `ℓ` chosen to balance the two terms ([`balance_split`]). The paper
//! uses this example to show skew *can* be exploited; the §5/§6 schemes do it
//! in a principled way, but the split structure remains a useful comparison
//! point and is exercised by the `motivating` experiment.

use crate::index::{IndexOptions, LsfIndex};
use crate::scheme::AdversarialScheme;
use crate::traits::{Match, SetSimilaritySearch};
use rand::Rng;
use skewsearch_datagen::{BernoulliProfile, Dataset};
use skewsearch_sets::{similarity, SparseVec};

/// Balances `ρ_f(ℓ) = log(ℓ)/log(i_f)` against
/// `ρ_r(ℓ) = log(i₁−ℓ)/log(i_r)`: returns the `ℓ ∈ (0, i₁)` equalizing the
/// two exponents (`ρ_f` strictly decreases and `ρ_r` strictly increases in
/// `ℓ`, so the crossing is unique).
///
/// Requires `0 < i_f, i_r < 1` and `0 < i1 < 1`.
pub fn balance_split(i_f: f64, i_r: f64, i1: f64) -> f64 {
    assert!(i_f > 0.0 && i_f < 1.0, "i_f must lie in (0,1), got {i_f}");
    assert!(i_r > 0.0 && i_r < 1.0, "i_r must lie in (0,1), got {i_r}");
    assert!(i1 > 0.0 && i1 < 1.0, "i1 must lie in (0,1), got {i1}");
    let g = |l: f64| -> f64 {
        let rho_f = l.ln() / i_f.ln();
        let rho_r = (i1 - l).ln() / i_r.ln();
        rho_f - rho_r // strictly decreasing in l
    };
    let mut lo = i1 * 1e-9;
    let mut hi = i1 * (1.0 - 1e-9);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if g(mid) >= 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// The two balanced exponents `(ρ_f, ρ_r)` at the optimum of
/// [`balance_split`].
pub fn balanced_exponents(i_f: f64, i_r: f64, i1: f64) -> (f64, f64, f64) {
    let l = balance_split(i_f, i_r, i1);
    (l, l.ln() / i_f.ln(), (i1 - l).ln() / i_r.ln())
}

/// Normalized variant of [`balance_split`]: accounts for the projected query
/// sizes of the two halves.
///
/// The paper's displayed formulas (`ρ_f = log ℓ / log i_f`, both sides
/// normalized by the *full* `|q|`) are explicitly approximate ("the combined
/// cost … becomes approximately"); the sub-searches actually operate on the
/// projected halves, where the Braun-Blanquet threshold and background level
/// are `ℓ/frac` and `i/frac` with `frac = E|q_half| / E|q|`. This
/// renormalization is what realizes the motivating example's speedup on the
/// harmonic distribution (with the unnormalized formulas the balanced split
/// is never cheaper than the single search — see the `motivating` experiment
/// for both computations side by side).
///
/// Returns `(ℓ, ρ_f, ρ_r)` at the balance point inside the feasible domain
/// `ℓ ∈ (i1 − frac_r, frac_f)` (thresholds must stay below 1).
pub fn balance_split_normalized(
    i_f: f64,
    i_r: f64,
    i1: f64,
    frac_f: f64,
    frac_r: f64,
) -> (f64, f64, f64) {
    assert!(i_f > 0.0 && i_r > 0.0 && i1 > 0.0 && i1 < 1.0);
    assert!(frac_f > 0.0 && frac_r > 0.0 && (frac_f + frac_r - 1.0).abs() < 1e-6);
    let rho_f = |l: f64| (l / frac_f).ln() / (i_f / frac_f).ln();
    let rho_r = |l: f64| ((i1 - l) / frac_r).ln() / (i_r / frac_r).ln();
    let eps = 1e-12;
    let mut lo = (i1 - frac_r).max(0.0) + eps;
    let mut hi = i1.min(frac_f) - eps;
    assert!(
        lo < hi,
        "infeasible split: i1={i1} frac_f={frac_f} frac_r={frac_r}"
    );
    // rho_f decreases and rho_r increases in l; bisect the crossing.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if rho_f(mid) - rho_r(mid) >= 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let l = 0.5 * (lo + hi);
    (l, rho_f(l), rho_r(l))
}

/// Parameters for [`SplitIndex`].
#[derive(Clone, Copy, Debug)]
pub struct SplitParams {
    /// Universe cut: dims `< cut` are the frequent part.
    pub cut: u32,
    /// Overall Braun-Blanquet threshold `i₁`.
    pub i1: f64,
    /// Split point `ℓ`; `None` = balance automatically from the profile.
    pub ell: Option<f64>,
    /// Index tuning.
    pub options: IndexOptions,
}

/// Two-part search structure from the motivating example: an adversarial LSF
/// index per half, full-vector verification at `i₁`.
pub struct SplitIndex {
    vectors: Vec<SparseVec>,
    freq: LsfIndex<AdversarialScheme>,
    rare: LsfIndex<AdversarialScheme>,
    cut: u32,
    i1: f64,
    ell: f64,
}

impl SplitIndex {
    /// Builds both half-indexes.
    ///
    /// The sub-thresholds are the expected Braun-Blanquet levels induced by
    /// `ℓ`: `b_f = ℓ·E|q| / E|q_f|` and `b_r = (i₁−ℓ)·E|q| / E|q_r|`,
    /// clamped into `(0, 1]`.
    pub fn build<R: Rng + ?Sized>(
        dataset: &Dataset,
        profile: &BernoulliProfile,
        params: SplitParams,
        rng: &mut R,
    ) -> Self {
        let cut = params.cut;
        assert!(
            (cut as usize) > 0 && (cut as usize) < profile.d(),
            "cut must split the universe"
        );
        let ps = profile.ps();
        let w_f: f64 = ps[..cut as usize].iter().sum();
        let w_r: f64 = ps[cut as usize..].iter().sum();
        let w = w_f + w_r;
        let i_f: f64 = ps[..cut as usize].iter().map(|p| p * p).sum::<f64>() / w;
        let i_r: f64 = ps[cut as usize..].iter().map(|p| p * p).sum::<f64>() / w;
        let ell = params.ell.unwrap_or_else(|| {
            balance_split_normalized(i_f.min(0.999), i_r.min(0.999), params.i1, w_f / w, w_r / w).0
        });
        assert!(
            ell > 0.0 && ell < params.i1,
            "ell must lie in (0, i1), got {ell}"
        );
        let b_f = (ell * w / w_f).clamp(1e-6, 1.0);
        let b_r = ((params.i1 - ell) * w / w_r).clamp(1e-6, 1.0);

        let freq_profile = BernoulliProfile::new(ps[..cut as usize].to_vec())
            // lint:allow(no-panic-in-lib, the slice comes from an already-validated profile so every p is in range)
            .expect("frequent sub-profile");
        let rare_profile = BernoulliProfile::new(ps[cut as usize..].to_vec())
            // lint:allow(no-panic-in-lib, the slice comes from an already-validated profile so every p is in range)
            .expect("rare sub-profile");

        let mut freq_vecs = Vec::with_capacity(dataset.n());
        let mut rare_vecs = Vec::with_capacity(dataset.n());
        for x in dataset.vectors() {
            let (f, r) = x.split_at_dim(cut);
            freq_vecs.push(f);
            rare_vecs.push(shift_down(&r, cut));
        }

        let n = dataset.n().max(2);
        let freq = LsfIndex::build(
            freq_vecs,
            freq_profile.clone(),
            AdversarialScheme::new(b_f, n, &freq_profile),
            0.0, // verification happens on full vectors
            params.options,
            rng,
        );
        let rare = LsfIndex::build(
            rare_vecs,
            rare_profile.clone(),
            AdversarialScheme::new(b_r, n, &rare_profile),
            0.0,
            params.options,
            rng,
        );
        Self {
            vectors: dataset.vectors().to_vec(),
            freq,
            rare,
            cut,
            i1: params.i1,
            ell,
        }
    }

    /// The split parameter `ℓ` in use (balanced or user-supplied).
    pub fn ell(&self) -> f64 {
        self.ell
    }

    fn project(&self, q: &SparseVec) -> (SparseVec, SparseVec) {
        let (f, r) = q.split_at_dim(self.cut);
        (f, shift_down(&r, self.cut))
    }
}

/// Re-bases a vector of dims `≥ cut` to start at 0 (to index the rare
/// sub-profile).
fn shift_down(v: &SparseVec, cut: u32) -> SparseVec {
    SparseVec::from_sorted(v.iter().map(|i| i - cut).collect())
}

impl SetSimilaritySearch for SplitIndex {
    fn search(&self, q: &SparseVec) -> Option<Match> {
        let (qf, qr) = self.project(q);
        let mut hit = None;
        for (index, sub_q) in [(&self.freq, &qf), (&self.rare, &qr)] {
            index.probe(sub_q, |id| {
                let sim = similarity::braun_blanquet(&self.vectors[id as usize], q);
                if sim >= self.i1 {
                    hit = Some(Match {
                        id: id as usize,
                        similarity: sim,
                    });
                    false
                } else {
                    true
                }
            });
            if hit.is_some() {
                break;
            }
        }
        hit
    }

    fn search_all(&self, q: &SparseVec) -> Vec<Match> {
        let (qf, qr) = self.project(q);
        let mut seen = skewsearch_hashing::FxHashSet::default();
        let mut out = Vec::new();
        for (index, sub_q) in [(&self.freq, &qf), (&self.rare, &qr)] {
            index.probe(sub_q, |id| {
                if seen.insert(id) {
                    let sim = similarity::braun_blanquet(&self.vectors[id as usize], q);
                    if sim >= self.i1 {
                        out.push(Match {
                            id: id as usize,
                            similarity: sim,
                        });
                    }
                }
                true
            });
        }
        out
    }

    /// The two sub-indexes' accounting, plus this wrapper's own vector
    /// copies (each sub-index already counts its own clones).
    fn memory_stats(&self) -> crate::traits::MemoryStats {
        let freq = self.freq.memory_stats();
        let rare = self.rare.memory_stats();
        let own_vectors = self.vectors.capacity() * std::mem::size_of::<SparseVec>()
            + self
                .vectors
                .iter()
                .map(|v| std::mem::size_of_val(v.dims()))
                .sum::<usize>();
        crate::traits::MemoryStats {
            posting_bytes: freq.posting_bytes + rare.posting_bytes,
            vector_bytes: freq.vector_bytes + rare.vector_bytes + own_vectors,
            aux_bytes: freq.aux_bytes + rare.aux_bytes,
        }
    }

    fn threshold(&self) -> f64 {
        self.i1
    }

    fn len(&self) -> usize {
        self.vectors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Repetitions;
    use rand::{rngs::StdRng, SeedableRng};
    use skewsearch_datagen::correlated_query;

    #[test]
    fn balance_split_equalizes_exponents() {
        let (l, rf, rr) = balanced_exponents(0.3, 0.02, 0.5);
        assert!((rf - rr).abs() < 1e-9, "rf={rf} rr={rr}");
        assert!(l > 0.0 && l < 0.5);
    }

    #[test]
    fn balance_split_prefers_the_rare_side_for_mass() {
        // Rare side has much smaller background intersection, so the rare
        // search is cheaper per unit threshold: the balanced ℓ gives the
        // frequent side *more* of the required overlap (ρ_f shrinks with ℓ).
        let l_skewed = balance_split(0.3, 0.001, 0.5);
        let l_even = balance_split(0.1, 0.1, 0.5);
        assert!((l_even - 0.25).abs() < 1e-9, "symmetric case splits evenly");
        assert!(l_skewed > l_even, "l_skewed={l_skewed}");
    }

    #[test]
    fn split_index_finds_correlated_neighbor_on_harmonic_data() {
        // The motivating example's setting: harmonic frequencies.
        let profile = BernoulliProfile::harmonic(3000, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(51);
        let ds = Dataset::generate(&profile, 250, &mut rng);
        let alpha = 0.9;
        let params = SplitParams {
            cut: 30,
            i1: alpha / 1.4,
            ell: None,
            options: IndexOptions {
                repetitions: Repetitions::Fixed(10),
                ..IndexOptions::default()
            },
        };
        let index = SplitIndex::build(&ds, &profile, params, &mut rng);
        let mut hits = 0;
        let trials = 30;
        for t in 0..trials {
            let target = t % ds.n();
            let q = correlated_query(ds.vector(target), &profile, alpha, &mut rng);
            if let Some(m) = index.search(&q) {
                assert!(m.similarity >= index.threshold());
                if m.id == target {
                    hits += 1;
                }
            }
        }
        assert!(hits >= trials / 2, "hits={hits}/{trials}");
    }

    #[test]
    fn search_all_verifies_at_full_threshold() {
        let profile = BernoulliProfile::harmonic(500, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(52);
        let ds = Dataset::generate(&profile, 100, &mut rng);
        let params = SplitParams {
            cut: 10,
            i1: 0.5,
            ell: Some(0.25),
            options: IndexOptions {
                repetitions: Repetitions::Fixed(4),
                ..IndexOptions::default()
            },
        };
        let index = SplitIndex::build(&ds, &profile, params, &mut rng);
        assert_eq!(index.ell(), 0.25);
        let q = ds.vector(0).clone();
        let all = index.search_all(&q);
        // The identical vector must qualify whenever probing reaches it; all
        // results clear i1.
        for m in &all {
            assert!(m.similarity >= 0.5);
        }
    }

    #[test]
    #[should_panic(expected = "cut must split")]
    fn rejects_degenerate_cut() {
        let profile = BernoulliProfile::harmonic(100, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(53);
        let ds = Dataset::generate(&profile, 10, &mut rng);
        let params = SplitParams {
            cut: 0,
            i1: 0.5,
            ell: None,
            options: IndexOptions::default(),
        };
        let _ = SplitIndex::build(&ds, &profile, params, &mut rng);
    }
}
