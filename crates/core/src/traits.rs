//! The public search interface shared by the paper's structure and all
//! baselines.

use crate::plan::QueryPlan;
use skewsearch_sets::SparseVec;

/// Stable identifier of an indexed set, as returned by
/// [`SetSimilaritySearch::insert`] and consumed by
/// [`SetSimilaritySearch::remove`].
///
/// For the mutable structures in this workspace a `SetId` is the set's slot
/// in the index (the same value [`Match::id`] reports), it is assigned
/// monotonically at insertion, and it is **never reused**: removing a set
/// retires its id forever, and re-inserting identical content yields a fresh
/// id.
pub type SetId = usize;

/// Why a mutation was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutationError {
    /// The structure is read-only: it does not support incremental
    /// `insert`/`remove` (the trait defaults — brute force, prefix
    /// filtering, and MinHash keep the frozen-snapshot model for now).
    Unsupported,
}

impl std::fmt::Display for MutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutationError::Unsupported => {
                write!(f, "this structure does not support incremental mutation")
            }
        }
    }
}

impl std::error::Error for MutationError {}

/// Returned by [`SetSimilaritySearch::probe_plan_tagged_deadline`] when the
/// caller-supplied expiry check fired before the probe ran to completion.
///
/// The type is deliberately empty: a deadline carries no partial answer. A
/// probe either completes (byte-identical to the undeadlined probe) or it
/// reports this and the caller sees *nothing* — partial match lists would
/// break the byte-identity contracts the equivalence suites pin.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeadlineExceeded;

impl std::fmt::Display for DeadlineExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query deadline exceeded before the probe completed")
    }
}

impl std::error::Error for DeadlineExceeded {}

/// Resident heap bytes of a search structure, broken down by role — the
/// accounting behind bytes-per-set reporting in the benches and `repro`.
///
/// The numbers are *capacity-based estimates* (what the structure's own
/// arrays and maps hold on the heap), not allocator-measured RSS; they are
/// deterministic for a deterministic build, which is what lets benchmarks
/// compare substrates. Structures that do not account their memory report
/// all-zero stats (the trait default).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Bytes held by posting storage (bucket keys + offsets + id arenas, or
    /// the equivalent hash-map estimate for uncompressed substrates).
    pub posting_bytes: usize,
    /// Bytes held by the stored vectors themselves.
    pub vector_bytes: usize,
    /// Everything else: hash coefficients, interners, tombstone bitmaps.
    pub aux_bytes: usize,
}

impl MemoryStats {
    /// Total resident bytes across all categories.
    pub fn total(&self) -> usize {
        self.posting_bytes + self.vector_bytes + self.aux_bytes
    }

    /// Total bytes divided by a live-set count — the bytes/set budget the
    /// memory-diet work is measured in. Zero when `sets` is zero.
    pub fn bytes_per_set(&self, sets: usize) -> f64 {
        if sets == 0 {
            0.0
        } else {
            self.total() as f64 / sets as f64
        }
    }
}

impl std::fmt::Display for MemoryStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "postings={}B vectors={}B aux={}B total={}B",
            self.posting_bytes,
            self.vector_bytes,
            self.aux_bytes,
            self.total()
        )
    }
}

/// A verified search result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Match {
    /// Index of the matching vector in the indexed dataset.
    pub id: usize,
    /// Its Braun-Blanquet similarity to the query.
    pub similarity: f64,
}

/// A [`Match`] annotated with *where* in the probe sequence its candidate was
/// first discovered.
///
/// Every structure in this workspace probes in a sequence of **passes**
/// (LSF repetitions, MinHash bands) and, within a pass, a sequence of
/// **steps** (enumerated filters, band buckets); within one `(pass, step)`
/// bucket, candidates surface in ascending id (bucket insertion order). The
/// triple `(pass, step, id)` therefore totally orders candidate discovery,
/// which is exactly what the sharding layer
/// ([`crate::shard::ShardedIndex`]) needs to merge per-shard results back
/// into the unsharded first-discovery order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaggedMatch {
    /// Probe pass (repetition / band index) of the candidate's *first*
    /// discovery.
    pub pass: u32,
    /// Step within the pass (filter / bucket index) of the first discovery.
    pub step: u32,
    /// The verified match itself.
    pub hit: Match,
}

/// Common interface for set-similarity-search structures (the paper's
/// indexes and every baseline implement this, so experiments and joins are
/// generic over the structure).
///
/// All structures verify candidates exactly, so a returned [`Match`] always
/// satisfies `similarity ≥ threshold()`; randomized structures may *miss*
/// matches with the failure probability of their analysis.
///
/// # Examples
///
/// Build one of the paper's indexes and query it through the trait:
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use skewsearch_core::{CorrelatedIndex, CorrelatedParams, SetSimilaritySearch};
/// use skewsearch_datagen::{correlated_query, BernoulliProfile, Dataset};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let profile = BernoulliProfile::two_block(1000, 0.2, 0.02).unwrap();
/// let data = Dataset::generate(&profile, 300, &mut rng);
/// let index = CorrelatedIndex::build(
///     &data,
///     &profile,
///     CorrelatedParams::new(0.8).unwrap(),
///     &mut rng,
/// );
/// let q = correlated_query(data.vector(7), &profile, 0.8, &mut rng);
/// for m in index.search_all(&q) {
///     assert!(m.similarity >= index.threshold());
/// }
/// ```
pub trait SetSimilaritySearch {
    /// Returns some vector with Braun-Blanquet similarity at least
    /// [`SetSimilaritySearch::threshold`] to `q`, if the structure finds one.
    ///
    /// Stops at the first verified hit (the paper's query procedure: "If we
    /// find a sufficiently close x we return it").
    fn search(&self, q: &SparseVec) -> Option<Match>;

    /// Returns the *highest-similarity* verified candidate at or above the
    /// threshold (useful when several vectors pass).
    fn search_best(&self, q: &SparseVec) -> Option<Match> {
        self.search_all(q)
            .into_iter()
            .max_by(|a, b| a.similarity.total_cmp(&b.similarity))
    }

    /// All distinct vectors the structure can verify at or above the
    /// threshold.
    ///
    /// **Candidate-handling contract** (shared by every index in this
    /// workspace so batch results are consistent across structures):
    /// candidate ids are *deduplicated before verification* — each distinct
    /// candidate is verified exactly once — and matches appear in
    /// first-discovery probe order (repetitions/bands in build order, then
    /// filter enumeration order, then bucket insertion order). Callers must
    /// not rely on any similarity ordering; use
    /// [`SetSimilaritySearch::search_best`] for the maximum.
    fn search_all(&self, q: &SparseVec) -> Vec<Match>;

    /// [`SetSimilaritySearch::search_all`] with discovery tags: the same
    /// matches in the same order, each annotated with the `(pass, step)`
    /// coordinates of its candidate's first discovery (see [`TaggedMatch`]).
    ///
    /// The projection `search_all_tagged(q)[i].hit == search_all(q)[i]` must
    /// hold for every implementation. The default implementation tags the
    /// whole structure as a single pass with one match per step — order-
    /// preserving, but carrying no real probe structure. Index structures
    /// override it with genuine `(repetition, filter)` / `(band, bucket)`
    /// coordinates; the sharding layer's exact-merge guarantee
    /// ([`crate::shard::ShardedIndex`]) only holds for such genuine tags.
    fn search_all_tagged(&self, q: &SparseVec) -> Vec<TaggedMatch> {
        self.search_all(q)
            .into_iter()
            .enumerate()
            .map(|(step, hit)| TaggedMatch {
                pass: 0,
                step: step as u32,
                hit,
            })
            .collect()
    }

    /// The tagged analogue of [`SetSimilaritySearch::search`]: the first
    /// element of [`SetSimilaritySearch::search_all_tagged`], i.e. the
    /// verified match whose discovery coordinate `(pass, step, id)` is
    /// minimal.
    ///
    /// The default implementation materializes the full tagged list; index
    /// structures override it with a genuinely early-exiting probe (stop at
    /// the first verified hit), which is what lets the sharding layer answer
    /// `search` without running every shard to completion.
    fn search_first_tagged(&self, q: &SparseVec) -> Option<TaggedMatch> {
        self.search_all_tagged(q).into_iter().next()
    }

    /// Stage 1 of the enumerate→probe→verify pipeline: derives a reusable
    /// [`QueryPlan`] for `q` — per probe pass (repetition / band), the
    /// interned bucket keys the probe stage will look up, in enumeration
    /// order.
    ///
    /// **Contract**: probing the plan reproduces the fused search
    /// byte-identically,
    /// `self.probe_plan_tagged(&self.plan_query(q)) == self.search_all_tagged(q)`
    /// — for every implementation (`tests/plan_equivalence.rs` pins all
    /// index types). Planning pays the full enumeration up front (no
    /// early-exit laziness), which is what makes the plan broadcastable:
    /// the sharding layer enumerates once and ships the same plan to every
    /// dataset shard instead of re-enumerating per shard.
    ///
    /// The default implementation returns an *unplanned* plan (query only);
    /// the default probe stages then fall back to the fused path, so
    /// structures without a bucketed probe (brute force, prefix filtering)
    /// satisfy the contract with no override. Index structures override this
    /// together with [`SetSimilaritySearch::probe_plan_tagged`].
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::{rngs::StdRng, SeedableRng};
    /// use skewsearch_core::{CorrelatedIndex, CorrelatedParams, SetSimilaritySearch};
    /// use skewsearch_datagen::{correlated_query, BernoulliProfile, Dataset};
    ///
    /// let mut rng = StdRng::seed_from_u64(11);
    /// let profile = BernoulliProfile::two_block(600, 0.2, 0.02).unwrap();
    /// let data = Dataset::generate(&profile, 150, &mut rng);
    /// let index = CorrelatedIndex::build(
    ///     &data,
    ///     &profile,
    ///     CorrelatedParams::new(0.8).unwrap(),
    ///     &mut rng,
    /// );
    /// let q = correlated_query(data.vector(5), &profile, 0.8, &mut rng);
    /// let plan = index.plan_query(&q);
    /// // One enumeration, any number of probes — always the fused answer.
    /// assert_eq!(index.probe_plan(&plan), index.search_all(&q));
    /// assert_eq!(index.probe_plan_tagged(&plan), index.search_all_tagged(&q));
    /// ```
    fn plan_query(&self, q: &SparseVec) -> QueryPlan {
        QueryPlan::unplanned(q.clone())
    }

    /// Stages 2+3 of the pipeline: probes the inverted index with a
    /// precomputed [`QueryPlan`] and verifies the surfaced candidates —
    /// exactly `search_all(plan.query())`, without re-enumerating the
    /// query's filters when the plan is planned.
    ///
    /// Provided in terms of [`SetSimilaritySearch::probe_plan_tagged`]
    /// (the tag projection), so implementations override only the tagged
    /// variant.
    fn probe_plan(&self, plan: &QueryPlan) -> Vec<Match> {
        self.probe_plan_tagged(plan)
            .into_iter()
            .map(|t| t.hit)
            .collect()
    }

    /// The tagged probe stage: consumes a [`QueryPlan`] and returns exactly
    /// `search_all_tagged(plan.query())`. For a planned plan, overriding
    /// implementations touch only the inverted index (bucket lookups +
    /// verification) — never the enumeration engine; for an unplanned plan
    /// they fall back to the fused path. The default implementation is that
    /// fallback.
    fn probe_plan_tagged(&self, plan: &QueryPlan) -> Vec<TaggedMatch> {
        self.search_all_tagged(plan.query())
    }

    /// The early-exiting probe stage: exactly
    /// `search_first_tagged(plan.query())`, stopping at the first verified
    /// hit without re-enumerating when the plan is planned.
    fn probe_plan_first_tagged(&self, plan: &QueryPlan) -> Option<TaggedMatch> {
        self.probe_plan_tagged(plan).into_iter().next()
    }

    /// Deadline-aware [`SetSimilaritySearch::probe_plan_tagged`]: polls the
    /// caller-supplied `expired` check at the structure's natural
    /// cancellation points and abandons the probe with
    /// [`DeadlineExceeded`] as soon as it fires.
    ///
    /// This is the core hook behind the query service's per-request
    /// deadlines. The check is an opaque closure (typically comparing
    /// `Instant::now()` against an absolute deadline on the *caller's*
    /// side), which keeps this crate itself wall-clock-free: no ambient
    /// time source is read on the query path, and the check can only decide
    /// *whether* the probe finishes — never which candidates surface or in
    /// what order.
    ///
    /// **Contract** (pinned by `tests/service_equivalence.rs` and the core
    /// unit tests): with a check that never fires, the `Ok` value is
    /// byte-identical to [`SetSimilaritySearch::probe_plan_tagged`]; with a
    /// check that has already fired, the structure returns `Err` without
    /// probing. There is no partial-result mode.
    ///
    /// The default polls once up front and then runs the full probe —
    /// correct for every structure, coarse for long probes. [`crate::LsfIndex`]
    /// overrides it to re-poll between repetitions (the pass boundary of the
    /// enumerate→probe→verify pipeline), and [`crate::shard::ShardedIndex`]
    /// threads the same check through its shard fan-out so each shard
    /// cancels independently.
    fn probe_plan_tagged_deadline(
        &self,
        plan: &QueryPlan,
        expired: &(dyn Fn() -> bool + Sync),
    ) -> Result<Vec<TaggedMatch>, DeadlineExceeded> {
        if expired() {
            return Err(DeadlineExceeded);
        }
        Ok(self.probe_plan_tagged(plan))
    }

    /// Answers a batch of queries: element `i` of the result is exactly
    /// `self.search_all(&queries[i])`.
    ///
    /// The default implementation is the sequential loop. Index structures
    /// override it with a thread-pooled implementation (std scoped threads,
    /// chunked work stealing via an atomic cursor — the worker count comes
    /// from build-time options such as `IndexOptions::query_threads`), and
    /// guarantee **identical results for every worker count** — batching is
    /// a throughput optimization, never a semantics change.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::{rngs::StdRng, SeedableRng};
    /// use skewsearch_core::{CorrelatedIndex, CorrelatedParams, SetSimilaritySearch};
    /// use skewsearch_datagen::{correlated_query, BernoulliProfile, Dataset};
    ///
    /// let mut rng = StdRng::seed_from_u64(3);
    /// let profile = BernoulliProfile::two_block(800, 0.2, 0.02).unwrap();
    /// let data = Dataset::generate(&profile, 200, &mut rng);
    /// let index = CorrelatedIndex::build(
    ///     &data,
    ///     &profile,
    ///     CorrelatedParams::new(0.8).unwrap(),
    ///     &mut rng,
    /// );
    /// let queries: Vec<_> = (0..10)
    ///     .map(|t| correlated_query(data.vector(t), &profile, 0.8, &mut rng))
    ///     .collect();
    /// let batched = index.search_batch(&queries);
    /// assert_eq!(batched.len(), queries.len());
    /// // Batch answers are exactly the per-query answers, in order.
    /// for (q, matches) in queries.iter().zip(&batched) {
    ///     assert_eq!(matches, &index.search_all(q));
    /// }
    /// ```
    fn search_batch(&self, queries: &[SparseVec]) -> Vec<Vec<Match>> {
        queries.iter().map(|q| self.search_all(q)).collect()
    }

    /// Batch [`SetSimilaritySearch::search_best`]: element `i` of the result
    /// is exactly `self.search_best(&queries[i])`. Same override and
    /// identical-results guarantees as [`SetSimilaritySearch::search_batch`].
    fn search_batch_best(&self, queries: &[SparseVec]) -> Vec<Option<Match>> {
        queries.iter().map(|q| self.search_best(q)).collect()
    }

    /// Incrementally indexes `set`, returning its stable [`SetId`].
    ///
    /// The default is read-only: it returns
    /// [`MutationError::Unsupported`] without touching the structure, so
    /// baselines without an incremental build (brute force, prefix
    /// filtering, MinHash) satisfy the trait unchanged. Mutable structures
    /// ([`crate::LsfIndex`] and its wrappers, [`crate::shard::ShardedIndex`])
    /// override it with the log-structured delta-segment insert.
    ///
    /// **Contract for overriders**: when
    /// [`SetSimilaritySearch::supports_mutation`] returns `true`, `insert`
    /// and [`SetSimilaritySearch::remove`] must be infallible (always `Ok`) —
    /// the sharded wrapper fans one logical mutation out across shards and
    /// relies on this to stay all-or-nothing. After any interleaving of
    /// inserts, removes, and queries, every answer surface must be
    /// byte-identical to a fresh build over the surviving sets (pinned by
    /// `tests/mutation_equivalence.rs`).
    fn insert(&mut self, set: SparseVec) -> Result<SetId, MutationError> {
        let _ = set;
        Err(MutationError::Unsupported)
    }

    /// Removes the set with id `id`. `Ok(true)` when a live set was removed,
    /// `Ok(false)` when `id` was never assigned or was already removed —
    /// removal is idempotent, and a retired id never comes back.
    ///
    /// Default: read-only, like [`SetSimilaritySearch::insert`].
    fn remove(&mut self, id: SetId) -> Result<bool, MutationError> {
        let _ = id;
        Err(MutationError::Unsupported)
    }

    /// True when this structure supports incremental
    /// [`SetSimilaritySearch::insert`]/[`SetSimilaritySearch::remove`]
    /// (and guarantees they are infallible). Default: `false`.
    fn supports_mutation(&self) -> bool {
        false
    }

    /// Resident heap bytes of this structure, broken down by role (see
    /// [`MemoryStats`]). The default reports all-zero stats, meaning "not
    /// accounted" — the indexes in this workspace override it; divide by
    /// [`SetSimilaritySearch::len`] (or use [`MemoryStats::bytes_per_set`])
    /// for the bytes/set budget.
    fn memory_stats(&self) -> MemoryStats {
        MemoryStats::default()
    }

    /// Total resident heap bytes — `memory_stats().total()`.
    fn memory_bytes(&self) -> usize {
        self.memory_stats().total()
    }

    /// The verification threshold `b₁`.
    fn threshold(&self) -> f64;

    /// Number of **live** indexed vectors (for mutable structures, slots
    /// retired by [`SetSimilaritySearch::remove`] no longer count).
    fn len(&self) -> usize;

    /// True iff no vectors are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal trait object: a brute-force stub over two fixed vectors used
    /// to exercise the default method implementations.
    struct TwoVec {
        data: Vec<SparseVec>,
        t: f64,
    }

    impl SetSimilaritySearch for TwoVec {
        fn search(&self, q: &SparseVec) -> Option<Match> {
            self.search_all(q).into_iter().next()
        }
        fn search_all(&self, q: &SparseVec) -> Vec<Match> {
            self.data
                .iter()
                .enumerate()
                .map(|(id, x)| Match {
                    id,
                    similarity: skewsearch_sets::similarity::braun_blanquet(x, q),
                })
                .filter(|m| m.similarity >= self.t)
                .collect()
        }
        fn threshold(&self) -> f64 {
            self.t
        }
        fn len(&self) -> usize {
            self.data.len()
        }
    }

    #[test]
    fn default_batch_methods_equal_sequential_loops() {
        let s = TwoVec {
            data: vec![
                SparseVec::from_unsorted(vec![1, 2, 3, 4]),
                SparseVec::from_unsorted(vec![1, 2, 3]),
                SparseVec::from_unsorted(vec![9, 10]),
            ],
            t: 0.4,
        };
        let queries = vec![
            SparseVec::from_unsorted(vec![1, 2, 3]),
            SparseVec::from_unsorted(vec![9, 10]),
            SparseVec::empty(),
        ];
        let all: Vec<_> = queries.iter().map(|q| s.search_all(q)).collect();
        let best: Vec<_> = queries.iter().map(|q| s.search_best(q)).collect();
        assert_eq!(s.search_batch(&queries), all);
        assert_eq!(s.search_batch_best(&queries), best);
    }

    #[test]
    fn default_tagged_search_projects_to_search_all() {
        let s = TwoVec {
            data: vec![
                SparseVec::from_unsorted(vec![1, 2, 3, 4]),
                SparseVec::from_unsorted(vec![1, 2, 3]),
            ],
            t: 0.4,
        };
        let q = SparseVec::from_unsorted(vec![1, 2, 3]);
        let tagged = s.search_all_tagged(&q);
        let plain = s.search_all(&q);
        assert_eq!(tagged.len(), plain.len());
        for (i, (t, m)) in tagged.iter().zip(&plain).enumerate() {
            assert_eq!(&t.hit, m);
            assert_eq!(t.pass, 0);
            assert_eq!(t.step, i as u32);
        }
    }

    #[test]
    fn default_plan_hooks_fall_back_to_fused_search() {
        let s = TwoVec {
            data: vec![
                SparseVec::from_unsorted(vec![1, 2, 3, 4]),
                SparseVec::from_unsorted(vec![1, 2, 3]),
            ],
            t: 0.4,
        };
        for q in [SparseVec::from_unsorted(vec![1, 2, 3]), SparseVec::empty()] {
            let plan = s.plan_query(&q);
            assert!(!plan.is_planned(), "default plan is unplanned");
            assert_eq!(plan.query(), &q);
            assert_eq!(s.probe_plan(&plan), s.search_all(&q));
            assert_eq!(s.probe_plan_tagged(&plan), s.search_all_tagged(&q));
            assert_eq!(s.probe_plan_first_tagged(&plan), s.search_first_tagged(&q));
        }
    }

    #[test]
    fn default_deadline_probe_is_all_or_nothing() {
        let s = TwoVec {
            data: vec![
                SparseVec::from_unsorted(vec![1, 2, 3, 4]),
                SparseVec::from_unsorted(vec![1, 2, 3]),
            ],
            t: 0.4,
        };
        let q = SparseVec::from_unsorted(vec![1, 2, 3]);
        let plan = s.plan_query(&q);
        // Never-firing check: byte-identical to the undeadlined probe.
        assert_eq!(
            s.probe_plan_tagged_deadline(&plan, &|| false),
            Ok(s.probe_plan_tagged(&plan))
        );
        // Already-fired check: no partial answer, just the typed error.
        assert_eq!(
            s.probe_plan_tagged_deadline(&plan, &|| true),
            Err(DeadlineExceeded)
        );
    }

    #[test]
    fn search_best_picks_maximum() {
        let s = TwoVec {
            data: vec![
                SparseVec::from_unsorted(vec![1, 2, 3, 4]),
                SparseVec::from_unsorted(vec![1, 2, 3]),
            ],
            t: 0.1,
        };
        let q = SparseVec::from_unsorted(vec![1, 2, 3]);
        let best = s.search_best(&q).unwrap();
        assert_eq!(best.id, 1);
        assert_eq!(best.similarity, 1.0);
        assert!(!s.is_empty());
        assert_eq!(s.len(), 2);
    }
}
