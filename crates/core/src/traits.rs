//! The public search interface shared by the paper's structure and all
//! baselines.

use skewsearch_sets::SparseVec;

/// A verified search result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Match {
    /// Index of the matching vector in the indexed dataset.
    pub id: usize,
    /// Its Braun-Blanquet similarity to the query.
    pub similarity: f64,
}

/// Common interface for set-similarity-search structures (the paper's
/// indexes and every baseline implement this, so experiments and joins are
/// generic over the structure).
///
/// All structures verify candidates exactly, so a returned [`Match`] always
/// satisfies `similarity ≥ threshold()`; randomized structures may *miss*
/// matches with the failure probability of their analysis.
pub trait SetSimilaritySearch {
    /// Returns some vector with Braun-Blanquet similarity at least
    /// [`SetSimilaritySearch::threshold`] to `q`, if the structure finds one.
    ///
    /// Stops at the first verified hit (the paper's query procedure: "If we
    /// find a sufficiently close x we return it").
    fn search(&self, q: &SparseVec) -> Option<Match>;

    /// Returns the *highest-similarity* verified candidate at or above the
    /// threshold (useful when several vectors pass).
    fn search_best(&self, q: &SparseVec) -> Option<Match> {
        self.search_all(q)
            .into_iter()
            .max_by(|a, b| a.similarity.partial_cmp(&b.similarity).unwrap())
    }

    /// All distinct vectors the structure can verify at or above the
    /// threshold (no order guarantee).
    fn search_all(&self, q: &SparseVec) -> Vec<Match>;

    /// The verification threshold `b₁`.
    fn threshold(&self) -> f64;

    /// Number of indexed vectors.
    fn len(&self) -> usize;

    /// True iff no vectors are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal trait object: a brute-force stub over two fixed vectors used
    /// to exercise the default method implementations.
    struct TwoVec {
        data: Vec<SparseVec>,
        t: f64,
    }

    impl SetSimilaritySearch for TwoVec {
        fn search(&self, q: &SparseVec) -> Option<Match> {
            self.search_all(q).into_iter().next()
        }
        fn search_all(&self, q: &SparseVec) -> Vec<Match> {
            self.data
                .iter()
                .enumerate()
                .map(|(id, x)| Match {
                    id,
                    similarity: skewsearch_sets::similarity::braun_blanquet(x, q),
                })
                .filter(|m| m.similarity >= self.t)
                .collect()
        }
        fn threshold(&self) -> f64 {
            self.t
        }
        fn len(&self) -> usize {
            self.data.len()
        }
    }

    #[test]
    fn search_best_picks_maximum() {
        let s = TwoVec {
            data: vec![
                SparseVec::from_unsorted(vec![1, 2, 3, 4]),
                SparseVec::from_unsorted(vec![1, 2, 3]),
            ],
            t: 0.1,
        };
        let q = SparseVec::from_unsorted(vec![1, 2, 3]);
        let best = s.search_best(&q).unwrap();
        assert_eq!(best.id, 1);
        assert_eq!(best.similarity, 1.0);
        assert!(!s.is_empty());
        assert_eq!(s.len(), 2);
    }
}
