//! Property-based tests for the path engine and schemes.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use skewsearch_core::{
    enumerate_filters, AdversarialScheme, ChosenPathScheme, CorrelatedScheme, ThresholdScheme,
    DEFAULT_NODE_BUDGET,
};
use skewsearch_datagen::BernoulliProfile;
use skewsearch_hashing::{PathHasherStack, PathKey};
use skewsearch_sets::SparseVec;

fn arb_profile_and_vector() -> impl Strategy<Value = (BernoulliProfile, SparseVec)> {
    (
        prop::collection::vec(0.02f64..0.45, 20..100),
        prop::collection::vec(any::<bool>(), 20..100),
    )
        .prop_map(|(ps, mask)| {
            let d = ps.len();
            let profile = BernoulliProfile::new(ps).unwrap();
            let dims = mask
                .into_iter()
                .take(d)
                .enumerate()
                .filter_map(|(i, b)| b.then_some(i as u32))
                .collect();
            (profile, SparseVec::from_sorted(dims))
        })
}

fn run<S: ThresholdScheme>(
    x: &SparseVec,
    profile: &BernoulliProfile,
    scheme: &S,
    stack: &PathHasherStack,
) -> Vec<PathKey> {
    let mut out = Vec::new();
    enumerate_filters(x, profile, scheme, stack, DEFAULT_NODE_BUDGET, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn enumeration_is_a_function_of_vector_and_stack(
        (profile, x) in arb_profile_and_vector(),
        seed in any::<u64>(),
    ) {
        let scheme = CorrelatedScheme::new(0.6, 256, &profile);
        let mut rng = StdRng::seed_from_u64(seed);
        let stack = PathHasherStack::sample(&mut rng, scheme.depth_bound());
        let a = run(&x, &profile, &scheme, &stack);
        let b = run(&x, &profile, &scheme, &stack);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn correlated_filters_are_monotone_in_the_vector(
        (profile, x) in arb_profile_and_vector(),
        seed in any::<u64>(),
        extra in prop::collection::vec(any::<u16>(), 1..5),
    ) {
        // CorrelatedScheme thresholds depend only on (depth, dim), so adding
        // set bits can only add paths: x ⊆ y ⇒ F(x) ⊆ F(y). The property
        // holds for *complete* enumerations; a budget truncation cuts the two
        // traversals at different frontiers, so truncated runs are skipped
        // (they are the explicitly-documented graceful-degradation mode).
        let scheme = CorrelatedScheme::new(0.6, 256, &profile);
        let mut rng = StdRng::seed_from_u64(seed);
        let stack = PathHasherStack::sample(&mut rng, scheme.depth_bound());
        let mut ydims = x.dims().to_vec();
        for e in extra {
            ydims.push(e as u32 % profile.d() as u32);
        }
        let y = SparseVec::from_unsorted(ydims);
        let mut fx = Vec::new();
        let sx = enumerate_filters(&x, &profile, &scheme, &stack, DEFAULT_NODE_BUDGET, &mut fx);
        let mut fy = Vec::new();
        let sy = enumerate_filters(&y, &profile, &scheme, &stack, DEFAULT_NODE_BUDGET, &mut fy);
        prop_assume!(!sx.truncated && !sy.truncated);
        let fy_set: std::collections::HashSet<_> = fy.into_iter().collect();
        for k in fx {
            prop_assert!(fy_set.contains(&k), "filter of x missing from F(y)");
        }
    }

    #[test]
    fn disjoint_vectors_share_no_filters(
        ps in prop::collection::vec(0.05f64..0.4, 40..80),
        seed in any::<u64>(),
        cut_frac in 0.3f64..0.7,
    ) {
        let d = ps.len();
        let profile = BernoulliProfile::new(ps).unwrap();
        let cut = ((d as f64 * cut_frac) as u32).clamp(1, d as u32 - 1);
        let a = SparseVec::from_sorted((0..cut).collect());
        let b = SparseVec::from_sorted((cut..d as u32).collect());
        let scheme = AdversarialScheme::new(0.5, 128, &profile);
        let mut rng = StdRng::seed_from_u64(seed);
        let stack = PathHasherStack::sample(&mut rng, scheme.depth_bound());
        let fa: std::collections::HashSet<_> =
            run(&a, &profile, &scheme, &stack).into_iter().collect();
        let fb = run(&b, &profile, &scheme, &stack);
        for k in fb {
            prop_assert!(!fa.contains(&k));
        }
    }

    #[test]
    fn budget_zero_emits_nothing_and_truncates(
        (profile, x) in arb_profile_and_vector(),
        seed in any::<u64>(),
    ) {
        prop_assume!(!x.is_empty());
        let scheme = CorrelatedScheme::new(0.6, 256, &profile);
        let mut rng = StdRng::seed_from_u64(seed);
        let stack = PathHasherStack::sample(&mut rng, scheme.depth_bound());
        let mut out = Vec::new();
        let stats = enumerate_filters(&x, &profile, &scheme, &stack, 0, &mut out);
        prop_assert!(out.is_empty());
        prop_assert!(stats.truncated);
    }

    #[test]
    fn chosen_path_depth_matches_formula(n in 4usize..100_000, b2 in 0.05f64..0.9) {
        let b1 = (b2 + 1.0) / 2.0; // any b1 in (b2, 1)
        let scheme = ChosenPathScheme::new(b1, b2, n);
        let expect = ((n as f64).ln() / (1.0 / b2).ln()).ceil().max(1.0) as usize;
        prop_assert_eq!(scheme.k(), expect);
    }

    #[test]
    fn scheme_thresholds_are_finite_and_nonnegative(
        (profile, x) in arb_profile_and_vector(),
        depth in 0usize..10,
    ) {
        let adv = AdversarialScheme::new(0.5, 256, &profile);
        let cor = CorrelatedScheme::new(0.6, 256, &profile);
        for i in x.iter() {
            for s in [adv.threshold(x.weight(), depth, i), cor.threshold(x.weight(), depth, i)] {
                prop_assert!(s.is_finite());
                prop_assert!(s >= 0.0);
                prop_assert!(s <= 1.0, "schemes clamp to [0,1]");
            }
        }
    }
}
