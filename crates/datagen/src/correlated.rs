//! α-correlated query generation (Definition 3 of the paper).
//!
//! `q ~ D_α(x)`: for each coordinate `i` independently, `q_i = x_i` with
//! probability `α` and `q_i ~ Bernoulli(p_i)` with probability `1 − α`.
//! Marginally `q ~ D`, and each coordinate pair `(x_i, q_i)` has Pearson
//! correlation `α`.

use crate::profile::BernoulliProfile;
use crate::sampler::VectorSampler;
use rand::Rng;
use skewsearch_sets::SparseVec;

/// Draws `q ~ D_α(x)`.
///
/// Implementation note: the definition says "flip a coin per coordinate";
/// materializing `d` coins is `O(d)`. Observe that `q_i` can be 1 only when
/// `x_i = 1` (coin = copy) or when the independent noise draw `n_i = 1`
/// (coin = noise), so it suffices to draw the noise vector `n ~ D` with the
/// skip sampler and resolve coins only on `x ∪ n`:
///
/// * `i ∈ x ∩ n`: `q_i = 1` regardless of the coin;
/// * `i ∈ x \ n`: `q_i = 1` iff the coin chose *copy* (probability `α`);
/// * `i ∈ n \ x`: `q_i = 1` iff the coin chose *noise* (probability `1 − α`).
///
/// This is an exact sampler for `D_α(x)` in expected time `O(|x| + E|n|)`.
pub fn correlated_query<R: Rng + ?Sized>(
    x: &SparseVec,
    profile: &BernoulliProfile,
    alpha: f64,
    rng: &mut R,
) -> SparseVec {
    assert!((0.0..=1.0).contains(&alpha), "alpha must lie in [0,1]");
    let sampler = VectorSampler::new(profile);
    correlated_query_with(x, &sampler, alpha, rng)
}

/// Same as [`correlated_query`] but reuses a prebuilt sampler (the run
/// decomposition is profile-dependent and worth amortizing across queries).
pub fn correlated_query_with<R: Rng + ?Sized>(
    x: &SparseVec,
    sampler: &VectorSampler,
    alpha: f64,
    rng: &mut R,
) -> SparseVec {
    assert!((0.0..=1.0).contains(&alpha), "alpha must lie in [0,1]");
    let noise = sampler.sample(rng);
    let mut dims = Vec::with_capacity(x.weight().max(noise.weight()));
    let xd = x.dims();
    let nd = noise.dims();
    let (mut i, mut j) = (0usize, 0usize);
    while i < xd.len() || j < nd.len() {
        let xi = xd.get(i).copied();
        let nj = nd.get(j).copied();
        match (xi, nj) {
            (Some(a), Some(b)) if a == b => {
                dims.push(a);
                i += 1;
                j += 1;
            }
            (Some(a), b) if b.is_none_or(|b| a < b) => {
                // i ∈ x \ n: kept iff the coin copies x.
                if rng.random::<f64>() < alpha {
                    dims.push(a);
                }
                i += 1;
            }
            (_, Some(b)) => {
                // i ∈ n \ x: kept iff the coin picks noise.
                if rng.random::<f64>() >= alpha {
                    dims.push(b);
                }
                j += 1;
            }
            _ => unreachable!("loop condition guarantees one side present"),
        }
    }
    SparseVec::from_sorted(dims)
}

/// Draws a data vector `x ~ D` and a query `q ~ D_α(x)` in one call.
pub fn correlated_pair<R: Rng + ?Sized>(
    profile: &BernoulliProfile,
    alpha: f64,
    rng: &mut R,
) -> (SparseVec, SparseVec) {
    let sampler = VectorSampler::new(profile);
    let x = sampler.sample(rng);
    let q = correlated_query_with(&x, &sampler, alpha, rng);
    (x, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use skewsearch_sets::similarity;

    #[test]
    fn alpha_one_copies_x_exactly() {
        let profile = BernoulliProfile::uniform(200, 0.2).unwrap();
        let sampler = VectorSampler::new(&profile);
        let mut rng = StdRng::seed_from_u64(1);
        let x = sampler.sample(&mut rng);
        let q = correlated_query(&x, &profile, 1.0, &mut rng);
        assert_eq!(q, x);
    }

    #[test]
    fn alpha_zero_is_independent_of_x() {
        // With alpha = 0, E[B(x, q)] should match two independent draws.
        let profile = BernoulliProfile::uniform(400, 0.25).unwrap();
        let sampler = VectorSampler::new(&profile);
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 400;
        let mut s_corr = 0.0;
        let mut s_indep = 0.0;
        for _ in 0..trials {
            let x = sampler.sample(&mut rng);
            let q = correlated_query(&x, &profile, 0.0, &mut rng);
            let z = sampler.sample(&mut rng);
            s_corr += similarity::braun_blanquet(&x, &q);
            s_indep += similarity::braun_blanquet(&x, &z);
        }
        let (a, b) = (s_corr / trials as f64, s_indep / trials as f64);
        assert!((a - b).abs() < 0.02, "corr={a} indep={b}");
    }

    #[test]
    fn marginal_of_q_is_d() {
        // Pr[q_i = 1] must equal p_i for every i (Definition 3 remark).
        let profile = BernoulliProfile::new(vec![0.5, 0.2, 0.05, 0.4]).unwrap();
        let sampler = VectorSampler::new(&profile);
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 30_000;
        let mut counts = [0u32; 4];
        for _ in 0..trials {
            let x = sampler.sample(&mut rng);
            let q = correlated_query(&x, &profile, 0.6, &mut rng);
            for i in q.iter() {
                counts[i as usize] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let emp = c as f64 / trials as f64;
            let p = profile.p(i as u32);
            let sigma = (p * (1.0 - p) / trials as f64).sqrt();
            assert!(
                (emp - p).abs() < 5.0 * sigma,
                "dim {i}: emp={emp} expected={p}"
            );
        }
    }

    #[test]
    fn per_coordinate_correlation_is_alpha() {
        // Empirical Pearson correlation of (x_i, q_i) across trials ≈ alpha.
        let alpha = 0.65;
        let profile = BernoulliProfile::new(vec![0.3; 8]).unwrap();
        let sampler = VectorSampler::new(&profile);
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 30_000;
        let dim = 5u32;
        let (mut sx, mut sq, mut sxq) = (0f64, 0f64, 0f64);
        for _ in 0..trials {
            let x = sampler.sample(&mut rng);
            let q = correlated_query(&x, &profile, alpha, &mut rng);
            let xv = x.contains(dim) as u32 as f64;
            let qv = q.contains(dim) as u32 as f64;
            sx += xv;
            sq += qv;
            sxq += xv * qv;
        }
        let n = trials as f64;
        let (mx, mq) = (sx / n, sq / n);
        let cov = sxq / n - mx * mq;
        let corr = cov / ((mx * (1.0 - mx)).sqrt() * (mq * (1.0 - mq)).sqrt());
        assert!((corr - alpha).abs() < 0.03, "corr={corr}");
    }

    #[test]
    fn expected_intersection_matches_formula() {
        // E|x ∩ q| = Σ p_i (α + (1−α)p_i)   (paper's Lemma 10 computation).
        let profile = BernoulliProfile::two_block(600, 0.3, 0.02).unwrap();
        let alpha = 0.5;
        let expect: f64 = profile
            .ps()
            .iter()
            .map(|&p| p * (alpha + (1.0 - alpha) * p))
            .sum();
        let sampler = VectorSampler::new(&profile);
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 3000;
        let mean: f64 = (0..trials)
            .map(|_| {
                let x = sampler.sample(&mut rng);
                let q = correlated_query(&x, &profile, alpha, &mut rng);
                x.intersection_len(&q) as f64
            })
            .sum::<f64>()
            / trials as f64;
        assert!((mean - expect).abs() < 0.5, "mean={mean} expect={expect}");
    }

    #[test]
    fn correlated_pair_returns_correlated_sets() {
        let profile = BernoulliProfile::uniform(500, 0.2).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let (x, q) = correlated_pair(&profile, 0.8, &mut rng);
        // At alpha=0.8, similarity should be far above the independent ~0.2.
        assert!(similarity::braun_blanquet(&x, &q) > 0.5);
    }
}
