//! Sampled datasets `S ~ D^n` and their empirical statistics.

use crate::profile::BernoulliProfile;
use crate::sampler::VectorSampler;
use rand::Rng;
use skewsearch_sets::SparseVec;

/// A collection of sparse vectors over universe `[d]`, usually (but not
/// necessarily) sampled from a [`BernoulliProfile`].
#[derive(Clone, Debug)]
pub struct Dataset {
    vectors: Vec<SparseVec>,
    d: usize,
}

impl Dataset {
    /// Samples `n` vectors independently from `profile`.
    pub fn generate<R: Rng + ?Sized>(profile: &BernoulliProfile, n: usize, rng: &mut R) -> Self {
        let sampler = VectorSampler::new(profile);
        let vectors = (0..n).map(|_| sampler.sample(rng)).collect();
        Self {
            vectors,
            d: profile.d(),
        }
    }

    /// Wraps existing vectors. `d` must exceed every dimension id.
    ///
    /// # Panics
    /// Panics if any vector references a dimension `≥ d`.
    pub fn from_vectors(vectors: Vec<SparseVec>, d: usize) -> Self {
        for (idx, v) in vectors.iter().enumerate() {
            if let Some(&max) = v.dims().last() {
                assert!(
                    (max as usize) < d,
                    "vector {idx} references dim {max} >= d = {d}"
                );
            }
        }
        Self { vectors, d }
    }

    /// Number of vectors `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.vectors.len()
    }

    /// Universe size `d`.
    #[inline]
    pub fn d(&self) -> usize {
        self.d
    }

    /// The `i`-th vector.
    #[inline]
    pub fn vector(&self, i: usize) -> &SparseVec {
        &self.vectors[i]
    }

    /// All vectors.
    #[inline]
    pub fn vectors(&self) -> &[SparseVec] {
        &self.vectors
    }

    /// Mean Hamming weight.
    pub fn avg_weight(&self) -> f64 {
        if self.vectors.is_empty() {
            return 0.0;
        }
        self.vectors.iter().map(|v| v.weight()).sum::<usize>() as f64 / self.n() as f64
    }

    /// Empirical item frequencies `p̂_j = |{x ∈ S : x_j = 1}| / n` (length `d`).
    pub fn empirical_frequencies(&self) -> Vec<f64> {
        let mut counts = vec![0u32; self.d];
        for v in &self.vectors {
            for i in v.iter() {
                counts[i as usize] += 1;
            }
        }
        let n = self.n().max(1) as f64;
        counts.into_iter().map(|c| c as f64 / n).collect()
    }

    /// Empirical frequencies sorted in decreasing order — the `p_j` ranking
    /// used by Figure 2 (dimension identities are discarded).
    pub fn sorted_frequencies(&self) -> Vec<f64> {
        let mut f = self.empirical_frequencies();
        f.sort_by(|a, b| b.total_cmp(a));
        f
    }

    /// Estimates the generating [`BernoulliProfile`] from this dataset by
    /// occurrence counting with Laplace smoothing — the §9 route to dropping
    /// the known-probabilities assumption. See
    /// [`BernoulliProfile::estimate_from_counts`].
    pub fn estimate_profile(&self, smoothing: f64) -> BernoulliProfile {
        let mut counts = vec![0u32; self.d];
        for v in &self.vectors {
            for i in v.iter() {
                counts[i as usize] += 1;
            }
        }
        BernoulliProfile::estimate_from_counts(&counts, self.n().max(1), smoothing)
            // lint:allow(no-panic-in-lib, Laplace smoothing keeps every estimate strictly inside the unit interval)
            .expect("smoothed estimates are always valid probabilities")
    }

    /// Minimum and maximum Hamming weight across vectors (0,0 when empty).
    pub fn weight_range(&self) -> (usize, usize) {
        let mut lo = usize::MAX;
        let mut hi = 0usize;
        for v in &self.vectors {
            lo = lo.min(v.weight());
            hi = hi.max(v.weight());
        }
        if self.vectors.is_empty() {
            (0, 0)
        } else {
            (lo, hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn generate_has_right_shape() {
        let profile = BernoulliProfile::uniform(100, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let ds = Dataset::generate(&profile, 50, &mut rng);
        assert_eq!(ds.n(), 50);
        assert_eq!(ds.d(), 100);
        assert_eq!(ds.vectors().len(), 50);
    }

    #[test]
    fn empirical_frequencies_match_profile() {
        let profile = BernoulliProfile::two_block(100, 0.4, 0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let ds = Dataset::generate(&profile, 5000, &mut rng);
        let f = ds.empirical_frequencies();
        // Average over each block.
        let head: f64 = f[..50].iter().sum::<f64>() / 50.0;
        let tail: f64 = f[50..].iter().sum::<f64>() / 50.0;
        assert!((head - 0.4).abs() < 0.01, "head={head}");
        assert!((tail - 0.05).abs() < 0.005, "tail={tail}");
    }

    #[test]
    fn sorted_frequencies_are_sorted() {
        let profile = BernoulliProfile::new(vec![0.05, 0.4, 0.2]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let ds = Dataset::generate(&profile, 2000, &mut rng);
        let f = ds.sorted_frequencies();
        assert!(f.windows(2).all(|w| w[0] >= w[1]));
        assert!((f[0] - 0.4).abs() < 0.05);
    }

    #[test]
    fn from_vectors_validates_universe() {
        let v = vec![SparseVec::from_unsorted(vec![0, 5])];
        let ds = Dataset::from_vectors(v, 6);
        assert_eq!(ds.d(), 6);
    }

    #[test]
    #[should_panic(expected = "references dim")]
    fn from_vectors_rejects_out_of_range() {
        let v = vec![SparseVec::from_unsorted(vec![0, 9])];
        let _ = Dataset::from_vectors(v, 6);
    }

    #[test]
    fn weight_stats() {
        let v = vec![
            SparseVec::from_unsorted(vec![0]),
            SparseVec::from_unsorted(vec![0, 1, 2]),
        ];
        let ds = Dataset::from_vectors(v, 3);
        assert_eq!(ds.avg_weight(), 2.0);
        assert_eq!(ds.weight_range(), (1, 3));
    }
}
