//! Exact computation of the paper's Table 1 independence ratios.
//!
//! §8 tests the model assumption
//! `Pr_{x∈S}[∀_{j∈I} x_j = 1] ≤ ∏_{j∈I} p_j` by computing, for `I` uniform
//! over size-`k` subsets of `[d]` (`k ∈ {2,3}`), the ratio
//!
//! ```text
//!          E_I[ Pr_{x∈S}[∀_{j∈I} x_j = 1] ]
//! ratio_k = --------------------------------
//!          E_I[ ∏_{j∈I} p_j ]
//! ```
//!
//! Both expectations admit **closed forms**, so no Monte Carlo sampling over
//! `I` is needed:
//!
//! * numerator: the number of (vector, size-`k` subset of its 1s) incidences
//!   is `Σ_{x∈S} C(|x|, k)`, hence
//!   `E_I[Pr_x[…]] = (Σ_x C(|x|,k)) / (n · C(d,k))`;
//! * denominator: `E_I[∏ p_j] = e_k(p_1,…,p_d) / C(d,k)` where `e_k` is the
//!   `k`-th elementary symmetric polynomial, computed from power sums via
//!   Newton's identities: `e₂ = (P₁² − P₂)/2`,
//!   `e₃ = (P₁³ − 3P₁P₂ + 2P₃)/6` with `P_m = Σ p^m`.
//!
//! The `C(d,k)` factors cancel in the ratio.

use crate::dataset::Dataset;

/// The Table 1 quantities for one dataset.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IndependenceReport {
    /// Ratio for `|I| = 2` (1.0 = perfectly independent; > 1 = positive
    /// dependence).
    pub ratio2: f64,
    /// Ratio for `|I| = 3`.
    pub ratio3: f64,
    /// Numerator `Σ_x C(|x|,2) / n` (average number of 1-pairs per vector).
    pub obs_pairs: f64,
    /// Denominator `e₂(p)` (expected 1-pairs under independence).
    pub pred_pairs: f64,
    /// Numerator `Σ_x C(|x|,3) / n`.
    pub obs_triples: f64,
    /// Denominator `e₃(p)`.
    pub pred_triples: f64,
}

/// Computes the independence ratios of a dataset exactly (see module docs).
///
/// Item probabilities are the dataset's empirical frequencies, matching the
/// paper's §8 procedure. Degenerate denominators (fewer than `k` nonzero
/// frequencies) yield a ratio of `NaN`.
pub fn independence_ratios(ds: &Dataset) -> IndependenceReport {
    let p = ds.empirical_frequencies();
    let n = ds.n() as f64;

    let p1: f64 = p.iter().sum();
    let p2: f64 = p.iter().map(|v| v * v).sum();
    let p3: f64 = p.iter().map(|v| v * v * v).sum();
    let e2 = (p1 * p1 - p2) / 2.0;
    let e3 = (p1 * p1 * p1 - 3.0 * p1 * p2 + 2.0 * p3) / 6.0;

    let mut pairs = 0f64;
    let mut triples = 0f64;
    for v in ds.vectors() {
        let w = v.weight() as f64;
        pairs += w * (w - 1.0) / 2.0;
        triples += w * (w - 1.0) * (w - 2.0) / 6.0;
    }
    let obs_pairs = pairs / n;
    let obs_triples = triples / n;

    IndependenceReport {
        ratio2: obs_pairs / e2,
        ratio3: obs_triples / e3,
        obs_pairs,
        pred_pairs: e2,
        obs_triples,
        pred_triples: e3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::BernoulliProfile;
    use rand::{rngs::StdRng, SeedableRng};
    use skewsearch_sets::SparseVec;

    #[test]
    fn independent_data_has_ratio_near_one() {
        let profile = BernoulliProfile::two_block(400, 0.2, 0.02).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let ds = Dataset::generate(&profile, 8000, &mut rng);
        let r = independence_ratios(&ds);
        assert!((r.ratio2 - 1.0).abs() < 0.05, "ratio2={}", r.ratio2);
        assert!((r.ratio3 - 1.0).abs() < 0.15, "ratio3={}", r.ratio3);
    }

    #[test]
    fn perfectly_dependent_data_has_large_ratio() {
        // Every vector is identical: all mass concentrated on one set.
        // Frequencies are 1 on those dims... use half the vectors set to make
        // frequencies 0.5 and co-occurrence maximal.
        let s = SparseVec::from_unsorted((0..10).collect());
        let e = SparseVec::empty();
        let mut vs = Vec::new();
        for i in 0..1000 {
            vs.push(if i % 2 == 0 { s.clone() } else { e.clone() });
        }
        let ds = Dataset::from_vectors(vs, 100);
        let r = independence_ratios(&ds);
        // p_j = 1/2 on 10 dims; independent prediction for pairs:
        // e2 = C(10,2)/4; observed = C(10,2)/2 → ratio 2. Triples → ratio 4.
        assert!((r.ratio2 - 2.0).abs() < 1e-9, "ratio2={}", r.ratio2);
        assert!((r.ratio3 - 4.0).abs() < 1e-9, "ratio3={}", r.ratio3);
    }

    #[test]
    fn closed_form_matches_brute_force_on_tiny_instance() {
        // Brute-force E_I[obs] and E_I[pred] over all pairs on a tiny dataset.
        let vs = vec![
            SparseVec::from_unsorted(vec![0, 1, 2]),
            SparseVec::from_unsorted(vec![1, 2]),
            SparseVec::from_unsorted(vec![3]),
            SparseVec::from_unsorted(vec![0, 3]),
        ];
        let ds = Dataset::from_vectors(vs, 4);
        let p = ds.empirical_frequencies();
        let n = ds.n() as f64;
        let d = ds.d();
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..d {
            for j in (i + 1)..d {
                let both = ds
                    .vectors()
                    .iter()
                    .filter(|v| v.contains(i as u32) && v.contains(j as u32))
                    .count() as f64;
                num += both / n;
                den += p[i] * p[j];
            }
        }
        let r = independence_ratios(&ds);
        assert!((r.obs_pairs - num).abs() < 1e-12);
        assert!((r.pred_pairs - den).abs() < 1e-12);
        assert!((r.ratio2 - num / den).abs() < 1e-12);
    }

    #[test]
    fn triple_closed_form_matches_brute_force() {
        let vs = vec![
            SparseVec::from_unsorted(vec![0, 1, 2, 3]),
            SparseVec::from_unsorted(vec![0, 1, 2]),
            SparseVec::from_unsorted(vec![2, 3]),
        ];
        let ds = Dataset::from_vectors(vs, 4);
        let p = ds.empirical_frequencies();
        let n = ds.n() as f64;
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                for k in (j + 1)..4 {
                    let all = ds
                        .vectors()
                        .iter()
                        .filter(|v| v.contains(i) && v.contains(j) && v.contains(k))
                        .count() as f64;
                    num += all / n;
                    den += p[i as usize] * p[j as usize] * p[k as usize];
                }
            }
        }
        let r = independence_ratios(&ds);
        assert!((r.obs_triples - num).abs() < 1e-12);
        assert!((r.pred_triples - den).abs() < 1e-12);
    }
}
