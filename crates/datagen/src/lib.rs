//! # skewsearch-datagen
//!
//! The data model of "Set Similarity Search for Skewed Data" (PODS 2018, §2),
//! following Kirsch et al.: vectors `x ∈ {0,1}^d` with independent coordinates
//! `Pr[x_i = 1] = p_i`, the item-level probabilities `p_1, …, p_d` known to
//! the algorithm.
//!
//! Provides:
//!
//! * [`BernoulliProfile`] — the distribution `D[p_1, …, p_d]`, with the
//!   paper's example profiles (uniform, two-block, harmonic §1, Zipf and
//!   piecewise-Zipf §8) and derived quantities (`Σp`, `p̂_i = p_i(1−α)+α`, …);
//! * [`VectorSampler`] — `O(|x|)`-expected-time sampling via geometric
//!   skipping with per-run rejection (instead of `O(d)` per-coordinate coin
//!   flips);
//! * [`correlated_query`] — Definition 3: `q ~ D_α(x)`;
//! * [`Dataset`] — a sampled collection `S ~ D^n` plus empirical statistics;
//! * [`mixture`] — cluster-mixture sampling that *injects dependence between
//!   coordinates* (the phenomenon measured by the paper's Table 1);
//! * [`independence`] — **exact** computation of Table 1's independence
//!   ratios via elementary symmetric polynomials;
//! * [`mann`] — synthetic surrogates for the Mann et al. benchmark datasets
//!   (Figure 2 / Table 1 workloads) plus a loader for the real data format;
//! * [`skew`] — the frequency-plot transforms of Figure 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correlated;
pub mod dataset;
pub mod independence;
pub mod loader;
pub mod mann;
pub mod mixture;
pub mod profile;
pub mod sampler;
pub mod skew;

pub use correlated::{correlated_pair, correlated_query};
pub use dataset::Dataset;
pub use independence::{independence_ratios, IndependenceReport};
pub use mann::{surrogate_catalog, DependenceLevel, SurrogateSpec};
pub use mixture::ClusterMixture;
pub use profile::{BernoulliProfile, ProfileError};
pub use sampler::VectorSampler;
pub use skew::FrequencyPlot;
