//! Loader/writer for the Mann et al. benchmark text format.
//!
//! The set-similarity benchmark of Mann, Augsten, Bouros distributes datasets
//! as plain text: **one set per line, whitespace-separated non-negative
//! integer tokens**. This loader lets the real datasets be dropped into every
//! experiment that otherwise runs on the synthetic surrogates.

use crate::dataset::Dataset;
use skewsearch_sets::SparseVec;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Parses a transaction stream (one set per line of whitespace-separated
/// integer tokens) into a [`Dataset`]. Empty lines become empty sets;
/// duplicate tokens within a line are collapsed. The universe size is
/// `max token + 1`.
pub fn read_transactions<R: BufRead>(reader: R) -> io::Result<Dataset> {
    let mut vectors = Vec::new();
    let mut max_dim = 0u32;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let mut dims = Vec::new();
        for tok in line.split_whitespace() {
            let v: u32 = tok.parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad token {tok:?}: {e}", lineno + 1),
                )
            })?;
            max_dim = max_dim.max(v);
            dims.push(v);
        }
        vectors.push(SparseVec::from_unsorted(dims));
    }
    let d = if vectors.iter().all(|v| v.is_empty()) {
        1
    } else {
        max_dim as usize + 1
    };
    Ok(Dataset::from_vectors(vectors, d))
}

/// Loads a transaction file from disk (see [`read_transactions`]).
pub fn load_transactions(path: impl AsRef<Path>) -> io::Result<Dataset> {
    let file = std::fs::File::open(path)?;
    read_transactions(io::BufReader::new(file))
}

/// Writes a dataset in the same format (round-trips with
/// [`read_transactions`] up to universe-size inference).
pub fn write_transactions<W: Write>(ds: &Dataset, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for v in ds.vectors() {
        let mut first = true;
        for i in v.iter() {
            if !first {
                write!(w, " ")?;
            }
            write!(w, "{i}")?;
            first = false;
        }
        writeln!(w)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_file() {
        let input = "1 5 3\n\n2 2 7\n";
        let ds = read_transactions(io::Cursor::new(input)).unwrap();
        assert_eq!(ds.n(), 3);
        assert_eq!(ds.d(), 8);
        assert_eq!(ds.vector(0).dims(), &[1, 3, 5]);
        assert!(ds.vector(1).is_empty());
        assert_eq!(ds.vector(2).dims(), &[2, 7]); // dedup
    }

    #[test]
    fn rejects_bad_tokens() {
        let input = "1 x 3\n";
        let err = read_transactions(io::Cursor::new(input)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn empty_input_gives_empty_dataset() {
        let ds = read_transactions(io::Cursor::new("")).unwrap();
        assert_eq!(ds.n(), 0);
        assert_eq!(ds.d(), 1);
    }

    #[test]
    fn roundtrip_through_writer() {
        let input = "0 1\n4\n\n2 3 5\n";
        let ds = read_transactions(io::Cursor::new(input)).unwrap();
        let mut buf = Vec::new();
        write_transactions(&ds, &mut buf).unwrap();
        let ds2 = read_transactions(io::Cursor::new(buf)).unwrap();
        assert_eq!(ds2.n(), ds.n());
        for i in 0..ds.n() {
            assert_eq!(ds.vector(i), ds2.vector(i), "vector {i}");
        }
    }

    /// Temp file at a path unique per process *and* per call, deleted even
    /// when the test panics. A fixed path races when several test processes
    /// (or parallel CI jobs sharing a temp dir) run this module at once.
    struct TempFile(std::path::PathBuf);

    impl TempFile {
        fn create(contents: &str) -> Self {
            use std::sync::atomic::{AtomicUsize, Ordering};
            static UNIQUE: AtomicUsize = AtomicUsize::new(0);
            let path = std::env::temp_dir().join(format!(
                "skewsearch_loader_test_{}_{}.txt",
                std::process::id(),
                UNIQUE.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::write(&path, contents).unwrap();
            TempFile(path)
        }
    }

    impl Drop for TempFile {
        fn drop(&mut self) {
            std::fs::remove_file(&self.0).ok();
        }
    }

    #[test]
    fn loads_from_disk() {
        let file = TempFile::create("10 20\n30\n");
        let ds = load_transactions(&file.0).unwrap();
        assert_eq!(ds.n(), 2);
        assert_eq!(ds.d(), 31);
    }

    #[test]
    fn concurrent_loads_do_not_collide() {
        // Two live temp files in one process must get distinct paths.
        let a = TempFile::create("1\n");
        let b = TempFile::create("2 3\n");
        assert_ne!(a.0, b.0);
        assert_eq!(load_transactions(&a.0).unwrap().n(), 1);
        assert_eq!(load_transactions(&b.0).unwrap().n(), 1);
    }
}
