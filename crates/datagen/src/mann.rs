//! Synthetic surrogates for the Mann et al. \[31\] benchmark datasets.
//!
//! Figure 2 and Table 1 of the paper are computed on ten real datasets from
//! the set-similarity-join benchmark of Mann, Augsten, Bouros (VLDB 2016).
//! Those datasets are multi-gigabyte external downloads; this module builds
//! **clearly-labelled synthetic stand-ins** with:
//!
//! * the *scale statistics* of the real data (approximate `n`, `d`, average
//!   set size, as published in \[31\]), scaled down by a user-chosen factor so
//!   experiments run at laptop scale;
//! * a *piecewise-Zipf frequency profile* matching the qualitative shape the
//!   paper reports in §8 ("close to piecewise Zipfian", frequencies outside
//!   the top bounded by `n^(−γ)`);
//! * a *cluster-mixture dependence level* per dataset, tuned so the Table 1
//!   independence ratios land in the right qualitative regime (mild for
//!   AOL/BMS-POS/DBLP, moderate for ENRON/FLICKR/LIVEJOURNAL/NETFLIX, strong
//!   for KOSARAK/ORKUT, extreme for SPOTIFY).
//!
//! Anyone with the real benchmark files can load them instead via
//! [`crate::loader::load_transactions`] — all downstream analysis
//! (Figure 2 transforms, Table 1 ratios) operates on [`crate::Dataset`] and
//! is agnostic to the source.

use crate::dataset::Dataset;
use crate::mixture::ClusterMixture;
use crate::profile::BernoulliProfile;
use rand::Rng;

/// Qualitative dependence regimes observed in Table 1 of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DependenceLevel {
    /// Ratios ≈ 1–2 / ≈ 2–5 (AOL, BMS-POS, DBLP, FLICKR).
    Mild,
    /// Ratios ≈ 2–4 / ≈ 5–40 (ENRON, LIVEJOURNAL, NETFLIX).
    Moderate,
    /// Ratios ≈ 4–8 / ≈ 40–300 (KOSARAK, ORKUT).
    Strong,
    /// Ratios ≫ 10 / ≫ 1000 (SPOTIFY).
    Extreme,
}

impl DependenceLevel {
    /// Mixture parameters `(n_clusters, cluster_size, boost, pi)` realizing
    /// the regime for a dataset whose average set size is `avg_size`.
    ///
    /// Large ratios come from *rare but large* co-activations: with
    /// activation probability `π` and expected activation mass
    /// `m = boost · cluster_size`, the pair ratio is approximately
    /// `1 + π(1−π)·r² / (1+πr)²` where `r = m / avg_size` — so the cluster
    /// size must scale with the dataset's average set size or the effect
    /// drowns in the `e₂ ≈ avg²/2` denominator. Small `π` with big clusters
    /// also leaves the marginal frequencies (hence the independence
    /// prediction) nearly unchanged, exactly the Table 1 phenomenon.
    fn mixture_params(self, avg_size: f64) -> (usize, usize, f64, f64) {
        let cs = |mult: f64| ((mult * avg_size).ceil() as usize).max(4);
        match self {
            // r ≈ 2.2 → ratio2 ≈ 1.3
            DependenceLevel::Mild => (40, cs(4.0), 0.55, 0.10),
            // r ≈ 8 → ratio2 ≈ 2.8
            DependenceLevel::Moderate => (16, cs(11.0), 0.72, 0.10),
            // r ≈ 19 → ratio2 ≈ 5
            DependenceLevel::Strong => (8, cs(27.0), 0.70, 0.05),
            // r ≈ 120 → ratio2 ≈ 25, ratio3 in the hundreds
            DependenceLevel::Extreme => (3, cs(150.0), 0.80, 0.02),
        }
    }
}

/// Blueprint for one surrogate dataset.
#[derive(Clone, Debug)]
pub struct SurrogateSpec {
    /// Dataset label; rendered with a `-SYN` suffix to flag the substitution.
    pub name: &'static str,
    /// Approximate number of sets in the real dataset (from \[31\]).
    pub n_full: u64,
    /// Approximate universe size of the real dataset.
    pub d_full: u64,
    /// Approximate average set size of the real dataset.
    pub avg_size: f64,
    /// Zipf exponent of the frequency profile's head segment.
    pub head_exponent: f64,
    /// Zipf exponent of the tail segment (steeper tail ⇒ stronger skew).
    pub tail_exponent: f64,
    /// Fraction of dimensions in the head segment.
    pub head_frac: f64,
    /// Dependence regime targeted for Table 1.
    pub dependence: DependenceLevel,
    /// Paper's Table 1 value for |I| = 2 (reference for reporting).
    pub paper_ratio2: f64,
    /// Paper's Table 1 value for |I| = 3.
    pub paper_ratio3: f64,
}

impl SurrogateSpec {
    /// Display name with the synthetic marker.
    pub fn display_name(&self) -> String {
        format!("{}-SYN", self.name)
    }

    /// Scaled universe size for a surrogate with `n` sets (keeps the real
    /// `d/n` ratio, clamped to `[64, 200_000]` for tractability).
    pub fn scaled_d(&self, n: usize) -> usize {
        let ratio = self.d_full as f64 / self.n_full as f64;
        let d = (ratio * n as f64).round() as usize;
        // Ensure avg_size is reachable with p <= 1/2.
        let min_d = (4.0 * self.avg_size).ceil() as usize;
        d.clamp(min_d.max(64), 200_000)
    }

    /// Builds the surrogate's frequency profile at scale `n`.
    pub fn profile(&self, n: usize) -> BernoulliProfile {
        let d = self.scaled_d(n);
        let head = ((d as f64 * self.head_frac).round() as usize).clamp(1, d - 1);
        BernoulliProfile::piecewise_zipf(
            &[(head, self.head_exponent), (d - head, self.tail_exponent)],
            self.avg_size,
            0.5,
        )
        // lint:allow(no-panic-in-lib, head is clamped to 1..d so both pieces are non-empty and the zipf construction cannot fail)
        .expect("surrogate profile construction")
    }

    /// Generates the surrogate dataset (with injected dependence) at scale
    /// `n`.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> (Dataset, BernoulliProfile) {
        let profile = self.profile(n);
        let d = profile.d();
        let (nc, cs, boost, pi) = self.dependence.mixture_params(self.avg_size);
        let cs = cs.min(d);
        let mixture = ClusterMixture::new(&profile, nc, cs, boost, pi, rng);
        (mixture.generate(n, d, rng), profile)
    }
}

/// The ten datasets of Mann et al. as used in Figure 2 / Table 1, with
/// approximate published scale statistics and the paper's Table 1 ratios.
pub fn surrogate_catalog() -> Vec<SurrogateSpec> {
    vec![
        SurrogateSpec {
            name: "AOL",
            n_full: 10_154_742,
            d_full: 3_873_246,
            avg_size: 3.0,
            head_exponent: 0.75,
            tail_exponent: 1.15,
            head_frac: 0.02,
            dependence: DependenceLevel::Mild,
            paper_ratio2: 1.2,
            paper_ratio3: 3.9,
        },
        SurrogateSpec {
            name: "BMS-POS",
            n_full: 515_597,
            d_full: 1_657,
            avg_size: 6.5,
            head_exponent: 0.55,
            tail_exponent: 1.3,
            head_frac: 0.1,
            dependence: DependenceLevel::Mild,
            paper_ratio2: 1.5,
            paper_ratio3: 3.9,
        },
        SurrogateSpec {
            name: "DBLP",
            n_full: 1_268_017,
            d_full: 925_967,
            avg_size: 5.6,
            head_exponent: 0.7,
            tail_exponent: 1.2,
            head_frac: 0.03,
            dependence: DependenceLevel::Mild,
            paper_ratio2: 1.4,
            paper_ratio3: 2.3,
        },
        SurrogateSpec {
            name: "ENRON",
            n_full: 245_615,
            d_full: 1_113_219,
            avg_size: 135.0,
            head_exponent: 0.6,
            tail_exponent: 1.1,
            head_frac: 0.05,
            dependence: DependenceLevel::Moderate,
            paper_ratio2: 2.9,
            paper_ratio3: 21.8,
        },
        SurrogateSpec {
            name: "FLICKR",
            n_full: 1_680_490,
            d_full: 810_660,
            avg_size: 10.1,
            head_exponent: 0.65,
            tail_exponent: 1.25,
            head_frac: 0.04,
            dependence: DependenceLevel::Mild,
            paper_ratio2: 1.7,
            paper_ratio3: 4.9,
        },
        SurrogateSpec {
            name: "KOSARAK",
            n_full: 606_770,
            d_full: 41_270,
            avg_size: 11.9,
            head_exponent: 0.5,
            tail_exponent: 1.4,
            head_frac: 0.08,
            dependence: DependenceLevel::Strong,
            paper_ratio2: 7.1,
            paper_ratio3: 269.4,
        },
        SurrogateSpec {
            name: "LIVEJOURNAL",
            n_full: 3_201_203,
            d_full: 7_489_073,
            avg_size: 35.1,
            head_exponent: 0.7,
            tail_exponent: 1.15,
            head_frac: 0.03,
            dependence: DependenceLevel::Moderate,
            paper_ratio2: 2.3,
            paper_ratio3: 7.3,
        },
        SurrogateSpec {
            name: "NETFLIX",
            n_full: 480_189,
            d_full: 17_770,
            avg_size: 209.3,
            // The densest dataset (movie ratings): flattest head in Figure 2,
            // but still a clear frequency span; the steep tail keeps that
            // span visible at the surrogate's clamped universe size.
            head_exponent: 0.45,
            tail_exponent: 1.4,
            head_frac: 0.25,
            dependence: DependenceLevel::Moderate,
            paper_ratio2: 3.1,
            paper_ratio3: 24.0,
        },
        SurrogateSpec {
            name: "ORKUT",
            n_full: 2_723_360,
            d_full: 8_730_857,
            avg_size: 119.7,
            head_exponent: 0.6,
            tail_exponent: 1.1,
            head_frac: 0.04,
            dependence: DependenceLevel::Strong,
            paper_ratio2: 4.0,
            paper_ratio3: 37.9,
        },
        SurrogateSpec {
            name: "SPOTIFY",
            n_full: 439_993,
            d_full: 759_823,
            avg_size: 15.3,
            head_exponent: 0.55,
            tail_exponent: 1.3,
            head_frac: 0.05,
            dependence: DependenceLevel::Extreme,
            paper_ratio2: 24.7,
            paper_ratio3: 6022.1,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::independence::independence_ratios;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn catalog_covers_all_ten_datasets() {
        let names: Vec<&str> = surrogate_catalog().iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "AOL",
                "BMS-POS",
                "DBLP",
                "ENRON",
                "FLICKR",
                "KOSARAK",
                "LIVEJOURNAL",
                "NETFLIX",
                "ORKUT",
                "SPOTIFY"
            ]
        );
    }

    #[test]
    fn display_names_flag_the_substitution() {
        for s in surrogate_catalog() {
            assert!(s.display_name().ends_with("-SYN"));
        }
    }

    #[test]
    fn profiles_match_target_avg_size() {
        for s in surrogate_catalog().iter().take(3) {
            let profile = s.profile(2000);
            assert!(
                (profile.sum_p() - s.avg_size).abs() / s.avg_size < 0.01,
                "{}: sum_p={} target={}",
                s.name,
                profile.sum_p(),
                s.avg_size
            );
            assert!(profile.is_sorted_desc(), "{} profile not sorted", s.name);
        }
    }

    #[test]
    fn generation_runs_and_has_expected_scale() {
        let spec = &surrogate_catalog()[1]; // BMS-POS: small universe
        let mut rng = StdRng::seed_from_u64(5);
        let (ds, profile) = spec.generate(1500, &mut rng);
        assert_eq!(ds.n(), 1500);
        assert_eq!(ds.d(), profile.d());
        // Mixture adds mass: avg weight >= base expectation, within reason.
        let avg = ds.avg_weight();
        assert!(
            avg >= spec.avg_size * 0.8 && avg <= spec.avg_size * 2.5,
            "avg={avg}"
        );
    }

    #[test]
    fn dependence_ordering_is_respected() {
        // Mild (DBLP) < Extreme (SPOTIFY) in ratio2 on equally-sized runs.
        let cat = surrogate_catalog();
        let dblp = cat.iter().find(|s| s.name == "DBLP").unwrap();
        let spotify = cat.iter().find(|s| s.name == "SPOTIFY").unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let (ds_d, _) = dblp.generate(2500, &mut rng);
        let (ds_s, _) = spotify.generate(2500, &mut rng);
        let rd = independence_ratios(&ds_d);
        let rs = independence_ratios(&ds_s);
        assert!(
            rs.ratio2 > rd.ratio2,
            "spotify={} dblp={}",
            rs.ratio2,
            rd.ratio2
        );
        assert!(rd.ratio2 >= 0.9, "dblp ratio2={}", rd.ratio2);
    }
}
