//! Cluster-mixture sampling: controlled violation of the independence
//! assumption.
//!
//! The paper's model assumes independent coordinates, but §8 / Table 1 show
//! that real datasets have *positive dependence* between dimensions (more
//! co-occurring pairs/triples than the product of marginals predicts). To
//! reproduce that phenomenon synthetically we superimpose a **topic/cluster
//! structure** on a base profile: a vector is drawn from the base profile,
//! and with probability `pi` it additionally activates one random cluster —
//! a fixed subset of dimensions each of which is then set with probability
//! `boost`. Coordinates inside a cluster co-occur far more often than
//! independence predicts, which is exactly what Table 1's ratios measure.

use crate::profile::BernoulliProfile;
use crate::sampler::VectorSampler;
use rand::Rng;
use skewsearch_sets::SparseVec;

/// A mixture of a base [`BernoulliProfile`] with additive dimension clusters.
#[derive(Clone, Debug)]
pub struct ClusterMixture {
    sampler: VectorSampler,
    clusters: Vec<Vec<u32>>,
    /// Probability that a vector activates a cluster.
    pi: f64,
    /// Within an active cluster, each member dimension fires with this
    /// probability.
    boost: f64,
}

impl ClusterMixture {
    /// Builds a mixture: `n_clusters` clusters of `cluster_size` dimensions
    /// drawn uniformly (without replacement) from the universe.
    ///
    /// # Panics
    /// Panics if `pi`/`boost` are outside `[0,1]` or `cluster_size` exceeds
    /// the universe size.
    pub fn new<R: Rng + ?Sized>(
        base: &BernoulliProfile,
        n_clusters: usize,
        cluster_size: usize,
        boost: f64,
        pi: f64,
        rng: &mut R,
    ) -> Self {
        assert!((0.0..=1.0).contains(&pi), "pi must lie in [0,1]");
        assert!((0.0..=1.0).contains(&boost), "boost must lie in [0,1]");
        assert!(
            cluster_size <= base.d(),
            "cluster_size {cluster_size} exceeds universe {}",
            base.d()
        );
        let d = base.d() as u32;
        let clusters = (0..n_clusters)
            .map(|_| {
                // Floyd's algorithm for a uniform size-k subset.
                let mut chosen = Vec::with_capacity(cluster_size);
                for j in (d - cluster_size as u32)..d {
                    let t = rng.random_range(0..=j);
                    if chosen.contains(&t) {
                        chosen.push(j);
                    } else {
                        chosen.push(t);
                    }
                }
                chosen.sort_unstable();
                chosen
            })
            .collect();
        Self {
            sampler: VectorSampler::new(base),
            clusters,
            pi,
            boost,
        }
    }

    /// The cluster dimension sets (diagnostic).
    pub fn clusters(&self) -> &[Vec<u32>] {
        &self.clusters
    }

    /// Draws one vector from the mixture.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SparseVec {
        let base = self.sampler.sample(rng);
        if self.clusters.is_empty() || rng.random::<f64>() >= self.pi {
            return base;
        }
        let c = &self.clusters[rng.random_range(0..self.clusters.len())];
        let extra: Vec<u32> = c
            .iter()
            .copied()
            .filter(|_| rng.random::<f64>() < self.boost)
            .collect();
        base.union(&SparseVec::from_sorted(extra))
    }

    /// Draws `n` vectors as a [`crate::Dataset`].
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, d: usize, rng: &mut R) -> crate::Dataset {
        let vectors = (0..n).map(|_| self.sample(rng)).collect();
        crate::Dataset::from_vectors(vectors, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::independence::independence_ratios;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn clusters_have_requested_shape() {
        let base = BernoulliProfile::uniform(500, 0.01).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let m = ClusterMixture::new(&base, 7, 12, 0.5, 0.3, &mut rng);
        assert_eq!(m.clusters().len(), 7);
        for c in m.clusters() {
            assert_eq!(c.len(), 12);
            assert!(c.windows(2).all(|w| w[0] < w[1]), "sorted unique");
            assert!(c.iter().all(|&i| i < 500));
        }
    }

    #[test]
    fn pi_zero_reduces_to_base_profile() {
        let base = BernoulliProfile::uniform(300, 0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let m = ClusterMixture::new(&base, 5, 10, 0.9, 0.0, &mut rng);
        let trials = 2000;
        let mean: f64 = (0..trials)
            .map(|_| m.sample(&mut rng).weight() as f64)
            .sum::<f64>()
            / trials as f64;
        assert!((mean - 15.0).abs() < 0.8, "mean={mean}");
    }

    #[test]
    fn mixture_inflates_independence_ratios() {
        // Rare (pi = 0.08) but large co-activations: the marginal frequencies
        // barely move, so the independence prediction stays near the base
        // while observed co-occurrence explodes — the Table 1 phenomenon.
        let base = BernoulliProfile::uniform(400, 0.01).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let strong = ClusterMixture::new(&base, 3, 40, 0.8, 0.08, &mut rng);
        let ds = strong.generate(4000, 400, &mut rng);
        let r = independence_ratios(&ds);
        assert!(r.ratio2 > 1.5, "ratio2={}", r.ratio2);
        assert!(
            r.ratio3 > r.ratio2,
            "ratio3={} ratio2={}",
            r.ratio3,
            r.ratio2
        );
    }

    #[test]
    fn stronger_mixture_means_larger_ratio() {
        let base = BernoulliProfile::uniform(400, 0.01).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mild = ClusterMixture::new(&base, 20, 8, 0.3, 0.1, &mut rng);
        let extreme = ClusterMixture::new(&base, 3, 60, 0.9, 0.08, &mut rng);
        let ds_mild = mild.generate(4000, 400, &mut rng);
        let ds_extreme = extreme.generate(4000, 400, &mut rng);
        let r_mild = independence_ratios(&ds_mild);
        let r_extreme = independence_ratios(&ds_extreme);
        assert!(
            r_extreme.ratio2 > r_mild.ratio2,
            "extreme={} mild={}",
            r_extreme.ratio2,
            r_mild.ratio2
        );
    }
}
