//! The item-level probability profile `D[p_1, …, p_d]` (§2 of the paper).

use std::fmt;

/// Error constructing a [`BernoulliProfile`].
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// A probability was outside `(0, 1)`.
    ProbabilityOutOfRange {
        /// Offending dimension.
        dim: usize,
        /// Offending value.
        p: f64,
    },
    /// The profile has no dimensions.
    Empty,
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::ProbabilityOutOfRange { dim, p } => {
                write!(f, "p_{dim} = {p} outside (0, 1)")
            }
            ProfileError::Empty => write!(f, "profile must have at least one dimension"),
        }
    }
}

impl std::error::Error for ProfileError {}

/// The distribution `D[p_1, …, p_d]` over `{0,1}^d` with independent
/// coordinates `Pr[x_i = 1] = p_i`.
///
/// The paper's model (§2) assumes every `p_i ≤ 1/2` (more generally bounded
/// by a constant `M < 1`). We *validate* only `p_i ∈ (0, 1)` and expose
/// [`BernoulliProfile::max_p`] so callers can check the model assumption
/// appropriate to their theorem (`≤ 1/2` for the general model, `≤ α/2` for
/// the correlated-query analysis of §6).
#[derive(Clone, Debug)]
pub struct BernoulliProfile {
    ps: Vec<f64>,
    /// Cached `Σ_i p_i` (the paper's `C log n`).
    sum_p: f64,
    /// Cached `Σ_i p_i²`.
    sum_p_sq: f64,
    /// Cached `log₂(1/p_i)` per dimension — the path-mass increments consumed
    /// by the engine's stopping rule `∏ p ≤ 1/n ⇔ Σ log₂(1/p) ≥ log₂ n`.
    log2_inv_p: Vec<f64>,
}

impl BernoulliProfile {
    /// Builds a profile from explicit probabilities.
    pub fn new(ps: Vec<f64>) -> Result<Self, ProfileError> {
        if ps.is_empty() {
            return Err(ProfileError::Empty);
        }
        for (dim, &p) in ps.iter().enumerate() {
            if !(p > 0.0 && p < 1.0) {
                return Err(ProfileError::ProbabilityOutOfRange { dim, p });
            }
        }
        let sum_p = ps.iter().sum();
        let sum_p_sq = ps.iter().map(|p| p * p).sum();
        let log2_inv_p = ps.iter().map(|p| -p.log2()).collect();
        Ok(Self {
            ps,
            sum_p,
            sum_p_sq,
            log2_inv_p,
        })
    }

    /// All `d` dimensions share probability `p`: the no-skew baseline, on
    /// which the paper's structure degenerates to Chosen Path.
    pub fn uniform(d: usize, p: f64) -> Result<Self, ProfileError> {
        Self::new(vec![p; d])
    }

    /// First half probability `pa`, second half `pb` — the two-type
    /// distribution of the paper's §7 examples and Figure 1 (`pa = p`,
    /// `pb = p/8` there).
    pub fn two_block(d: usize, pa: f64, pb: f64) -> Result<Self, ProfileError> {
        let half = d / 2;
        Self::blocks(&[(half, pa), (d - half, pb)])
    }

    /// Arbitrary blocks `(count, p)`, concatenated in order.
    pub fn blocks(blocks: &[(usize, f64)]) -> Result<Self, ProfileError> {
        let mut ps = Vec::with_capacity(blocks.iter().map(|b| b.0).sum());
        for &(count, p) in blocks {
            ps.extend(std::iter::repeat_n(p, count));
        }
        Self::new(ps)
    }

    /// The harmonic distribution of the §1 motivating example:
    /// `Pr[x_k = 1] = 1/k` for `k = 1, …, d`, clamped to `max_p` to respect
    /// the model's bounded-probability assumption (the paper assumes
    /// `p_i ≤ 1/2`; pass `0.5`).
    pub fn harmonic(d: usize, max_p: f64) -> Result<Self, ProfileError> {
        Self::new((1..=d).map(|k| (1.0 / k as f64).min(max_p)).collect())
    }

    /// Zipf profile `p_j ∝ 1/(j+1)^s`, scaled so the expected set size
    /// `Σ p_j` equals `target_weight`, with every `p_j` clamped to `max_p`.
    ///
    /// The scale constant is found by monotone bisection because clamping
    /// interacts with scaling (§8 notes real profiles look piecewise-Zipfian
    /// with a clamped head).
    pub fn zipf(d: usize, s: f64, target_weight: f64, max_p: f64) -> Result<Self, ProfileError> {
        let raw: Vec<f64> = (0..d).map(|j| (j as f64 + 1.0).powf(-s)).collect();
        Self::scaled_to_weight(raw, target_weight, max_p)
    }

    /// Piecewise-Zipf profile: each segment `(count, s)` contributes `count`
    /// dimensions with local exponent `s`, continuing the curve from the
    /// previous segment; globally scaled to `target_weight` and clamped to
    /// `max_p`. Models the "piecewise Zipfian" shapes of §8 / Figure 2.
    pub fn piecewise_zipf(
        segments: &[(usize, f64)],
        target_weight: f64,
        max_p: f64,
    ) -> Result<Self, ProfileError> {
        let mut raw = Vec::new();
        let mut level = 1.0f64; // current curve height
        let mut rank = 1.0f64; // global rank (continuous)
        for &(count, s) in segments {
            let start_rank = rank;
            let start_level = level;
            for k in 0..count {
                let r = start_rank + k as f64;
                // Continue the curve: level(r) = start_level * (start_rank/r)^s.
                raw.push(start_level * (start_rank / r).powf(s));
            }
            rank += count as f64;
            level = start_level * (start_rank / (rank - 1.0).max(start_rank)).powf(s);
        }
        Self::scaled_to_weight(raw, target_weight, max_p)
    }

    /// Scales a raw positive shape so that `Σ min(c·raw_j, max_p)` equals
    /// `target_weight` (bisection on `c`), then builds the profile.
    pub fn scaled_to_weight(
        raw: Vec<f64>,
        target_weight: f64,
        max_p: f64,
    ) -> Result<Self, ProfileError> {
        assert!(target_weight > 0.0, "target weight must be positive");
        assert!(max_p > 0.0 && max_p < 1.0, "max_p must lie in (0,1)");
        assert!(
            target_weight < max_p * raw.len() as f64,
            "target weight {target_weight} unreachable with d={} and max_p={max_p}",
            raw.len()
        );
        let weight_at = |c: f64| -> f64 { raw.iter().map(|&r| (c * r).min(max_p)).sum() };
        // Bracket the scale.
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        while weight_at(hi) < target_weight {
            hi *= 2.0;
            assert!(hi.is_finite(), "scale search diverged");
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if weight_at(mid) < target_weight {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let c = 0.5 * (lo + hi);
        let floor = 1e-12; // keep probabilities strictly positive
        Self::new(raw.iter().map(|&r| (c * r).min(max_p).max(floor)).collect())
    }

    /// Number of dimensions `d`.
    #[inline]
    pub fn d(&self) -> usize {
        self.ps.len()
    }

    /// `p_i`.
    #[inline]
    pub fn p(&self, i: u32) -> f64 {
        self.ps[i as usize]
    }

    /// All probabilities.
    #[inline]
    pub fn ps(&self) -> &[f64] {
        &self.ps
    }

    /// `Σ_i p_i` — the expected Hamming weight; the paper's `C log n`.
    #[inline]
    pub fn sum_p(&self) -> f64 {
        self.sum_p
    }

    /// `Σ_i p_i²` — the expected intersection of two independent draws.
    #[inline]
    pub fn sum_p_sq(&self) -> f64 {
        self.sum_p_sq
    }

    /// `log₂(1/p_i)` — the stopping-rule mass of dimension `i`.
    #[inline]
    pub fn log2_inv_p(&self, i: u32) -> f64 {
        self.log2_inv_p[i as usize]
    }

    /// Largest probability in the profile.
    pub fn max_p(&self) -> f64 {
        self.ps.iter().copied().fold(f64::MIN, f64::max)
    }

    /// Smallest probability in the profile.
    pub fn min_p(&self) -> f64 {
        self.ps.iter().copied().fold(f64::MAX, f64::min)
    }

    /// The paper's constant `C` for a dataset of `n` points:
    /// `Σ p_i = C log n` (natural log).
    ///
    /// Theorem 1 requires `C` "sufficiently large"; §6 additionally assumes
    /// `Cα ≥ 15` (Lemma 11).
    pub fn c_constant(&self, n: usize) -> f64 {
        assert!(n >= 2, "need n >= 2");
        self.sum_p / (n as f64).ln()
    }

    /// The conditional probabilities `p̂_i = Pr[x_i = 1 | q_i = 1]
    /// = p_i(1−α) + α` used by the correlated-query scheme (§6).
    pub fn phat(&self, alpha: f64) -> Vec<f64> {
        assert!((0.0..=1.0).contains(&alpha), "alpha must lie in [0,1]");
        self.ps.iter().map(|&p| p * (1.0 - alpha) + alpha).collect()
    }

    /// True iff probabilities are non-increasing in the dimension index —
    /// the frequent-first ordering assumed by the §1 split construction and
    /// by Figure 2's rank plots.
    pub fn is_sorted_desc(&self) -> bool {
        self.ps.windows(2).all(|w| w[0] >= w[1])
    }

    /// Estimates a profile from observed data by counting occurrences —
    /// the paper's §9 "natural question": "one can estimate each p_i to very
    /// high precision by counting the occurrences in the dataset itself,
    /// leading to the same asymptotic bounds".
    ///
    /// Uses add-`smoothing` (Laplace) estimation
    /// `p̂_i = (count_i + smoothing) / (n + 2·smoothing)` so unseen
    /// dimensions stay strictly positive (a `p_i = 0` would break the
    /// stopping-rule mass), clamped below `1` for the model's sake.
    /// `smoothing = 0.5` (Jeffreys) is a good default.
    ///
    /// The `estimated-profile` integration test verifies that an index built
    /// from such an estimate matches the recall of one built from the true
    /// profile.
    pub fn estimate_from_counts(
        counts: &[u32],
        n: usize,
        smoothing: f64,
    ) -> Result<Self, ProfileError> {
        assert!(n > 0, "need at least one observation");
        assert!(smoothing > 0.0, "smoothing must be positive to keep p > 0");
        let denom = n as f64 + 2.0 * smoothing;
        Self::new(
            counts
                .iter()
                .map(|&c| ((c as f64 + smoothing) / denom).min(1.0 - 1e-12))
                .collect(),
        )
    }

    /// A copy of the profile with dimensions re-ordered by decreasing
    /// probability, together with the permutation `new_dim -> old_dim`.
    pub fn sorted_desc(&self) -> (Self, Vec<u32>) {
        let mut order: Vec<u32> = (0..self.d() as u32).collect();
        order.sort_by(|&a, &b| self.ps[b as usize].total_cmp(&self.ps[a as usize]));
        let ps = order.iter().map(|&i| self.ps[i as usize]).collect();
        (
            // lint:allow(no-panic-in-lib, a permutation of an already-validated profile stays valid)
            Self::new(ps).expect("permutation preserves validity"),
            order,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_probabilities() {
        assert!(BernoulliProfile::new(vec![]).is_err());
        assert!(BernoulliProfile::new(vec![0.0]).is_err());
        assert!(BernoulliProfile::new(vec![1.0]).is_err());
        assert!(BernoulliProfile::new(vec![0.5, -0.1]).is_err());
        assert!(BernoulliProfile::new(vec![0.5, f64::NAN]).is_err());
    }

    #[test]
    fn uniform_profile_sums() {
        let p = BernoulliProfile::uniform(100, 0.25).unwrap();
        assert_eq!(p.d(), 100);
        assert!((p.sum_p() - 25.0).abs() < 1e-9);
        assert!((p.sum_p_sq() - 6.25).abs() < 1e-9);
        assert!(p.is_sorted_desc());
    }

    #[test]
    fn two_block_layout() {
        let p = BernoulliProfile::two_block(10, 0.4, 0.05).unwrap();
        assert_eq!(p.p(0), 0.4);
        assert_eq!(p.p(4), 0.4);
        assert_eq!(p.p(5), 0.05);
        assert_eq!(p.p(9), 0.05);
        assert!((p.sum_p() - (5.0 * 0.4 + 5.0 * 0.05)).abs() < 1e-12);
    }

    #[test]
    fn two_block_odd_dimension() {
        let p = BernoulliProfile::two_block(7, 0.4, 0.05).unwrap();
        assert_eq!(p.d(), 7);
        assert_eq!(p.p(2), 0.4);
        assert_eq!(p.p(3), 0.05);
    }

    #[test]
    fn harmonic_matches_motivating_example() {
        let p = BernoulliProfile::harmonic(1000, 0.5).unwrap();
        assert_eq!(p.p(0), 0.5); // 1/1 clamped
        assert_eq!(p.p(1), 0.5); // 1/2
        assert!((p.p(2) - 1.0 / 3.0).abs() < 1e-12);
        assert!((p.p(999) - 1.0 / 1000.0).abs() < 1e-15);
        // Σ 1/k ≈ ln d + γ; the two clamped entries shift it by ~0.5.
        let expect = (1000f64).ln() + 0.5772 - 0.5;
        assert!((p.sum_p() - expect).abs() < 0.1, "sum={}", p.sum_p());
        assert!(p.is_sorted_desc());
    }

    #[test]
    fn zipf_hits_target_weight() {
        let p = BernoulliProfile::zipf(10_000, 1.0, 12.0, 0.5).unwrap();
        assert!((p.sum_p() - 12.0).abs() < 1e-6);
        assert!(p.max_p() <= 0.5);
        assert!(p.is_sorted_desc());
    }

    #[test]
    fn piecewise_zipf_is_continuous_and_scaled() {
        let p = BernoulliProfile::piecewise_zipf(&[(100, 0.5), (900, 1.5)], 8.0, 0.5).unwrap();
        assert!((p.sum_p() - 8.0).abs() < 1e-6);
        assert!(p.is_sorted_desc(), "piecewise curve must be non-increasing");
        // Local log-log slope ≈ -s within each segment (measured away from
        // any clamped head entries and from the segment boundary).
        let slope = |j0: u32, j1: u32| {
            (p.p(j1) / p.p(j0)).ln() / ((j1 as f64 + 1.0) / (j0 as f64 + 1.0)).ln()
        };
        let head_slope = slope(50, 80);
        let tail_slope = slope(400, 800);
        assert!((head_slope + 0.5).abs() < 0.05, "head={head_slope}");
        assert!((tail_slope + 1.5).abs() < 0.05, "tail={tail_slope}");
    }

    #[test]
    fn log2_inv_p_cached_correctly() {
        let p = BernoulliProfile::new(vec![0.5, 0.25, 0.125]).unwrap();
        assert!((p.log2_inv_p(0) - 1.0).abs() < 1e-12);
        assert!((p.log2_inv_p(1) - 2.0).abs() < 1e-12);
        assert!((p.log2_inv_p(2) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn phat_formula() {
        let p = BernoulliProfile::new(vec![0.1, 0.4]).unwrap();
        let ph = p.phat(0.5);
        assert!((ph[0] - (0.05 + 0.5)).abs() < 1e-12);
        assert!((ph[1] - (0.2 + 0.5)).abs() < 1e-12);
        // alpha = 0: phat = p. alpha = 1: phat = 1.
        assert_eq!(p.phat(0.0), vec![0.1, 0.4]);
        assert_eq!(p.phat(1.0), vec![1.0, 1.0]);
    }

    #[test]
    fn c_constant_definition() {
        let p = BernoulliProfile::uniform(100, 0.3).unwrap();
        let n = 1000;
        assert!((p.c_constant(n) - 30.0 / (1000f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn sorted_desc_permutation_roundtrip() {
        let p = BernoulliProfile::new(vec![0.1, 0.5, 0.3]).unwrap();
        let (sorted, perm) = p.sorted_desc();
        assert_eq!(sorted.ps(), &[0.5, 0.3, 0.1]);
        assert_eq!(perm, vec![1, 2, 0]);
        assert!(sorted.is_sorted_desc());
        assert!(!p.is_sorted_desc());
    }
}
