//! Frequency-plot transforms for the paper's Figure 2.
//!
//! Figure 2 plots, for each dataset, the sorted empirical frequencies `p_j`
//! (decreasing in `j`) under the transform `y = 1 + log_n(p_j)`:
//!
//! * left panel: `x = j/d` (linear rank fraction);
//! * right panel: `x = log_d(j)` (log rank) — a plain Zipfian distribution is
//!   a straight line here, and real data shows up as *piecewise* Zipfian.

/// One dataset's Figure 2 series.
#[derive(Clone, Debug)]
pub struct FrequencyPlot {
    /// Dataset label.
    pub name: String,
    /// Points `(j/d, log_d j, 1 + log_n p_j)` for each plotted rank `j ≥ 1`.
    pub points: Vec<FrequencyPoint>,
}

/// A single rank's plot coordinates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrequencyPoint {
    /// Rank `j` (1-based, as in the paper).
    pub rank: usize,
    /// Left-panel x: `j/d`.
    pub rank_frac: f64,
    /// Right-panel x: `log_d j`.
    pub log_rank: f64,
    /// y: `1 + log_n p_j`.
    pub y: f64,
}

impl FrequencyPlot {
    /// Builds the series from sorted (decreasing) frequencies, `n`, and `d`,
    /// downsampling to at most `max_points` geometrically spaced ranks (the
    /// interesting structure is log-scale in rank). Zero frequencies are
    /// skipped (log undefined; the paper's plots end at the last observed
    /// item).
    pub fn from_sorted_frequencies(
        name: impl Into<String>,
        freqs: &[f64],
        n: usize,
        max_points: usize,
    ) -> Self {
        assert!(n >= 2, "need n >= 2 for log_n");
        let d = freqs.len();
        assert!(d >= 2, "need d >= 2 for log_d");
        let ln_n = (n as f64).ln();
        let ln_d = (d as f64).ln();
        let ranks = geometric_ranks(d, max_points);
        let points = ranks
            .into_iter()
            .filter_map(|j| {
                let p = freqs[j - 1];
                if p <= 0.0 {
                    return None;
                }
                Some(FrequencyPoint {
                    rank: j,
                    rank_frac: j as f64 / d as f64,
                    log_rank: (j as f64).ln() / ln_d,
                    y: 1.0 + p.ln() / ln_n,
                })
            })
            .collect();
        Self {
            name: name.into(),
            points,
        }
    }

    /// Largest y value (the head of the distribution).
    pub fn y_max(&self) -> f64 {
        self.points.iter().map(|p| p.y).fold(f64::MIN, f64::max)
    }

    /// Least-squares slope of `y` against `log_d j` — the (negative of the)
    /// Zipf exponent in the right-panel parameterization. A straight-line
    /// (pure Zipf) dataset has constant local slope.
    pub fn zipf_slope(&self) -> f64 {
        let pts: Vec<(f64, f64)> = self.points.iter().map(|p| (p.log_rank, p.y)).collect();
        least_squares_slope(&pts)
    }
}

/// At most `k` distinct ranks in `[1, d]`, geometrically spaced.
fn geometric_ranks(d: usize, k: usize) -> Vec<usize> {
    assert!(k >= 2);
    let mut out = Vec::with_capacity(k);
    let ratio = (d as f64).powf(1.0 / (k as f64 - 1.0));
    let mut r = 1.0f64;
    for _ in 0..k {
        let j = (r.round() as usize).clamp(1, d);
        if out.last() != Some(&j) {
            out.push(j);
        }
        r *= ratio;
    }
    if out.last() != Some(&d) {
        out.push(d);
    }
    out
}

/// Ordinary least-squares slope of `y` on `x`.
pub fn least_squares_slope(pts: &[(f64, f64)]) -> f64 {
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return 0.0;
    }
    let mx = pts.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pts.iter().map(|p| p.1).sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for &(x, y) in pts {
        num += (x - mx) * (y - my);
        den += (x - mx) * (x - mx);
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_ranks_cover_endpoints() {
        let r = geometric_ranks(1000, 10);
        assert_eq!(*r.first().unwrap(), 1);
        assert_eq!(*r.last().unwrap(), 1000);
        assert!(r.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn plot_transform_formulas() {
        // freqs over d=100, n=10_000; check the transform at rank 1.
        let mut freqs = vec![0.001; 100];
        freqs[0] = 0.1;
        let plot = FrequencyPlot::from_sorted_frequencies("t", &freqs, 10_000, 50);
        let p0 = plot.points[0];
        assert_eq!(p0.rank, 1);
        assert!((p0.rank_frac - 0.01).abs() < 1e-12);
        assert_eq!(p0.log_rank, 0.0); // log 1 = 0
                                      // y = 1 + ln(0.1)/ln(10000) = 1 - 0.25 = 0.75.
        assert!((p0.y - 0.75).abs() < 1e-12, "y={}", p0.y);
    }

    #[test]
    fn pure_zipf_is_linear_in_log_rank() {
        // p_j = c / j  =>  y = 1 + (ln c - ln j)/ln n, linear in ln j.
        let d = 10_000usize;
        let n = 100_000usize;
        let freqs: Vec<f64> = (1..=d).map(|j| 0.5 / j as f64).collect();
        let plot = FrequencyPlot::from_sorted_frequencies("zipf", &freqs, n, 64);
        // Residuals from the least-squares line should be ~0.
        let slope = plot.zipf_slope();
        let pts: Vec<(f64, f64)> = plot.points.iter().map(|p| (p.log_rank, p.y)).collect();
        let my = pts.iter().map(|p| p.1).sum::<f64>() / pts.len() as f64;
        let mx = pts.iter().map(|p| p.0).sum::<f64>() / pts.len() as f64;
        for &(x, y) in &pts {
            let fit = my + slope * (x - mx);
            assert!((y - fit).abs() < 1e-9, "nonlinear at x={x}");
        }
        // slope = -ln d / ln n per unit of log_d j.
        let expect = -(d as f64).ln() / (n as f64).ln();
        assert!((slope - expect).abs() < 1e-9, "slope={slope}");
    }

    #[test]
    fn zero_frequencies_are_skipped() {
        let mut freqs = vec![0.2, 0.1, 0.05];
        freqs.extend(vec![0.0; 7]);
        let plot = FrequencyPlot::from_sorted_frequencies("z", &freqs, 100, 20);
        assert!(plot.points.iter().all(|p| p.y.is_finite()));
        assert!(plot.points.iter().all(|p| p.rank <= 3));
    }

    #[test]
    fn least_squares_slope_of_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        assert!((least_squares_slope(&pts) - 3.0).abs() < 1e-12);
    }
}
