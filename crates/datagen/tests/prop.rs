//! Property-based tests for the data model.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use skewsearch_datagen::{correlated_query, loader, BernoulliProfile, Dataset, VectorSampler};

fn arb_profile() -> impl Strategy<Value = BernoulliProfile> {
    prop::collection::vec(0.002f64..0.5, 2..120).prop_map(|ps| BernoulliProfile::new(ps).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn samples_are_valid_subsets(profile in arb_profile(), seed in any::<u64>()) {
        let sampler = VectorSampler::new(&profile);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let x = sampler.sample(&mut rng);
            let dims = x.dims();
            prop_assert!(dims.windows(2).all(|w| w[0] < w[1]), "sorted unique");
            prop_assert!(dims.iter().all(|&i| (i as usize) < profile.d()));
        }
    }

    #[test]
    fn correlated_query_is_valid_and_interpolates(
        profile in arb_profile(),
        seed in any::<u64>(),
        alpha in 0.0f64..=1.0,
    ) {
        let sampler = VectorSampler::new(&profile);
        let mut rng = StdRng::seed_from_u64(seed);
        let x = sampler.sample(&mut rng);
        let q = correlated_query(&x, &profile, alpha, &mut rng);
        prop_assert!(q.dims().iter().all(|&i| (i as usize) < profile.d()));
        if alpha == 1.0 {
            prop_assert_eq!(q, x);
        }
    }

    #[test]
    fn estimated_profile_has_matching_shape(profile in arb_profile(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = Dataset::generate(&profile, 60, &mut rng);
        let est = ds.estimate_profile(0.5);
        prop_assert_eq!(est.d(), profile.d());
        // Laplace smoothing keeps everything strictly inside (0, 1).
        prop_assert!(est.min_p() > 0.0);
        prop_assert!(est.max_p() < 1.0);
    }

    #[test]
    fn loader_roundtrips_any_dataset(
        vecs in prop::collection::vec(prop::collection::vec(0u32..5000, 0..30), 1..40),
    ) {
        let vectors: Vec<_> = vecs
            .into_iter()
            .map(skewsearch_sets::SparseVec::from_unsorted)
            .collect();
        let d = vectors
            .iter()
            .filter_map(|v| v.dims().last().copied())
            .max()
            .map_or(1, |m| m as usize + 1);
        let ds = Dataset::from_vectors(vectors, d);
        let mut buf = Vec::new();
        loader::write_transactions(&ds, &mut buf).unwrap();
        let ds2 = loader::read_transactions(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(ds.n(), ds2.n());
        for i in 0..ds.n() {
            prop_assert_eq!(ds.vector(i), ds2.vector(i));
        }
    }

    #[test]
    fn profile_constructors_hit_target_weight(
        d in 50usize..400,
        s in 0.2f64..2.0,
        frac in 0.05f64..0.4,
    ) {
        let target = frac * d as f64 * 0.4;
        let p = BernoulliProfile::zipf(d, s, target, 0.5).unwrap();
        prop_assert!((p.sum_p() - target).abs() / target < 0.01);
        prop_assert!(p.is_sorted_desc());
        prop_assert!(p.max_p() <= 0.5);
    }
}
