//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro fig1 [--steps N]                Figure 1 rho curves
//! repro fig2 [--scale N] [--file PATH]  Figure 2 frequency plots
//! repro table1 [--scale N]              Table 1 independence ratios
//! repro sec7-adversarial [--log2n K]    §7.1 worked examples
//! repro sec7-correlated [--log2n K]     §7.2 worked examples
//! repro motivating [--d N] [--i1 X]     §1 motivating example
//! repro scaling [--uniform] [--full]    Theorem 1/2 candidate scaling
//! repro sharded [--shards a,b,c]        sharded-vs-unsharded equivalence sweep
//! repro recall                          Lemma 5 recall-vs-repetitions
//! repro save --dir PATH [--scale N]     build an index suite, persist it, print answers
//! repro load --dir PATH [--scale N]     reload that suite, print the same answers
//! repro serve --port-file PATH          stand up the query server, publish its port, block
//! repro client --port-file PATH         answer the smoke's query script over the wire
//! repro client --in-process             answer the same script by direct calls
//! repro all                             everything, default parameters
//! ```
//!
//! `save`/`load` are the persistence smoke: run `save`, then `load` in a
//! fresh process against the same `--dir` (and the same `--scale/--seed`),
//! and diff the two outputs — they must be byte-identical.
//!
//! `serve`/`client` are the service smoke: background `serve`, wait for the
//! port file, run `client` against it and `client --in-process` locally,
//! and diff the two TSVs — the wire must be answer-invisible. See
//! docs/SERVICE.md.
//!
//! Output is TSV on stdout (`# title` line, header, rows), suitable for
//! redirecting straight into plotting scripts.

use skewsearch_experiments::{fig1, fig2, motivating, recall, scaling, sec7, table1};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "fig1" => run_fig1(&args),
        "fig2" => run_fig2(&args),
        "table1" => run_table1(&args),
        "sec7-adversarial" => run_sec7_adversarial(&args),
        "sec7-correlated" => run_sec7_correlated(&args),
        "motivating" => run_motivating(&args),
        "scaling" => run_scaling(&args),
        "sharded" => run_sharded(&args),
        "recall" => run_recall(&args),
        "save" => run_persist(&args, true),
        "load" => run_persist(&args, false),
        "serve" => run_serve(&args),
        "client" => run_client(&args),
        "all" => {
            run_fig1(&args);
            run_fig2(&args);
            run_table1(&args);
            run_sec7_adversarial(&args);
            run_sec7_correlated(&args);
            run_motivating(&args);
            run_scaling(&args);
            run_sharded(&args);
            run_recall(&args);
        }
        _ => {
            eprintln!(
                "usage: repro <fig1|fig2|table1|sec7-adversarial|sec7-correlated|\
                 motivating|scaling|sharded|recall|save|load|serve|client|all> [options]\n\
                 options: --steps N --scale N --file PATH --log2n K --d N --i1 X \
                 --uniform --full --seed S --shards a,b,c --dir PATH \
                 --port-file PATH --addr HOST:PORT --in-process"
            );
            std::process::exit(if cmd == "help" { 0 } else { 2 });
        }
    }
}

/// Parses `--name value` (panics with a clear message on malformed input).
fn opt<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T
where
    T::Err: std::fmt::Display,
{
    match args.iter().position(|a| a == name) {
        Some(i) => {
            let raw = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("missing value after {name}"));
            raw.parse()
                .unwrap_or_else(|e| panic!("bad value for {name}: {e}"))
        }
        None => default,
    }
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn run_fig1(args: &[String]) {
    let steps = opt(args, "--steps", 50usize);
    let fig = fig1::paper_setting(steps);
    print!("{}", fig.table().render_tsv());
    println!("# max gap rho_CP - rho_ours = {:.4}\n", fig.max_gap());
}

fn run_fig2(args: &[String]) {
    let scale = opt(args, "--scale", 4000usize);
    let seed = opt(args, "--seed", 42u64);
    let file = opt(args, "--file", String::new());
    let fig = if file.is_empty() {
        fig2::from_surrogates(scale, seed)
    } else {
        let ds = skewsearch_datagen::loader::load_transactions(&file)
            .unwrap_or_else(|e| panic!("loading {file}: {e}"));
        fig2::from_dataset(&file, &ds)
    };
    print!("{}", fig.table().render_tsv());
    println!();
    print!("{}", fig.summary().render_tsv());
    println!();
}

fn run_table1(args: &[String]) {
    let scale = opt(args, "--scale", 5000usize);
    let seed = opt(args, "--seed", 42u64);
    let file = opt(args, "--file", String::new());
    if file.is_empty() {
        let t = table1::from_surrogates(scale, seed);
        print!("{}", t.table().render_tsv());
    } else {
        let ds = skewsearch_datagen::loader::load_transactions(&file)
            .unwrap_or_else(|e| panic!("loading {file}: {e}"));
        let r = table1::row_for_dataset(&file, &ds);
        println!(
            "# Table 1 row for {file}\nratio2\t{:.3}\nratio3\t{:.3}",
            r.ratio2, r.ratio3
        );
    }
    println!();
}

fn run_sec7_adversarial(args: &[String]) {
    let log2n = opt(args, "--log2n", 40u32);
    let rows = sec7::sec71_adversarial(1usize << log2n);
    print!(
        "{}",
        sec7::render(&rows, "Section 7.1: adversarial worked examples").render_tsv()
    );
    println!();
}

fn run_sec7_correlated(args: &[String]) {
    let log2n = opt(args, "--log2n", 40u32);
    let c = opt(args, "--c", 20.0f64);
    let rows = sec7::sec72_correlated(1usize << log2n, c);
    print!(
        "{}",
        sec7::render(&rows, "Section 7.2: correlated worked examples").render_tsv()
    );
    println!();
}

fn run_motivating(args: &[String]) {
    let d = opt(args, "--d", 100_000usize);
    let i1 = opt(args, "--i1", 0.5f64);
    let m = motivating::compute(d, i1);
    print!("{}", m.table().render_tsv());
    println!();
}

fn run_scaling(args: &[String]) {
    let mut config = if flag(args, "--uniform") {
        scaling::ScalingConfig::default_uniform()
    } else {
        scaling::ScalingConfig::default_skewed()
    };
    if flag(args, "--full") {
        config.ns = vec![1000, 2000, 4000, 8000, 16000];
        config.queries = 100;
    }
    config.seed = opt(args, "--seed", config.seed);
    let s = if flag(args, "--adversarial") {
        scaling::run_adversarial(&config, opt(args, "--b1", 0.7), 2)
    } else {
        scaling::run(&config)
    };
    print!("{}", s.table().render_tsv());
    println!();
    print!("{}", s.summary().render_tsv());
    println!();
}

fn run_sharded(args: &[String]) {
    let mut config = scaling::ScalingConfig::default_skewed();
    config.seed = opt(args, "--seed", config.seed);
    let shards: Vec<usize> = opt(args, "--shards", "1,2,4,8".to_string())
        .split(',')
        .map(|s| s.trim().parse().expect("--shards takes e.g. 1,2,4,8"))
        .collect();
    let s = scaling::run_sharded(&config, &shards);
    print!("{}", s.table().render_tsv());
    println!();
    assert!(
        s.all_identical(),
        "sharded answers diverged from the unsharded index"
    );
}

fn run_persist(args: &[String], saving: bool) {
    let dir = opt(args, "--dir", String::new());
    if dir.is_empty() {
        eprintln!(
            "repro {}: --dir PATH is required",
            if saving { "save" } else { "load" }
        );
        std::process::exit(2);
    }
    let mut config = skewsearch_experiments::persistence::PersistConfig::default_config();
    config.scale = opt(args, "--scale", config.scale);
    config.seed = opt(args, "--seed", config.seed);
    config.shards = opt(args, "--shards", config.shards);
    let dir = std::path::PathBuf::from(dir);
    let result = if saving {
        skewsearch_experiments::persistence::save(&config, &dir)
    } else {
        skewsearch_experiments::persistence::load(&config, &dir)
    };
    let table =
        result.unwrap_or_else(|e| panic!("repro {}: {e}", if saving { "save" } else { "load" }));
    print!("{}", table.render_tsv());
    println!();
}

fn service_config(args: &[String]) -> skewsearch_experiments::service::ServiceConfig {
    let mut config = skewsearch_experiments::service::ServiceConfig::default_config();
    config.scale = opt(args, "--scale", config.scale);
    config.seed = opt(args, "--seed", config.seed);
    config
}

fn run_serve(args: &[String]) {
    let port_file = opt(args, "--port-file", String::new());
    if port_file.is_empty() {
        eprintln!("repro serve: --port-file PATH is required");
        std::process::exit(2);
    }
    let config = service_config(args);
    skewsearch_experiments::service::serve(&config, std::path::Path::new(&port_file))
        .unwrap_or_else(|e| panic!("repro serve: {e}"));
}

fn run_client(args: &[String]) {
    use skewsearch_experiments::service;
    let config = service_config(args);
    let table = if flag(args, "--in-process") {
        service::answers_in_process(&config)
    } else {
        let addr = match opt(args, "--addr", String::new()) {
            a if !a.is_empty() => a.parse().unwrap_or_else(|e| panic!("bad --addr: {e}")),
            _ => {
                let port_file = opt(args, "--port-file", String::new());
                if port_file.is_empty() {
                    eprintln!("repro client: --addr HOST:PORT, --port-file PATH, or --in-process is required");
                    std::process::exit(2);
                }
                service::read_port_file(std::path::Path::new(&port_file))
                    .unwrap_or_else(|e| panic!("repro client: {e}"))
            }
        };
        service::answers_over_wire(&config, addr).unwrap_or_else(|e| panic!("repro client: {e}"))
    };
    print!("{}", table.render_tsv());
    println!();
}

fn run_recall(args: &[String]) {
    let mut config = recall::RecallConfig::default_config();
    config.seed = opt(args, "--seed", config.seed);
    let c = recall::run(&config);
    print!("{}", c.table().render_tsv());
    println!();
}
