//! **Figure 1**: ρ of the paper's structure vs Chosen Path on the
//! half-`p` / half-`p/8` distribution at α = 2/3.
//!
//! The paper's caption: "The red line gives the ρ value of our data
//! structure when the distribution is such that half the bits are set to 1
//! with probability p and the other half is set to 1 with probability p/8,
//! and the sought-for correlation is α = 2/3. The blue line gives the
//! ρ-value achieved by Chosen Path [for the induced (b₁, b₂) problem].
//! Prefix filtering has a ρ-value of 1 in this case."
//!
//! Everything here is analytic (the exponent equations), so this figure is
//! reproduced *exactly*, not approximately.

use crate::table::{fmt, Table};
use skewsearch_rho::exponents::rho_correlated_blocks;
use skewsearch_rho::model::{expected_b1_correlated_blocks, expected_b2_independent_blocks};
use skewsearch_rho::rho_chosen_path;

/// One point of the Figure 1 sweep.
#[derive(Clone, Copy, Debug)]
pub struct Fig1Point {
    /// Head probability `p` (tail is `p/8`).
    pub p: f64,
    /// Our ρ (Theorem 1): the red line.
    pub rho_ours: f64,
    /// Chosen Path's ρ for the induced `(b₁, b₂)` problem: the blue line.
    pub rho_chosen_path: f64,
    /// Prefix filtering's exponent (1.0 whenever `p = Θ(1)`).
    pub rho_prefix: f64,
}

/// The full sweep.
#[derive(Clone, Debug)]
pub struct Fig1 {
    /// The correlation α (2/3 in the paper).
    pub alpha: f64,
    /// The tail divisor (8 in the paper).
    pub divisor: f64,
    /// Sweep points.
    pub points: Vec<Fig1Point>,
}

/// Computes the Figure 1 sweep with `steps` grid points of `p ∈ (0, p_max]`.
///
/// `p_max` defaults to 1 in the paper's axis; probabilities must stay below
/// 1, so the grid tops out slightly under `p_max`.
pub fn compute(alpha: f64, divisor: f64, steps: usize, p_max: f64) -> Fig1 {
    assert!(steps >= 2, "need at least 2 grid points");
    assert!(p_max > 0.0 && p_max <= 1.0);
    let mut points = Vec::with_capacity(steps);
    for k in 1..=steps {
        let p = (p_max * k as f64 / steps as f64).min(0.999);
        let blocks = [(1.0, p), (1.0, p / divisor)];
        let rho_ours = rho_correlated_blocks(&blocks, alpha);
        let b1 = expected_b1_correlated_blocks(&blocks, alpha);
        let b2 = expected_b2_independent_blocks(&blocks);
        let rho_cp = rho_chosen_path(b1, b2);
        points.push(Fig1Point {
            p,
            rho_ours,
            rho_chosen_path: rho_cp,
            rho_prefix: 1.0,
        });
    }
    Fig1 {
        alpha,
        divisor,
        points,
    }
}

/// The paper's exact setting: α = 2/3, tail = p/8, p ∈ (0, 1).
pub fn paper_setting(steps: usize) -> Fig1 {
    compute(2.0 / 3.0, 8.0, steps, 1.0)
}

impl Fig1 {
    /// Renders the sweep as a table (one row per grid point).
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Figure 1: rho vs p (half p, half p/{}, alpha={:.3})",
                self.divisor, self.alpha
            ),
            &["p", "rho_ours(red)", "rho_chosen_path(blue)", "rho_prefix"],
        );
        for pt in &self.points {
            t.push_row(vec![
                fmt(pt.p, 4),
                fmt(pt.rho_ours, 6),
                fmt(pt.rho_chosen_path, 6),
                fmt(pt.rho_prefix, 1),
            ]);
        }
        t
    }

    /// Largest gap `ρ_CP − ρ_ours` over the sweep (how much skew-adaptivity
    /// buys at the best point).
    pub fn max_gap(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.rho_chosen_path - p.rho_ours)
            .fold(f64::MIN, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ours_never_exceeds_chosen_path() {
        let fig = paper_setting(50);
        for pt in &fig.points {
            assert!(
                pt.rho_ours <= pt.rho_chosen_path + 1e-9,
                "p={}: ours={} cp={}",
                pt.p,
                pt.rho_ours,
                pt.rho_chosen_path
            );
        }
    }

    #[test]
    fn gap_is_strictly_positive_for_skewed_p() {
        let fig = paper_setting(50);
        assert!(fig.max_gap() > 0.01, "max gap {}", fig.max_gap());
        // Mid-range p should show a visible gap (the figure's message).
        let mid = &fig.points[fig.points.len() / 2];
        assert!(mid.rho_chosen_path - mid.rho_ours > 0.005);
    }

    #[test]
    fn chosen_path_is_monotone_but_ours_peaks() {
        // CP only sees (b1, b2), which degrade monotonically with density.
        // Our curve *peaks* (around p ≈ 0.68) and then falls: once the
        // frequent block stops discriminating, the adaptive thresholds route
        // paths through the rare p/8 block instead — the gap to CP keeps
        // widening toward p = 1.
        let fig = paper_setting(40);
        for w in fig.points.windows(2) {
            assert!(w[1].rho_chosen_path >= w[0].rho_chosen_path - 1e-9);
        }
        for w in fig.points.windows(2) {
            if w[1].p <= 0.6 {
                assert!(w[1].rho_ours >= w[0].rho_ours - 1e-9, "p={}", w[1].p);
            }
            if w[0].p >= 0.72 {
                assert!(w[1].rho_ours <= w[0].rho_ours + 1e-9, "p={}", w[1].p);
            }
        }
        let gap_low = fig.points[3].rho_chosen_path - fig.points[3].rho_ours;
        let gap_high = fig.points[38].rho_chosen_path - fig.points[38].rho_ours;
        assert!(gap_high > gap_low, "gap should widen with p");
    }

    #[test]
    fn no_skew_divisor_one_collapses_the_gap() {
        let fig = compute(2.0 / 3.0, 1.0, 20, 0.9);
        for pt in &fig.points {
            assert!(
                (pt.rho_ours - pt.rho_chosen_path).abs() < 1e-6,
                "p={}: gap should vanish without skew",
                pt.p
            );
        }
    }

    #[test]
    fn table_has_one_row_per_point() {
        let fig = paper_setting(25);
        let t = fig.table();
        assert_eq!(t.rows.len(), 25);
        assert_eq!(t.columns.len(), 4);
    }
}
