//! **Figure 2**: frequency distributions of the Mann et al. datasets,
//! plotted as `1 + log_n p_j` against `j/d` (left panel) and `log_d j`
//! (right panel).
//!
//! Run on the synthetic surrogates by default (see DESIGN.md §3 for the
//! substitution rationale); [`from_dataset`] accepts any loaded dataset, so
//! the real benchmark files reproduce the genuine figure via
//! `skewsearch_datagen::loader`.

use crate::table::{fmt, Table};
use rand::{rngs::StdRng, SeedableRng};
use skewsearch_datagen::{surrogate_catalog, Dataset, FrequencyPlot};

/// Figure 2 data for a collection of datasets.
#[derive(Clone, Debug)]
pub struct Fig2 {
    /// One frequency plot per dataset.
    pub plots: Vec<FrequencyPlot>,
}

/// Number of plotted ranks per dataset (geometrically spaced).
pub const POINTS_PER_DATASET: usize = 48;

/// Builds the figure from the surrogate catalog at scale `n` per dataset.
pub fn from_surrogates(n: usize, seed: u64) -> Fig2 {
    let mut rng = StdRng::seed_from_u64(seed);
    let plots = surrogate_catalog()
        .iter()
        .map(|spec| {
            let (ds, _) = spec.generate(n, &mut rng);
            plot_of(&spec.display_name(), &ds)
        })
        .collect();
    Fig2 { plots }
}

/// The Figure 2 series of one (possibly real) dataset.
pub fn from_dataset(name: &str, ds: &Dataset) -> Fig2 {
    Fig2 {
        plots: vec![plot_of(name, ds)],
    }
}

fn plot_of(name: &str, ds: &Dataset) -> FrequencyPlot {
    FrequencyPlot::from_sorted_frequencies(
        name,
        &ds.sorted_frequencies(),
        ds.n(),
        POINTS_PER_DATASET,
    )
}

impl Fig2 {
    /// Long-format table: one row per (dataset, rank) with both panels' x
    /// coordinates.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 2: frequency distributions, y = 1 + log_n p_j",
            &[
                "dataset",
                "rank_j",
                "j/d (left x)",
                "log_d j (right x)",
                "y",
            ],
        );
        for plot in &self.plots {
            for p in &plot.points {
                t.push_row(vec![
                    plot.name.clone(),
                    p.rank.to_string(),
                    fmt(p.rank_frac, 6),
                    fmt(p.log_rank, 4),
                    fmt(p.y, 4),
                ]);
            }
        }
        t
    }

    /// Summary table: per-dataset head height, tail depth, and fitted
    /// piecewise-Zipf slope — the quantities §8 reads off the figure.
    pub fn summary(&self) -> Table {
        let mut t = Table::new(
            "Figure 2 summary: skew indicators per dataset",
            &["dataset", "y_head", "y_tail", "zipf_slope(right panel)"],
        );
        for plot in &self.plots {
            let y_head = plot.points.first().map(|p| p.y).unwrap_or(f64::NAN);
            let y_tail = plot.points.last().map(|p| p.y).unwrap_or(f64::NAN);
            t.push_row(vec![
                plot.name.clone(),
                fmt(y_head, 4),
                fmt(y_tail, 4),
                fmt(plot.zipf_slope(), 4),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_ten_surrogates() {
        let fig = from_surrogates(800, 7);
        assert_eq!(fig.plots.len(), 10);
        for p in &fig.plots {
            assert!(p.name.ends_with("-SYN"));
            assert!(!p.points.is_empty(), "{} has no points", p.name);
        }
    }

    #[test]
    fn every_dataset_displays_significant_skew() {
        // §8: "all data sets display a significant skew" — head frequency far
        // above tail frequency on the log_n scale.
        let fig = from_surrogates(1500, 8);
        for p in &fig.plots {
            let y_head = p.points.first().unwrap().y;
            let y_tail = p.points.last().unwrap().y;
            // NETFLIX is the flattest real dataset (dense ratings, d ≈ 18k);
            // 0.2 on the log_n scale still means a >n^0.2 frequency span.
            assert!(
                y_head - y_tail > 0.2,
                "{}: head {y_head} tail {y_tail} — not skewed",
                p.name
            );
        }
    }

    #[test]
    fn y_is_at_most_one() {
        // y = 1 + log_n p_j <= 1 since p_j <= 1.
        let fig = from_surrogates(600, 9);
        for p in &fig.plots {
            for pt in &p.points {
                assert!(pt.y <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn from_dataset_runs_on_loaded_data() {
        use skewsearch_sets::SparseVec;
        let vs: Vec<SparseVec> = (0..50)
            .map(|i| SparseVec::from_unsorted(vec![0, 1 + (i % 7) as u32]))
            .collect();
        let ds = Dataset::from_vectors(vs, 10);
        let fig = from_dataset("real-data", &ds);
        assert_eq!(fig.plots.len(), 1);
        assert_eq!(fig.plots[0].name, "real-data");
        let t = fig.table();
        assert!(!t.rows.is_empty());
    }
}
