//! # skewsearch-experiments
//!
//! Reproduction harness for every table and figure of
//! "Set Similarity Search for Skewed Data" (PODS 2018), plus empirical
//! validation of its theorems:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`fig1`] | Figure 1 — ρ of ours vs Chosen Path, half-`p`/half-`p/8`, α = 2/3 |
//! | [`fig2`] | Figure 2 — frequency distributions of the Mann et al. datasets |
//! | [`table1`] | Table 1 — independence ratios for `\|I\| ∈ {2, 3}` |
//! | [`sec7`] | §7.1/§7.2 worked examples (exponent comparisons) |
//! | [`motivating`] | §1 motivating example (harmonic split) |
//! | [`scaling`] | Theorems 1–2 empirical validation (candidate scaling, added) |
//! | [`recall`] | Lemma 5 repetition boost (added) |
//! | [`persistence`] | save/load cross-process equivalence smoke (added) |
//! | [`service`] | serve/client cross-process wire-equivalence smoke (added) |
//!
//! Each module exposes a pure `compute`/`run` function returning structured
//! results plus [`table::Table`] renderers; the `repro` binary wires them to
//! a CLI. EXPERIMENTS.md records paper-vs-measured values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig1;
pub mod fig2;
pub mod motivating;
pub mod persistence;
pub mod recall;
pub mod scaling;
pub mod sec7;
pub mod service;
pub mod table;
pub mod table1;

pub use table::Table;
