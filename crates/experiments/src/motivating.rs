//! **§1 motivating example**: the harmonic distribution and the
//! frequent/rare split.
//!
//! Vectors from the "harmonic" distribution `Pr[x_k = 1] = 1/k` (clamped to
//! 1/2 to satisfy the model); a query seeks `|x ∩ q| ≥ i₁|q|`. The single
//! search costs `n^ρ` with `ρ = log(i₁)/log(i₂)`; the paper splits the
//! universe into frequent/rare halves and balances `ℓ` to get
//! `n^{ρ_f} + n^{ρ_r}`.
//!
//! **Reproduction note.** The paper's displayed formulas
//! (`ρ_f = log(ℓ)/log(i_f)`, both normalized by the full `|q|`) are
//! introduced with "the combined cost … becomes approximately". Taken
//! literally they never beat the single search: since `i_f ≤ i₂` and
//! `ℓ < i₁`, both the numerator and denominator grow in magnitude and the
//! balanced optimum lands slightly *above* `ρ`. The speedup appears when the
//! sub-searches are normalized by their own projected query sizes
//! (`|q_f| ≈ ln(d/2)`, `|q_r| ≈ ln 2` under the harmonic distribution) —
//! then the rare half becomes extremely discriminative and the balanced
//! split strictly wins. We compute **both**: the literal exponents (matching
//! the paper's displayed equations) and the normalized ones (matching the
//! speedup the example is about).

use crate::table::{fmt, Table};
use skewsearch_core::{balance_split_normalized, balanced_exponents};
use skewsearch_datagen::BernoulliProfile;

/// The worked motivating example.
#[derive(Clone, Debug)]
pub struct Motivating {
    /// Universe size.
    pub d: usize,
    /// Required overlap fraction `i₁`.
    pub i1: f64,
    /// Expected relative intersection of the whole universe (`i₂`).
    pub i2: f64,
    /// Frequent-half expected relative intersection (÷ `|q|`).
    pub i_frequent: f64,
    /// Rare-half expected relative intersection (÷ `|q|`).
    pub i_rare: f64,
    /// Frequent half's share of `E|q|`.
    pub frac_frequent: f64,
    /// Rare half's share of `E|q|`.
    pub frac_rare: f64,
    /// Single-search exponent `log(i₁)/log(i₂)`.
    pub rho_single: f64,
    /// Balanced ℓ under the paper's literal formulas.
    pub ell_literal: f64,
    /// Balanced exponent under the literal formulas (`= max(ρ_f, ρ_r)`).
    pub rho_split_literal: f64,
    /// Balanced ℓ with per-half normalization.
    pub ell_normalized: f64,
    /// Balanced frequent exponent (normalized).
    pub rho_frequent: f64,
    /// Balanced rare exponent (normalized).
    pub rho_rare: f64,
}

/// Computes the example for the harmonic profile on `d` dimensions (split at
/// `d/2` as in the paper: "split q into two equal-sized vectors") with
/// target overlap `i1`.
pub fn compute(d: usize, i1: f64) -> Motivating {
    assert!(d >= 4, "need a non-trivial universe");
    assert!(i1 > 0.0 && i1 < 1.0);
    // lint:allow(no-panic-in-lib, experiment fixture with hard-coded valid probabilities; a failure is a bug in this module)
    let profile = BernoulliProfile::harmonic(d, 0.5).unwrap();
    let ps = profile.ps();
    let w: f64 = profile.sum_p();
    let cut = d / 2;
    let w_f: f64 = ps[..cut].iter().sum();
    let w_r = w - w_f;
    let i_frequent: f64 = ps[..cut].iter().map(|p| p * p).sum::<f64>() / w;
    let i_rare: f64 = ps[cut..].iter().map(|p| p * p).sum::<f64>() / w;
    let i2 = i_frequent + i_rare;
    let rho_single = i1.ln() / i2.ln();
    let (ell_literal, rf_lit, rr_lit) = balanced_exponents(i_frequent, i_rare, i1);
    let (ell_normalized, rho_frequent, rho_rare) =
        balance_split_normalized(i_frequent, i_rare, i1, w_f / w, w_r / w);
    Motivating {
        d,
        i1,
        i2,
        i_frequent,
        i_rare,
        frac_frequent: w_f / w,
        frac_rare: w_r / w,
        rho_single,
        ell_literal,
        rho_split_literal: rf_lit.max(rr_lit),
        ell_normalized,
        rho_frequent,
        rho_rare,
    }
}

impl Motivating {
    /// The combined normalized split exponent `max(ρ_f, ρ_r)` (query cost
    /// `n^{ρ_f} + n^{ρ_r}`).
    pub fn rho_split(&self) -> f64 {
        self.rho_frequent.max(self.rho_rare)
    }

    /// Renders the example as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Motivating example: harmonic distribution, d={}, i1={:.2}",
                self.d, self.i1
            ),
            &["quantity", "value"],
        );
        let rows: Vec<(&str, f64)> = vec![
            ("i2 (expected relative intersection)", self.i2),
            ("i_frequent", self.i_frequent),
            ("i_rare", self.i_rare),
            ("frac_frequent = E|q_f|/E|q|", self.frac_frequent),
            ("frac_rare = E|q_r|/E|q|", self.frac_rare),
            ("rho_single = log(i1)/log(i2)", self.rho_single),
            ("ell (literal formulas)", self.ell_literal),
            ("rho_split (literal formulas)", self.rho_split_literal),
            ("ell (normalized)", self.ell_normalized),
            ("rho_frequent (normalized)", self.rho_frequent),
            ("rho_rare (normalized)", self.rho_rare),
            ("rho_split = max(rho_f, rho_r)", self.rho_split()),
        ];
        for (k, v) in rows {
            t.push_row(vec![k.to_string(), fmt(v, 5)]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_split_beats_single_search() {
        for i1 in [0.3, 0.5, 0.7] {
            let m = compute(100_000, i1);
            assert!(
                m.rho_split() < m.rho_single - 0.005,
                "i1={i1}: split={} single={}",
                m.rho_split(),
                m.rho_single
            );
        }
    }

    #[test]
    fn literal_formulas_do_not_beat_single_search() {
        // The reproduction note: the paper's displayed (approximate)
        // formulas land slightly above the single-search exponent.
        let m = compute(100_000, 0.5);
        assert!(
            m.rho_split_literal >= m.rho_single - 1e-9,
            "literal={} single={}",
            m.rho_split_literal,
            m.rho_single
        );
    }

    #[test]
    fn frequent_half_dominates_intersection_but_not_query_size() {
        let m = compute(10_000, 0.5);
        assert!(m.i_frequent > 10.0 * m.i_rare);
        assert!((m.i_frequent + m.i_rare - m.i2).abs() < 1e-12);
        // Harmonic: |q_r| ≈ ln 2, a small but non-negligible share.
        assert!(m.frac_rare > 0.02 && m.frac_rare < 0.2, "{}", m.frac_rare);
    }

    #[test]
    fn balanced_normalized_exponents_are_equal() {
        let m = compute(50_000, 0.4);
        assert!(
            (m.rho_frequent - m.rho_rare).abs() < 1e-6,
            "f={} r={}",
            m.rho_frequent,
            m.rho_rare
        );
    }

    #[test]
    fn exponents_are_valid() {
        for i1 in [0.3, 0.5, 0.7] {
            let m = compute(20_000, i1);
            assert!(m.rho_single > 0.0 && m.rho_single < 1.0);
            assert!(m.rho_split() > 0.0);
            assert!(m.ell_normalized > 0.0 && m.ell_normalized < i1);
        }
    }

    #[test]
    fn table_renders() {
        let t = compute(5_000, 0.5).table();
        assert_eq!(t.rows.len(), 12);
        assert!(t.render_tsv().contains("rho_split"));
    }
}
