//! `repro save` / `repro load` — the cross-process persistence smoke.
//!
//! `save` builds a deterministic suite of indexes — a [`CorrelatedIndex`],
//! a [`MinHashLsh`] baseline, and a sharded correlated deployment — writes
//! them under a directory via the [`Persist`] trait and
//! [`ShardedIndex::save`], then prints every answer surface as TSV.
//! `load`, run in a **fresh process**, reopens the same files, regenerates
//! the identical query stream from the seed (the builds and the queries use
//! independent seeded RNG streams, so skipping the builds does not perturb
//! the queries), and prints the same TSV. CI diffs the two outputs
//! byte-for-byte — any drift between a built and a reloaded index fails the
//! pipeline.

use crate::table::{fmt, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skewsearch_baselines::{MinHashLsh, MinHashParams};
use skewsearch_core::{
    CorrelatedIndex, CorrelatedParams, IndexOptions, Match, Persist, PersistError, Repetitions,
    SetSimilaritySearch, ShardStrategy, ShardedIndex,
};
use skewsearch_datagen::{correlated_query, BernoulliProfile, Dataset};
use skewsearch_sets::SparseVec;
use std::path::Path;

/// Deterministic inputs shared by `save` and `load`.
#[derive(Clone, Copy, Debug)]
pub struct PersistConfig {
    /// Dataset size `n`.
    pub scale: usize,
    /// Master seed; the dataset, the builds, and the queries each derive
    /// their own [`StdRng`] stream from it.
    pub seed: u64,
    /// Number of correlated queries to answer.
    pub queries: usize,
    /// Query correlation `α`.
    pub alpha: f64,
    /// Shard count for the sharded deployment.
    pub shards: usize,
}

impl PersistConfig {
    /// The CI smoke setting: small enough to run in seconds, large enough
    /// that every section of the on-disk format is non-trivially populated.
    pub fn default_config() -> Self {
        Self {
            scale: 400,
            seed: 42,
            queries: 24,
            alpha: 0.8,
            shards: 3,
        }
    }

    fn profile(&self) -> BernoulliProfile {
        // lint:allow(no-panic-in-lib, experiment driver — fixed valid constants)
        BernoulliProfile::two_block(900, 0.15, 0.01).unwrap()
    }

    /// The dataset, regenerated identically in both processes.
    fn dataset(&self) -> (BernoulliProfile, Dataset) {
        let profile = self.profile();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let ds = Dataset::generate(&profile, self.scale, &mut rng);
        (profile, ds)
    }

    /// The query stream, regenerated identically in both processes from a
    /// seed stream independent of the builds.
    fn query_stream(&self, profile: &BernoulliProfile, ds: &Dataset) -> Vec<SparseVec> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x51E57);
        (0..self.queries)
            .map(|_| {
                let target = rng.random_range(0..ds.n());
                correlated_query(ds.vector(target), profile, self.alpha, &mut rng)
            })
            .collect()
    }
}

/// Builds the index suite, saves it under `dir` (`correlated.skx`,
/// `minhash.skx`, `sharded/`), and returns the answer table.
pub fn save(config: &PersistConfig, dir: &Path) -> Result<Table, PersistError> {
    let (profile, ds) = config.dataset();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xB01D);
    let opts = IndexOptions {
        repetitions: Repetitions::Fixed(8),
        ..IndexOptions::default()
    };
    let correlated = CorrelatedIndex::build(
        &ds,
        &profile,
        CorrelatedParams::new(config.alpha)
            // lint:allow(no-panic-in-lib, experiment driver — an invalid experiment config is a fatal setup error reported by panicking)
            .unwrap()
            .with_options(opts),
        &mut rng,
    );
    let (b1m, b2m) = skewsearch_rho::expected_similarities(&profile, config.alpha);
    let minhash = MinHashLsh::build(
        &ds,
        // lint:allow(no-panic-in-lib, experiment driver — an invalid experiment config is a fatal setup error reported by panicking)
        MinHashParams::new((b1m / 1.3).max(b2m * 1.01), b2m).unwrap(),
        &mut rng,
    );
    let sharded = ShardedIndex::build(&correlated, ShardStrategy::ByDataset, config.shards);

    std::fs::create_dir_all(dir)?;
    correlated.save(&dir.join("correlated.skx"))?;
    minhash.save(&dir.join("minhash.skx"))?;
    sharded.save(&dir.join("sharded"))?;
    report_memory(config, &correlated, &minhash);

    let queries = config.query_stream(&profile, &ds);
    Ok(answers(&correlated, &minhash, &sharded, &queries))
}

/// Loads the suite saved by [`save`] from `dir` and returns the answer table
/// for the identical query stream. Byte-identical output to [`save`]'s is
/// the persistence contract.
pub fn load(config: &PersistConfig, dir: &Path) -> Result<Table, PersistError> {
    let (profile, ds) = config.dataset();
    let correlated = CorrelatedIndex::load(&dir.join("correlated.skx"))?;
    let minhash = MinHashLsh::load(&dir.join("minhash.skx"))?;
    let sharded = ShardedIndex::<CorrelatedIndex>::load(&dir.join("sharded"))?;
    report_memory(config, &correlated, &minhash);
    let queries = config.query_stream(&profile, &ds);
    Ok(answers(&correlated, &minhash, &sharded, &queries))
}

/// Logs the accounted resident footprint of each index to **stderr**.
/// This deliberately stays out of the returned [`Table`]: CI diffs the
/// save/load TSV byte-for-byte, and capacity-based byte counts legitimately
/// differ between a freshly built index and one reloaded from disk (the
/// reload allocates exactly-sized arrays).
fn report_memory(config: &PersistConfig, correlated: &CorrelatedIndex, minhash: &MinHashLsh) {
    for (name, stats) in [
        ("correlated", correlated.memory_stats()),
        ("minhash", minhash.memory_stats()),
    ] {
        eprintln!(
            "[memory] {name}: {stats} — {:.1} B/set over n={}",
            stats.bytes_per_set(config.scale),
            config.scale,
        );
    }
}

/// One row per (index, query): the best match, the full `search_all` id
/// list, and the batch-surface result count. The title is identical for the
/// save and load paths so the two outputs diff cleanly.
fn answers(
    correlated: &CorrelatedIndex,
    minhash: &MinHashLsh,
    sharded: &ShardedIndex<CorrelatedIndex>,
    queries: &[SparseVec],
) -> Table {
    let mut t = Table::new(
        "Persistence smoke: answer surfaces",
        &["index", "query", "best", "all_ids", "batch_matches"],
    );
    surface_rows(&mut t, "correlated", correlated, queries);
    surface_rows(&mut t, "minhash", minhash, queries);
    surface_rows(&mut t, "sharded", sharded, queries);
    t
}

fn surface_rows<S: SetSimilaritySearch>(t: &mut Table, name: &str, index: &S, qs: &[SparseVec]) {
    let batch = index.search_batch(qs);
    for (i, q) in qs.iter().enumerate() {
        let best = match index.search(q) {
            Some(m) => format!("{}:{}", m.id, fmt(m.similarity, 4)),
            None => "-".to_string(),
        };
        let all = index.search_all(q);
        let all_ids = if all.is_empty() {
            "-".to_string()
        } else {
            all.iter()
                .map(|m: &Match| m.id.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        t.push_row(vec![
            name.to_string(),
            i.to_string(),
            best,
            all_ids,
            batch[i].len().to_string(),
        ]);
    }
}
