//! Recall vs repetitions: empirical check of Lemma 5 + footnote 6.
//!
//! One repetition succeeds with probability `≥ 1/log n` (Lemma 5); `R`
//! independent repetitions push the failure probability to
//! `(1 − 1/log n)^R`. This experiment measures recall of the planted
//! α-correlated neighbor as a function of `R` and reports the Lemma 5 floor
//! alongside (the measured curve should dominate it — the bound is loose).

use crate::table::{fmt, Table};
use rand::{rngs::StdRng, Rng, SeedableRng};
use skewsearch_core::{
    CorrelatedIndex, CorrelatedParams, IndexOptions, Repetitions, SetSimilaritySearch,
};
use skewsearch_datagen::{correlated_query, BernoulliProfile, Dataset};

/// Configuration.
#[derive(Clone, Debug)]
pub struct RecallConfig {
    /// Dataset size.
    pub n: usize,
    /// Repetition counts to sweep.
    pub reps: Vec<usize>,
    /// Queries per point.
    pub queries: usize,
    /// Correlation.
    pub alpha: f64,
    /// Profile constant (`Σp = c ln n`).
    pub c: f64,
    /// Seed.
    pub seed: u64,
}

impl RecallConfig {
    /// Laptop-scale default.
    pub fn default_config() -> Self {
        Self {
            n: 1500,
            reps: vec![1, 2, 4, 8, 16],
            queries: 60,
            alpha: 0.75,
            c: 8.0,
            seed: 0xFEED,
        }
    }
}

/// One sweep point.
#[derive(Clone, Copy, Debug)]
pub struct RecallPoint {
    /// Repetitions.
    pub reps: usize,
    /// Measured recall of the planted neighbor.
    pub recall: f64,
    /// Lemma 5 floor `1 − (1 − 1/ln n)^R`.
    pub lemma5_floor: f64,
}

/// Sweep result.
#[derive(Clone, Debug)]
pub struct RecallCurve {
    /// Points, in increasing `reps` order.
    pub points: Vec<RecallPoint>,
}

/// Runs the sweep.
pub fn run(config: &RecallConfig) -> RecallCurve {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mass = config.c * (config.n as f64).ln();
    let profile = BernoulliProfile::blocks(&[
        ((mass / 2.0 / 0.25).ceil() as usize, 0.25),
        ((mass / 2.0 / 0.03).ceil() as usize, 0.03),
    ])
    // lint:allow(no-panic-in-lib, experiment fixture with hard-coded valid probabilities; a failure is a bug in this module)
    .unwrap();
    let ds = Dataset::generate(&profile, config.n, &mut rng);
    let ln_n = (config.n as f64).ln();
    let mut points = Vec::new();
    for &r in &config.reps {
        let index = CorrelatedIndex::build(
            &ds,
            &profile,
            CorrelatedParams::new(config.alpha)
                // lint:allow(no-panic-in-lib, experiment driver — an invalid experiment config is a fatal setup error reported by panicking)
                .unwrap()
                .with_options(IndexOptions {
                    repetitions: Repetitions::Fixed(r),
                    ..IndexOptions::default()
                }),
            &mut rng,
        );
        let mut hits = 0usize;
        for _ in 0..config.queries {
            let target = rng.random_range(0..config.n);
            let q = correlated_query(ds.vector(target), &profile, config.alpha, &mut rng);
            if index.search(&q).map(|m| m.id) == Some(target) {
                hits += 1;
            }
        }
        points.push(RecallPoint {
            reps: r,
            recall: hits as f64 / config.queries as f64,
            lemma5_floor: 1.0 - (1.0 - 1.0 / ln_n).powi(r as i32),
        });
    }
    RecallCurve { points }
}

impl RecallCurve {
    /// Renders the curve.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Recall vs repetitions (Lemma 5 boost)",
            &["repetitions", "measured_recall", "lemma5_floor"],
        );
        for p in &self.points {
            t.push_row(vec![
                p.reps.to_string(),
                fmt(p.recall, 3),
                fmt(p.lemma5_floor, 3),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RecallCurve {
        run(&RecallConfig {
            n: 500,
            reps: vec![1, 4, 10],
            queries: 40,
            alpha: 0.8,
            c: 6.0,
            seed: 11,
        })
    }

    #[test]
    fn recall_is_monotone_in_repetitions() {
        let c = tiny();
        // Allow small sampling dips but require overall rise.
        assert!(
            c.points.last().unwrap().recall >= c.points.first().unwrap().recall,
            "{:?}",
            c.points
        );
    }

    #[test]
    fn measured_recall_dominates_lemma5_floor() {
        // Lemma 5 is a (loose) lower bound; allow sampling noise of one
        // query's worth below it.
        let c = tiny();
        for p in &c.points {
            assert!(
                p.recall >= p.lemma5_floor - 0.15,
                "reps={}: recall {} far below floor {}",
                p.reps,
                p.recall,
                p.lemma5_floor
            );
        }
    }

    #[test]
    fn high_rep_recall_is_strong() {
        let c = tiny();
        assert!(
            c.points.last().unwrap().recall >= 0.85,
            "recall={}",
            c.points.last().unwrap().recall
        );
    }

    #[test]
    fn table_shape() {
        let t = tiny().table();
        assert_eq!(t.rows.len(), 3);
    }
}
