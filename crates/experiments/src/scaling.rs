//! Empirical validation of Theorems 1 and 2: candidate-count scaling.
//!
//! The paper's bounds say the expected number of candidates a query examines
//! grows as `n^ρ` (times `log n` factors from repetitions). This experiment
//! measures distinct verified candidates per query across an `n`-sweep for
//! the paper's index and every baseline, fits the empirical exponent by
//! least squares on the log-log series, and reports it against the
//! analytical ρ. The *shape* claims under test:
//!
//! * on a skewed profile, the fitted exponent of our structure sits below
//!   Chosen Path's;
//! * on a uniform profile the two coincide (the balanced-case recovery);
//! * brute force is exponent 1 by construction.

use crate::table::{fmt, Table};
use rand::{rngs::StdRng, Rng, SeedableRng};
use skewsearch_baselines::{
    ChosenPathIndex, ChosenPathParams, MinHashLsh, MinHashParams, PrefixFilterIndex,
};
use skewsearch_core::{CorrelatedIndex, CorrelatedParams, IndexOptions, Repetitions};
use skewsearch_datagen::{correlated_query, skew::least_squares_slope, BernoulliProfile, Dataset};

/// Sweep configuration.
#[derive(Clone, Debug)]
pub struct ScalingConfig {
    /// Dataset sizes to sweep.
    pub ns: Vec<usize>,
    /// Queries per size.
    pub queries: usize,
    /// Correlation of the planted queries.
    pub alpha: f64,
    /// The paper's `C`: each profile has `Σp = c · ln n`.
    pub c: f64,
    /// Head probability (half the mass); tail = `head_p / skew_divisor`.
    pub head_p: f64,
    /// Skew: tail probability divisor (1.0 = uniform control).
    pub skew_divisor: f64,
    /// Repetitions per index (fixed so the exponent is clean).
    pub repetitions: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ScalingConfig {
    /// A laptop-scale default sweep on the Figure 1 distribution.
    pub fn default_skewed() -> Self {
        Self {
            ns: vec![500, 1000, 2000, 4000],
            queries: 40,
            alpha: 2.0 / 3.0,
            c: 8.0,
            head_p: 0.25,
            skew_divisor: 8.0,
            repetitions: 5,
            seed: 0xC0FFEE,
        }
    }

    /// The matching uniform control (no skew).
    pub fn default_uniform() -> Self {
        Self {
            skew_divisor: 1.0,
            ..Self::default_skewed()
        }
    }

    /// The `Σp = c ln n` two-block profile for a given `n`: half the mass at
    /// `head_p`, half at `head_p / skew_divisor`.
    pub fn profile_for(&self, n: usize) -> BernoulliProfile {
        let mass = self.c * (n as f64).ln();
        let pa = self.head_p;
        let pb = self.head_p / self.skew_divisor;
        let head_count = (mass / 2.0 / pa).ceil() as usize;
        let tail_count = (mass / 2.0 / pb).ceil() as usize;
        // lint:allow(no-panic-in-lib, experiment fixture with hard-coded valid probabilities; a failure is a bug in this module)
        BernoulliProfile::blocks(&[(head_count, pa), (tail_count, pb)]).unwrap()
    }
}

/// Per-(method, n) measurement.
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// Method label.
    pub method: &'static str,
    /// Dataset size.
    pub n: usize,
    /// Mean distinct candidates per query.
    pub avg_candidates: f64,
    /// Fraction of queries whose planted target was returned.
    pub recall: f64,
}

/// Sweep result.
#[derive(Clone, Debug)]
pub struct Scaling {
    /// All measurements.
    pub points: Vec<ScalingPoint>,
    /// Analytical ρ of our structure on the largest profile.
    pub predicted_rho_ours: f64,
    /// Analytical ρ of Chosen Path for the induced problem.
    pub predicted_rho_cp: f64,
}

/// Methods measured by the sweep.
pub const METHODS: [&str; 5] = ["ours", "chosen_path", "minhash", "prefix", "brute"];

/// Runs the sweep.
pub fn run(config: &ScalingConfig) -> Scaling {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut points = Vec::new();
    let opts = IndexOptions {
        repetitions: Repetitions::Fixed(config.repetitions),
        ..IndexOptions::default()
    };
    for &n in &config.ns {
        let profile = config.profile_for(n);
        let ds = Dataset::generate(&profile, n, &mut rng);
        let ours = CorrelatedIndex::build(
            &ds,
            &profile,
            CorrelatedParams::new(config.alpha)
                // lint:allow(no-panic-in-lib, experiment driver — an invalid experiment config is a fatal setup error reported by panicking)
                .unwrap()
                .with_options(opts),
            &mut rng,
        );
        let cp = ChosenPathIndex::build(
            &ds,
            &profile,
            ChosenPathParams::for_correlated_model(&profile, config.alpha, 1.0 / 1.3)
                // lint:allow(no-panic-in-lib, experiment driver — an invalid experiment config is a fatal setup error reported by panicking)
                .unwrap()
                .with_options(opts),
            &mut rng,
        );
        let (b1m, b2m) = skewsearch_rho::expected_similarities(&profile, config.alpha);
        let mh = MinHashLsh::build(
            &ds,
            // lint:allow(no-panic-in-lib, experiment driver — an invalid experiment config is a fatal setup error reported by panicking)
            MinHashParams::new((b1m / 1.3).max(b2m * 1.01), b2m).unwrap(),
            &mut rng,
        );
        let pf = PrefixFilterIndex::build(&ds, config.alpha / 1.3);

        // The whole query batch is generated up front (same RNG order as the
        // old per-query loop, so sweeps are bit-identical) and the LSF-based
        // methods are measured through the batch subsystem.
        let mut targets = Vec::with_capacity(config.queries);
        let mut qs = Vec::with_capacity(config.queries);
        for _ in 0..config.queries {
            let target = rng.random_range(0..n);
            targets.push(target);
            qs.push(correlated_query(
                ds.vector(target),
                &profile,
                config.alpha,
                &mut rng,
            ));
        }

        let mut cands = [0f64; 5];
        let mut recalls = [0f64; 5];
        for (m, batch) in [
            ours.distinct_candidates_batch(&qs, 0),
            cp.distinct_candidates_batch(&qs, 0),
        ]
        .into_iter()
        .enumerate()
        {
            for (&target, (ids, _)) in targets.iter().zip(batch) {
                cands[m] += ids.len() as f64;
                recalls[m] += ids.contains(&(target as u32)) as u8 as f64;
            }
        }
        for (&target, q) in targets.iter().zip(&qs) {
            // minhash
            let mut got = false;
            let mut c = 0usize;
            mh.probe(q, |id| {
                c += 1;
                got |= id == target as u32;
                true
            });
            cands[2] += c as f64;
            recalls[2] += got as u8 as f64;
            // prefix
            let mut got = false;
            let mut c = 0usize;
            pf.probe(q, |id| {
                c += 1;
                got |= id == target as u32;
                true
            });
            cands[3] += c as f64;
            recalls[3] += got as u8 as f64;
            // brute
            cands[4] += n as f64;
            recalls[4] += 1.0;
        }
        for (m, method) in METHODS.iter().enumerate() {
            points.push(ScalingPoint {
                method,
                n,
                avg_candidates: cands[m] / config.queries as f64,
                recall: recalls[m] / config.queries as f64,
            });
        }
    }
    // lint:allow(no-panic-in-lib, experiment configs always list at least one problem size; an empty ns is a fatal setup error)
    let last_profile = config.profile_for(*config.ns.last().unwrap());
    let (b1, b2) = skewsearch_rho::expected_similarities(&last_profile, config.alpha);
    Scaling {
        points,
        predicted_rho_ours: skewsearch_rho::rho_correlated(&last_profile, config.alpha),
        predicted_rho_cp: skewsearch_rho::rho_chosen_path(b1, b2),
    }
}

/// Theorem 2 validation: adversarial (non-model) queries — random bit
/// deletions of planted targets — against an
/// [`AdversarialIndex`](skewsearch_core::AdversarialIndex) at fixed
/// `b₁`, with brute force as the cost yardstick. Returns the same
/// [`Scaling`] shape with methods `ours`/`brute` populated.
pub fn run_adversarial(config: &ScalingConfig, b1: f64, deletions: usize) -> Scaling {
    use skewsearch_core::{AdversarialIndex, AdversarialParams};
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xAD7E);
    let opts = IndexOptions {
        repetitions: Repetitions::Fixed(config.repetitions),
        ..IndexOptions::default()
    };
    let mut points = Vec::new();
    for &n in &config.ns {
        let profile = config.profile_for(n);
        let ds = Dataset::generate(&profile, n, &mut rng);
        let index = AdversarialIndex::build(
            &ds,
            &profile,
            // lint:allow(no-panic-in-lib, experiment driver — an invalid experiment config is a fatal setup error reported by panicking)
            AdversarialParams::new(b1).unwrap().with_options(opts),
            &mut rng,
        );
        // Generate the adversarial batch up front (same RNG order as the old
        // per-query loop), keeping only edits that preserved b₁-similarity,
        // then measure through the batch subsystem.
        let mut targets = Vec::with_capacity(config.queries);
        let mut qs = Vec::with_capacity(config.queries);
        for _ in 0..config.queries {
            let target = rng.random_range(0..n);
            let x = ds.vector(target);
            let mut dims = x.dims().to_vec();
            for _ in 0..deletions.min(dims.len().saturating_sub(1)) {
                dims.remove(rng.random_range(0..dims.len()));
            }
            let q = skewsearch_sets::SparseVec::from_sorted(dims);
            if skewsearch_sets::similarity::braun_blanquet(x, &q) < b1 {
                continue; // edit broke the planted similarity; skip
            }
            targets.push(target);
            qs.push(q);
        }
        let mut cands = 0f64;
        let mut recall = 0f64;
        for (&target, (ids, _)) in targets.iter().zip(index.distinct_candidates_batch(&qs, 0)) {
            cands += ids.len() as f64;
            recall += ids.contains(&(target as u32)) as u8 as f64;
        }
        let usable = qs.len().max(1) as f64;
        points.push(ScalingPoint {
            method: "ours",
            n,
            avg_candidates: cands / usable,
            recall: recall / usable,
        });
        points.push(ScalingPoint {
            method: "brute",
            n,
            avg_candidates: n as f64,
            recall: 1.0,
        });
    }
    // lint:allow(no-panic-in-lib, experiment configs always list at least one problem size; an empty ns is a fatal setup error)
    let last_profile = config.profile_for(*config.ns.last().unwrap());
    Scaling {
        points,
        predicted_rho_ours: skewsearch_rho::rho_adversarial_space(&last_profile, b1),
        predicted_rho_cp: f64::NAN,
    }
}

/// Per-(n, strategy, shard-count) measurement of the sharded sweep.
#[derive(Clone, Debug)]
pub struct ShardedPoint {
    /// Dataset size.
    pub n: usize,
    /// `"unsharded"`, `"by_repetition"`, or `"by_dataset"`.
    pub strategy: &'static str,
    /// Shard count (1 for the unsharded reference row).
    pub shards: usize,
    /// Mean verified matches per query.
    pub avg_matches: f64,
    /// Fraction of queries whose planted target was returned.
    pub recall: f64,
    /// Whether every per-query answer was byte-identical to the unsharded
    /// index's (the sharding layer's core guarantee — must always be true).
    pub identical: bool,
}

/// Result of [`run_sharded`].
#[derive(Clone, Debug)]
pub struct ShardedScaling {
    /// All measurements.
    pub points: Vec<ShardedPoint>,
}

impl ShardedScaling {
    /// Measurement table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Sharded scaling: matches per query and equivalence vs the unsharded index",
            &[
                "n",
                "strategy",
                "shards",
                "avg_matches",
                "recall",
                "identical",
            ],
        );
        for p in &self.points {
            t.push_row(vec![
                p.n.to_string(),
                p.strategy.to_string(),
                p.shards.to_string(),
                fmt(p.avg_matches, 2),
                fmt(p.recall, 3),
                p.identical.to_string(),
            ]);
        }
        t
    }

    /// True iff every sharded row reproduced the unsharded answers exactly.
    pub fn all_identical(&self) -> bool {
        self.points.iter().all(|p| p.identical)
    }
}

/// The sharded variant of [`run`]: sweeps the correlated index over the same
/// `n`-grid, wrapping it in a [`ShardedIndex`](skewsearch_core::ShardedIndex)
/// at each shard count under both strategies, and checks that every answer is
/// byte-identical to the unsharded index while recording recall/throughput
/// proxies. Queries are answered through the batch subsystem.
pub fn run_sharded(config: &ScalingConfig, shard_counts: &[usize]) -> ShardedScaling {
    use skewsearch_core::{SetSimilaritySearch, ShardStrategy, ShardedIndex};
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x54A8D);
    let opts = IndexOptions {
        repetitions: Repetitions::Fixed(config.repetitions),
        ..IndexOptions::default()
    };
    let mut points = Vec::new();
    for &n in &config.ns {
        let profile = config.profile_for(n);
        let ds = Dataset::generate(&profile, n, &mut rng);
        let index = CorrelatedIndex::build(
            &ds,
            &profile,
            CorrelatedParams::new(config.alpha)
                // lint:allow(no-panic-in-lib, experiment driver — an invalid experiment config is a fatal setup error reported by panicking)
                .unwrap()
                .with_options(opts),
            &mut rng,
        );
        let mut targets = Vec::with_capacity(config.queries);
        let mut qs = Vec::with_capacity(config.queries);
        for _ in 0..config.queries {
            let target = rng.random_range(0..n);
            targets.push(target);
            qs.push(correlated_query(
                ds.vector(target),
                &profile,
                config.alpha,
                &mut rng,
            ));
        }
        let measure = |results: &[Vec<skewsearch_core::Match>]| {
            let matches: usize = results.iter().map(Vec::len).sum();
            let recall = targets
                .iter()
                .zip(results)
                .filter(|(&t, ms)| ms.iter().any(|m| m.id == t))
                .count();
            (
                matches as f64 / config.queries as f64,
                recall as f64 / config.queries as f64,
            )
        };
        let unsharded = index.search_batch_threads(&qs, 0);
        let (avg, rec) = measure(&unsharded);
        points.push(ShardedPoint {
            n,
            strategy: "unsharded",
            shards: 1,
            avg_matches: avg,
            recall: rec,
            identical: true,
        });
        for (strategy, label) in [
            (ShardStrategy::ByRepetition, "by_repetition"),
            (ShardStrategy::ByDataset, "by_dataset"),
        ] {
            for &shards in shard_counts {
                let sharded = ShardedIndex::build(&index, strategy, shards);
                let results = sharded.search_batch(&qs);
                let (avg, rec) = measure(&results);
                points.push(ShardedPoint {
                    n,
                    strategy: label,
                    shards,
                    avg_matches: avg,
                    recall: rec,
                    identical: results == unsharded,
                });
            }
        }
    }
    ShardedScaling { points }
}

impl Scaling {
    /// Least-squares exponent of `avg_candidates` vs `n` for one method.
    pub fn fitted_exponent(&self, method: &str) -> f64 {
        let pts: Vec<(f64, f64)> = self
            .points
            .iter()
            .filter(|p| p.method == method)
            .map(|p| ((p.n as f64).ln(), p.avg_candidates.max(1.0).ln()))
            .collect();
        least_squares_slope(&pts)
    }

    /// Mean recall of a method across the sweep.
    pub fn mean_recall(&self, method: &str) -> f64 {
        let v: Vec<f64> = self
            .points
            .iter()
            .filter(|p| p.method == method)
            .map(|p| p.recall)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    }

    /// Per-point measurement table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Candidate scaling: distinct candidates per query vs n",
            &["method", "n", "avg_candidates", "recall"],
        );
        for p in &self.points {
            t.push_row(vec![
                p.method.to_string(),
                p.n.to_string(),
                fmt(p.avg_candidates, 1),
                fmt(p.recall, 3),
            ]);
        }
        t
    }

    /// Fitted-exponent summary table.
    pub fn summary(&self) -> Table {
        let mut t = Table::new(
            "Fitted exponents (log-log slope of candidates vs n)",
            &["method", "fitted_exponent", "predicted_rho", "mean_recall"],
        );
        for m in METHODS {
            if !self.points.iter().any(|p| p.method == m) {
                continue; // method not measured in this run (e.g. adversarial)
            }
            let predicted = match m {
                "ours" => fmt(self.predicted_rho_ours, 4),
                "chosen_path" => fmt(self.predicted_rho_cp, 4),
                "brute" => "1.0000".to_string(),
                _ => "-".to_string(),
            };
            t.push_row(vec![
                m.to_string(),
                fmt(self.fitted_exponent(m), 4),
                predicted,
                fmt(self.mean_recall(m), 3),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small sweep shared by the assertions below (debug builds are slow).
    fn tiny_sweep(skew: f64, seed: u64) -> Scaling {
        run(&ScalingConfig {
            ns: vec![250, 500, 1000],
            queries: 25,
            alpha: 0.75,
            c: 6.0,
            head_p: 0.25,
            skew_divisor: skew,
            repetitions: 4,
            seed,
        })
    }

    #[test]
    fn brute_force_exponent_is_one() {
        let s = tiny_sweep(8.0, 1);
        assert!((s.fitted_exponent("brute") - 1.0).abs() < 1e-9);
        assert_eq!(s.mean_recall("brute"), 1.0);
    }

    #[test]
    fn ours_scales_sublinearly_with_good_recall() {
        let s = tiny_sweep(8.0, 2);
        let e = s.fitted_exponent("ours");
        assert!(e < 0.85, "fitted exponent {e} not sublinear");
        assert!(
            s.mean_recall("ours") >= 0.75,
            "recall {}",
            s.mean_recall("ours")
        );
    }

    #[test]
    fn ours_beats_chosen_path_in_predicted_and_fitted_exponent() {
        // Absolute candidate counts are dominated by constants at these tiny
        // scales (our (1+δ) boost costs ~2^depth, CP has none); the theorem
        // statements are about *exponents*, so that is what we compare:
        // the analytic prediction strictly, the noisy empirical fit loosely.
        let s = tiny_sweep(8.0, 3);
        assert!(
            s.predicted_rho_ours < s.predicted_rho_cp - 0.01,
            "predicted ours={} cp={}",
            s.predicted_rho_ours,
            s.predicted_rho_cp
        );
        // CP's fitted exponent is not comparable at tiny scales: its depth
        // k = ⌈ln n / ln(1/b2)⌉ is a step function of n, and a k-jump inside
        // the sweep makes the log-log fit swing wildly (this is the fixed-
        // depth quantization the paper's product stopping rule removes).
        // Assert only that our own fit is sane and sublinear.
        let fit_ours = s.fitted_exponent("ours");
        assert!(
            (0.0..0.95).contains(&fit_ours),
            "fitted ours={fit_ours} out of range"
        );
    }

    #[test]
    fn adversarial_scaling_is_sublinear_with_good_recall() {
        let config = ScalingConfig {
            ns: vec![250, 500, 1000],
            queries: 25,
            alpha: 0.75,
            c: 6.0,
            head_p: 0.25,
            skew_divisor: 8.0,
            repetitions: 6,
            seed: 5,
        };
        let s = run_adversarial(&config, 0.7, 2);
        let e = s.fitted_exponent("ours");
        assert!(e < 0.9, "fitted exponent {e}");
        assert!(
            s.mean_recall("ours") >= 0.7,
            "recall {}",
            s.mean_recall("ours")
        );
        assert!(s.predicted_rho_ours > 0.0 && s.predicted_rho_ours < 1.0);
    }

    #[test]
    fn sharded_sweep_is_byte_identical_with_good_recall() {
        let config = ScalingConfig {
            ns: vec![250, 500],
            queries: 20,
            alpha: 0.75,
            c: 6.0,
            head_p: 0.25,
            skew_divisor: 8.0,
            repetitions: 4,
            seed: 6,
        };
        let s = run_sharded(&config, &[1, 4]);
        assert!(
            s.all_identical(),
            "sharded answers diverged: {:?}",
            s.points
        );
        // 2 ns × (1 unsharded + 2 strategies × 2 shard counts).
        assert_eq!(s.points.len(), 10);
        for p in &s.points {
            assert!(p.recall >= 0.7, "{p:?}");
        }
        assert_eq!(s.table().rows.len(), 10);
    }

    #[test]
    fn all_methods_have_points_for_every_n() {
        let s = tiny_sweep(1.0, 4);
        for m in METHODS {
            let count = s.points.iter().filter(|p| p.method == m).count();
            assert_eq!(count, 3, "{m}");
        }
        let t = s.table();
        assert_eq!(t.rows.len(), 15);
        assert_eq!(s.summary().rows.len(), 5);
    }
}
