//! **§7 worked examples**: the paper's concrete performance comparisons.
//!
//! §7.1 (adversarial): queries of two bit types, `p_a = 1/4`,
//! `p_b = n^{−0.9}`:
//!
//! * `b₁ = 1/3`: ρ_CP = log(1/3)/log(1/8) ≥ 0.528 vs ours
//!   → log(2/3)/log(1/4) ≤ 0.293; prefix filtering has no non-trivial
//!   guarantee.
//! * `b₁ = 2/3`: ours → 0 (every path must cross an `n^{-0.9}` bit);
//!   ρ_CP = log(2/3)/log(1/8) ≈ 0.194; prefix filtering needs `Ω(n^{0.1})`.
//!
//! §7.2 (correlated): `4C log n` bits at `p_a = 1/4` plus
//! `n^{9/10} C log n` bits at `p_b = n^{−9/10}`, α = 2/3: our expected query
//! time is `O(n^ε)` for every ε > 0 while prefix filtering takes `Ω(n^{0.1})`;
//! and the Figure 1 setting `p_a = p`, `p_b = p/8` with Θ(1) probabilities,
//! where prefix filtering has exponent 1.

use crate::table::{fmt, Table};
use skewsearch_rho::exponents::{
    prefix_filter_exponent, rho_adversarial_query_blocks, rho_correlated_blocks,
};
use skewsearch_rho::model::{expected_b1_correlated_blocks, expected_b2_independent_blocks};
use skewsearch_rho::rho_chosen_path;

/// One worked example's exponents.
#[derive(Clone, Debug)]
pub struct ExampleRow {
    /// Which example (paper reference).
    pub label: String,
    /// Our structure's exponent.
    pub rho_ours: f64,
    /// Chosen Path's exponent.
    pub rho_chosen_path: f64,
    /// Prefix filtering's cost exponent (1.0 = no guarantee).
    pub rho_prefix: f64,
    /// The paper's claimed value for our structure (asymptotic).
    pub paper_ours: f64,
    /// The paper's claimed Chosen Path value.
    pub paper_chosen_path: f64,
}

/// §7.1: the two adversarial examples at a finite `n`.
pub fn sec71_adversarial(n: usize) -> Vec<ExampleRow> {
    let nf = n as f64;
    let pa = 0.25;
    let pb = nf.powf(-0.9);
    let mut rows = Vec::new();

    // Example 1: b1 = 1/3.
    let b1 = 1.0 / 3.0;
    rows.push(ExampleRow {
        label: format!(
            "7.1a: pa=1/4, pb=n^-0.9, b1=1/3 (n=2^{})",
            nf.log2().round()
        ),
        rho_ours: rho_adversarial_query_blocks(&[(1.0, pa), (1.0, pb)], b1),
        rho_chosen_path: rho_chosen_path(b1, 1.0 / 8.0),
        rho_prefix: 1.0, // "no non-trivial (worst-case) performance guarantee"
        paper_ours: (2.0f64 / 3.0).ln() / 0.25f64.ln(), // 0.2925, the n→∞ limit
        paper_chosen_path: 0.528,
    });

    // Example 2: b1 = 2/3 — paths forced through rare bits.
    let b1 = 2.0 / 3.0;
    rows.push(ExampleRow {
        label: format!(
            "7.1b: pa=1/4, pb=n^-0.9, b1=2/3 (n=2^{})",
            nf.log2().round()
        ),
        rho_ours: rho_adversarial_query_blocks(&[(1.0, pa), (1.0, pb)], b1),
        rho_chosen_path: rho_chosen_path(b1, 1.0 / 8.0),
        rho_prefix: prefix_filter_exponent(pb, n),
        paper_ours: 0.0, // "ρ arbitrarily close to zero"
        paper_chosen_path: 0.194,
    });
    rows
}

/// §7.2: the correlated examples at a finite `n` (with `C` the paper's
/// profile constant).
pub fn sec72_correlated(n: usize, c: f64) -> Vec<ExampleRow> {
    let nf = n as f64;
    let log_n = nf.ln();
    let alpha = 2.0 / 3.0;
    let mut rows = Vec::new();

    // Example 1: 4C log n bits at 1/4, n^{9/10} C log n bits at n^{-9/10}.
    let pa = 0.25;
    let pb = nf.powf(-0.9);
    let blocks = [(4.0 * c * log_n, pa), (nf.powf(0.9) * c * log_n, pb)];
    let b1 = expected_b1_correlated_blocks(&blocks, alpha);
    let b2 = expected_b2_independent_blocks(&blocks);
    rows.push(ExampleRow {
        label: format!(
            "7.2a: 4Clog(n) bits@1/4 + n^0.9*Clog(n) bits@n^-0.9, alpha=2/3 (n=2^{})",
            nf.log2().round()
        ),
        rho_ours: rho_correlated_blocks(&blocks, alpha),
        rho_chosen_path: rho_chosen_path(b1, b2),
        rho_prefix: prefix_filter_exponent(pb, n),
        paper_ours: 0.0, // "O(n^ε) for every constant ε > 0"
        paper_chosen_path: f64::NAN,
    });

    // Example 2: the Figure 1 setting at p = 1/4 (all probabilities Θ(1)).
    let blocks = [(1.0, 0.25), (1.0, 0.25 / 8.0)];
    let b1 = expected_b1_correlated_blocks(&blocks, alpha);
    let b2 = expected_b2_independent_blocks(&blocks);
    rows.push(ExampleRow {
        label: "7.2b: half bits@p=1/4, half@p/8, alpha=2/3 (Figure 1 point)".to_string(),
        rho_ours: rho_correlated_blocks(&blocks, alpha),
        rho_chosen_path: rho_chosen_path(b1, b2),
        rho_prefix: 1.0, // Θ(1) probabilities: no prefix guarantee
        paper_ours: f64::NAN,
        paper_chosen_path: f64::NAN,
    });
    rows
}

/// Renders rows as a table.
pub fn render(rows: &[ExampleRow], title: &str) -> Table {
    let mut t = Table::new(
        title,
        &[
            "example",
            "rho_ours",
            "paper(ours)",
            "rho_chosen_path",
            "paper(CP)",
            "rho_prefix",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.label.clone(),
            fmt(r.rho_ours, 4),
            fmt(r.paper_ours, 3),
            fmt(r.rho_chosen_path, 4),
            fmt(r.paper_chosen_path, 3),
            fmt(r.rho_prefix, 3),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 1 << 40; // large n: close to the asymptotic claims

    #[test]
    fn sec71a_matches_paper_numbers() {
        let rows = sec71_adversarial(N);
        let r = &rows[0];
        // Paper: ours ≤ 0.293 + o(1), CP ≥ 0.528.
        assert!(
            (r.rho_chosen_path - 0.528).abs() < 0.001,
            "cp={}",
            r.rho_chosen_path
        );
        assert!(r.rho_ours < 0.31, "ours={}", r.rho_ours);
        assert!(r.rho_ours >= r.paper_ours - 1e-9, "finite-n is above limit");
        assert!((r.paper_ours - 0.2925).abs() < 0.001);
    }

    #[test]
    fn sec71b_ours_is_near_zero() {
        let rows = sec71_adversarial(N);
        let r = &rows[1];
        assert!(r.rho_ours < 0.05, "ours={}", r.rho_ours);
        assert!((r.rho_chosen_path - 0.195).abs() < 0.001);
        assert!((r.rho_prefix - 0.1).abs() < 1e-9);
    }

    #[test]
    fn sec71b_ours_shrinks_with_n() {
        let small = sec71_adversarial(1 << 20)[1].rho_ours;
        let large = sec71_adversarial(1 << 40)[1].rho_ours;
        assert!(large < small, "should vanish asymptotically");
    }

    #[test]
    fn sec72a_ours_near_zero_prefix_01() {
        let rows = sec72_correlated(N, 20.0);
        let r = &rows[0];
        assert!(r.rho_ours < 0.05, "ours={}", r.rho_ours);
        assert!((r.rho_prefix - 0.1).abs() < 1e-9);
    }

    #[test]
    fn sec72b_matches_figure1_point() {
        let rows = sec72_correlated(N, 20.0);
        let r = &rows[1];
        // At p = 1/4 the Figure 1 gap is visible and ours < CP.
        assert!(r.rho_ours < r.rho_chosen_path);
        assert!(r.rho_ours > 0.05 && r.rho_ours < 0.5);
    }

    #[test]
    fn render_produces_full_table() {
        let t = render(&sec71_adversarial(N), "sec 7.1");
        assert_eq!(t.rows.len(), 2);
        assert!(t.render_markdown().contains("7.1a"));
    }
}
