//! `repro serve` / `repro client` — the cross-process service smoke.
//!
//! `serve` builds a deterministic [`CorrelatedIndex`], stands up the query
//! server from `skewsearch-server` on an OS-assigned loopback port, writes
//! the bound address to a port file (atomically: temp file + rename, so a
//! polling reader never observes a partial write), and blocks forever.
//! `client`, run in a **separate process**, reads the address, replays the
//! identical seeded query stream over the wire — searches, a batch, one
//! insert, and post-mutation re-queries — and prints every answer as TSV.
//! `client --in-process` answers the *same* stream by direct method calls
//! on a locally built copy of the same index. CI diffs the two outputs
//! byte-for-byte: the network layer must be answer-invisible, crossing real
//! sockets and process boundaries rather than the in-process harness of
//! `tests/service_equivalence.rs`.

use crate::table::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skewsearch_core::{
    CorrelatedIndex, CorrelatedParams, IndexOptions, Repetitions, SetSimilaritySearch, TaggedMatch,
};
use skewsearch_datagen::{correlated_query, BernoulliProfile, Dataset, VectorSampler};
use skewsearch_server::{
    share, ClientError, QueryService, Server, ServerConfig, ServerHooks, ServiceClient,
};
use skewsearch_sets::SparseVec;
use std::net::SocketAddr;
use std::path::Path;

/// Deterministic inputs shared by `serve` and both `client` modes.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Dataset size `n`.
    pub scale: usize,
    /// Master seed; dataset, build, queries, and the inserted set each
    /// derive their own [`StdRng`] stream from it.
    pub seed: u64,
    /// Number of correlated queries in the stream.
    pub queries: usize,
    /// Query correlation `α`.
    pub alpha: f64,
}

impl ServiceConfig {
    /// The CI smoke setting: builds in seconds, answers are non-trivial.
    pub fn default_config() -> Self {
        Self {
            scale: 300,
            seed: 42,
            queries: 16,
            alpha: 0.8,
        }
    }

    fn profile(&self) -> BernoulliProfile {
        // lint:allow(no-panic-in-lib, experiment driver — fixed valid constants)
        BernoulliProfile::two_block(800, 0.15, 0.01).unwrap()
    }

    /// The index, rebuilt identically in the server and the in-process
    /// client (the build consumes its own RNG stream, so either side can
    /// skip the other's work without perturbing anything).
    fn index(&self) -> (BernoulliProfile, Dataset, CorrelatedIndex) {
        let profile = self.profile();
        let mut data_rng = StdRng::seed_from_u64(self.seed);
        let ds = Dataset::generate(&profile, self.scale, &mut data_rng);
        let mut build_rng = StdRng::seed_from_u64(self.seed ^ 0xB01D);
        let index = CorrelatedIndex::build(
            &ds,
            &profile,
            CorrelatedParams::new(self.alpha)
                // lint:allow(no-panic-in-lib, experiment driver — an invalid experiment config is a fatal setup error reported by panicking)
                .unwrap()
                .with_options(IndexOptions {
                    repetitions: Repetitions::Fixed(6),
                    ..IndexOptions::default()
                }),
            &mut build_rng,
        );
        (profile, ds, index)
    }

    /// The query stream, regenerated identically in every process.
    fn query_stream(&self, profile: &BernoulliProfile, ds: &Dataset) -> Vec<SparseVec> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x51E57);
        (0..self.queries)
            .map(|_| {
                let target = rng.random_range(0..ds.n());
                correlated_query(ds.vector(target), profile, self.alpha, &mut rng)
            })
            .collect()
    }

    /// The one set the smoke inserts mid-stream, from its own seed stream.
    fn insert_set(&self, profile: &BernoulliProfile) -> SparseVec {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x1A5E7);
        VectorSampler::new(profile).sample(&mut rng)
    }
}

/// Builds the index, binds the server on `127.0.0.1:0`, publishes the bound
/// address via `port_file`, and parks forever (CI backgrounds and kills the
/// process). The port file is written next to its final path and renamed
/// into place so a polling reader sees either nothing or the full address.
pub fn serve(config: &ServiceConfig, port_file: &Path) -> std::io::Result<()> {
    let (_, _, index) = config.index();
    let service = QueryService::new(share(index));
    let server = Server::bind(
        "127.0.0.1:0",
        service,
        ServerConfig::default(),
        ServerHooks::default(),
    )?;
    let addr = server.local_addr();
    let tmp = port_file.with_extension("tmp");
    std::fs::write(&tmp, format!("{addr}\n"))?;
    std::fs::rename(&tmp, port_file)?;
    eprintln!(
        "[serve] listening on {addr} (scale {}, seed {})",
        config.scale, config.seed
    );
    loop {
        std::thread::park();
    }
}

/// Reads the address `serve` published into `port_file`.
pub fn read_port_file(port_file: &Path) -> std::io::Result<SocketAddr> {
    let text = std::fs::read_to_string(port_file)?;
    text.trim().parse().map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{}: bad address ({e})", port_file.display()),
        )
    })
}

/// Answers the smoke's request script over the wire against a running
/// server. Byte-identical output to [`answers_in_process`] is the contract.
pub fn answers_over_wire(config: &ServiceConfig, addr: SocketAddr) -> Result<Table, ClientError> {
    let (profile, ds, _) = config.index();
    let queries = config.query_stream(&profile, &ds);
    let dims: Vec<Vec<u32>> = queries.iter().map(|q| q.iter().collect()).collect();
    let mut client = ServiceClient::connect(addr)?;

    let mut t = table_shell();
    for (i, d) in dims.iter().enumerate() {
        push_matches(&mut t, "search", i, &client.search(d, None)?);
    }
    for (i, per_query) in client.search_batch(&dims, None)?.iter().enumerate() {
        push_matches(&mut t, "batch", i, per_query);
    }
    let inserted = config.insert_set(&profile);
    let id = client.insert(&inserted.iter().collect::<Vec<u32>>())?;
    t.push_row(vec!["insert".into(), "-".into(), id.to_string()]);
    for (i, d) in dims.iter().take(4).enumerate() {
        push_matches(&mut t, "post_insert", i, &client.search(d, None)?);
    }
    Ok(t)
}

/// Answers the same script by direct method calls on a local build of the
/// same index — the oracle side of the cross-process diff.
pub fn answers_in_process(config: &ServiceConfig) -> Table {
    let (profile, ds, mut index) = config.index();
    let queries = config.query_stream(&profile, &ds);

    let mut t = table_shell();
    for (i, q) in queries.iter().enumerate() {
        push_matches(&mut t, "search", i, &index.search_all_tagged(q));
    }
    for (i, q) in queries.iter().enumerate() {
        push_matches(&mut t, "batch", i, &index.search_all_tagged(q));
    }
    let inserted = config.insert_set(&profile);
    let id = index
        .insert(inserted)
        // lint:allow(no-panic-in-lib, experiment driver — the correlated index always supports insert)
        .unwrap();
    t.push_row(vec!["insert".into(), "-".into(), id.to_string()]);
    for (i, q) in queries.iter().take(4).enumerate() {
        push_matches(&mut t, "post_insert", i, &index.search_all_tagged(q));
    }
    t
}

fn table_shell() -> Table {
    Table::new(
        "Service smoke: answers over the wire",
        &["surface", "query", "matches"],
    )
}

/// One row per (surface, query): every tagged match as
/// `pass:step:id:sim_bits` — the similarity is rendered as the 16-hex-digit
/// IEEE bit pattern, so the diff is exact, not decimal-rounded.
fn push_matches(t: &mut Table, surface: &str, query: usize, matches: &[TaggedMatch]) {
    let rendered = if matches.is_empty() {
        "-".to_string()
    } else {
        matches
            .iter()
            .map(|m| {
                format!(
                    "{}:{}:{}:{:016x}",
                    m.pass,
                    m.step,
                    m.hit.id,
                    m.hit.similarity.to_bits()
                )
            })
            .collect::<Vec<_>>()
            .join(",")
    };
    t.push_row(vec![surface.to_string(), query.to_string(), rendered]);
}
