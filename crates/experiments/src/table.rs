//! Plain-text table rendering (TSV and Markdown) for experiment output.
//!
//! Hand-rolled on purpose: experiment results are small tabular artifacts,
//! and a serialization dependency would buy nothing (see DESIGN.md §6).

/// A rendered experiment artifact: title, header, and string rows.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Human-readable caption (matches the paper's table/figure id).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row-major cells; each row must have `columns.len()` entries.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and columns.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the arity does not match the header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row arity {} != {} columns",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Tab-separated rendering (first line `# title`, second the header).
    pub fn render_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        out.push_str(&self.columns.join("\t"));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }

    /// GitHub-flavored Markdown rendering.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.columns.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Formats a float with `digits` decimals (shared cell formatting).
pub fn fmt(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["x".into(), "y".into()]);
        t
    }

    #[test]
    fn tsv_layout() {
        let s = sample().render_tsv();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "# demo");
        assert_eq!(lines[1], "a\tb");
        assert_eq!(lines[2], "1\t2");
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn markdown_layout() {
        let s = sample().render_markdown();
        assert!(s.contains("### demo"));
        assert!(s.contains("| a | b |"));
        assert!(s.contains("|---|---|"));
        assert!(s.contains("| x | y |"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn fmt_digits() {
        assert_eq!(fmt(0.52801, 3), "0.528");
        assert_eq!(fmt(1.0, 1), "1.0");
    }
}
