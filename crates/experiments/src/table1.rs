//! **Table 1**: independence ratios
//! `E_I[Pr_x[∀_{j∈I} x_j = 1]] / E_I[∏_{j∈I} p_j]` for `|I| ∈ {2, 3}`.
//!
//! Computed exactly (elementary symmetric polynomials — see
//! `skewsearch_datagen::independence`) on the synthetic surrogates, with the
//! paper's measured values alongside for reference. The reproduction target
//! is the *qualitative regime* (all > 1, ratio₃ > ratio₂, mild → extreme
//! ordering, SPOTIFY far out), not the exact numbers: the surrogates'
//! dependence injection is tuned per regime, not fitted per dataset.

use crate::table::{fmt, Table};
use rand::{rngs::StdRng, SeedableRng};
use skewsearch_datagen::{independence_ratios, surrogate_catalog, Dataset};

/// One dataset's row.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Dataset label (`*-SYN` = surrogate).
    pub name: String,
    /// Measured ratio for |I| = 2.
    pub ratio2: f64,
    /// Measured ratio for |I| = 3.
    pub ratio3: f64,
    /// The paper's Table 1 value for |I| = 2.
    pub paper_ratio2: f64,
    /// The paper's Table 1 value for |I| = 3.
    pub paper_ratio3: f64,
}

/// The full Table 1 reproduction.
#[derive(Clone, Debug)]
pub struct Table1 {
    /// One row per dataset, in the paper's order.
    pub rows: Vec<Table1Row>,
}

/// Computes Table 1 on all surrogates at scale `n`.
pub fn from_surrogates(n: usize, seed: u64) -> Table1 {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = surrogate_catalog()
        .iter()
        .map(|spec| {
            let (ds, _) = spec.generate(n, &mut rng);
            let r = independence_ratios(&ds);
            Table1Row {
                name: spec.display_name(),
                ratio2: r.ratio2,
                ratio3: r.ratio3,
                paper_ratio2: spec.paper_ratio2,
                paper_ratio3: spec.paper_ratio3,
            }
        })
        .collect();
    Table1 { rows }
}

/// Computes the ratios for one loaded (possibly real) dataset.
pub fn row_for_dataset(name: &str, ds: &Dataset) -> Table1Row {
    let r = independence_ratios(ds);
    Table1Row {
        name: name.to_string(),
        ratio2: r.ratio2,
        ratio3: r.ratio3,
        paper_ratio2: f64::NAN,
        paper_ratio3: f64::NAN,
    }
}

impl Table1 {
    /// Renders measured-vs-paper values.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Table 1: independence ratios (measured on surrogates vs paper)",
            &[
                "dataset",
                "|I|=2 measured",
                "|I|=2 paper",
                "|I|=3 measured",
                "|I|=3 paper",
            ],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.name.clone(),
                fmt(r.ratio2, 2),
                fmt(r.paper_ratio2, 1),
                fmt(r.ratio3, 2),
                fmt(r.paper_ratio3, 1),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1() -> Table1 {
        from_surrogates(2500, 17)
    }

    #[test]
    fn all_ratios_indicate_positive_dependence() {
        // Paper: "all data sets have some kind of positive correlation".
        for r in table1().rows {
            assert!(r.ratio2 > 1.0, "{}: ratio2={}", r.name, r.ratio2);
            assert!(r.ratio3 > 1.0, "{}: ratio3={}", r.name, r.ratio3);
        }
    }

    #[test]
    fn triples_exceed_pairs() {
        // In the paper every dataset has ratio3 > ratio2.
        for r in table1().rows {
            assert!(
                r.ratio3 > r.ratio2,
                "{}: ratio3={} !> ratio2={}",
                r.name,
                r.ratio3,
                r.ratio2
            );
        }
    }

    #[test]
    fn spotify_is_the_extreme_case() {
        let t = table1();
        let spotify = t.rows.iter().find(|r| r.name.contains("SPOTIFY")).unwrap();
        for r in &t.rows {
            if !r.name.contains("SPOTIFY") {
                assert!(
                    spotify.ratio2 >= r.ratio2 * 0.9,
                    "SPOTIFY ({}) should dominate {} ({})",
                    spotify.ratio2,
                    r.name,
                    r.ratio2
                );
            }
        }
        assert!(spotify.ratio3 > 10.0, "ratio3={}", spotify.ratio3);
    }

    #[test]
    fn ordering_follows_dependence_regimes() {
        // Mild datasets (AOL/DBLP) should sit well below strong (KOSARAK).
        let t = table1();
        let get = |n: &str| t.rows.iter().find(|r| r.name.contains(n)).unwrap();
        assert!(get("KOSARAK").ratio2 > get("AOL").ratio2);
        assert!(get("KOSARAK").ratio2 > get("DBLP").ratio2);
    }

    #[test]
    fn render_includes_paper_reference_values() {
        let rendered = table1().table().render_tsv();
        assert!(rendered.contains("6022.1")); // paper's SPOTIFY |I|=3
        assert!(rendered.contains("AOL-SYN"));
    }
}
