//! A fast Fx-style hasher for internal hash maps.
//!
//! The inverted filter index maps 128-bit path keys (already well-mixed) to
//! posting lists; SipHash's HashDoS protection buys nothing there and costs
//! measurably (see the Rust perf book's "Hashing" chapter). This is the
//! rustc/Firefox `FxHasher` word-at-a-time multiply hash, implemented locally
//! to keep the dependency set minimal.

use std::hash::{BuildHasherDefault, Hasher};

/// rustc's Fx hash seed (64-bit golden-ratio constant).
const K: u64 = 0x517C_C1B7_2722_0A95;

/// Word-at-a-time multiplicative hasher (not HashDoS resistant — use only for
/// keys that are not attacker controlled or already well mixed).
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            // lint:allow(no-panic-in-lib, chunks_exact(8) yields exactly 8-byte slices so the array conversion is infallible)
            self.add_word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_word(i as u64);
        self.add_word((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&1u128), hash_of(&(1u128 << 64)));
    }

    #[test]
    fn byte_stream_tail_handling() {
        // Writes shorter than, equal to, and longer than a word.
        for len in [0usize, 1, 7, 8, 9, 16, 17] {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let mut h1 = FxHasher::default();
            h1.write(&bytes);
            let mut h2 = FxHasher::default();
            h2.write(&bytes);
            assert_eq!(h1.finish(), h2.finish(), "len={len}");
        }
        // Streams with the same zero-padded word content but different word
        // counts must diverge (one vs two mixing rounds of nonzero words).
        let mut a = FxHasher::default();
        a.write(&[7u8; 3]);
        let mut b = FxHasher::default();
        b.write(&[7u8; 11]);
        assert_ne!(
            {
                a.write_u8(1);
                a.finish()
            },
            {
                b.write_u8(1);
                b.finish()
            }
        );
    }

    #[test]
    fn usable_in_hashmap() {
        let mut m: FxHashMap<u128, u32> = FxHashMap::default();
        for i in 0..1000u128 {
            m.insert(i * 7, i as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&(7 * 999)], 999);
    }
}
