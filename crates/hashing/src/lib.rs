//! # skewsearch-hashing
//!
//! Hashing substrate for the `skewsearch` workspace.
//!
//! The data structure of the paper ("Set Similarity Search for Skewed Data",
//! PODS 2018, §3) requires `k` hash functions `h_1, …, h_k`, each mapping a
//! path `(i_1, …, i_j) ∈ [d]^j` to `[0, 1)`, drawn from a **pairwise
//! independent** family — pairwise independence is exactly what the
//! second-moment argument of Lemma 5 consumes. This crate provides:
//!
//! * [`mix`] — scalar finalizers/mixers (splitmix64, xxhash-style avalanche);
//! * [`pairwise`] — strongly universal multiply-shift families on `u64`/`u128`
//!   keys (Dietzfelbinger et al.), with mapping to `[0, 1)`;
//! * [`tabulation`] — simple tabulation hashing (3-independent), used as an
//!   alternative family in ablation benchmarks and as the `u128 → u64`
//!   bucket-key interner of the inverted filter index;
//! * [`path`] — incremental 128-bit **path keys**: the identity of a path is a
//!   128-bit hash accumulated one dimension at a time, so extending a path by
//!   one dimension is O(1) and two vectors agree on a path key iff they chose
//!   the same dimension sequence (up to a 2⁻¹²⁸-scale collision probability);
//! * [`fx`] — a fast Fx-style `BuildHasher` for internal hash maps (the
//!   inverted filter index keys are already well-mixed 128-bit values, so a
//!   cheap multiply hash is appropriate; see the Rust perf book's hashing
//!   guidance).
//!
//! All randomness is injected through [`rand`] RNGs so the whole stack is
//! deterministic under a fixed seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fx;
pub mod mix;
pub mod pairwise;
pub mod path;
pub mod tabulation;

pub use fx::{FxBuildHasher, FxHashMap, FxHashSet};
pub use pairwise::{PairwiseU128, PairwiseU64};
pub use path::{LevelHasher, PathHasherStack, PathKey};
pub use tabulation::{Tabulation64, TabulationU128};
