//! Scalar mixing / finalizing functions.
//!
//! These are deterministic bijections on `u64` with strong avalanche
//! behaviour. They are *not* a substitute for the seeded pairwise-independent
//! families in [`crate::pairwise`]; they are used to (a) derive well-spread
//! stream constants from small integers, and (b) finalize composite keys.

/// `splitmix64` step: the de-facto standard generator for seeding.
///
/// A bijection on `u64`; distinct inputs give distinct outputs.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xxhash3-style avalanche finalizer (bijective).
#[inline]
pub fn avalanche64(x: u64) -> u64 {
    let mut z = x;
    z ^= z >> 37;
    z = z.wrapping_mul(0x165667919E3779F9);
    z ^ (z >> 32)
}

/// Murmur3 finalizer (bijective) — a third independent mixer for tests that
/// cross-check avalanche quality.
#[inline]
pub fn murmur3_fmix64(x: u64) -> u64 {
    let mut z = x;
    z ^= z >> 33;
    z = z.wrapping_mul(0xFF51AFD7ED558CCD);
    z ^= z >> 33;
    z = z.wrapping_mul(0xC4CEB9FE1A85EC53);
    z ^ (z >> 33)
}

/// Combines two words into one well-mixed word (not bijective in the pair,
/// but full-entropy in each argument).
#[inline]
pub fn combine64(a: u64, b: u64) -> u64 {
    // 128-bit multiply folding (wyhash-style mum).
    let m = (a ^ 0x2D35_8DCC_AA6C_78A5) as u128 * (b ^ 0x8BB8_4B93_962E_ACC9) as u128;
    (m as u64) ^ ((m >> 64) as u64)
}

/// Maps a `u64` to a double in `[0, 1)` using the top 53 bits.
#[inline]
pub fn to_unit_f64(x: u64) -> f64 {
    // 2^-53 * top 53 bits: uniform on the 2^53 grid, always < 1.
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        // Consecutive inputs should differ in many bits (avalanche sanity).
        let d = (splitmix64(42) ^ splitmix64(43)).count_ones();
        assert!(d > 16, "only {d} differing bits");
    }

    #[test]
    fn mixers_are_bijective_on_a_sample() {
        // Injectivity spot check over a contiguous range.
        use std::collections::HashSet;
        for f in [splitmix64, avalanche64, murmur3_fmix64] {
            let outs: HashSet<u64> = (0u64..10_000).map(f).collect();
            assert_eq!(outs.len(), 10_000);
        }
    }

    #[test]
    fn to_unit_is_in_range_and_monotone_on_high_bits() {
        assert_eq!(to_unit_f64(0), 0.0);
        assert!(to_unit_f64(u64::MAX) < 1.0);
        assert!(to_unit_f64(u64::MAX) > 0.999_999);
        assert!(to_unit_f64(1u64 << 63) - 0.5 < 1e-12);
    }

    #[test]
    fn combine_depends_on_both_arguments() {
        assert_ne!(combine64(1, 2), combine64(2, 1));
        assert_ne!(combine64(1, 2), combine64(1, 3));
        assert_ne!(combine64(1, 2), combine64(4, 2));
    }

    #[test]
    fn avalanche_bit_flip_changes_about_half_the_bits() {
        // For each of a few inputs, flipping one input bit should flip ~32
        // output bits; we assert a loose 16..48 window for robustness.
        for x in [0u64, 1, 0xDEADBEEF, u64::MAX / 3] {
            for bit in [0u32, 7, 31, 63] {
                let d = (murmur3_fmix64(x) ^ murmur3_fmix64(x ^ (1 << bit))).count_ones();
                assert!((16..=48).contains(&d), "x={x} bit={bit} d={d}");
            }
        }
    }
}
