//! Pairwise-independent (strongly universal) hash families.
//!
//! The paper's data structure draws each level hash `h_j` "from a family H of
//! pairwise independent hash functions" (§3). We implement the classic
//! multiply-shift scheme of Dietzfelbinger: for 64-bit keys,
//!
//! ```text
//! h_{a,b}(x) = ((a·x + b) mod 2^128) >> 64        a, b ~ U(u128), a odd not required
//! ```
//!
//! is strongly universal on the high 64 output bits when `a, b` are uniform
//! 128-bit values. For 128-bit keys we use the two-word Carter–Wegman variant
//! `h(x_hi, x_lo) = ((a₁·x_hi + a₂·x_lo + b) mod 2^128) >> 64`, which is
//! strongly universal in the pair `(x_hi, x_lo)`.

use crate::mix::to_unit_f64;
use rand::Rng;

/// Strongly universal hash on `u64` keys via 128-bit multiply-shift.
#[derive(Clone, Copy, Debug)]
pub struct PairwiseU64 {
    a: u128,
    b: u128,
}

impl PairwiseU64 {
    /// Draws a function from the family.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self {
            a: rng.random::<u128>(),
            b: rng.random::<u128>(),
        }
    }

    /// Builds from explicit coefficients (for tests / reproducibility /
    /// persistence).
    pub const fn from_coefficients(a: u128, b: u128) -> Self {
        Self { a, b }
    }

    /// The coefficients `(a, b)` this function was drawn with. Together with
    /// [`PairwiseU64::from_coefficients`] this round-trips the function
    /// exactly, which is what the on-disk index format relies on.
    pub const fn coefficients(&self) -> (u128, u128) {
        (self.a, self.b)
    }

    /// Hashes to a full 64-bit value.
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        (self.a.wrapping_mul(x as u128).wrapping_add(self.b) >> 64) as u64
    }

    /// Hashes to the unit interval `[0, 1)`.
    #[inline]
    pub fn hash_unit(&self, x: u64) -> f64 {
        to_unit_f64(self.hash(x))
    }
}

/// Strongly universal hash on `u128` keys (two-word Carter–Wegman).
#[derive(Clone, Copy, Debug)]
pub struct PairwiseU128 {
    a1: u128,
    a2: u128,
    b: u128,
}

impl PairwiseU128 {
    /// Draws a function from the family.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self {
            a1: rng.random::<u128>(),
            a2: rng.random::<u128>(),
            b: rng.random::<u128>(),
        }
    }

    /// Builds from explicit coefficients (for tests / reproducibility /
    /// persistence).
    pub const fn from_coefficients(a1: u128, a2: u128, b: u128) -> Self {
        Self { a1, a2, b }
    }

    /// The coefficients `(a1, a2, b)` this function was drawn with. Together
    /// with [`PairwiseU128::from_coefficients`] this round-trips the function
    /// exactly, which is what the on-disk index format relies on.
    pub const fn coefficients(&self) -> (u128, u128, u128) {
        (self.a1, self.a2, self.b)
    }

    /// Hashes to a full 64-bit value.
    #[inline]
    pub fn hash(&self, x: u128) -> u64 {
        let hi = (x >> 64) as u64;
        let lo = x as u64;
        let acc = self
            .a1
            .wrapping_mul(hi as u128)
            .wrapping_add(self.a2.wrapping_mul(lo as u128))
            .wrapping_add(self.b);
        (acc >> 64) as u64
    }

    /// Hashes to the unit interval `[0, 1)`.
    #[inline]
    pub fn hash_unit(&self, x: u128) -> f64 {
        to_unit_f64(self.hash(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn deterministic_given_coefficients() {
        let h = PairwiseU64::from_coefficients(12345, 999);
        assert_eq!(h.hash(7), h.hash(7));
    }

    #[test]
    fn unit_hash_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let h = PairwiseU64::sample(&mut rng);
        let g = PairwiseU128::sample(&mut rng);
        for x in 0u64..1000 {
            let u = h.hash_unit(x);
            assert!((0.0..1.0).contains(&u));
            let v = g.hash_unit(x as u128 * 0x1_0000_0001);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn empirical_uniformity_u64() {
        // Mean of hash_unit over many keys should be ~1/2; variance ~1/12.
        let mut rng = StdRng::seed_from_u64(2);
        let h = PairwiseU64::sample(&mut rng);
        let n = 50_000u64;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for x in 0..n {
            let u = h.hash_unit(x);
            sum += u;
            sumsq += u * u;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.01, "var={var}");
    }

    #[test]
    fn empirical_pairwise_collisions_u64() {
        // For a strongly universal family, Pr[h(x) bucket == h(y) bucket]
        // over the draw of h is ~1/B. Estimate over many function draws for a
        // fixed adversarial pair (consecutive integers).
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 20_000;
        let buckets = 16u64;
        let mut coll = 0u32;
        for _ in 0..trials {
            let h = PairwiseU64::sample(&mut rng);
            if h.hash(1) >> (64 - 4) == h.hash(2) >> (64 - 4) {
                coll += 1;
            }
        }
        let rate = coll as f64 / trials as f64;
        let expect = 1.0 / buckets as f64;
        assert!(
            (rate - expect).abs() < 0.01,
            "rate={rate} expected~{expect}"
        );
    }

    #[test]
    fn u128_distinguishes_word_order() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = PairwiseU128::sample(&mut rng);
        let x = (5u128 << 64) | 9;
        let y = (9u128 << 64) | 5;
        assert_ne!(g.hash(x), g.hash(y));
    }

    #[test]
    fn different_draws_differ() {
        let mut rng = StdRng::seed_from_u64(5);
        let h1 = PairwiseU64::sample(&mut rng);
        let h2 = PairwiseU64::sample(&mut rng);
        // Overwhelmingly likely to disagree somewhere in a small range.
        assert!((0u64..64).any(|x| h1.hash(x) != h2.hash(x)));
    }
}
