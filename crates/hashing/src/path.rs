//! Incremental 128-bit path keys and per-level sampling hashers.
//!
//! A *path* in the paper's data structure (§3) is an ordered sequence of
//! dimensions `v = (i_1, …, i_j)`. Two different vectors choose the *same*
//! filter iff they grew the identical sequence, so the inverted index needs a
//! canonical identity for sequences that can be extended in O(1).
//!
//! We identify a path by a 128-bit rolling key:
//!
//! ```text
//! key(ε)      = 0
//! key(v ∘ i)  = key(v) · M + H(i)      (mod 2^128)
//! ```
//!
//! with `M` a fixed odd multiplier and `H` a 128-bit splitmix-style
//! injection of the dimension. The map is order-sensitive (appending `a` then
//! `b` differs from `b` then `a`) and collisions between distinct sequences
//! are ~2⁻¹²⁸-scale events; a key collision can only cause a spurious
//! verification, never a missed result (candidates are verified exactly).
//!
//! The level hash `h_{j+1}(v ∘ i)` required by the construction is a
//! pairwise-independent function of the extended key, one independent draw
//! per level, wrapped in [`PathHasherStack`].

use crate::mix::{murmur3_fmix64, splitmix64};
use crate::pairwise::PairwiseU128;
use rand::Rng;

/// Identity of a path (an ordered dimension sequence) as a 128-bit rolling
/// hash. See the module docs for the construction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct PathKey(pub u128);

/// Odd multiplier for the rolling key (high-entropy constant).
const ROLL_M: u128 = 0x9E3779B97F4A7C15_F39CC0605CEDC835;

impl PathKey {
    /// The key of the empty path.
    pub const EMPTY: PathKey = PathKey(0);

    /// Key of `v ∘ i` given the key of `v`.
    #[inline]
    pub fn extend(self, dim: u32) -> PathKey {
        let h = inject_dim(dim);
        PathKey(self.0.wrapping_mul(ROLL_M).wrapping_add(h))
    }

    /// Raw 128-bit value.
    #[inline]
    pub fn raw(self) -> u128 {
        self.0
    }
}

/// 128-bit injection of a dimension id (two independent 64-bit mixers).
#[inline]
fn inject_dim(dim: u32) -> u128 {
    let lo = splitmix64(dim as u64 ^ 0xA5A5_5A5A_C3C3_3C3C);
    let hi = murmur3_fmix64(dim as u64 ^ 0x0123_4567_89AB_CDEF);
    ((hi as u128) << 64) | lo as u128
}

/// One level's sampling hash `h_j : paths → [0, 1)`, pairwise independent
/// over path keys.
#[derive(Clone, Copy, Debug)]
pub struct LevelHasher {
    inner: PairwiseU128,
}

impl LevelHasher {
    /// Draws a level hasher.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self {
            inner: PairwiseU128::sample(rng),
        }
    }

    /// Rebuilds a level hasher from the coefficients of its underlying
    /// pairwise function (the persistence round-trip counterpart of
    /// [`LevelHasher::coefficients`]).
    pub const fn from_coefficients(a1: u128, a2: u128, b: u128) -> Self {
        Self {
            inner: PairwiseU128::from_coefficients(a1, a2, b),
        }
    }

    /// The coefficients `(a1, a2, b)` of the underlying pairwise function.
    pub const fn coefficients(&self) -> (u128, u128, u128) {
        self.inner.coefficients()
    }

    /// `h_j(v)` as a point in `[0, 1)`.
    #[inline]
    pub fn unit(&self, key: PathKey) -> f64 {
        self.inner.hash_unit(key.0)
    }

    /// The sampling decision `h_j(v ∘ i) < s` of the construction.
    #[inline]
    pub fn accepts(&self, key: PathKey, threshold: f64) -> bool {
        self.unit(key) < threshold
    }
}

/// The fixed stack `h_1, …, h_k` of level hashers selected once when the data
/// structure is initialized (§3: "we once and for all select k hash
/// functions"). Shared by preprocessing and queries.
#[derive(Clone, Debug)]
pub struct PathHasherStack {
    levels: Vec<LevelHasher>,
}

impl PathHasherStack {
    /// Draws `k` independent level hashers.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, k: usize) -> Self {
        Self {
            levels: (0..k).map(|_| LevelHasher::sample(rng)).collect(),
        }
    }

    /// Rebuilds a stack from previously sampled level hashers (the
    /// persistence round-trip counterpart of [`PathHasherStack::levels`]).
    pub fn from_levels(levels: Vec<LevelHasher>) -> Self {
        Self { levels }
    }

    /// The level hashers `h_1, …, h_k` in order.
    #[inline]
    pub fn levels(&self) -> &[LevelHasher] {
        &self.levels
    }

    /// Maximum supported path length `k`.
    #[inline]
    pub fn max_depth(&self) -> usize {
        self.levels.len()
    }

    /// The hasher deciding extensions from depth `j` to depth `j + 1`
    /// (0-based: `level(0)` is `h_1`).
    ///
    /// # Panics
    /// Panics if `j >= k`; the engine must cap path depth at `max_depth`.
    #[inline]
    pub fn level(&self, j: usize) -> &LevelHasher {
        &self.levels[j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use std::collections::HashSet;

    #[test]
    fn extension_is_order_sensitive() {
        let ab = PathKey::EMPTY.extend(1).extend(2);
        let ba = PathKey::EMPTY.extend(2).extend(1);
        assert_ne!(ab, ba);
    }

    #[test]
    fn same_sequence_same_key() {
        let k1 = PathKey::EMPTY.extend(5).extend(9).extend(2);
        let k2 = PathKey::EMPTY.extend(5).extend(9).extend(2);
        assert_eq!(k1, k2);
    }

    #[test]
    fn no_collisions_among_many_short_paths() {
        // All paths of length <= 2 over 200 dims: 1 + 200 + 200*199 keys.
        let mut seen = HashSet::new();
        seen.insert(PathKey::EMPTY);
        for a in 0..200u32 {
            assert!(seen.insert(PathKey::EMPTY.extend(a)), "len-1 collision");
        }
        for a in 0..200u32 {
            let ka = PathKey::EMPTY.extend(a);
            for b in 0..200u32 {
                if a != b {
                    assert!(seen.insert(ka.extend(b)), "len-2 collision {a},{b}");
                }
            }
        }
    }

    #[test]
    fn prefix_key_differs_from_extension() {
        let v = PathKey::EMPTY.extend(3);
        assert_ne!(v, v.extend(4));
        assert_ne!(PathKey::EMPTY, v);
    }

    #[test]
    fn level_hashers_are_independent_across_levels() {
        let mut rng = StdRng::seed_from_u64(11);
        let stack = PathHasherStack::sample(&mut rng, 4);
        let key = PathKey::EMPTY.extend(1).extend(2);
        let units: Vec<f64> = (0..4).map(|j| stack.level(j).unit(key)).collect();
        // Same key, different levels: values should not all coincide.
        assert!(units.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-12));
        for u in units {
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn accepts_threshold_semantics() {
        let mut rng = StdRng::seed_from_u64(12);
        let stack = PathHasherStack::sample(&mut rng, 1);
        let key = PathKey::EMPTY.extend(7);
        assert!(stack.level(0).accepts(key, 1.01)); // threshold >= 1 accepts all
        assert!(!stack.level(0).accepts(key, 0.0)); // threshold 0 rejects all
    }

    #[test]
    fn stack_is_deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        let s1 = PathHasherStack::sample(&mut a, 3);
        let s2 = PathHasherStack::sample(&mut b, 3);
        let key = PathKey::EMPTY.extend(42).extend(17);
        for j in 0..3 {
            assert_eq!(s1.level(j).unit(key), s2.level(j).unit(key));
        }
    }

    #[test]
    fn empirical_acceptance_rate_matches_threshold() {
        // Over many keys, the fraction accepted at threshold s should be ~s.
        let mut rng = StdRng::seed_from_u64(13);
        let stack = PathHasherStack::sample(&mut rng, 1);
        let s = 0.3;
        let n = 20_000u32;
        let acc = (0..n)
            .filter(|&i| stack.level(0).accepts(PathKey::EMPTY.extend(i), s))
            .count();
        let rate = acc as f64 / n as f64;
        assert!((rate - s).abs() < 0.02, "rate={rate}");
    }
}
