//! Simple tabulation hashing.
//!
//! Simple tabulation (Zobrist) hashing is 3-independent and has much stronger
//! concentration properties than its independence suggests (Pătraşcu–Thorup).
//! It is provided as an alternative level-hash family for the ablation
//! benchmarks: the paper only *requires* pairwise independence, and the
//! ablation verifies that the structure's behaviour is insensitive to the
//! family choice.

use crate::mix::to_unit_f64;
use rand::Rng;

/// Simple tabulation hash on `u64` keys: 8 tables of 256 random words; the
/// hash is the XOR of one lookup per key byte.
#[derive(Clone)]
pub struct Tabulation64 {
    tables: Box<[[u64; 256]; 8]>,
}

impl Tabulation64 {
    /// Draws a function (fills all tables with uniform words).
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut tables = Box::new([[0u64; 256]; 8]);
        for t in tables.iter_mut() {
            for e in t.iter_mut() {
                *e = rng.random::<u64>();
            }
        }
        Self { tables }
    }

    /// Hashes a 64-bit key.
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        let b = x.to_le_bytes();
        let mut h = 0u64;
        for (i, &byte) in b.iter().enumerate() {
            h ^= self.tables[i][byte as usize];
        }
        h
    }

    /// Hashes to the unit interval `[0, 1)`.
    #[inline]
    pub fn hash_unit(&self, x: u64) -> f64 {
        to_unit_f64(self.hash(x))
    }
}

impl std::fmt::Debug for Tabulation64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tabulation64").finish_non_exhaustive()
    }
}

/// Simple tabulation hash compressing `u128` keys to `u64`: 16 tables of 256
/// random words, XOR of one lookup per key byte.
///
/// Used by the inverted filter index to *intern* 128-bit path keys into
/// 64-bit bucket keys, halving the key width of every bucket map. Tabulation
/// is 3-independent, so among `m` distinct filters in a repetition the
/// probability of *any* interning collision is the birthday bound
/// `≈ m²/2⁶⁵` (e.g. `~2⁻²⁵` at a million filters) — and a collision merely
/// merges two buckets, causing a spurious verification, never a wrong answer
/// (candidates are always verified exactly).
#[derive(Clone)]
pub struct TabulationU128 {
    tables: Box<[[u64; 256]; 16]>,
}

impl TabulationU128 {
    /// Draws a function (fills all tables with uniform words).
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut tables = Box::new([[0u64; 256]; 16]);
        for t in tables.iter_mut() {
            for e in t.iter_mut() {
                *e = rng.random::<u64>();
            }
        }
        Self { tables }
    }

    /// Number of `u64` words in the flattened table representation
    /// (16 tables × 256 entries).
    pub const WORDS: usize = 16 * 256;

    /// Flattens the tables into `16 × 256 = 4096` words, table-major
    /// (table 0 entries 0..256, then table 1, …). The persistence
    /// round-trip counterpart of [`TabulationU128::from_words`].
    pub fn to_words(&self) -> Vec<u64> {
        self.tables.iter().flatten().copied().collect()
    }

    /// Rebuilds a function from the flattened representation produced by
    /// [`TabulationU128::to_words`]. Returns `None` unless exactly
    /// [`TabulationU128::WORDS`] words are supplied.
    pub fn from_words(words: &[u64]) -> Option<Self> {
        if words.len() != Self::WORDS {
            return None;
        }
        let mut tables = Box::new([[0u64; 256]; 16]);
        for (i, t) in tables.iter_mut().enumerate() {
            t.copy_from_slice(&words[i * 256..(i + 1) * 256]);
        }
        Some(Self { tables })
    }

    /// Hashes a 128-bit key down to 64 bits.
    #[inline]
    pub fn hash(&self, x: u128) -> u64 {
        let b = x.to_le_bytes();
        let mut h = 0u64;
        for (i, &byte) in b.iter().enumerate() {
            h ^= self.tables[i][byte as usize];
        }
        h
    }
}

impl std::fmt::Debug for TabulationU128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TabulationU128").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn deterministic() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tabulation64::sample(&mut rng);
        assert_eq!(t.hash(123), t.hash(123));
    }

    #[test]
    fn sensitive_to_every_byte() {
        let mut rng = StdRng::seed_from_u64(8);
        let t = Tabulation64::sample(&mut rng);
        let base = t.hash(0);
        for byte in 0..8 {
            let x = 1u64 << (8 * byte);
            assert_ne!(t.hash(x), base, "byte {byte} ignored");
        }
    }

    #[test]
    fn xor_structure_holds() {
        // For keys differing in disjoint bytes, tabulation is XOR-linear:
        // h(a|b) = h(a) ^ h(b) ^ h(0).
        let mut rng = StdRng::seed_from_u64(9);
        let t = Tabulation64::sample(&mut rng);
        let a = 0x00_00_00_00_00_00_00_AAu64;
        let b = 0x00_00_00_00_00_BB_00_00u64;
        assert_eq!(t.hash(a | b), t.hash(a) ^ t.hash(b) ^ t.hash(0));
    }

    #[test]
    fn u128_interner_is_deterministic_and_byte_sensitive() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = TabulationU128::sample(&mut rng);
        let key = 0x0123_4567_89AB_CDEF_0011_2233_4455_6677u128;
        assert_eq!(t.hash(key), t.hash(key));
        let base = t.hash(0);
        for byte in 0..16 {
            let x = 1u128 << (8 * byte);
            assert_ne!(t.hash(x), base, "byte {byte} ignored");
        }
    }

    #[test]
    fn u128_interner_has_no_collisions_on_small_key_sets() {
        let mut rng = StdRng::seed_from_u64(12);
        let t = TabulationU128::sample(&mut rng);
        let mut seen = std::collections::HashSet::new();
        for i in 0..20_000u128 {
            // Spread keys across both halves to exercise all tables.
            let key = i | (i << 64) | (i << 23);
            assert!(seen.insert(t.hash(key)), "collision at {i}");
        }
    }

    #[test]
    fn empirical_uniformity() {
        let mut rng = StdRng::seed_from_u64(10);
        let t = Tabulation64::sample(&mut rng);
        let n = 50_000u64;
        let mean: f64 = (0..n).map(|x| t.hash_unit(x)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }
}
