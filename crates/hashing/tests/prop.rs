//! Property-based tests for the hashing substrate.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use skewsearch_hashing::{
    mix, FxHashMap, PairwiseU128, PairwiseU64, PathHasherStack, PathKey, Tabulation64,
};
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mixers_are_deterministic_and_unit_range(x in any::<u64>()) {
        prop_assert_eq!(mix::splitmix64(x), mix::splitmix64(x));
        prop_assert_eq!(mix::avalanche64(x), mix::avalanche64(x));
        prop_assert_eq!(mix::murmur3_fmix64(x), mix::murmur3_fmix64(x));
        let u = mix::to_unit_f64(x);
        prop_assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn pairwise_u64_is_a_function(seed in any::<u64>(), x in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = PairwiseU64::sample(&mut rng);
        prop_assert_eq!(h.hash(x), h.hash(x));
        prop_assert!((0.0..1.0).contains(&h.hash_unit(x)));
    }

    #[test]
    fn pairwise_u128_word_sensitivity(seed in any::<u64>(), hi in any::<u64>(), lo in any::<u64>()) {
        prop_assume!(hi != lo);
        let mut rng = StdRng::seed_from_u64(seed);
        let h = PairwiseU128::sample(&mut rng);
        let a = ((hi as u128) << 64) | lo as u128;
        let b = ((lo as u128) << 64) | hi as u128;
        // Swapping words should essentially always change the hash; a
        // coincidence is a 2^-64 event, impossible over 256 cases.
        prop_assert_ne!(h.hash(a), h.hash(b));
    }

    #[test]
    fn path_keys_injective_on_random_sequences(
        seq1 in prop::collection::vec(0u32..10_000, 1..12),
        seq2 in prop::collection::vec(0u32..10_000, 1..12),
    ) {
        let key = |s: &[u32]| s.iter().fold(PathKey::EMPTY, |k, &i| k.extend(i));
        if seq1 == seq2 {
            prop_assert_eq!(key(&seq1), key(&seq2));
        } else {
            prop_assert_ne!(key(&seq1), key(&seq2));
        }
    }

    #[test]
    fn level_hash_acceptance_respects_threshold_ordering(
        seed in any::<u64>(),
        dims in prop::collection::vec(0u32..1000, 1..6),
        t1 in 0.0f64..1.0,
        t2 in 0.0f64..1.0,
    ) {
        // Acceptance is monotone in the threshold: accepted at t implies
        // accepted at any t' >= t.
        let mut rng = StdRng::seed_from_u64(seed);
        let stack = PathHasherStack::sample(&mut rng, 3);
        let key = dims.iter().fold(PathKey::EMPTY, |k, &i| k.extend(i));
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        if stack.level(0).accepts(key, lo) {
            prop_assert!(stack.level(0).accepts(key, hi));
        }
    }

    #[test]
    fn tabulation_is_xor_linear_on_disjoint_bytes(seed in any::<u64>(), a in any::<u8>(), b in any::<u8>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tabulation64::sample(&mut rng);
        let x = a as u64;            // byte 0
        let y = (b as u64) << 16;    // byte 2
        prop_assert_eq!(t.hash(x | y), t.hash(x) ^ t.hash(y) ^ t.hash(0));
    }

    #[test]
    fn fx_map_agrees_with_std_map(ops in prop::collection::vec((any::<u128>(), any::<u32>()), 0..200)) {
        let mut fx: FxHashMap<u128, u32> = FxHashMap::default();
        let mut std_map: HashMap<u128, u32> = HashMap::new();
        for (k, v) in &ops {
            fx.insert(*k, *v);
            std_map.insert(*k, *v);
        }
        prop_assert_eq!(fx.len(), std_map.len());
        for (k, v) in &std_map {
            prop_assert_eq!(fx.get(k), Some(v));
        }
    }
}
