//! # skewsearch-join
//!
//! Set similarity **joins** via repeated similarity search (§1.1 of the
//! paper: "Many similarity join algorithms work using (essentially) repeated
//! similarity search queries; … This method is equally effective here"). For
//! sets `R` and `S` with join size much smaller than `|R|` or `|S|`,
//! preprocessing `S` in `O(d|S|^{1+ρ})` and probing with every `r ∈ R` finds
//! all pairs in `O(d|R||S|^ρ)` (Theorem 2 applied |R| times).
//!
//! The join is generic over any [`SetSimilaritySearch`] structure, so the
//! same driver runs the paper's indexes, Chosen Path, MinHash, prefix
//! filtering, and the exact nested-loop oracle used to validate them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use skewsearch_core::SetSimilaritySearch;
use skewsearch_sets::{similarity, SparseVec};

/// One joined pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JoinPair {
    /// Index into the probe side `R`.
    pub r_id: usize,
    /// Index into the indexed side `S`.
    pub s_id: usize,
    /// Braun-Blanquet similarity of the pair.
    pub similarity: f64,
}

/// Collects per-query match lists into join pairs, preserving query order.
fn collect_pairs(per_query: Vec<Vec<skewsearch_core::Match>>) -> Vec<JoinPair> {
    per_query
        .into_iter()
        .enumerate()
        .flat_map(|(r_id, matches)| {
            matches.into_iter().map(move |m| JoinPair {
                r_id,
                s_id: m.id,
                similarity: m.similarity,
            })
        })
        .collect()
}

/// R ⋈ S: probes `index` (built over `S`) with every vector of `r`,
/// collecting all verified pairs at the index's threshold.
///
/// Runs through [`SetSimilaritySearch::search_batch`], so indexes with a
/// thread-pooled batch override (the LSF indexes, MinHash) answer the probe
/// side in parallel with results identical to the sequential loop; pairs are
/// emitted in `r` order.
///
/// **Each distinct probe-side query is planned and answered exactly once.**
/// Duplicate sets in `r` (frequent in real joins, and co-located by
/// `ByDataset`'s content-hash partitioning) are grouped up front
/// ([`skewsearch_core::distinct_slots`]); the index sees only the distinct
/// queries, and their answers fan back out to every occurrence. Identical
/// output — every structure in this workspace answers as a pure function of
/// the query — with enumeration/planning work proportional to *distinct*
/// queries (pinned by `tests/enumeration_count.rs`).
///
/// This is also the **sharded** join: a
/// [`ShardedIndex`](skewsearch_core::ShardedIndex) implements the trait with
/// answers byte-identical to the index it partitions, so passing one here
/// yields exactly the unsharded join's pairs while the probe side
/// parallelizes across queries and each query's single
/// [`QueryPlan`](skewsearch_core::QueryPlan) broadcasts across shards
/// (pinned by the `sharded_join_matches_unsharded_exactly` test).
pub fn similarity_join<I: SetSimilaritySearch>(r: &[SparseVec], index: &I) -> Vec<JoinPair> {
    let (representatives, slot_of) = skewsearch_core::distinct_slots(r);
    if representatives.len() == r.len() {
        return collect_pairs(index.search_batch(r));
    }
    let distinct: Vec<SparseVec> = representatives.iter().map(|&i| r[i].clone()).collect();
    let answers = index.search_batch(&distinct);
    collect_pairs(slot_of.into_iter().map(|s| answers[s].clone()).collect())
}

/// [`similarity_join`] with an explicit worker count for the probe side
/// (`0` = one per available core), independent of the index's own batch
/// configuration. Work is distributed by chunked work stealing over the
/// distinct queries ([`skewsearch_core::batch_map_distinct`] — duplicates
/// share one answer, as in [`similarity_join`]); output is identical to the
/// sequential join for every thread count.
///
/// With a [`ShardedIndex`](skewsearch_core::ShardedIndex), prefer
/// [`similarity_join`]: its `search_batch` pins the per-query shard fan-out
/// to one worker, whereas this function's per-query `search_all` calls fan
/// out at the index's `fanout_threads` *inside* each probe worker —
/// `threads × fanout` scoped threads per query wave (results unchanged,
/// throughput oversubscribed). If you do use this, build the sharded index
/// with `with_fanout_threads(1)`.
pub fn similarity_join_parallel<I: SetSimilaritySearch + Sync>(
    r: &[SparseVec],
    index: &I,
    threads: usize,
) -> Vec<JoinPair> {
    collect_pairs(skewsearch_core::batch_map_distinct(r, threads, |q| {
        index.search_all(q)
    }))
}

/// Self-join of the indexed set: probes the index with each of its own
/// vectors, returning each unordered pair `{i, j}`, `i < j`, once.
///
/// The trivial self-match `i = i` is dropped; symmetric duplicates are
/// de-duplicated by keeping only `s_id > r_id` pairs (any pair found in only
/// one direction is still reported — randomized indexes are not symmetric).
pub fn self_join<I: SetSimilaritySearch>(vectors: &[SparseVec], index: &I) -> Vec<JoinPair> {
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (r_id, q) in vectors.iter().enumerate() {
        for m in index.search_all(q) {
            if m.id == r_id {
                continue;
            }
            let (a, b) = (r_id.min(m.id), r_id.max(m.id));
            if seen.insert((a, b)) {
                out.push(JoinPair {
                    r_id: a,
                    s_id: b,
                    similarity: m.similarity,
                });
            }
        }
    }
    out
}

/// Exact nested-loop join — the `O(|R||S|)` oracle.
pub fn nested_loop_join(r: &[SparseVec], s: &[SparseVec], threshold: f64) -> Vec<JoinPair> {
    let mut out = Vec::new();
    for (r_id, x) in r.iter().enumerate() {
        for (s_id, y) in s.iter().enumerate() {
            let sim = similarity::braun_blanquet(x, y);
            if sim >= threshold {
                out.push(JoinPair {
                    r_id,
                    s_id,
                    similarity: sim,
                });
            }
        }
    }
    out
}

/// Recall of `found` against exact `truth`, matching on `(r_id, s_id)`.
pub fn join_recall(found: &[JoinPair], truth: &[JoinPair]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let set: std::collections::HashSet<(usize, usize)> =
        found.iter().map(|p| (p.r_id, p.s_id)).collect();
    let hit = truth
        .iter()
        .filter(|p| set.contains(&(p.r_id, p.s_id)))
        .count();
    hit as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use skewsearch_baselines::BruteForce;
    use skewsearch_core::{CorrelatedIndex, CorrelatedParams, IndexOptions, Repetitions};
    use skewsearch_datagen::{correlated_query, BernoulliProfile, Dataset};

    fn v(dims: &[u32]) -> SparseVec {
        SparseVec::from_unsorted(dims.to_vec())
    }

    #[test]
    fn nested_loop_ground_truth() {
        let r = vec![v(&[1, 2, 3]), v(&[7, 8])];
        let s = vec![v(&[1, 2, 3, 4]), v(&[7, 8]), v(&[9])];
        let pairs = nested_loop_join(&r, &s, 0.7);
        assert_eq!(pairs.len(), 2);
        assert!(pairs.iter().any(|p| p.r_id == 0 && p.s_id == 0));
        assert!(pairs.iter().any(|p| p.r_id == 1 && p.s_id == 1));
    }

    #[test]
    fn join_via_brute_index_equals_nested_loop() {
        let r = vec![v(&[1, 2]), v(&[2, 3]), v(&[4, 5, 6])];
        let s = vec![v(&[1, 2]), v(&[4, 5, 6, 7]), v(&[8])];
        let index = BruteForce::new(s.clone(), 0.6);
        let mut got = similarity_join(&r, &index);
        let mut want = nested_loop_join(&r, &s, 0.6);
        let key = |p: &JoinPair| (p.r_id, p.s_id);
        got.sort_by_key(key);
        want.sort_by_key(key);
        assert_eq!(got, want);
    }

    #[test]
    fn parallel_join_matches_sequential_exactly() {
        let profile = BernoulliProfile::uniform(200, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(91);
        let s = Dataset::generate(&profile, 120, &mut rng);
        let r: Vec<SparseVec> = (0..40)
            .map(|t| correlated_query(s.vector(t), &profile, 0.9, &mut rng))
            .collect();
        let index = BruteForce::new(s.vectors().to_vec(), 0.5);
        let seq = similarity_join(&r, &index);
        for threads in [2, 3, 8, 64] {
            let par = similarity_join_parallel(&r, &index, threads);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn lsf_join_has_high_recall_vs_oracle() {
        let profile = BernoulliProfile::two_block(800, 0.2, 0.02).unwrap();
        let mut rng = StdRng::seed_from_u64(92);
        let s = Dataset::generate(&profile, 200, &mut rng);
        let alpha = 0.85;
        // R = correlated probes of a subset of S.
        let r: Vec<SparseVec> = (0..60)
            .map(|t| correlated_query(s.vector(t), &profile, alpha, &mut rng))
            .collect();
        let params = CorrelatedParams::new(alpha)
            .unwrap()
            .with_options(IndexOptions {
                repetitions: Repetitions::Fixed(10),
                ..IndexOptions::default()
            });
        let index = CorrelatedIndex::build(&s, &profile, params, &mut rng);
        let found = similarity_join(&r, &index);
        let truth = nested_loop_join(&r, s.vectors(), index.threshold());
        let recall = join_recall(&found, &truth);
        assert!(recall >= 0.8, "recall={recall}");
        // Precision is exact by construction (verified candidates only).
        for p in &found {
            assert!(p.similarity >= index.threshold());
        }
    }

    #[test]
    fn sharded_join_matches_unsharded_exactly() {
        use skewsearch_core::{ShardStrategy, ShardedIndex};
        let profile = BernoulliProfile::two_block(700, 0.2, 0.02).unwrap();
        let mut rng = StdRng::seed_from_u64(93);
        let s = Dataset::generate(&profile, 150, &mut rng);
        let alpha = 0.85;
        let r: Vec<SparseVec> = (0..50)
            .map(|t| correlated_query(s.vector(t), &profile, alpha, &mut rng))
            .collect();
        let params = CorrelatedParams::new(alpha)
            .unwrap()
            .with_options(IndexOptions {
                repetitions: Repetitions::Fixed(8),
                ..IndexOptions::default()
            });
        let index = CorrelatedIndex::build(&s, &profile, params, &mut rng);
        let unsharded = similarity_join(&r, &index);
        for strategy in [ShardStrategy::ByRepetition, ShardStrategy::ByDataset] {
            for shards in [1, 4] {
                let sharded = ShardedIndex::build(&index, strategy, shards);
                assert_eq!(
                    similarity_join(&r, &sharded),
                    unsharded,
                    "{strategy:?} shards={shards}"
                );
            }
        }
    }

    #[test]
    fn duplicate_probe_queries_join_identically_to_naive_loop() {
        // The distinct-query dedup must be invisible: a probe side full of
        // repeated sets joins exactly like the per-occurrence loop, pairs in
        // r order with r_id pointing at each occurrence.
        let r = vec![
            v(&[1, 2]),
            v(&[4, 5, 6]),
            v(&[1, 2]),
            v(&[1, 2]),
            v(&[8]),
            v(&[4, 5, 6]),
        ];
        let s = vec![v(&[1, 2]), v(&[4, 5, 6, 7]), v(&[8]), v(&[1, 2, 3])];
        let index = BruteForce::new(s.clone(), 0.6);
        let naive: Vec<JoinPair> = collect_pairs(r.iter().map(|q| index.search_all(q)).collect());
        assert_eq!(similarity_join(&r, &index), naive);
        for threads in [1, 4] {
            assert_eq!(similarity_join_parallel(&r, &index, threads), naive);
        }
        assert!(
            naive.iter().filter(|p| p.r_id == 2 || p.r_id == 3).count() >= 2,
            "duplicates must each contribute their own pairs"
        );
    }

    #[test]
    fn self_join_dedups_and_drops_reflexive_pairs() {
        let data = vec![v(&[1, 2, 3]), v(&[1, 2, 3]), v(&[9])];
        let index = BruteForce::new(data.clone(), 0.9);
        let pairs = self_join(&data, &index);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].r_id, pairs[0].s_id), (0, 1));
    }

    #[test]
    fn join_recall_metric() {
        let truth = vec![
            JoinPair {
                r_id: 0,
                s_id: 1,
                similarity: 1.0,
            },
            JoinPair {
                r_id: 2,
                s_id: 3,
                similarity: 0.9,
            },
        ];
        assert_eq!(join_recall(&truth[..1], &truth), 0.5);
        assert_eq!(join_recall(&truth, &truth), 1.0);
        assert_eq!(join_recall(&[], &[]), 1.0);
    }
}
