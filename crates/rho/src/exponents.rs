//! Solvers for the paper's exponent equations.
//!
//! A *block* is a pair `(weight, p)`: `weight` dimensions (possibly
//! fractional, for asymptotic examples like §7.2's `n^{9/10} C log n` bits)
//! sharing item probability `p`. All residuals are sums of `weight · p^ρ`
//! terms, strictly decreasing in `ρ`; roots come from
//! [`crate::solve::root_decreasing`].

use crate::solve::root_decreasing;
use skewsearch_datagen::BernoulliProfile;

/// Groups a probability slice into `(weight, p)` blocks by exact equality
/// (consecutive after sorting), shrinking the residual evaluation from
/// `O(d)` to `O(#distinct p)` per bisection step.
pub fn blocks_from_ps(ps: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = ps.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mut blocks: Vec<(f64, f64)> = Vec::new();
    for p in sorted {
        match blocks.last_mut() {
            Some((w, q)) if *q == p => *w += 1.0,
            _ => blocks.push((1.0, p)),
        }
    }
    blocks
}

fn validate_blocks(blocks: &[(f64, f64)]) {
    assert!(!blocks.is_empty(), "need at least one block");
    for &(w, p) in blocks {
        assert!(w > 0.0, "block weight must be positive, got {w}");
        assert!(p > 0.0 && p < 1.0, "block probability {p} outside (0,1)");
    }
}

/// Theorem 1 exponent for block-weighted probabilities: the ρ satisfying
///
/// ```text
/// Σ w_b · p_b^{1+ρ} / p̂_b  =  Σ w_b · p_b,      p̂_b = p_b(1−α) + α.
/// ```
///
/// The root always lies in `\[0, 1\]`: at `ρ = 0` the LHS is
/// `Σ w p/p̂ ≥ Σ w p` (since `p̂ ≤ 1`), and at `ρ = 1` it is
/// `Σ w p²/p̂ ≤ Σ w p` (since `p̂ ≥ p`).
pub fn rho_correlated_blocks(blocks: &[(f64, f64)], alpha: f64) -> f64 {
    validate_blocks(blocks);
    assert!(
        alpha > 0.0 && alpha <= 1.0,
        "alpha must lie in (0, 1], got {alpha}"
    );
    let target: f64 = blocks.iter().map(|&(w, p)| w * p).sum();
    let f = |rho: f64| -> f64 {
        blocks
            .iter()
            .map(|&(w, p)| {
                let phat = p * (1.0 - alpha) + alpha;
                w * p.powf(1.0 + rho) / phat
            })
            .sum::<f64>()
            - target
    };
    root_decreasing(f, 0.0, 1.0)
}

/// Theorem 1 exponent for a full profile (see [`rho_correlated_blocks`]).
pub fn rho_correlated(profile: &BernoulliProfile, alpha: f64) -> f64 {
    rho_correlated_blocks(&blocks_from_ps(profile.ps()), alpha)
}

/// Theorem 2 *query* exponent `ρ(q)` for a query whose set bits have item
/// probabilities given by `blocks`: the ρ satisfying
///
/// ```text
/// Σ w_b · p_b^{ρ(q)}  =  b₁ · |q|,       |q| = Σ w_b.
/// ```
///
/// Requires `b₁ ∈ (0, 1)`. The residual decreases from `|q|(1 − b₁) > 0` to
/// `−b₁|q| < 0`, so a root exists; it may exceed 1 for weak thresholds on
/// dense queries (e.g. uniform `p` with `b₁ < p`).
pub fn rho_adversarial_query_blocks(blocks: &[(f64, f64)], b1: f64) -> f64 {
    validate_blocks(blocks);
    assert!(b1 > 0.0 && b1 < 1.0, "b1 must lie in (0,1), got {b1}");
    let q_len: f64 = blocks.iter().map(|&(w, _)| w).sum();
    let f = |rho: f64| -> f64 {
        blocks.iter().map(|&(w, p)| w * p.powf(rho)).sum::<f64>() - b1 * q_len
    };
    root_decreasing(f, 0.0, 1.0)
}

/// Theorem 2 query exponent from the probabilities of the query's set bits.
pub fn rho_adversarial_query(ps_of_q: &[f64], b1: f64) -> f64 {
    rho_adversarial_query_blocks(&blocks_from_ps(ps_of_q), b1)
}

/// Theorem 2 *space / preprocessing* exponent `ρᵤ`: the ρ satisfying
/// `Σ_i p_i^{1+ρ} = b₁ Σ_i p_i`. Always in `[0, ∞)`; equals the query
/// exponent of a "typical" query in the balanced case.
pub fn rho_adversarial_space(profile: &BernoulliProfile, b1: f64) -> f64 {
    assert!(b1 > 0.0 && b1 < 1.0, "b1 must lie in (0,1), got {b1}");
    let blocks = blocks_from_ps(profile.ps());
    let target: f64 = b1 * profile.sum_p();
    let f = |rho: f64| -> f64 {
        blocks
            .iter()
            .map(|&(w, p)| w * p.powf(1.0 + rho))
            .sum::<f64>()
            - target
    };
    root_decreasing(f, 0.0, 1.0)
}

/// Chosen Path \[18\] exponent for the `(b₁, b₂)`-approximate Braun-Blanquet
/// problem: `ρ = log b₁ / log b₂` (requires `0 < b₂ < b₁ ≤ 1`).
pub fn rho_chosen_path(b1: f64, b2: f64) -> f64 {
    assert!(
        0.0 < b2 && b2 < b1 && b1 <= 1.0,
        "need 0 < b2 < b1 <= 1, got b1={b1} b2={b2}"
    );
    if b1 == 1.0 {
        return 0.0;
    }
    b1.ln() / b2.ln()
}

/// Classic MinHash LSH exponent for the `(j₁, j₂)`-approximate Jaccard
/// problem: `ρ = log j₁ / log j₂` (requires `0 < j₂ < j₁ ≤ 1`).
pub fn rho_minhash(j1: f64, j2: f64) -> f64 {
    assert!(
        0.0 < j2 && j2 < j1 && j1 <= 1.0,
        "need 0 < j2 < j1 <= 1, got j1={j1} j2={j2}"
    );
    if j1 == 1.0 {
        return 0.0;
    }
    j1.ln() / j2.ln()
}

/// Prefix-filtering candidate-count exponent: scanning the posting list of
/// the rarest query dimension touches `n · min_i p_i = n^{1 + log_n min p}`
/// candidates in expectation, i.e. exponent `max(0, 1 + log_n(min_i p_i))`.
///
/// Reproduces the paper's §7 claims: `Θ(1)` probabilities give exponent 1
/// (no non-trivial guarantee — Figure 1's caption), while `p_min = n^{−0.9}`
/// gives `Ω(n^{0.1})`, exponent `0.1`.
pub fn prefix_filter_exponent(min_p: f64, n: usize) -> f64 {
    assert!(min_p > 0.0 && min_p < 1.0, "min_p must lie in (0,1)");
    assert!(n >= 2, "need n >= 2");
    (1.0 + min_p.ln() / (n as f64).ln()).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn blocks_compress_equal_probabilities() {
        let b = blocks_from_ps(&[0.25, 0.1, 0.25, 0.1, 0.1]);
        assert_eq!(b, vec![(3.0, 0.1), (2.0, 0.25)]);
    }

    #[test]
    fn correlated_balanced_case_recovers_chosen_path() {
        // Uniform p: the Thm 1 equation reduces to p^ρ = p̂, i.e.
        // ρ = ln(α + (1−α)p) / ln p — exactly the ChosenPath bound
        // ρ = log(β + α(1−β)) / log β from [18] that §1.1 says we recover.
        for &(p, alpha) in &[(0.1, 0.5), (0.25, 2.0 / 3.0), (0.4, 0.9), (0.01, 0.3)] {
            let rho = rho_correlated_blocks(&[(10.0, p)], alpha);
            let expect = (alpha + (1.0 - alpha) * p).ln() / p.ln();
            assert!(
                (rho - expect).abs() < EPS,
                "p={p} alpha={alpha}: rho={rho} expect={expect}"
            );
        }
    }

    #[test]
    fn correlated_rho_is_invariant_to_block_scaling() {
        // The equation is homogeneous in the weights.
        let a = rho_correlated_blocks(&[(1.0, 0.3), (1.0, 0.3 / 8.0)], 0.5);
        let b = rho_correlated_blocks(&[(500.0, 0.3), (500.0, 0.3 / 8.0)], 0.5);
        assert!((a - b).abs() < EPS);
    }

    #[test]
    fn correlated_rho_decreases_with_alpha() {
        let blocks = [(1.0, 0.2), (1.0, 0.025)];
        let mut last = 1.0;
        for alpha in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let rho = rho_correlated_blocks(&blocks, alpha);
            assert!(rho < last, "alpha={alpha}: rho={rho} !< {last}");
            last = rho;
        }
    }

    #[test]
    fn correlated_rho_in_unit_interval() {
        let blocks = [(3.0, 0.45), (100.0, 0.001)];
        for alpha in [0.05, 0.5, 0.99] {
            let rho = rho_correlated_blocks(&blocks, alpha);
            assert!((0.0..=1.0).contains(&rho), "alpha={alpha} rho={rho}");
        }
    }

    #[test]
    fn adaptive_beats_chosen_path_on_skewed_input() {
        // Figure 1's claim: on a skewed distribution, our ρ is strictly below
        // the ρ Chosen Path achieves for the induced (b1, b2)-approximate
        // problem (b1/b2 = expected correlated/independent similarity), and
        // the two coincide when there is no skew.
        let alpha = 2.0 / 3.0;
        for &(pa, pb) in &[(0.35, 0.05), (0.25, 0.25 / 8.0), (0.45, 0.001)] {
            let blocks = [(1.0, pa), (1.0, pb)];
            let ours = rho_correlated_blocks(&blocks, alpha);
            let b1 = crate::model::expected_b1_correlated_blocks(&blocks, alpha);
            let b2 = crate::model::expected_b2_independent_blocks(&blocks);
            let cp = rho_chosen_path(b1, b2);
            assert!(ours < cp - 1e-4, "pa={pa} pb={pb}: ours={ours} cp={cp}");
        }
        // No skew: equality (the balanced-case recovery of §1.1).
        let blocks = [(2.0, 0.2)];
        let ours = rho_correlated_blocks(&blocks, alpha);
        let b1 = crate::model::expected_b1_correlated_blocks(&blocks, alpha);
        let b2 = crate::model::expected_b2_independent_blocks(&blocks);
        // With uniform p, b2 = p exactly and b1 = α + (1−α)p: ρ_CP = ρ.
        assert!((ours - rho_chosen_path(b1, b2)).abs() < 1e-9);
    }

    #[test]
    fn adversarial_uniform_matches_closed_form() {
        // Uniform p: Σ p^ρ = b1|q| ⇒ p^ρ = b1 ⇒ ρ = ln b1 / ln p.
        let rho = rho_adversarial_query(&[0.25; 30], 1.0 / 3.0);
        let expect = (1.0f64 / 3.0).ln() / 0.25f64.ln();
        assert!((rho - expect).abs() < EPS, "rho={rho} expect={expect}");
    }

    #[test]
    fn sec71_first_example_rho_about_0293() {
        // pa = 1/4, pb = n^{-0.9}, b1 = 1/3; asymptotically
        // ρ → log(2/3)/log(1/4) ≈ 0.2925 (vs ρ_CP ≥ 0.528).
        let n: f64 = 1e12;
        let pb = n.powf(-0.9);
        let rho = rho_adversarial_query_blocks(&[(1.0, 0.25), (1.0, pb)], 1.0 / 3.0);
        let asymptote = (2.0f64 / 3.0).ln() / (0.25f64).ln();
        assert!(
            rho >= asymptote - 1e-6 && rho < asymptote + 0.02,
            "rho={rho} asymptote={asymptote}"
        );
        // And the Chosen Path comparison the paper makes: 0.528.
        let rho_cp = rho_chosen_path(1.0 / 3.0, 1.0 / 8.0);
        assert!((rho_cp - 0.528).abs() < 0.001, "rho_cp={rho_cp}");
        assert!(rho < rho_cp);
    }

    #[test]
    fn sec71_second_example_rho_tends_to_zero() {
        // b1 = 2/3 forces paths through the n^{-0.9} bits: ρ → 0.
        for &n in &[1e6f64, 1e9, 1e12] {
            let pb = n.powf(-0.9);
            let rho = rho_adversarial_query_blocks(&[(1.0, 0.25), (1.0, pb)], 2.0 / 3.0);
            // ρ ≈ ln 3 / (0.9 ln n).
            let approx = 3f64.ln() / (0.9 * n.ln());
            assert!(rho < 2.5 * approx, "n={n}: rho={rho} approx={approx}");
        }
        // Chosen Path in the same setting: log(2/3)/log(1/8) ≈ 0.195.
        let rho_cp = rho_chosen_path(2.0 / 3.0, 1.0 / 8.0);
        assert!((rho_cp - 0.195).abs() < 0.001);
    }

    #[test]
    fn adversarial_space_exponent_basics() {
        let profile = BernoulliProfile::uniform(50, 0.25).unwrap();
        // Uniform: Σ p^{1+ρ} = b1 Σ p ⇒ p^ρ = b1 — same closed form.
        let rho = rho_adversarial_space(&profile, 1.0 / 3.0);
        let expect = (1.0f64 / 3.0).ln() / 0.25f64.ln();
        assert!((rho - expect).abs() < EPS);
    }

    #[test]
    fn chosen_path_closed_form() {
        assert!((rho_chosen_path(0.5, 0.25) - 0.5).abs() < EPS);
        assert_eq!(rho_chosen_path(1.0, 0.5), 0.0);
        // Strictly between 0 and 1 for 0 < b2 < b1 < 1.
        let r = rho_chosen_path(0.6, 0.1);
        assert!(r > 0.0 && r < 1.0);
    }

    #[test]
    fn minhash_vs_chosen_path_on_equal_weights() {
        // For equal-weight sets, B = 2J/(1+J); Chosen Path's ρ beats
        // MinHash's (strict improvement claimed in [18] and §1.2).
        let j1 = 0.5;
        let j2 = 0.1;
        let b1 = 2.0 * j1 / (1.0 + j1);
        let b2 = 2.0 * j2 / (1.0 + j2);
        assert!(rho_chosen_path(b1, b2) < rho_minhash(j1, j2));
    }

    #[test]
    fn prefix_filter_exponent_matches_paper() {
        let n = 1usize << 40;
        // p_min = n^{-0.9} ⇒ exponent 0.1 (paper: "Ω(n^{0.1}) time").
        let pmin = (n as f64).powf(-0.9);
        assert!((prefix_filter_exponent(pmin, n) - 0.1).abs() < 1e-9);
        // Θ(1) probabilities ⇒ exponent → 1 (Figure 1 caption):
        // 1 + log_n(1/4) = 1 − 2/40 = 0.95 at n = 2^40.
        assert!((prefix_filter_exponent(0.25, n) - 0.95).abs() < 1e-9);
        // Extremely rare items ⇒ exponent 0.
        assert_eq!(prefix_filter_exponent((n as f64).powf(-2.0), n), 0.0);
    }

    #[test]
    fn profile_and_blocks_agree() {
        let profile = BernoulliProfile::two_block(100, 0.3, 0.3 / 8.0).unwrap();
        let via_profile = rho_correlated(&profile, 0.5);
        let via_blocks = rho_correlated_blocks(&[(50.0, 0.3), (50.0, 0.3 / 8.0)], 0.5);
        assert!((via_profile - via_blocks).abs() < EPS);
    }

    #[test]
    #[should_panic(expected = "outside (0,1)")]
    fn rejects_invalid_block_probability() {
        rho_correlated_blocks(&[(1.0, 1.5)], 0.5);
    }
}
