//! # skewsearch-rho
//!
//! The "ρ calculus" of the paper: every running-time exponent in
//! "Set Similarity Search for Skewed Data" is the root of a monotone implicit
//! equation, and this crate solves them all.
//!
//! * Theorem 1 (correlated queries): `Σ_i p_i^{1+ρ} / p̂_i = Σ_i p_i` with
//!   `p̂_i = p_i(1−α) + α` — [`rho_correlated`];
//! * Theorem 2 (adversarial queries): per-query
//!   `Σ_{i∈q} p_i^{ρ(q)} = b₁ |q|` — [`rho_adversarial_query`] — and
//!   preprocessing/space `Σ_i p_i^{1+ρᵤ} = b₁ Σ_i p_i` —
//!   [`rho_adversarial_space`];
//! * Chosen Path \[18\]: closed form `ρ = log b₁ / log b₂` —
//!   [`rho_chosen_path`];
//! * MinHash \[13, 14\]: `ρ = log j₁ / log j₂` on Jaccard thresholds —
//!   [`rho_minhash`];
//! * prefix filtering \[11\]: candidate-count exponent
//!   `max(0, 1 + log_n min_i p_i)` — [`prefix_filter_exponent`];
//! * the expected-similarity model used by Figure 1 and the baselines'
//!   planners — [`model`].
//!
//! All implicit equations are solved by bracketed bisection on provably
//! monotone residuals ([`solve`]), so results carry ~1e-12 accuracy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exponents;
pub mod model;
pub mod solve;

pub use exponents::{
    prefix_filter_exponent, rho_adversarial_query, rho_adversarial_query_blocks,
    rho_adversarial_space, rho_chosen_path, rho_correlated, rho_correlated_blocks, rho_minhash,
};
pub use model::{expected_b1_correlated, expected_b2_independent, expected_similarities};
