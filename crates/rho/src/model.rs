//! Expected-similarity model for α-correlated and independent pairs.
//!
//! Used by Figure 1 and by the baseline planners: when comparing against
//! Chosen Path or MinHash, the paper solves the `(b₁, b₂)`-approximate
//! problem "where b₁ is the expected similarity between the correlated
//! points and b₂ is the expected similarity between the query and an
//! uncorrelated point" (§7.2).
//!
//! For `x ~ D`, `q ~ D_α(x)` and `x' ~ D` independent (Lemma 10's
//! calculations):
//!
//! ```text
//! E|x ∩ q|  = Σ_i p_i (α + (1−α) p_i)
//! E|x' ∩ q| = Σ_i p_i²
//! E|x| = E|q| = Σ_i p_i
//! ```
//!
//! and with `Σ p_i = C log n` large, weights concentrate, so
//! `B(x, q) ≈ E|x∩q| / Σp` up to `1 ± o(1)` factors — the same
//! approximation the paper uses when instantiating Chosen Path.

use crate::exponents::blocks_from_ps;
use skewsearch_datagen::BernoulliProfile;

/// Expected Braun-Blanquet similarity of an α-correlated pair,
/// `b₁ ≈ Σ p(α + (1−α)p) / Σ p`, from block-weighted probabilities.
pub fn expected_b1_correlated_blocks(blocks: &[(f64, f64)], alpha: f64) -> f64 {
    assert!((0.0..=1.0).contains(&alpha));
    let num: f64 = blocks
        .iter()
        .map(|&(w, p)| w * p * (alpha + (1.0 - alpha) * p))
        .sum();
    let den: f64 = blocks.iter().map(|&(w, p)| w * p).sum();
    num / den
}

/// Expected Braun-Blanquet similarity of an independent pair,
/// `b₂ ≈ Σ p² / Σ p`, from block-weighted probabilities.
pub fn expected_b2_independent_blocks(blocks: &[(f64, f64)]) -> f64 {
    let num: f64 = blocks.iter().map(|&(w, p)| w * p * p).sum();
    let den: f64 = blocks.iter().map(|&(w, p)| w * p).sum();
    num / den
}

/// [`expected_b1_correlated_blocks`] for a full profile.
pub fn expected_b1_correlated(profile: &BernoulliProfile, alpha: f64) -> f64 {
    expected_b1_correlated_blocks(&blocks_from_ps(profile.ps()), alpha)
}

/// [`expected_b2_independent_blocks`] for a full profile.
pub fn expected_b2_independent(profile: &BernoulliProfile) -> f64 {
    expected_b2_independent_blocks(&blocks_from_ps(profile.ps()))
}

/// Both expected similarities `(b₁, b₂)` for a profile at correlation `α`.
pub fn expected_similarities(profile: &BernoulliProfile, alpha: f64) -> (f64, f64) {
    (
        expected_b1_correlated(profile, alpha),
        expected_b2_independent(profile),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use skewsearch_datagen::{correlated_query, Dataset, VectorSampler};
    use skewsearch_sets::similarity;

    #[test]
    fn b1_interpolates_between_b2_and_one() {
        let profile = BernoulliProfile::two_block(100, 0.3, 0.05).unwrap();
        let b2 = expected_b2_independent(&profile);
        assert!((expected_b1_correlated(&profile, 0.0) - b2).abs() < 1e-12);
        assert!((expected_b1_correlated(&profile, 1.0) - 1.0).abs() < 1e-12);
        let mid = expected_b1_correlated(&profile, 0.5);
        assert!(b2 < mid && mid < 1.0);
    }

    #[test]
    fn b2_formula_uniform() {
        let profile = BernoulliProfile::uniform(40, 0.2).unwrap();
        assert!((expected_b2_independent(&profile) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn model_matches_simulation() {
        // Empirical mean similarity of correlated/independent pairs should
        // track the model within sampling noise.
        let profile = BernoulliProfile::two_block(3000, 0.05, 0.01).unwrap();
        let alpha = 0.6;
        let (b1, b2) = expected_similarities(&profile, alpha);
        let sampler = VectorSampler::new(&profile);
        let mut rng = StdRng::seed_from_u64(17);
        let trials = 800;
        let mut s1 = 0.0;
        let mut s2 = 0.0;
        for _ in 0..trials {
            let x = sampler.sample(&mut rng);
            let q = correlated_query(&x, &profile, alpha, &mut rng);
            let z = sampler.sample(&mut rng);
            s1 += similarity::braun_blanquet(&x, &q);
            s2 += similarity::braun_blanquet(&z, &q);
        }
        let (e1, e2) = (s1 / trials as f64, s2 / trials as f64);
        // The model ignores max(|x|,|q|) fluctuation: tolerate a few percent.
        assert!((e1 - b1).abs() < 0.05, "sim={e1} model={b1}");
        assert!((e2 - b2).abs() < 0.02, "sim={e2} model={b2}");
    }

    #[test]
    fn empirical_frequencies_plug_in() {
        // The model accepts empirical profiles too (via Dataset freqs).
        let profile = BernoulliProfile::uniform(200, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let ds = Dataset::generate(&profile, 2000, &mut rng);
        let emp = BernoulliProfile::new(
            ds.empirical_frequencies()
                .into_iter()
                .map(|p| p.clamp(1e-9, 1.0 - 1e-9))
                .collect(),
        )
        .unwrap();
        let b2 = expected_b2_independent(&emp);
        assert!((b2 - 0.1).abs() < 0.01, "b2={b2}");
    }
}
