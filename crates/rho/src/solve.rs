//! Bracketed bisection for monotone residuals.
//!
//! Every exponent equation in the paper has the form `f(ρ) = 0` for an `f`
//! that is *strictly decreasing* in `ρ` (each term is `c · p^ρ` with
//! `0 < p < 1`, minus a constant). Bisection on a verified bracket is then
//! exact up to floating-point resolution and immune to the flat-derivative
//! pathologies that would trip Newton's method near `p → 1`.

/// Result accuracy of the solvers (absolute, in ρ units).
pub const TOL: f64 = 1e-12;

/// Maximum bracket the root search will expand to.
pub const RHO_MAX: f64 = 1e6;

/// Finds the root of a strictly decreasing `f` on `[lo, ∞)`, expanding the
/// upper bracket geometrically from `hi0`.
///
/// # Panics
/// Panics if `f(lo) < 0` (no root at or above `lo`) or if no sign change is
/// found below [`RHO_MAX`].
pub fn root_decreasing(f: impl Fn(f64) -> f64, lo: f64, hi0: f64) -> f64 {
    let flo = f(lo);
    assert!(
        flo >= -TOL,
        "residual already negative at lower bracket: f({lo}) = {flo}"
    );
    if flo.abs() <= TOL {
        return lo;
    }
    let mut hi = hi0.max(lo + TOL);
    while f(hi) > 0.0 {
        hi *= 2.0;
        assert!(
            hi <= RHO_MAX,
            "no sign change found below {RHO_MAX}; equation has no root"
        );
    }
    bisect(f, lo, hi)
}

/// Plain bisection on a verified bracket `f(lo) ≥ 0 ≥ f(hi)` of a decreasing
/// function.
pub fn bisect(f: impl Fn(f64) -> f64, mut lo: f64, mut hi: f64) -> f64 {
    debug_assert!(lo <= hi);
    // 200 halvings take any bracket below f64 resolution; exit early on TOL.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if hi - lo < TOL {
            return mid;
        }
        if f(mid) >= 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_linear() {
        // f(x) = 1 - x, root at 1.
        let r = root_decreasing(|x| 1.0 - x, 0.0, 0.5);
        assert!((r - 1.0).abs() < 1e-10);
    }

    #[test]
    fn solves_exponential() {
        // f(ρ) = 0.25^ρ - 0.5, root at 0.5.
        let r = root_decreasing(|r| 0.25f64.powf(r) - 0.5, 0.0, 1.0);
        assert!((r - 0.5).abs() < 1e-10);
    }

    #[test]
    fn root_at_lower_bracket() {
        let r = root_decreasing(|x| -x, 0.0, 1.0);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn expands_bracket() {
        // Root at 100, initial hi = 1.
        let r = root_decreasing(|x| 100.0 - x, 0.0, 1.0);
        assert!((r - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "already negative")]
    fn rejects_negative_start() {
        root_decreasing(|x| -1.0 - x, 0.0, 1.0);
    }

    #[test]
    fn bisect_on_given_bracket() {
        let r = bisect(|x| 2.0 - x * x, 0.0, 10.0);
        assert!((r - 2f64.sqrt()).abs() < 1e-10);
    }
}
