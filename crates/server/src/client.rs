//! A small blocking client for the query service.
//!
//! This is the *test harness's* view of the server: every helper decodes
//! the typed wire format back into core types, so the equivalence suite can
//! compare a served answer against a direct in-process call with
//! `assert_eq!`. [`ServiceClient::raw_request`] additionally returns the
//! exact response bytes, which is what the golden-file fixtures pin.
//!
//! One client owns one keep-alive connection. If the server answers
//! `Connection: close` (overload rejections, protocol errors), the client
//! transparently reconnects on the next request — the typed error from the
//! closed exchange is still surfaced to the caller.

use crate::json::Json;
use crate::wire::{dims_to_json, matches_from_json, ErrorKind, ServiceError};
use skewsearch_core::{SetId, TaggedMatch};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, read, or write).
    Io(std::io::Error),
    /// The server answered with a typed error from the wire taxonomy.
    Service(ServiceError),
    /// The server's bytes did not decode as the expected wire format.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Service(e) => write!(f, "service error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One full response exchange, decoded just enough to route on status.
#[derive(Clone, Debug)]
pub struct RawResponse {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes (exactly `Content-Length` long).
    pub body: Vec<u8>,
    /// The exact bytes the server sent, head and body, unmodified.
    pub bytes: Vec<u8>,
    /// Whether the server announced `Connection: close`.
    pub close: bool,
}

/// A blocking keep-alive client for one server address.
pub struct ServiceClient {
    addr: SocketAddr,
    conn: Option<BufReader<TcpStream>>,
}

impl ServiceClient {
    /// Connects to `addr` eagerly (so connection refusal surfaces here, not
    /// on the first request).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<ServiceClient> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other("address resolved to nothing"))?;
        let mut client = ServiceClient { addr, conn: None };
        client.reconnect()?;
        Ok(client)
    }

    fn reconnect(&mut self) -> std::io::Result<()> {
        self.conn = Some(BufReader::new(TcpStream::connect(self.addr)?));
        Ok(())
    }

    /// Sends one request and reads the full response. The returned
    /// [`RawResponse`] carries the exact on-wire bytes; no status routing is
    /// applied — a `429` or `400` is returned as data, not as an error.
    pub fn raw_request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<RawResponse, ClientError> {
        if self.conn.is_none() {
            self.reconnect()?;
        }
        let Some(reader) = self.conn.as_mut() else {
            return Err(ClientError::Protocol("not connected".to_string()));
        };
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: skewsearch\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        let mut request = head.into_bytes();
        request.extend_from_slice(body);
        reader.get_mut().write_all(&request)?;
        let response = read_response(reader);
        if response.as_ref().map_or(true, |r| r.close) {
            // Either the server said close or the read failed; this
            // connection is done. The next request reconnects.
            self.conn = None;
        }
        response
    }

    fn exchange(&mut self, path: &str, body: &Json) -> Result<Vec<String>, ClientError> {
        let raw = self.raw_request("POST", path, body.encode().as_bytes())?;
        decode_lines(&raw)
    }

    fn request_json(&mut self, path: &str, body: &Json) -> Result<Json, ClientError> {
        let lines = self.exchange(path, body)?;
        let [line] = lines.as_slice() else {
            return Err(ClientError::Protocol(format!(
                "expected one response line, got {}",
                lines.len()
            )));
        };
        Json::parse(line).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    fn get_json(&mut self, path: &str) -> Result<Json, ClientError> {
        let raw = self.raw_request("GET", path, b"")?;
        let lines = decode_lines(&raw)?;
        let [line] = lines.as_slice() else {
            return Err(ClientError::Protocol(format!(
                "expected one response line, got {}",
                lines.len()
            )));
        };
        Json::parse(line).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// `POST /search`: all matches for one query, in the server's
    /// first-discovery order, decoded bit-exactly.
    pub fn search(
        &mut self,
        dims: &[u32],
        deadline_ms: Option<u64>,
    ) -> Result<Vec<TaggedMatch>, ClientError> {
        let mut members = vec![("dims", dims_to_json(dims))];
        if let Some(ms) = deadline_ms {
            members.push(("deadline_ms", Json::Num(ms)));
        }
        let response = self.request_json("/search", &Json::obj(members))?;
        let matches = response
            .get("matches")
            .ok_or_else(|| ClientError::Protocol("response missing \"matches\"".to_string()))?;
        matches_from_json(matches).map_err(ClientError::Protocol)
    }

    /// `POST /search_batch`: one match list per query, order-aligned with
    /// the request.
    pub fn search_batch(
        &mut self,
        queries: &[Vec<u32>],
        deadline_ms: Option<u64>,
    ) -> Result<Vec<Vec<TaggedMatch>>, ClientError> {
        let encoded = Json::Arr(queries.iter().map(|q| dims_to_json(q)).collect());
        let mut members = vec![("queries", encoded)];
        if let Some(ms) = deadline_ms {
            members.push(("deadline_ms", Json::Num(ms)));
        }
        let lines = self.exchange("/search_batch", &Json::obj(members))?;
        if lines.len() != queries.len() {
            return Err(ClientError::Protocol(format!(
                "expected {} response lines, got {}",
                queries.len(),
                lines.len()
            )));
        }
        let mut out = Vec::with_capacity(lines.len());
        for (i, line) in lines.iter().enumerate() {
            let parsed = Json::parse(line).map_err(|e| ClientError::Protocol(e.to_string()))?;
            let idx = parsed.get("query").and_then(Json::as_u64);
            if idx != Some(i as u64) {
                return Err(ClientError::Protocol(format!(
                    "response line {i} tagged with query {idx:?}"
                )));
            }
            let matches = parsed
                .get("matches")
                .ok_or_else(|| ClientError::Protocol("line missing \"matches\"".to_string()))?;
            out.push(matches_from_json(matches).map_err(ClientError::Protocol)?);
        }
        Ok(out)
    }

    /// `POST /insert`: adds a set, returning its assigned id.
    pub fn insert(&mut self, dims: &[u32]) -> Result<SetId, ClientError> {
        let response =
            self.request_json("/insert", &Json::obj(vec![("dims", dims_to_json(dims))]))?;
        let id = response
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("response missing integer \"id\"".to_string()))?;
        usize::try_from(id).map_err(|_| ClientError::Protocol("id out of range".to_string()))
    }

    /// `POST /remove`: removes a set by id; `Ok(false)` when it was absent.
    pub fn remove(&mut self, id: SetId) -> Result<bool, ClientError> {
        let response =
            self.request_json("/remove", &Json::obj(vec![("id", Json::Num(id as u64))]))?;
        response
            .get("removed")
            .and_then(Json::as_bool)
            .ok_or_else(|| ClientError::Protocol("response missing bool \"removed\"".to_string()))
    }

    /// `GET /healthz` as parsed JSON.
    pub fn healthz(&mut self) -> Result<Json, ClientError> {
        self.get_json("/healthz")
    }

    /// `GET /stats` as parsed JSON.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.get_json("/stats")
    }
}

/// Routes a raw response: `200` yields its NDJSON lines; anything else
/// decodes the typed error body into [`ClientError::Service`].
fn decode_lines(raw: &RawResponse) -> Result<Vec<String>, ClientError> {
    let body = std::str::from_utf8(&raw.body)
        .map_err(|_| ClientError::Protocol("response body is not UTF-8".to_string()))?;
    if raw.status == 200 {
        return Ok(body.lines().map(str::to_string).collect());
    }
    let parsed = Json::parse(body.trim_end_matches('\n'))
        .map_err(|e| ClientError::Protocol(format!("undecodable error body: {e}")))?;
    let err = parsed
        .get("error")
        .ok_or_else(|| ClientError::Protocol("error body missing \"error\"".to_string()))?;
    let kind = err
        .get("kind")
        .and_then(Json::as_str)
        .and_then(ErrorKind::from_wire)
        .ok_or_else(|| ClientError::Protocol("error body has no known \"kind\"".to_string()))?;
    let detail = err.get("detail").and_then(Json::as_str).unwrap_or_default();
    Err(ClientError::Service(ServiceError::new(kind, detail)))
}

/// Reads one full HTTP/1.1 response, capturing the exact bytes.
fn read_response(reader: &mut BufReader<TcpStream>) -> Result<RawResponse, ClientError> {
    let mut bytes = Vec::new();
    let mut status: Option<u16> = None;
    let mut content_length: usize = 0;
    let mut close = false;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "connection closed before response head".to_string(),
            ));
        }
        bytes.extend_from_slice(line.as_bytes());
        let trimmed = line.trim_end_matches(['\r', '\n']);
        match status {
            None => {
                let mut parts = trimmed.split(' ');
                let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
                    return Err(ClientError::Protocol(format!(
                        "bad status line {trimmed:?}"
                    )));
                };
                if !version.starts_with("HTTP/1.") {
                    return Err(ClientError::Protocol(format!(
                        "bad status line {trimmed:?}"
                    )));
                }
                let code: u16 = code
                    .parse()
                    .map_err(|_| ClientError::Protocol(format!("bad status code {code:?}")))?;
                status = Some(code);
            }
            Some(code) => {
                if trimmed.is_empty() {
                    let mut body = vec![0u8; content_length];
                    reader.read_exact(&mut body)?;
                    bytes.extend_from_slice(&body);
                    return Ok(RawResponse {
                        status: code,
                        body,
                        bytes,
                        close,
                    });
                }
                let Some((name, value)) = trimmed.split_once(':') else {
                    return Err(ClientError::Protocol(format!(
                        "bad header line {trimmed:?}"
                    )));
                };
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.parse().map_err(|_| {
                        ClientError::Protocol(format!("bad content-length {value:?}"))
                    })?;
                } else if name.eq_ignore_ascii_case("connection") {
                    close = value.eq_ignore_ascii_case("close");
                }
            }
        }
    }
}
