//! A lock-free, log-bucketed latency histogram.
//!
//! Sixteen linear sub-buckets per power of two (HdrHistogram's layout at
//! low resolution): bucket widths grow geometrically, so the whole
//! nanosecond-to-minutes range fits in 976 counters while any quantile
//! estimate is off by at most one sub-bucket width — a ≤ 6.25% relative
//! overestimate, ample for p50/p99 SLO tracking (`docs/SERVICE.md` §SLO
//! methodology).
//!
//! Recording is one atomic increment on a plain array — no locks, no
//! allocation — so worker threads on the request hot path never contend.
//! Counters use relaxed atomics throughout: each counter is independent,
//! nothing is ordered *by* a count, and a `/stats` snapshot taken while
//! requests are in flight is allowed to tear between buckets (it is a
//! monitoring read, not a consistency point).

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per octave, as a power of two.
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count: one linear group for values `< SUB`, then one group
/// of `SUB` buckets per remaining octave of the `u64` range (60 octaves for
/// `SUB_BITS = 4`), 976 buckets in all.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// Lock-free latency histogram over `u64` values (nanoseconds by
/// convention; the histogram itself is unit-agnostic and never reads a
/// clock).
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    max: AtomicU64,
}

/// A point-in-time copy of a [`LatencyHistogram`], cheap to query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total recorded values.
    pub count: u64,
    /// Largest recorded value (exact, not bucketed).
    pub max: u64,
    /// `(bucket lower bound, count)` for every non-empty bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for a value: identity below `SUB`, then
    /// `(octave, top SUB_BITS mantissa bits)`.
    fn index(value: u64) -> usize {
        if value < SUB as u64 {
            return value as usize;
        }
        let exp = 63 - value.leading_zeros(); // >= SUB_BITS
        let group = (exp - SUB_BITS + 1) as usize;
        let sub = ((value >> (exp - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        group * SUB + sub
    }

    /// Inclusive lower bound of bucket `idx`.
    fn lower_bound(idx: usize) -> u64 {
        if idx < SUB {
            return idx as u64;
        }
        let group = (idx / SUB) as u32;
        let sub = (idx % SUB) as u64;
        (SUB as u64 + sub) << (group - 1)
    }

    /// Exclusive upper bound of bucket `idx` (`u64::MAX` for the last).
    fn upper_bound(idx: usize) -> u64 {
        if idx + 1 < BUCKETS {
            Self::lower_bound(idx + 1)
        } else {
            u64::MAX
        }
    }

    /// Records one value. Lock-free; safe from any thread.
    pub fn record(&self, value: u64) {
        // Relaxed: counters are independent tallies — no other memory is
        // published by these writes, and snapshot readers tolerate tearing.
        self.buckets[Self::index(value)].fetch_add(1, Ordering::Relaxed);
        // Relaxed: same monitoring-only tally as above.
        self.count.fetch_add(1, Ordering::Relaxed);
        // Relaxed: fetch_max is atomic per-cell; monitoring-only.
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        // Relaxed: monitoring-only read of an independent tally.
        self.count.load(Ordering::Relaxed)
    }

    /// An upper-edge estimate of the `q`-quantile (`0.0 ..= 1.0`): the
    /// exclusive upper bound of the bucket containing the `⌈q·count⌉`-th
    /// smallest recorded value — at most one sub-bucket width (≤ 6.25%)
    /// above the true quantile. Returns 0 when nothing was recorded.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// Copies the live counters into an immutable snapshot. Concurrent
    /// `record` calls may or may not be included — the snapshot is a
    /// monitoring view, not a barrier.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut total = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            // Relaxed: monitoring-only read; tearing across buckets is
            // acceptable by the snapshot contract.
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((Self::lower_bound(idx), n));
                total += n;
            }
        }
        HistogramSnapshot {
            count: total,
            // Relaxed: monitoring-only read.
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl HistogramSnapshot {
    /// Quantile over the snapshot — see [`LatencyHistogram::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(lower, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                // Upper edge of this bucket: the next bucket's lower bound.
                let idx = LatencyHistogram::index(lower);
                return LatencyHistogram::upper_bound(idx).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_tile_the_u64_range() {
        // Every bucket's lower bound maps back to its own index, bounds
        // ascend strictly, and consecutive buckets are adjacent.
        for idx in 0..BUCKETS {
            let lo = LatencyHistogram::lower_bound(idx);
            assert_eq!(LatencyHistogram::index(lo), idx, "idx {idx} lo {lo}");
            let hi = LatencyHistogram::upper_bound(idx);
            assert!(lo < hi);
            if hi != u64::MAX {
                assert_eq!(LatencyHistogram::index(hi), idx + 1);
                assert_eq!(LatencyHistogram::index(hi - 1), idx);
            }
        }
        assert_eq!(LatencyHistogram::index(u64::MAX), BUCKETS - 1);
        assert_eq!(LatencyHistogram::index(0), 0);
    }

    #[test]
    fn quantiles_bound_the_true_value_from_above_within_a_sub_bucket() {
        let h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, truth) in [(0.5, 5_000u64), (0.9, 9_000), (0.99, 9_900)] {
            let est = h.quantile(q);
            assert!(est >= truth, "q={q}: {est} < {truth}");
            // Upper-edge estimate: within one sub-bucket width.
            assert!(
                (est as f64) <= truth as f64 * (1.0 + 1.0 / SUB as f64) + 1.0,
                "q={q}: {est} too far above {truth}"
            );
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.snapshot().max, 10_000);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.max, 0);
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let threads = 8;
        let per = 10_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..per {
                        h.record(t * per + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), threads * per);
        assert_eq!(h.snapshot().count, threads * per);
    }

    #[test]
    fn max_is_exact_not_bucketed() {
        let h = LatencyHistogram::new();
        h.record(1_000_003);
        assert_eq!(h.snapshot().max, 1_000_003);
        // The p100 estimate is clamped to the exact max.
        assert_eq!(h.quantile(1.0), 1_000_003);
    }
}
