//! A minimal, dependency-free JSON value for the service wire format.
//!
//! The protocol (`docs/SERVICE.md`) needs exactly five shapes: objects,
//! arrays, strings, booleans, and **non-negative integers** — similarities
//! travel as IEEE-754 bit patterns in hex strings precisely so that no
//! float ever crosses the wire (float formatting/parsing is the classic
//! source of byte-level drift between a served answer and a direct call).
//! This module therefore rejects fractional and negative numbers outright:
//! a smaller grammar is a stricter protocol.
//!
//! Serialization is deterministic: object members keep insertion order and
//! strings escape the same way on every platform — which is what lets the
//! golden-file tests (`tests/service_wire_golden.rs`) pin exact response
//! bytes.

/// A parsed JSON value (see the module docs for the supported grammar).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the only number shape the protocol uses).
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members keep insertion order for deterministic encoding.
    Obj(Vec<(String, Json)>),
}

/// Where and why parsing failed. `offset` is a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for an object literal.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Member lookup on an object; `None` for missing keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer payload, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to the canonical compact form (no whitespace, members in
    /// insertion order) — the byte encoding the golden fixtures pin.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                out.push_str(&n.to_string());
            }
            Json::Str(s) => encode_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_str(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one complete JSON value; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the value"));
        }
        Ok(value)
    }
}

fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xF;
                    out.push(char::from_digit(digit, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting depth cap: the protocol never nests past ~4 levels, and a bound
/// turns adversarial `[[[[…]]]]` bodies into a typed error instead of a
/// stack overflow.
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("value nested too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'0'..=b'9') => self.number(),
            Some(b'-') => Err(self.err("negative numbers are not part of the protocol")),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("fractional numbers are not part of the protocol"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.len() > 1 && text.starts_with('0') {
            return Err(self.err("numbers must not have leading zeros"));
        }
        let n: u64 = text
            .parse()
            .map_err(|_| self.err("number does not fit in 64 bits"))?;
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Only Basic Multilingual Plane escapes: the
                            // protocol's strings are ASCII in practice, and
                            // surrogate-pair recombination is complexity the
                            // server is better off rejecting.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("escape is not a scalar value"))?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Advance one full UTF-8 scalar (the input is a &str, so
                    // the boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let step = match rest[0] {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let taken = &rest[..step.min(rest.len())];
                    match std::str::from_utf8(taken) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                    self.pos += step;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected four hex digits")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) {
        let v = Json::parse(text).unwrap();
        assert_eq!(v.encode(), text);
    }

    #[test]
    fn roundtrips_canonical_forms() {
        roundtrip("null");
        roundtrip("true");
        roundtrip("false");
        roundtrip("0");
        roundtrip("18446744073709551615");
        roundtrip(r#""hello""#);
        roundtrip(r#"[1,2,3]"#);
        roundtrip(r#"{"a":1,"b":[true,null],"c":{"d":"x"}}"#);
        roundtrip(r#""quote \" backslash \\ newline \n""#);
    }

    #[test]
    fn object_member_order_is_preserved() {
        let v = Json::parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(v.encode(), r#"{"z":1,"a":2}"#);
        assert_eq!(v.get("z"), Some(&Json::Num(1)));
        assert_eq!(v.get("a"), Some(&Json::Num(2)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn accepts_whitespace_and_escapes() {
        let v = Json::parse(" { \"k\" : [ 1 , \"\\u0041\" ] } ").unwrap();
        assert_eq!(v.encode(), r#"{"k":[1,"A"]}"#);
    }

    #[test]
    fn rejects_what_the_protocol_never_sends() {
        for bad in [
            "",
            "-1",
            "1.5",
            "1e3",
            "01",
            "nul",
            "[1,]",
            "{\"a\"}",
            "\"unterminated",
            "{\"a\":1} trailing",
            "\u{1}",
            "99999999999999999999999999",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_deep_nesting_without_overflow() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn control_characters_encode_as_escapes() {
        let v = Json::Str("\u{1}\t".to_string());
        assert_eq!(v.encode(), r#""\u0001\t""#);
        assert_eq!(Json::parse(&v.encode()).unwrap(), v);
    }

    #[test]
    fn non_ascii_roundtrips() {
        let v = Json::Str("héllo → 世界".to_string());
        assert_eq!(Json::parse(&v.encode()).unwrap(), v);
    }
}
