//! A long-lived query service over any skewsearch index.
//!
//! This crate turns the in-process enumerate→probe→verify pipeline into a
//! network service without adding a single dependency: a hand-rolled
//! HTTP/1.1 front end over [`std::net::TcpListener`], line-delimited JSON
//! on the wire, and a test-first contract that a served answer is
//! **byte-identical** to the direct in-process call — for every index type,
//! under concurrent clients, with mutations interleaved
//! (`tests/service_equivalence.rs`).
//!
//! The service layers three guarantees on top of the core pipeline:
//!
//! - **Admission control** ([`Server`]): a bounded connection queue; when
//!   full, new connections get a typed `429 overloaded` in one round trip
//!   instead of queueing unboundedly.
//! - **Deadlines** ([`QueryService`]): a request's `deadline_ms` is checked
//!   between pipeline stages; expiry yields a typed `504
//!   deadline-exceeded` and never a partial answer.
//! - **Observability** ([`LatencyHistogram`]): a lock-free log-bucketed
//!   histogram behind `GET /stats`, feeding the p50/p99 numbers in
//!   `BENCHMARKS.md` §service.
//!
//! Wire format, endpoint grammar, and the error taxonomy are specified in
//! `docs/SERVICE.md` and pinned byte-for-byte by
//! `tests/service_wire_golden.rs`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod histogram;
pub mod json;
pub mod server;
pub mod service;
pub mod wire;

pub use client::{ClientError, RawResponse, ServiceClient};
pub use histogram::{HistogramSnapshot, LatencyHistogram};
pub use json::{Json, JsonError};
pub use server::{Server, ServerConfig, ServerHooks};
pub use service::{share, QueryService, Response, ServiceStats, SharedIndex};
pub use wire::{ErrorKind, ServiceError};
