//! The long-lived TCP front end: listener, bounded admission queue, worker
//! pool, and HTTP/1.1 framing.
//!
//! Hand-rolled over `std::net::TcpListener` — the same offline discipline
//! as `vendor/`: no async runtime, no HTTP dependency, just blocking
//! sockets and scoped-lifetime threads.
//!
//! **Admission control.** The unit of admission is the *connection*. One
//! acceptor thread pulls from the listener; an accepted connection either
//! enters the bounded queue (and is later picked up by a worker, which
//! serves its requests keep-alive until the peer hangs up) or — when the
//! queue is at capacity — is answered immediately with the typed
//! `429 overloaded` rejection and closed. Overload is therefore a fast,
//! bounded failure: the server never buffers unserved work beyond
//! [`ServerConfig::queue_capacity`], and clients learn to back off in one
//! round trip. `tests/service_robustness.rs` pins this deterministically by
//! parking every worker on a barrier (via [`ServerHooks::before_handle`]),
//! filling the queue (observed via [`ServerHooks::on_admitted`]), and
//! asserting the next connection is rejected — no sleeps anywhere.

use crate::service::{now, QueryService, Response, ServiceStats};
use crate::wire::{ErrorKind, ServiceError};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Sizing knobs for [`Server`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads serving admitted connections.
    pub workers: usize,
    /// Admission queue bound: connections accepted but not yet picked up by
    /// a worker. Beyond it, new connections get the typed `429`.
    pub queue_capacity: usize,
    /// Maximum request body size; larger bodies get a typed `400` and the
    /// connection is closed (the framing can no longer be trusted).
    pub max_body_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            max_body_bytes: 1 << 20,
        }
    }
}

/// Test/observability instrumentation points. All hooks default to `None`
/// and cost nothing when unset.
#[derive(Clone, Default)]
pub struct ServerHooks {
    /// Called by the acceptor after a connection is enqueued, with the
    /// queue depth it observed (including the new entry). The deterministic
    /// overload test uses this to know exactly when the queue is full.
    pub on_admitted: Option<Arc<dyn Fn(usize) + Send + Sync>>,
    /// Called by a worker after it claims a connection, before any request
    /// is read. The overload test parks workers here on a barrier.
    pub before_handle: Option<Arc<dyn Fn() + Send + Sync>>,
}

struct Inner {
    service: QueryService,
    config: ServerConfig,
    hooks: ServerHooks,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// A running query server: one acceptor thread plus
/// [`ServerConfig::workers`] worker threads. Lives until
/// [`Server::shutdown`].
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `service`.
    pub fn bind(
        addr: &str,
        service: QueryService,
        config: ServerConfig,
        hooks: ServerHooks,
    ) -> std::io::Result<Server> {
        Server::start(TcpListener::bind(addr)?, service, config, hooks)
    }

    /// Starts serving on an already-bound listener.
    pub fn start(
        listener: TcpListener,
        service: QueryService,
        config: ServerConfig,
        hooks: ServerHooks,
    ) -> std::io::Result<Server> {
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            service,
            config,
            hooks,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || acceptor_loop(&inner, &listener))
        };
        Ok(Server {
            inner,
            addr,
            acceptor,
            workers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served service handle (shared index + stats).
    pub fn service(&self) -> QueryService {
        self.inner.service.clone()
    }

    /// Stops accepting, drains the admission queue, and joins every thread.
    ///
    /// Keep-alive connections block their worker until the peer closes, so
    /// callers must drop their clients before shutting down (the in-repo
    /// tests do; `repro serve` is killed by signal instead).
    pub fn shutdown(self) {
        // Relaxed: the flag is a plain stop signal; the condvar notify and
        // the wake-up connection below provide the actual synchronization.
        self.inner.shutdown.store(true, Ordering::Relaxed);
        // Unblock the acceptor's `accept()` with a throwaway connection.
        drop(TcpStream::connect(self.addr));
        self.inner.available.notify_all();
        drop(self.acceptor.join());
        for worker in self.workers {
            drop(worker.join());
        }
    }
}

fn shutting_down(inner: &Inner) -> bool {
    // Relaxed: see `Server::shutdown` — a stop signal, not a data publish.
    inner.shutdown.load(Ordering::Relaxed)
}

fn acceptor_loop(inner: &Inner, listener: &TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shutting_down(inner) {
                    return;
                }
                continue;
            }
        };
        if shutting_down(inner) {
            return;
        }
        let admitted: Result<usize, TcpStream> = {
            // A poisoned queue lock is unreachable under the crate's
            // no-panic contract; recover rather than propagate.
            let mut queue = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            if queue.len() >= inner.config.queue_capacity {
                Err(stream)
            } else {
                queue.push_back(stream);
                Ok(queue.len())
            }
        };
        match admitted {
            Ok(depth) => {
                if let Some(hook) = &inner.hooks.on_admitted {
                    hook(depth);
                }
                inner.available.notify_one();
            }
            Err(stream) => reject_overloaded(inner, stream),
        }
    }
}

/// Writes the typed `429` to a connection the bounded queue could not take
/// and hangs up. One round trip, no request read: the client learns to back
/// off before spending anything on the body.
fn reject_overloaded(inner: &Inner, mut stream: TcpStream) {
    ServiceStats::bump(&inner.service.stats().rejected_overload);
    let mut response = Response::error(&ServiceError::new(
        ErrorKind::Overloaded,
        "admission queue full; retry with backoff",
    ));
    response.close = true;
    if stream.write_all(&response.http_bytes()).is_err() {
        ServiceStats::bump(&inner.service.stats().io_errors);
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let stream = {
            let mut queue = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shutting_down(inner) {
                    break None;
                }
                queue = inner
                    .available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(stream) = stream else { return };
        if let Some(hook) = &inner.hooks.before_handle {
            hook();
        }
        if handle_connection(inner, stream).is_err() {
            ServiceStats::bump(&inner.service.stats().io_errors);
        }
    }
}

/// One parsed request frame.
struct RequestFrame {
    method: String,
    path: String,
    body: Vec<u8>,
    close: bool,
}

enum FrameError {
    /// Clean end of stream between requests.
    Eof,
    /// Transport failure.
    Io(std::io::Error),
    /// The peer sent something that is not an HTTP/1.x request we serve.
    Malformed(&'static str),
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

fn handle_connection(inner: &Inner, mut stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    loop {
        let frame = match read_frame(&mut reader, inner.config.max_body_bytes) {
            Ok(frame) => frame,
            Err(FrameError::Eof) => return Ok(()),
            Err(FrameError::Io(e)) => return Err(e),
            Err(FrameError::Malformed(detail)) => {
                let mut response =
                    Response::error(&ServiceError::new(ErrorKind::BadRequest, detail));
                response.close = true;
                stream.write_all(&response.http_bytes())?;
                return Ok(());
            }
        };
        let started = now();
        let mut response = inner
            .service
            .handle(&frame.method, &frame.path, &frame.body, started);
        if frame.close {
            response.close = true;
        }
        stream.write_all(&response.http_bytes())?;
        if response.close {
            return Ok(());
        }
    }
}

/// Longest accepted head line (request line or header), in bytes.
const MAX_HEAD_LINE: u64 = 8 * 1024;
/// Most accepted headers per request.
const MAX_HEADERS: usize = 64;

fn read_head_line(reader: &mut BufReader<TcpStream>) -> Result<Option<String>, FrameError> {
    let mut line = String::new();
    let n = reader
        .by_ref()
        .take(MAX_HEAD_LINE)
        .read_line(&mut line)
        .map_err(|e| {
            if e.kind() == std::io::ErrorKind::InvalidData {
                FrameError::Malformed("head line is not UTF-8")
            } else {
                FrameError::Io(e)
            }
        })?;
    if n == 0 {
        return Ok(None);
    }
    if !line.ends_with('\n') {
        return Err(FrameError::Malformed("head line too long or truncated"));
    }
    while line.ends_with(['\n', '\r']) {
        line.pop();
    }
    Ok(Some(line))
}

fn read_frame(
    reader: &mut BufReader<TcpStream>,
    max_body: usize,
) -> Result<RequestFrame, FrameError> {
    let Some(request_line) = read_head_line(reader)? else {
        return Err(FrameError::Eof);
    };
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(FrameError::Malformed(
            "request line is not `METHOD PATH VERSION`",
        ));
    };
    let close_by_default = match version {
        "HTTP/1.1" => false,
        "HTTP/1.0" => true,
        _ => return Err(FrameError::Malformed("unsupported HTTP version")),
    };
    let mut content_length: usize = 0;
    let mut close = close_by_default;
    for _ in 0..=MAX_HEADERS {
        let Some(line) = read_head_line(reader)? else {
            return Err(FrameError::Malformed("connection closed inside headers"));
        };
        if line.is_empty() {
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body)?;
            return Ok(RequestFrame {
                method: method.to_string(),
                path: path.to_string(),
                body,
                close,
            });
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(FrameError::Malformed("header line has no colon"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let parsed: usize = value
                    .parse()
                    .map_err(|_| FrameError::Malformed("unparseable content-length"))?;
                if parsed > max_body {
                    return Err(FrameError::Malformed("request body too large"));
                }
                content_length = parsed;
            }
            "connection" => {
                if value.eq_ignore_ascii_case("close") {
                    close = true;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    close = false;
                }
            }
            _ => {}
        }
    }
    Err(FrameError::Malformed("too many headers"))
}
