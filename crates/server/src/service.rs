//! Request routing and handling: the part of the server that talks to the
//! index.
//!
//! A [`QueryService`] holds any [`SetSimilaritySearch`] structure behind
//! `Arc<RwLock<_>>` ([`SharedIndex`]): queries take the read lock (so
//! concurrent clients fan out freely — including the sharded index's own
//! internal fan-out, which runs under the same read guard), mutations take
//! the write lock. Handlers are transport-free — they map `(method, path,
//! body)` to a [`Response`] — which is what lets the equivalence tests
//! exercise them through real sockets while the golden-file tests pin the
//! exact bytes.
//!
//! **Deadlines.** A request's optional `deadline_ms` arms an absolute
//! expiry at request-read time. The expiry is checked at every pipeline
//! stage boundary: before planning (an already-expired deadline returns
//! [`ErrorKind::DeadlineExceeded`] *without any enumeration* — pinned via
//! `engine::enumeration_count` in `tests/service_deadline.rs`), and
//! throughout the probe via
//! [`SetSimilaritySearch::probe_plan_tagged_deadline`], which LSF indexes
//! poll between repetitions. Expired queries return the typed error and
//! **no partial answer**.
//!
//! This module is the crate's only wall-clock reader (the private `now`
//! helper below, the single audited clock site) and it
//! is on skewcheck's `wall-clock-free-query-path` watch list: every read
//! site carries an explicit justification, and the value can only decide
//! whether a probe finishes, never which candidates surface.

use crate::histogram::LatencyHistogram;
use crate::json::Json;
use crate::wire::{dims_from_json, matches_to_json, ErrorKind, ServiceError};
use skewsearch_core::{MutationError, SetSimilaritySearch};
use skewsearch_sets::SparseVec;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Any search structure, shareable across server workers: queries hold the
/// read lock, `insert`/`remove` the write lock.
pub type SharedIndex = Arc<RwLock<Box<dyn SetSimilaritySearch + Send + Sync>>>;

/// Wraps an owned index into a [`SharedIndex`].
pub fn share(index: impl SetSimilaritySearch + Send + Sync + 'static) -> SharedIndex {
    Arc::new(RwLock::new(Box::new(index)))
}

/// The crate's single wall-clock read site, used to arm request deadlines
/// and measure handler latency. Isolated in one function so skewcheck's
/// `wall-clock-free-query-path` allowance (and clippy's disallowed-methods
/// opt-out) cover exactly one line.
#[allow(clippy::disallowed_methods)]
pub(crate) fn now() -> Instant {
    // lint:allow(wall-clock-free-query-path, deadline arming and latency measurement only — the reading gates whether a probe finishes, never which candidates surface; the core query path stays clock-free by receiving an opaque expiry closure)
    Instant::now()
}

/// Monotonically increasing service counters plus the latency histogram.
/// All fields are lock-free; `/stats` renders them.
#[derive(Default)]
pub struct ServiceStats {
    /// Handler latency of admitted `/search` and `/search_batch` requests,
    /// in nanoseconds (deadline-exceeded answers included: tail latency
    /// SLOs are about what clients wait, not just what succeeds).
    pub latency: LatencyHistogram,
    /// Admitted `/search` requests.
    pub searches: AtomicU64,
    /// Admitted `/search_batch` requests.
    pub search_batches: AtomicU64,
    /// Admitted `/insert` requests.
    pub inserts: AtomicU64,
    /// Admitted `/remove` requests.
    pub removes: AtomicU64,
    /// Connections rejected by the bounded admission queue (the typed
    /// `429`); incremented by the acceptor, not by handlers.
    pub rejected_overload: AtomicU64,
    /// Requests answered `deadline-exceeded` (before or during the probe).
    pub rejected_deadline: AtomicU64,
    /// Requests answered with a `4xx` (malformed body, unknown path, wrong
    /// method).
    pub client_errors: AtomicU64,
    /// Connections dropped mid-request by I/O errors (monitoring only).
    pub io_errors: AtomicU64,
}

impl ServiceStats {
    /// Adds one to a counter.
    pub fn bump(counter: &AtomicU64) {
        // Relaxed: independent monitoring tally; no memory is published or
        // ordered by the count.
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads a counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        // Relaxed: monitoring-only read of an independent tally.
        counter.load(Ordering::Relaxed)
    }
}

/// One routed HTTP response: status line inputs plus a line-delimited JSON
/// body. [`Response::http_bytes`] is the single serialization site, so the
/// golden-file tests pin the exact on-wire shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// HTTP reason phrase.
    pub reason: &'static str,
    /// Body: one or more `\n`-terminated JSON lines.
    pub body: String,
    /// When set, the response carries `Connection: close` and the server
    /// hangs up after writing (used for overload rejections and protocol
    /// errors where request framing can no longer be trusted).
    pub close: bool,
}

impl Response {
    /// A `200 OK` with a single JSON line as body.
    pub fn ok(json: &Json) -> Response {
        let mut body = json.encode();
        body.push('\n');
        Response {
            status: 200,
            reason: "OK",
            body,
            close: false,
        }
    }

    /// A `200 OK` with one JSON line per element.
    pub fn ok_lines<'a>(lines: impl IntoIterator<Item = &'a Json>) -> Response {
        let mut body = String::new();
        for json in lines {
            body.push_str(&json.encode());
            body.push('\n');
        }
        Response {
            status: 200,
            reason: "OK",
            body,
            close: false,
        }
    }

    /// The typed error response for `err`.
    pub fn error(err: &ServiceError) -> Response {
        let mut body = err.to_json().encode();
        body.push('\n');
        Response {
            status: err.kind.status(),
            reason: err.kind.reason(),
            body,
            close: false,
        }
    }

    /// Serializes status line, headers, and body. Deliberately minimal and
    /// fully deterministic: no `Date`, no `Server` — every byte is a
    /// function of the response value, which is what the golden fixtures
    /// rely on.
    pub fn http_bytes(&self) -> Vec<u8> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/x-ndjson\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            self.reason,
            self.body.len(),
            if self.close { "close" } else { "keep-alive" },
        );
        let mut out = head.into_bytes();
        out.extend_from_slice(self.body.as_bytes());
        out
    }
}

/// Routes and executes requests against a [`SharedIndex`]. Cheap to clone;
/// clones share the index and the stats.
#[derive(Clone)]
pub struct QueryService {
    index: SharedIndex,
    stats: Arc<ServiceStats>,
}

impl QueryService {
    /// A service over `index` with fresh stats.
    pub fn new(index: SharedIndex) -> Self {
        QueryService {
            index,
            stats: Arc::new(ServiceStats::default()),
        }
    }

    /// The shared stats (the acceptor increments the overload counter
    /// through this same handle).
    pub fn stats(&self) -> Arc<ServiceStats> {
        Arc::clone(&self.stats)
    }

    /// The shared index handle.
    pub fn index(&self) -> SharedIndex {
        Arc::clone(&self.index)
    }

    /// Routes one request. `started` is when the server finished reading
    /// the request off the socket — deadlines and latency are measured from
    /// there. Never panics; malformed input maps to typed `4xx` responses.
    pub fn handle(&self, method: &str, path: &str, body: &[u8], started: Instant) -> Response {
        let result = match (method, path) {
            ("GET", "/healthz") => self.healthz(),
            ("GET", "/stats") => self.stats_json(),
            ("POST", "/search") => self.search(body, started),
            ("POST", "/search_batch") => self.search_batch(body, started),
            ("POST", "/insert") => self.insert(body),
            ("POST", "/remove") => self.remove(body),
            (_, "/healthz" | "/stats" | "/search" | "/search_batch" | "/insert" | "/remove") => {
                Err(ServiceError::new(
                    ErrorKind::MethodNotAllowed,
                    format!("{path} does not accept {method}"),
                ))
            }
            _ => Err(ServiceError::new(
                ErrorKind::NotFound,
                format!("unknown path {path}"),
            )),
        };
        if matches!(path, "/search" | "/search_batch") {
            let admitted = !matches!(
                &result,
                Err(e) if e.kind != ErrorKind::DeadlineExceeded
            );
            if admitted {
                self.stats
                    .latency
                    .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
            }
        }
        match result {
            Ok(response) => response,
            Err(err) => {
                if err.kind.status() < 500 && err.kind != ErrorKind::DeadlineExceeded {
                    ServiceStats::bump(&self.stats.client_errors);
                }
                Response::error(&err)
            }
        }
    }

    fn read_index(
        &self,
    ) -> std::sync::RwLockReadGuard<'_, Box<dyn SetSimilaritySearch + Send + Sync>> {
        // A poisoned lock means some thread panicked mid-operation; the
        // library contract (`no-panic-in-lib`) makes that unreachable, and
        // read access cannot observe torn state from other readers, so
        // recover the guard instead of propagating the poison.
        self.index.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_index(
        &self,
    ) -> std::sync::RwLockWriteGuard<'_, Box<dyn SetSimilaritySearch + Send + Sync>> {
        // See `read_index` on poisoning.
        self.index.write().unwrap_or_else(|e| e.into_inner())
    }

    fn healthz(&self) -> Result<Response, ServiceError> {
        let live = self.read_index().len();
        Ok(Response::ok(&Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("live_sets", Json::Num(live as u64)),
        ])))
    }

    fn stats_json(&self) -> Result<Response, ServiceError> {
        let (live, mutable) = {
            let guard = self.read_index();
            (guard.len(), guard.supports_mutation())
        };
        let s = &self.stats;
        let snap = s.latency.snapshot();
        let buckets = Json::Arr(
            snap.buckets
                .iter()
                .map(|&(lo, n)| Json::Arr(vec![Json::Num(lo), Json::Num(n)]))
                .collect(),
        );
        Ok(Response::ok(&Json::obj(vec![
            (
                "requests",
                Json::obj(vec![
                    ("search", Json::Num(ServiceStats::get(&s.searches))),
                    (
                        "search_batch",
                        Json::Num(ServiceStats::get(&s.search_batches)),
                    ),
                    ("insert", Json::Num(ServiceStats::get(&s.inserts))),
                    ("remove", Json::Num(ServiceStats::get(&s.removes))),
                ]),
            ),
            (
                "rejected",
                Json::obj(vec![
                    (
                        "overload",
                        Json::Num(ServiceStats::get(&s.rejected_overload)),
                    ),
                    (
                        "deadline",
                        Json::Num(ServiceStats::get(&s.rejected_deadline)),
                    ),
                    (
                        "client_error",
                        Json::Num(ServiceStats::get(&s.client_errors)),
                    ),
                ]),
            ),
            (
                "index",
                Json::obj(vec![
                    ("live_sets", Json::Num(live as u64)),
                    ("supports_mutation", Json::Bool(mutable)),
                ]),
            ),
            (
                "latency",
                Json::obj(vec![
                    ("count", Json::Num(snap.count)),
                    ("max_ns", Json::Num(snap.max)),
                    ("p50_ns", Json::Num(snap.quantile(0.50))),
                    ("p90_ns", Json::Num(snap.quantile(0.90))),
                    ("p99_ns", Json::Num(snap.quantile(0.99))),
                    ("buckets", buckets),
                ]),
            ),
        ])))
    }

    fn search(&self, body: &[u8], started: Instant) -> Result<Response, ServiceError> {
        let parsed = parse_body(body)?;
        let dims = require_dims(&parsed)?;
        let expired = arm_deadline(started, deadline_ms(&parsed)?);
        ServiceStats::bump(&self.stats.searches);
        let q = SparseVec::from_unsorted(dims);
        let matches = self.answer(&q, &expired)?;
        Ok(Response::ok(&Json::obj(vec![(
            "matches",
            matches_to_json(&matches),
        )])))
    }

    fn search_batch(&self, body: &[u8], started: Instant) -> Result<Response, ServiceError> {
        let parsed = parse_body(body)?;
        let queries = parsed
            .get("queries")
            .ok_or_else(|| {
                ServiceError::new(ErrorKind::BadRequest, "body must have a \"queries\" array")
            })?
            .as_arr()
            .ok_or_else(|| {
                ServiceError::new(ErrorKind::BadRequest, "\"queries\" must be an array")
            })?
            .iter()
            .map(dims_from_json)
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| ServiceError::new(ErrorKind::BadRequest, e))?;
        let expired = arm_deadline(started, deadline_ms(&parsed)?);
        ServiceStats::bump(&self.stats.search_batches);
        let mut lines = Vec::with_capacity(queries.len());
        for (i, dims) in queries.into_iter().enumerate() {
            let q = SparseVec::from_unsorted(dims);
            let matches = self.answer(&q, &expired)?;
            lines.push(Json::obj(vec![
                ("query", Json::Num(i as u64)),
                ("matches", matches_to_json(&matches)),
            ]));
        }
        Ok(Response::ok_lines(&lines))
    }

    /// The enumerate→probe→verify pipeline for one query under a deadline:
    /// expiry is checked before planning (stage 1 never starts on an
    /// already-dead request), then threaded through the probe at the
    /// index's own granularity.
    fn answer(
        &self,
        q: &SparseVec,
        expired: &(dyn Fn() -> bool + Sync),
    ) -> Result<Vec<skewsearch_core::TaggedMatch>, ServiceError> {
        if expired() {
            ServiceStats::bump(&self.stats.rejected_deadline);
            return Err(ServiceError::new(
                ErrorKind::DeadlineExceeded,
                "deadline expired before planning",
            ));
        }
        let guard = self.read_index();
        let plan = guard.plan_query(q);
        guard
            .probe_plan_tagged_deadline(&plan, expired)
            .map_err(|_| {
                ServiceStats::bump(&self.stats.rejected_deadline);
                ServiceError::new(ErrorKind::DeadlineExceeded, "deadline expired during probe")
            })
    }

    fn insert(&self, body: &[u8]) -> Result<Response, ServiceError> {
        let parsed = parse_body(body)?;
        let dims = require_dims(&parsed)?;
        ServiceStats::bump(&self.stats.inserts);
        let set = SparseVec::from_unsorted(dims);
        match self.write_index().insert(set) {
            Ok(id) => Ok(Response::ok(&Json::obj(vec![("id", Json::Num(id as u64))]))),
            Err(MutationError::Unsupported) => Err(ServiceError::new(
                ErrorKind::ReadOnly,
                "the served index does not support incremental mutation",
            )),
        }
    }

    fn remove(&self, body: &[u8]) -> Result<Response, ServiceError> {
        let parsed = parse_body(body)?;
        let id = parsed.get("id").and_then(Json::as_u64).ok_or_else(|| {
            ServiceError::new(ErrorKind::BadRequest, "body must have an integer \"id\"")
        })?;
        let id = usize::try_from(id)
            .map_err(|_| ServiceError::new(ErrorKind::BadRequest, "id out of range"))?;
        ServiceStats::bump(&self.stats.removes);
        match self.write_index().remove(id) {
            Ok(removed) => Ok(Response::ok(&Json::obj(vec![(
                "removed",
                Json::Bool(removed),
            )]))),
            Err(MutationError::Unsupported) => Err(ServiceError::new(
                ErrorKind::ReadOnly,
                "the served index does not support incremental mutation",
            )),
        }
    }
}

/// Parses a request body as one JSON object.
fn parse_body(body: &[u8]) -> Result<Json, ServiceError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ServiceError::new(ErrorKind::BadRequest, "body is not UTF-8"))?;
    let parsed = Json::parse(text.trim_end_matches(['\r', '\n']))
        .map_err(|e| ServiceError::new(ErrorKind::BadRequest, e.to_string()))?;
    if matches!(parsed, Json::Obj(_)) {
        Ok(parsed)
    } else {
        Err(ServiceError::new(
            ErrorKind::BadRequest,
            "body must be a JSON object",
        ))
    }
}

/// Extracts the mandatory `"dims"` member.
fn require_dims(parsed: &Json) -> Result<Vec<u32>, ServiceError> {
    let dims = parsed.get("dims").ok_or_else(|| {
        ServiceError::new(ErrorKind::BadRequest, "body must have a \"dims\" array")
    })?;
    dims_from_json(dims).map_err(|e| ServiceError::new(ErrorKind::BadRequest, e))
}

/// Extracts the optional `"deadline_ms"` member.
fn deadline_ms(parsed: &Json) -> Result<Option<u64>, ServiceError> {
    match parsed.get("deadline_ms") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            ServiceError::new(ErrorKind::BadRequest, "\"deadline_ms\" must be an integer")
        }),
    }
}

/// Arms an absolute expiry `deadline_ms` after `started` and returns the
/// check the probe polls. `deadline_ms: 0` is already expired — the
/// deterministic fixture the robustness tests use. A deadline too large to
/// represent disables itself (never expires).
fn arm_deadline(started: Instant, deadline_ms: Option<u64>) -> impl Fn() -> bool + Sync {
    let deadline = deadline_ms.and_then(|ms| started.checked_add(Duration::from_millis(ms)));
    move || deadline.is_some_and(|d| now() >= d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skewsearch_core::{Match, MutationError, SetId};

    /// Deterministic stub index: matches any query against a fixed list.
    struct Stub {
        sets: Vec<Vec<u32>>,
    }

    impl SetSimilaritySearch for Stub {
        fn search(&self, q: &SparseVec) -> Option<Match> {
            self.search_all(q).into_iter().next()
        }
        fn search_all(&self, q: &SparseVec) -> Vec<Match> {
            self.sets
                .iter()
                .enumerate()
                .filter(|(_, s)| s.iter().any(|d| q.contains(*d)))
                .map(|(id, _)| Match {
                    id,
                    similarity: 0.75,
                })
                .collect()
        }
        fn insert(&mut self, set: SparseVec) -> Result<SetId, MutationError> {
            self.sets.push(set.iter().collect());
            Ok(self.sets.len() - 1)
        }
        fn remove(&mut self, _id: SetId) -> Result<bool, MutationError> {
            Ok(false)
        }
        fn supports_mutation(&self) -> bool {
            true
        }
        fn threshold(&self) -> f64 {
            0.5
        }
        fn len(&self) -> usize {
            self.sets.len()
        }
    }

    fn service() -> QueryService {
        QueryService::new(share(Stub {
            sets: vec![vec![1, 2], vec![7]],
        }))
    }

    #[test]
    fn routes_and_typed_errors() {
        let svc = service();
        let t = now();
        assert_eq!(svc.handle("GET", "/healthz", b"", t).status, 200);
        assert_eq!(svc.handle("GET", "/stats", b"", t).status, 200);
        assert_eq!(svc.handle("POST", "/healthz", b"", t).status, 405);
        assert_eq!(svc.handle("GET", "/search", b"", t).status, 405);
        assert_eq!(svc.handle("GET", "/nope", b"", t).status, 404);
        assert_eq!(svc.handle("POST", "/search", b"not json", t).status, 400);
        assert_eq!(
            svc.handle("POST", "/search", br#"{"dims":"x"}"#, t).status,
            400
        );
        let ok = svc.handle("POST", "/search", br#"{"dims":[1]}"#, t);
        assert_eq!(ok.status, 200);
        assert!(ok.body.ends_with('\n'));
    }

    #[test]
    fn expired_deadline_is_typed_and_counted() {
        let svc = service();
        let resp = svc.handle("POST", "/search", br#"{"dims":[1],"deadline_ms":0}"#, now());
        assert_eq!(resp.status, 504);
        assert!(resp.body.contains("deadline-exceeded"));
        assert_eq!(ServiceStats::get(&svc.stats().rejected_deadline), 1);
    }

    #[test]
    fn mutations_roundtrip_through_handlers() {
        let svc = service();
        let t = now();
        let resp = svc.handle("POST", "/insert", br#"{"dims":[9,8]}"#, t);
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"id\":2"));
        let resp = svc.handle("POST", "/remove", br#"{"id":0}"#, t);
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"removed\":false"));
    }

    #[test]
    fn http_bytes_are_deterministic() {
        let svc = service();
        let a = svc
            .handle("POST", "/search", br#"{"dims":[1,7]}"#, now())
            .http_bytes();
        let b = svc
            .handle("POST", "/search", br#"{"dims":[1,7]}"#, now())
            .http_bytes();
        assert_eq!(a, b);
        let text = String::from_utf8(a).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length:"));
    }
}
