//! The typed wire vocabulary of the query service.
//!
//! Everything that crosses the TCP boundary is specified here and in
//! `docs/SERVICE.md`: the error taxonomy (each kind has a stable string and
//! an HTTP status), and the JSON codecs for matches and dimension lists.
//!
//! **Byte-exactness.** A match's similarity is an `f64` computed by the
//! index; the service-equivalence contract demands that a decoded response
//! equal the direct in-process answer *bit for bit*. Floats therefore
//! travel as their IEEE-754 bit pattern (`"sim_bits"`, 16 lowercase hex
//! digits) — lossless by construction — alongside a human-readable
//! rendering (`"sim"`) that decoders must ignore.

use crate::json::Json;
use skewsearch_core::{Match, TaggedMatch};

/// The service's typed error taxonomy. Every non-2xx response body is
/// `{"error":{"kind":<stable string>,"detail":<free text>}}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// Unparseable or semantically invalid request (`400`).
    BadRequest,
    /// Unknown endpoint path (`404`).
    NotFound,
    /// Known path, wrong HTTP method (`405`).
    MethodNotAllowed,
    /// Mutation endpoint hit while the served index is read-only (`409`).
    ReadOnly,
    /// The bounded admission queue was full — the typed overload rejection
    /// (`429`). Clients should back off and retry.
    Overloaded,
    /// The request's deadline expired before the answer was complete
    /// (`504`). No partial answer is ever returned.
    DeadlineExceeded,
}

impl ErrorKind {
    /// The HTTP status code this kind maps to.
    pub fn status(self) -> u16 {
        match self {
            ErrorKind::BadRequest => 400,
            ErrorKind::NotFound => 404,
            ErrorKind::MethodNotAllowed => 405,
            ErrorKind::ReadOnly => 409,
            ErrorKind::Overloaded => 429,
            ErrorKind::DeadlineExceeded => 504,
        }
    }

    /// The stable wire string (the `"kind"` member).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::NotFound => "not-found",
            ErrorKind::MethodNotAllowed => "method-not-allowed",
            ErrorKind::ReadOnly => "read-only",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::DeadlineExceeded => "deadline-exceeded",
        }
    }

    /// Parses a wire string back to its kind.
    pub fn from_wire(s: &str) -> Option<ErrorKind> {
        match s {
            "bad-request" => Some(ErrorKind::BadRequest),
            "not-found" => Some(ErrorKind::NotFound),
            "method-not-allowed" => Some(ErrorKind::MethodNotAllowed),
            "read-only" => Some(ErrorKind::ReadOnly),
            "overloaded" => Some(ErrorKind::Overloaded),
            "deadline-exceeded" => Some(ErrorKind::DeadlineExceeded),
            _ => None,
        }
    }

    /// The HTTP reason phrase for [`ErrorKind::status`].
    pub fn reason(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "Bad Request",
            ErrorKind::NotFound => "Not Found",
            ErrorKind::MethodNotAllowed => "Method Not Allowed",
            ErrorKind::ReadOnly => "Conflict",
            ErrorKind::Overloaded => "Too Many Requests",
            ErrorKind::DeadlineExceeded => "Gateway Timeout",
        }
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed service error: kind plus free-text detail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceError {
    /// The taxonomy entry (drives status code and wire string).
    pub kind: ErrorKind,
    /// Free-text diagnosis for humans; never parsed by clients.
    pub detail: String,
}

impl ServiceError {
    /// Constructs an error of `kind` with the given detail text.
    pub fn new(kind: ErrorKind, detail: impl Into<String>) -> Self {
        ServiceError {
            kind,
            detail: detail.into(),
        }
    }

    /// The response body: `{"error":{"kind":…,"detail":…}}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![(
            "error",
            Json::obj(vec![
                ("kind", Json::Str(self.kind.as_str().to_string())),
                ("detail", Json::Str(self.detail.clone())),
            ]),
        )])
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

impl std::error::Error for ServiceError {}

/// Encodes a similarity losslessly: 16 lowercase hex digits of
/// [`f64::to_bits`].
pub fn sim_bits(similarity: f64) -> String {
    format!("{:016x}", similarity.to_bits())
}

/// Decodes [`sim_bits`] back to the exact `f64`.
pub fn sim_from_bits(hex: &str) -> Result<f64, String> {
    if hex.len() != 16 {
        return Err(format!("sim_bits must be 16 hex digits, got {:?}", hex));
    }
    u64::from_str_radix(hex, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("invalid sim_bits {hex:?}: {e}"))
}

/// One tagged match as a JSON object:
/// `{"pass":…,"step":…,"id":…,"sim":…,"sim_bits":…}`.
pub fn tagged_match_to_json(t: &TaggedMatch) -> Json {
    Json::obj(vec![
        ("pass", Json::Num(u64::from(t.pass))),
        ("step", Json::Num(u64::from(t.step))),
        ("id", Json::Num(t.hit.id as u64)),
        ("sim", Json::Str(format!("{}", t.hit.similarity))),
        ("sim_bits", Json::Str(sim_bits(t.hit.similarity))),
    ])
}

/// Decodes [`tagged_match_to_json`]; the `"sim"` member is ignored — only
/// the bit pattern is authoritative.
pub fn tagged_match_from_json(v: &Json) -> Result<TaggedMatch, String> {
    let field = |key: &str| {
        v.get(key)
            .ok_or_else(|| format!("match object missing {key:?}"))
    };
    let num = |key: &str| {
        field(key)?
            .as_u64()
            .ok_or_else(|| format!("match member {key:?} must be an integer"))
    };
    let pass = u32::try_from(num("pass")?).map_err(|_| "pass out of range".to_string())?;
    let step = u32::try_from(num("step")?).map_err(|_| "step out of range".to_string())?;
    let id = usize::try_from(num("id")?).map_err(|_| "id out of range".to_string())?;
    let bits = field("sim_bits")?
        .as_str()
        .ok_or_else(|| "sim_bits must be a string".to_string())?;
    let similarity = sim_from_bits(bits)?;
    Ok(TaggedMatch {
        pass,
        step,
        hit: Match { id, similarity },
    })
}

/// A match list as a JSON array.
pub fn matches_to_json(matches: &[TaggedMatch]) -> Json {
    Json::Arr(matches.iter().map(tagged_match_to_json).collect())
}

/// Decodes [`matches_to_json`].
pub fn matches_from_json(v: &Json) -> Result<Vec<TaggedMatch>, String> {
    v.as_arr()
        .ok_or_else(|| "matches must be an array".to_string())?
        .iter()
        .map(tagged_match_from_json)
        .collect()
}

/// A sorted-or-not dimension list as a JSON array of integers.
pub fn dims_to_json(dims: &[u32]) -> Json {
    Json::Arr(dims.iter().map(|&d| Json::Num(u64::from(d))).collect())
}

/// Decodes a `"dims"`-style array; every element must fit in `u32`.
pub fn dims_from_json(v: &Json) -> Result<Vec<u32>, String> {
    v.as_arr()
        .ok_or_else(|| "dims must be an array of integers".to_string())?
        .iter()
        .map(|item| {
            let n = item
                .as_u64()
                .ok_or_else(|| "dims elements must be integers".to_string())?;
            u32::try_from(n).map_err(|_| format!("dimension {n} does not fit in u32"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_roundtrips_and_has_a_distinct_status() {
        let kinds = [
            ErrorKind::BadRequest,
            ErrorKind::NotFound,
            ErrorKind::MethodNotAllowed,
            ErrorKind::ReadOnly,
            ErrorKind::Overloaded,
            ErrorKind::DeadlineExceeded,
        ];
        let mut statuses: Vec<u16> = kinds.iter().map(|k| k.status()).collect();
        statuses.dedup();
        assert_eq!(statuses.len(), kinds.len());
        for k in kinds {
            assert_eq!(ErrorKind::from_wire(k.as_str()), Some(k));
        }
        assert_eq!(ErrorKind::from_wire("nope"), None);
    }

    #[test]
    fn similarity_bits_roundtrip_exactly() {
        for sim in [0.0, 1.0, 0.1 + 0.2, 2.0 / 3.0, f64::MIN_POSITIVE] {
            let m = TaggedMatch {
                pass: 3,
                step: 7,
                hit: Match {
                    id: 42,
                    similarity: sim,
                },
            };
            let back = tagged_match_from_json(&tagged_match_to_json(&m)).unwrap();
            assert_eq!(back.pass, 3);
            assert_eq!(back.step, 7);
            assert_eq!(back.hit.id, 42);
            assert_eq!(back.hit.similarity.to_bits(), sim.to_bits());
        }
    }

    #[test]
    fn match_decoding_rejects_malformed_objects() {
        for bad in [
            r#"{"pass":0,"step":0,"id":0}"#,
            r#"{"pass":0,"step":0,"id":0,"sim_bits":"xyz"}"#,
            r#"{"pass":0,"step":0,"id":0,"sim_bits":123}"#,
            r#"{"pass":4294967296,"step":0,"id":0,"sim_bits":"0000000000000000"}"#,
            r#"[1]"#,
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(tagged_match_from_json(&v).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn dims_roundtrip_and_reject_out_of_range() {
        let dims = vec![0u32, 5, 4_294_967_295];
        assert_eq!(dims_from_json(&dims_to_json(&dims)).unwrap(), dims);
        let v = Json::parse("[4294967296]").unwrap();
        assert!(dims_from_json(&v).is_err());
        let v = Json::parse(r#"["x"]"#).unwrap();
        assert!(dims_from_json(&v).is_err());
    }
}
