//! # skewsearch-sets
//!
//! Sparse binary vector substrate for the `skewsearch` workspace.
//!
//! The paper ("Set Similarity Search for Skewed Data", McCauley, Mikkelsen,
//! Pagh, PODS 2018) represents data as sparse vectors `x ∈ {0,1}^d`, or
//! equivalently as subsets of a universe `U = {1, …, d}`. This crate provides:
//!
//! * [`SparseVec`] — the canonical representation: a sorted, duplicate-free
//!   list of set dimensions, with fast set algebra (merge- and gallop-based
//!   intersection, union, difference);
//! * [`similarity`] — every similarity measure the paper uses or references:
//!   Braun-Blanquet (the paper's working measure, §2), Jaccard, overlap,
//!   Sørensen–Dice, binary cosine, and Pearson correlation of binary vectors
//!   (the measure of the light-bulb-problem framing in §1).
//!
//! # Example
//!
//! ```
//! use skewsearch_sets::{SparseVec, similarity};
//!
//! let x = SparseVec::from_unsorted(vec![5, 1, 3]);
//! let q = SparseVec::from_unsorted(vec![1, 3, 9, 11]);
//! assert_eq!(x.intersection_len(&q), 2);
//! assert_eq!(similarity::braun_blanquet(&x, &q), 2.0 / 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod similarity;
mod sparse;

pub use sparse::{SparseVec, GALLOP_RATIO};
