//! Similarity measures on sparse binary vectors.
//!
//! The paper's working measure is **Braun-Blanquet similarity** (§2):
//! `B(x, q) = |x ∩ q| / max(|x|, |q|)` — chosen because for vectors of equal
//! Hamming weight it is in 1-1 correspondence with Jaccard and (suitably
//! normalized) Pearson correlation. The remaining measures are provided for
//! interoperability and for tests that exercise the correspondences the paper
//! appeals to (its §1.2 and Lemma 10).
//!
//! All functions return a value in `[0, 1]` (correlation in `[-1, 1]`) and
//! define the degenerate all-empty case as `0.0`.

use crate::SparseVec;

/// Braun-Blanquet similarity `|x ∩ q| / max(|x|, |q|)` — the paper's measure.
#[inline]
pub fn braun_blanquet(x: &SparseVec, q: &SparseVec) -> f64 {
    let m = x.weight().max(q.weight());
    if m == 0 {
        return 0.0;
    }
    x.intersection_len(q) as f64 / m as f64
}

/// Jaccard similarity `|x ∩ q| / |x ∪ q|`.
#[inline]
pub fn jaccard(x: &SparseVec, q: &SparseVec) -> f64 {
    let i = x.intersection_len(q);
    let u = x.weight() + q.weight() - i;
    if u == 0 {
        return 0.0;
    }
    i as f64 / u as f64
}

/// Overlap (Szymkiewicz–Simpson) coefficient `|x ∩ q| / min(|x|, |q|)`.
#[inline]
pub fn overlap(x: &SparseVec, q: &SparseVec) -> f64 {
    let m = x.weight().min(q.weight());
    if m == 0 {
        return 0.0;
    }
    x.intersection_len(q) as f64 / m as f64
}

/// Sørensen–Dice coefficient `2|x ∩ q| / (|x| + |q|)`.
#[inline]
pub fn dice(x: &SparseVec, q: &SparseVec) -> f64 {
    let s = x.weight() + q.weight();
    if s == 0 {
        return 0.0;
    }
    2.0 * x.intersection_len(q) as f64 / s as f64
}

/// Binary cosine similarity `|x ∩ q| / sqrt(|x| · |q|)`.
#[inline]
pub fn cosine(x: &SparseVec, q: &SparseVec) -> f64 {
    let denom = (x.weight() as f64 * q.weight() as f64).sqrt();
    if denom == 0.0 {
        return 0.0;
    }
    x.intersection_len(q) as f64 / denom
}

/// Pearson correlation of `x, q ∈ {0,1}^d` viewed as samples of two binary
/// random variables over the `d` coordinates.
///
/// This is the empirical counterpart of the correlation `α` in the paper's §1
/// probabilistic viewpoint: for `q ~ D_α(x)` and large `d`, the empirical
/// correlation concentrates near `α` (per-coordinate Pearson correlation is
/// exactly `α`, Definition 3).
///
/// Returns `0.0` when either marginal is degenerate (all zeros or all ones).
pub fn pearson_binary(x: &SparseVec, q: &SparseVec, d: usize) -> f64 {
    assert!(d > 0, "universe size must be positive");
    let n11 = x.intersection_len(q) as f64;
    let px = x.weight() as f64 / d as f64;
    let pq = q.weight() as f64 / d as f64;
    let var = px * (1.0 - px) * pq * (1.0 - pq);
    if var <= 0.0 {
        return 0.0;
    }
    (n11 / d as f64 - px * pq) / var.sqrt()
}

/// Converts a Jaccard similarity to the Braun-Blanquet similarity of two sets
/// of *equal weight* `w`: if `J = i/(2w - i)` then `B = i/w = 2J/(1+J)`.
///
/// The paper (§1.2 "Correlation search on sparse vectors") notes the 1-1
/// correspondence of the standard measures at fixed Hamming weight; this is
/// that correspondence made executable (used in tests and the MinHash
/// planner).
#[inline]
pub fn jaccard_to_braun_blanquet_equal_weight(j: f64) -> f64 {
    2.0 * j / (1.0 + j)
}

/// Inverse of [`jaccard_to_braun_blanquet_equal_weight`]: `J = B/(2-B)`.
#[inline]
pub fn braun_blanquet_to_jaccard_equal_weight(b: f64) -> f64 {
    b / (2.0 - b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(dims: &[u32]) -> SparseVec {
        SparseVec::from_unsorted(dims.to_vec())
    }

    #[test]
    fn braun_blanquet_basic() {
        let x = v(&[1, 2, 3, 4]);
        let q = v(&[3, 4, 5]);
        assert!((braun_blanquet(&x, &q) - 2.0 / 4.0).abs() < 1e-12);
        // Symmetry.
        assert_eq!(braun_blanquet(&x, &q), braun_blanquet(&q, &x));
    }

    #[test]
    fn all_measures_are_one_on_identical_sets() {
        let x = v(&[7, 9, 13]);
        assert_eq!(braun_blanquet(&x, &x), 1.0);
        assert_eq!(jaccard(&x, &x), 1.0);
        assert_eq!(overlap(&x, &x), 1.0);
        assert_eq!(dice(&x, &x), 1.0);
        assert!((cosine(&x, &x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_measures_are_zero_on_disjoint_sets() {
        let x = v(&[1, 2]);
        let q = v(&[3, 4]);
        for f in [braun_blanquet, jaccard, overlap, dice, cosine] {
            assert_eq!(f(&x, &q), 0.0);
        }
    }

    #[test]
    fn degenerate_empty_cases_are_zero() {
        let e = SparseVec::empty();
        for f in [braun_blanquet, jaccard, overlap, dice, cosine] {
            assert_eq!(f(&e, &e), 0.0);
        }
    }

    #[test]
    fn measure_ordering_overlap_ge_dice_ge_jaccard() {
        // overlap >= BB-like measures >= jaccard for any pair.
        let x = v(&[1, 2, 3, 4, 5]);
        let q = v(&[4, 5, 6]);
        let (o, b, dd, j) = (
            overlap(&x, &q),
            braun_blanquet(&x, &q),
            dice(&x, &q),
            jaccard(&x, &q),
        );
        assert!(o >= dd && dd >= j, "o={o} dice={dd} j={j}");
        assert!(o >= b && b >= j, "o={o} b={b} j={j}");
    }

    #[test]
    fn bb_jaccard_correspondence_roundtrip_at_equal_weight() {
        let x = v(&[1, 2, 3, 4]);
        let q = v(&[3, 4, 5, 6]);
        let b = braun_blanquet(&x, &q);
        let j = jaccard(&x, &q);
        assert!((jaccard_to_braun_blanquet_equal_weight(j) - b).abs() < 1e-12);
        assert!((braun_blanquet_to_jaccard_equal_weight(b) - j).abs() < 1e-12);
    }

    #[test]
    fn pearson_binary_perfect_and_anti() {
        // x == q: correlation 1 (up to fp error).
        let x = v(&[0, 1, 2]);
        assert!((pearson_binary(&x, &x, 6) - 1.0).abs() < 1e-12);
        // complement on d=6: correlation -1.
        let q = v(&[3, 4, 5]);
        assert!((pearson_binary(&x, &q, 6) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_binary_degenerate_is_zero() {
        let x = SparseVec::empty();
        let q = v(&[1]);
        assert_eq!(pearson_binary(&x, &q, 4), 0.0);
    }

    #[test]
    fn pearson_binary_independent_ish_is_small() {
        // Two "random-looking" sets of density 1/2 on d=8 with |x ∩ q| = 2 = d/4.
        let x = v(&[0, 1, 2, 3]);
        let q = v(&[2, 3, 6, 7]);
        assert!(pearson_binary(&x, &q, 8).abs() < 1e-12);
    }
}
