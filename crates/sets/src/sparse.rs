//! Sparse binary vectors as sorted dimension lists.

use std::fmt;

/// A sparse vector in `{0,1}^d`, stored as the sorted, duplicate-free list of
/// dimensions whose value is 1.
///
/// Dimensions are `u32` indices into the universe `[d]`. The Hamming weight
/// `|x|` is [`SparseVec::weight`]. Invariant: the internal list is strictly
/// increasing — all constructors enforce it.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct SparseVec {
    dims: Vec<u32>,
}

impl SparseVec {
    /// An empty vector (Hamming weight 0).
    #[inline]
    pub fn empty() -> Self {
        Self { dims: Vec::new() }
    }

    /// Builds from a list that is already strictly increasing.
    ///
    /// # Panics
    /// Panics (in debug builds) if the input is not strictly increasing.
    #[inline]
    pub fn from_sorted(dims: Vec<u32>) -> Self {
        debug_assert!(
            dims.windows(2).all(|w| w[0] < w[1]),
            "from_sorted requires strictly increasing dimensions"
        );
        Self { dims }
    }

    /// Builds from an arbitrary list: sorts and removes duplicates.
    pub fn from_unsorted(mut dims: Vec<u32>) -> Self {
        dims.sort_unstable();
        dims.dedup();
        Self { dims }
    }

    /// The Hamming weight `|x|` (number of 1-bits / set cardinality).
    #[inline]
    pub fn weight(&self) -> usize {
        self.dims.len()
    }

    /// True iff the vector has no set bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// The sorted set dimensions.
    #[inline]
    pub fn dims(&self) -> &[u32] {
        &self.dims
    }

    /// Consumes `self`, returning the sorted dimension list.
    #[inline]
    pub fn into_dims(self) -> Vec<u32> {
        self.dims
    }

    /// Iterates over the set dimensions in increasing order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.dims.iter().copied()
    }

    /// True iff dimension `i` is set (`x_i = 1`). Binary search, `O(log |x|)`.
    #[inline]
    pub fn contains(&self, i: u32) -> bool {
        self.dims.binary_search(&i).is_ok()
    }

    /// `|x ∩ q|`: the dot product of the two 0/1 vectors.
    ///
    /// Uses a linear merge when the weights are comparable and galloping
    /// (exponential search from the smaller side) when they differ by more
    /// than [`GALLOP_RATIO`]; the paper's skewed workloads routinely pair a
    /// short query against long stored vectors, where galloping is the
    /// asymptotically right choice (`O(min · log(max/min))`).
    pub fn intersection_len(&self, other: &SparseVec) -> usize {
        let (small, large) = if self.weight() <= other.weight() {
            (&self.dims, &other.dims)
        } else {
            (&other.dims, &self.dims)
        };
        if small.is_empty() {
            return 0;
        }
        if large.len() / small.len() >= GALLOP_RATIO {
            gallop_intersection_len(small, large)
        } else {
            merge_intersection_len(small, large)
        }
    }

    /// `|x ∪ q|` — via inclusion–exclusion on the intersection.
    #[inline]
    pub fn union_len(&self, other: &SparseVec) -> usize {
        self.weight() + other.weight() - self.intersection_len(other)
    }

    /// The intersection as a new vector.
    pub fn intersection(&self, other: &SparseVec) -> SparseVec {
        let mut out = Vec::with_capacity(self.weight().min(other.weight()));
        let (mut a, mut b) = (self.dims.iter(), other.dims.iter());
        let (mut x, mut y) = (a.next(), b.next());
        while let (Some(&u), Some(&v)) = (x, y) {
            match u.cmp(&v) {
                std::cmp::Ordering::Less => x = a.next(),
                std::cmp::Ordering::Greater => y = b.next(),
                std::cmp::Ordering::Equal => {
                    out.push(u);
                    x = a.next();
                    y = b.next();
                }
            }
        }
        SparseVec { dims: out }
    }

    /// The union as a new vector.
    pub fn union(&self, other: &SparseVec) -> SparseVec {
        let mut out = Vec::with_capacity(self.weight() + other.weight());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.dims.len() && j < other.dims.len() {
            match self.dims[i].cmp(&other.dims[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.dims[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.dims[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.dims[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.dims[i..]);
        out.extend_from_slice(&other.dims[j..]);
        SparseVec { dims: out }
    }

    /// Set difference `x \ q` as a new vector.
    pub fn difference(&self, other: &SparseVec) -> SparseVec {
        let mut out = Vec::with_capacity(self.weight());
        let mut j = 0usize;
        for &u in &self.dims {
            while j < other.dims.len() && other.dims[j] < u {
                j += 1;
            }
            if j >= other.dims.len() || other.dims[j] != u {
                out.push(u);
            }
        }
        SparseVec { dims: out }
    }

    /// Splits into `(x ∩ [0, cut), x ∩ [cut, d))` — the frequent/rare split of
    /// the paper's §1 motivating example when dimensions are sorted by
    /// decreasing frequency.
    pub fn split_at_dim(&self, cut: u32) -> (SparseVec, SparseVec) {
        let pos = self.dims.partition_point(|&i| i < cut);
        (
            SparseVec {
                dims: self.dims[..pos].to_vec(),
            },
            SparseVec {
                dims: self.dims[pos..].to_vec(),
            },
        )
    }
}

/// Size ratio above which intersection switches from merging to galloping.
pub const GALLOP_RATIO: usize = 16;

fn merge_intersection_len(a: &[u32], b: &[u32]) -> usize {
    let mut count = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

fn gallop_intersection_len(small: &[u32], large: &[u32]) -> usize {
    let mut count = 0usize;
    let mut lo = 0usize;
    for &v in small {
        // Exponential search for v in large[lo..]. The loop exits with
        // large[hi] >= v (or hi past the end); the probe position itself may
        // hold v, so the binary-search window must be inclusive of hi.
        let mut step = 1usize;
        let mut hi = lo;
        while hi < large.len() && large[hi] < v {
            lo = hi + 1;
            hi = lo + step;
            step <<= 1;
        }
        let hi = (hi + 1).min(large.len());
        match large[lo..hi].binary_search(&v) {
            Ok(off) => {
                count += 1;
                lo += off + 1;
            }
            Err(off) => lo += off,
        }
        if lo >= large.len() {
            break;
        }
    }
    count
}

impl fmt::Debug for SparseVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SparseVec{:?}", self.dims)
    }
}

impl FromIterator<u32> for SparseVec {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        SparseVec::from_unsorted(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a SparseVec {
    type Item = u32;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, u32>>;
    fn into_iter(self) -> Self::IntoIter {
        self.dims.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(dims: &[u32]) -> SparseVec {
        SparseVec::from_unsorted(dims.to_vec())
    }

    #[test]
    fn from_unsorted_sorts_and_dedups() {
        let x = SparseVec::from_unsorted(vec![5, 1, 5, 3, 1]);
        assert_eq!(x.dims(), &[1, 3, 5]);
        assert_eq!(x.weight(), 3);
    }

    #[test]
    fn empty_vector_behaviour() {
        let e = SparseVec::empty();
        assert!(e.is_empty());
        assert_eq!(e.weight(), 0);
        assert_eq!(e.intersection_len(&v(&[1, 2, 3])), 0);
        assert_eq!(e.union_len(&v(&[1, 2, 3])), 3);
        assert!(!e.contains(0));
    }

    #[test]
    fn contains_finds_members_only() {
        let x = v(&[2, 4, 8, 16]);
        for i in 0..20 {
            assert_eq!(x.contains(i), [2, 4, 8, 16].contains(&i), "dim {i}");
        }
    }

    #[test]
    fn intersection_len_matches_naive() {
        let x = v(&[1, 2, 3, 10, 20, 30]);
        let y = v(&[2, 3, 4, 20, 40]);
        assert_eq!(x.intersection_len(&y), 3);
        assert_eq!(y.intersection_len(&x), 3);
    }

    #[test]
    fn gallop_path_is_exercised_and_correct() {
        // large/small ratio >= GALLOP_RATIO forces the galloping branch.
        let small = v(&[0, 500, 999]);
        let large = SparseVec::from_sorted((0..1000).collect());
        assert_eq!(small.intersection_len(&large), 3);
        let small2 = v(&[1000, 2000]);
        assert_eq!(small2.intersection_len(&large), 0);
    }

    #[test]
    fn gallop_probe_landing_exactly_on_target_is_found() {
        // Regression (found by proptest): the exponential probe can land on
        // an element equal to the needle; the search window must include it.
        let small = v(&[12_066]);
        let large = SparseVec::from_sorted((0..20_000).collect());
        assert_eq!(small.intersection_len(&large), 1);
        // Sweep many singleton needles to cover all probe geometries.
        let sparse_large: Vec<u32> = (0..5_000).map(|i| i * 3 + 1).collect();
        let large2 = SparseVec::from_sorted(sparse_large.clone());
        for &needle in sparse_large.iter().step_by(97) {
            let s = v(&[needle]);
            assert_eq!(s.intersection_len(&large2), 1, "needle {needle}");
        }
    }

    #[test]
    fn gallop_handles_small_elements_past_end_of_large() {
        let small = v(&[5, 100, 200, 300]);
        let large = SparseVec::from_sorted((0..64).collect());
        assert_eq!(small.intersection_len(&large), 1);
    }

    #[test]
    fn union_and_difference() {
        let x = v(&[1, 3, 5]);
        let y = v(&[3, 4]);
        assert_eq!(x.union(&y).dims(), &[1, 3, 4, 5]);
        assert_eq!(x.union_len(&y), 4);
        assert_eq!(x.difference(&y).dims(), &[1, 5]);
        assert_eq!(y.difference(&x).dims(), &[4]);
    }

    #[test]
    fn intersection_vector_matches_len() {
        let x = v(&[1, 2, 3, 4]);
        let y = v(&[2, 4, 6]);
        let i = x.intersection(&y);
        assert_eq!(i.dims(), &[2, 4]);
        assert_eq!(i.weight(), x.intersection_len(&y));
    }

    #[test]
    fn split_at_dim_partitions() {
        let x = v(&[0, 2, 5, 9, 11]);
        let (lo, hi) = x.split_at_dim(6);
        assert_eq!(lo.dims(), &[0, 2, 5]);
        assert_eq!(hi.dims(), &[9, 11]);
        let (all, none) = x.split_at_dim(100);
        assert_eq!(all.weight(), 5);
        assert!(none.is_empty());
    }

    #[test]
    fn from_iterator_collects() {
        let x: SparseVec = [9u32, 1, 9, 4].into_iter().collect();
        assert_eq!(x.dims(), &[1, 4, 9]);
    }
}
