//! The `lint:allow` escape hatch.
//!
//! A finding is suppressed by an annotation of the form
//!
//! ```text
//! // lint:allow(<lint-name>, <reason>)
//! ```
//!
//! carried either as a trailing comment on the offending line or anywhere in
//! the contiguous comment block immediately above it. The reason is
//! mandatory and non-empty: the whole point of the pass is that every
//! exception to a contract is *justified in writing* next to the code. A
//! `lint:allow(...)` that names no lint or gives no reason is itself
//! reported (as `lint-allow-syntax`), so a typo cannot silently disable a
//! check.

use crate::walk::SourceFile;

/// One parsed `lint:allow(name, reason)` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The lint being allowed.
    pub lint: String,
    /// The mandatory justification.
    pub reason: String,
}

/// Extracts every `lint:allow(...)` annotation from one comment string.
/// Returns `Err` with a description for annotations that are syntactically
/// `lint:allow(` but miss the `(name, reason)` shape.
///
/// An annotation only counts when the comment *starts* with the marker
/// (`// lint:allow(...)`); a `lint:allow` mentioned mid-sentence is prose
/// about the mechanism (this file is full of it), not a suppression.
pub fn parse_annotations(comment: &str) -> Vec<Result<Allow, String>> {
    const MARKER: &str = "lint:allow(";
    let mut out = Vec::new();
    let mut rest = comment.trim_start();
    if !rest.starts_with(MARKER) {
        return out;
    }
    while let Some(at) = rest.find(MARKER) {
        let after = &rest[at + MARKER.len()..];
        match after.find(')') {
            None => {
                out.push(Err("unclosed `lint:allow(` annotation".to_string()));
                rest = after;
            }
            Some(close) => {
                let inner = &after[..close];
                match inner.split_once(',') {
                    None => out.push(Err(format!(
                        "`lint:allow({inner})` is missing a reason — write \
                         `lint:allow(<lint-name>, <why this is sound>)`"
                    ))),
                    Some((name, reason)) => {
                        let name = name.trim();
                        let reason = reason.trim();
                        if name.is_empty() || reason.is_empty() {
                            out.push(Err(format!(
                                "`lint:allow({inner})` needs both a lint name and a \
                                 non-empty reason"
                            )));
                        } else {
                            out.push(Ok(Allow {
                                lint: name.to_string(),
                                reason: reason.to_string(),
                            }));
                        }
                    }
                }
                rest = &after[close + 1..];
            }
        }
    }
    out
}

/// True when line `idx` (0-based) of `file` is covered by a well-formed
/// `lint:allow(lint, …)` — on the line itself, or in the contiguous run of
/// comment-only lines directly above it.
pub fn allows(file: &SourceFile, idx: usize, lint: &str) -> bool {
    let named = |comment: &str| {
        parse_annotations(comment)
            .into_iter()
            .flatten()
            .any(|a| a.lint == lint)
    };
    if named(&file.lines[idx].comment) {
        return true;
    }
    let mut li = idx;
    while li > 0 {
        li -= 1;
        let line = &file.lines[li];
        if !line.is_code_blank() || line.comment.is_empty() {
            break;
        }
        if named(&line.comment) {
            return true;
        }
    }
    false
}

/// True when any line of `file` carries a well-formed `lint:allow(lint, …)`
/// annotation — the file-level escape used by whole-file lints such as
/// `forbid-unsafe`.
pub fn file_allows(file: &SourceFile, lint: &str) -> bool {
    file.lines.iter().any(|l| {
        parse_annotations(&l.comment)
            .into_iter()
            .flatten()
            .any(|a| a.lint == lint)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::{FileKind, SourceFile};

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("x.rs", "core", FileKind::Lib, false, src)
    }

    #[test]
    fn parses_name_and_reason() {
        let got =
            parse_annotations(" lint:allow(no-panic-in-lib, join re-raises the worker panic)");
        assert_eq!(
            got,
            vec![Ok(Allow {
                lint: "no-panic-in-lib".to_string(),
                reason: "join re-raises the worker panic".to_string(),
            })]
        );
    }

    #[test]
    fn missing_reason_is_an_error() {
        let got = parse_annotations(" lint:allow(no-panic-in-lib)");
        assert!(matches!(got.as_slice(), [Err(_)]));
    }

    #[test]
    fn prose_mentions_are_not_annotations() {
        assert!(parse_annotations(" annotate with lint:allow(foo, bar) to suppress").is_empty());
    }

    #[test]
    fn same_line_and_preceding_comment_block_both_count() {
        let trailing = file("foo(); // lint:allow(x, reason)\n");
        assert!(allows(&trailing, 0, "x"));
        let above = file("// lint:allow(x, reason)\n// more context\nfoo();\n");
        assert!(allows(&above, 2, "x"));
        let interrupted = file("// lint:allow(x, reason)\nbar();\nfoo();\n");
        assert!(!allows(&interrupted, 2, "x"));
        assert!(!allows(&trailing, 0, "y"), "name must match");
    }
}
