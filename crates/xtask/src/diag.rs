//! Diagnostics: one finding per contract violation, formatted as
//! `file:line: [lint-name] message` so editors and CI logs can jump
//! straight to the offending line.

use std::path::PathBuf;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The lint that fired (e.g. `nondeterministic-iter`).
    pub lint: &'static str,
    /// Human-readable explanation, including the escape hatch where one
    /// exists.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.lint,
            self.message
        )
    }
}

/// Orders diagnostics deterministically (path, then line, then lint) — the
/// lint driver's own output must not depend on walk or check order.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (&a.path, a.line, a.lint)
            .cmp(&(&b.path, b.line, b.lint))
            .then_with(|| a.message.cmp(&b.message))
    });
}
