//! The lint engine: runs every registered lint over every walked file and
//! keeps the `lint:allow` annotations themselves honest.

use crate::allow;
use crate::diag::{self, Diagnostic};
use crate::lints;
use crate::walk::{self, SourceFile};

/// Runs all lints plus annotation hygiene over already-lexed `files`,
/// returning findings in deterministic order. This is the entry point the
/// fixture tests drive directly.
pub fn lint_files(files: &[SourceFile]) -> Vec<Diagnostic> {
    let lints = lints::all();
    let known: Vec<&'static str> = lints.iter().map(|l| l.name()).collect();
    let mut diags = Vec::new();
    for file in files {
        for lint in &lints {
            lint.check(file, &mut diags);
        }
        annotation_hygiene(file, &known, &mut diags);
    }
    diag::sort(&mut diags);
    diags
}

/// Walks the workspace at `root` and lints every file.
pub fn lint_workspace(root: &std::path::Path) -> Result<Vec<Diagnostic>, String> {
    let files = walk::workspace_files(root)?;
    Ok(lint_files(&files))
}

/// Reports malformed `lint:allow(...)` annotations and annotations naming a
/// lint that does not exist — a typo must fail the build, not silently
/// disable a check.
fn annotation_hygiene(file: &SourceFile, known: &[&'static str], out: &mut Vec<Diagnostic>) {
    for (idx, line) in file.lines.iter().enumerate() {
        for parsed in allow::parse_annotations(&line.comment) {
            match parsed {
                Err(msg) => out.push(Diagnostic {
                    path: file.path.clone(),
                    line: idx + 1,
                    lint: "lint-allow-syntax",
                    message: msg,
                }),
                Ok(a) if !known.contains(&a.lint.as_str()) => out.push(Diagnostic {
                    path: file.path.clone(),
                    line: idx + 1,
                    lint: "lint-allow-syntax",
                    message: format!(
                        "lint:allow names unknown lint `{}` (known: {})",
                        a.lint,
                        known.join(", ")
                    ),
                }),
                Ok(_) => {}
            }
        }
    }
}
