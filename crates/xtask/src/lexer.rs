//! A minimal line-oriented Rust lexer.
//!
//! skewcheck's lints are substring checks, so the only lexing they need is
//! the part substring checks cannot fake: knowing which bytes of a file are
//! *code* and which are comments, string/char literals, or `#[cfg(test)]`
//! items. This module splits a source file into [`Line`]s whose `code` field
//! has every comment and literal blanked to spaces (preserving byte offsets
//! and line numbers) and whose `comment` field collects the comment text of
//! the line, so `unwrap()` inside a doc-test snippet or `"HashMap"` inside a
//! string can never trip a lint.
//!
//! It is not a full lexer — no token stream, no spans — but it handles the
//! constructs that would otherwise cause misclassification: nested block
//! comments, raw strings with `#` fences, byte/raw-byte strings, char
//! literals vs. lifetimes, and escape sequences.

/// One source line, split into its code and comment parts.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The line's code with comments and string/char literal *contents*
    /// blanked to spaces. Same length as the source line.
    pub code: String,
    /// Concatenated comment text appearing on this line (line, block, and
    /// doc comments), without the `//` / `/*` markers.
    pub comment: String,
    /// True when the line lies inside a `#[cfg(test)]` item (inline test
    /// module or test-gated function), so production lints skip it.
    pub in_test: bool,
}

impl Line {
    /// True when the line has no code tokens at all — blank, or comment-only.
    pub fn is_code_blank(&self) -> bool {
        self.code.trim().is_empty()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Depth of nesting (Rust block comments nest).
    BlockComment(u32),
    /// Inside `"…"` or `b"…"`.
    Str,
    /// Inside `r"…"` / `r#"…"#` / `br##"…"##`; payload = number of `#`.
    RawStr(u32),
    /// Inside `'…'` or `b'…'`.
    CharLit,
}

/// Splits `source` into classified [`Line`]s. Never fails: unterminated
/// constructs simply blank to the end of the file, which is also what rustc
/// would reject at compile time.
pub fn split_lines(source: &str) -> Vec<Line> {
    let bytes = source.as_bytes();
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let mut i = 0usize;

    // True when the previous code byte could end an identifier, so an `r`
    // or `b` here is part of a name (`for`, `grab"…"` is impossible, but
    // `var"` via macro paste is) rather than a raw/byte-string prefix.
    let mut prev_ident = false;

    while i < bytes.len() {
        let c = bytes[i];
        if c == b'\n' {
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                in_test: false,
            });
            if state == State::LineComment {
                state = State::Code;
            }
            prev_ident = false;
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    code.push_str("  ");
                    i += 2;
                } else if c == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    code.push_str("  ");
                    i += 2;
                } else if c == b'"' {
                    state = State::Str;
                    code.push(' ');
                    i += 1;
                } else if !prev_ident && (c == b'r' || c == b'b') {
                    // Possible raw/byte string prefix: r" r#" b" br" br#" b'
                    let (skip, next_state) = match string_prefix(&bytes[i..]) {
                        Some(p) => p,
                        None => {
                            code.push(c as char);
                            prev_ident = true;
                            i += 1;
                            continue;
                        }
                    };
                    for _ in 0..skip {
                        code.push(' ');
                    }
                    state = next_state;
                    i += skip;
                } else if c == b'\'' {
                    // Char literal vs lifetime: a char literal closes within
                    // a few bytes (`'a'`, `'\n'`, `'\u{1F600}'`); a lifetime
                    // never has a matching close quote before a non-ident
                    // byte. Escapes always mean a literal.
                    if is_char_literal(&bytes[i..]) {
                        state = State::CharLit;
                        code.push(' ');
                    } else {
                        code.push('\'');
                    }
                    i += 1;
                } else {
                    code.push(c as char);
                    prev_ident = c == b'_' || c.is_ascii_alphanumeric();
                    i += 1;
                    continue;
                }
                prev_ident = false;
            }
            State::LineComment => {
                comment.push(c as char);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    comment.push_str("/*");
                    code.push_str("  ");
                    i += 2;
                } else if c == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    if depth > 1 {
                        comment.push_str("*/");
                    }
                    code.push_str("  ");
                    i += 2;
                } else {
                    comment.push(c as char);
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == b'\\' && i + 1 < bytes.len() {
                    code.push_str("  ");
                    i += 2;
                } else {
                    if c == b'"' {
                        state = State::Code;
                    }
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == b'"' && closes_raw(&bytes[i + 1..], hashes) {
                    for _ in 0..=hashes {
                        code.push(' ');
                    }
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::CharLit => {
                if c == b'\\' && i + 1 < bytes.len() {
                    code.push_str("  ");
                    i += 2;
                } else {
                    if c == b'\'' {
                        state = State::Code;
                    }
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        lines.push(Line {
            code,
            comment,
            in_test: false,
        });
    }
    mark_test_spans(&mut lines);
    lines
}

/// Recognizes a raw/byte string opener at the start of `bytes`. Returns the
/// byte length of the opener and the state it enters.
fn string_prefix(bytes: &[u8]) -> Option<(usize, State)> {
    let mut j = 0usize;
    if bytes[0] == b'b' {
        j = 1;
    }
    match bytes.get(j) {
        Some(b'"') => Some((j + 1, State::Str)),
        Some(b'\'') if j == 1 => Some((j + 1, State::CharLit)),
        Some(b'r') => {
            let mut hashes = 0u32;
            let mut k = j + 1;
            while bytes.get(k) == Some(&b'#') {
                hashes += 1;
                k += 1;
            }
            if bytes.get(k) == Some(&b'"') {
                Some((k + 1, State::RawStr(hashes)))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// True when the `'` at `bytes[0]` opens a char literal rather than a
/// lifetime.
fn is_char_literal(bytes: &[u8]) -> bool {
    match bytes.get(1) {
        Some(b'\\') => true,
        Some(_) => bytes.get(2) == Some(&b'\''),
        None => false,
    }
}

/// True when `rest` (the bytes after a `"`) begins with `hashes` `#` bytes,
/// closing an `r#…#"…"#…#` raw string.
fn closes_raw(rest: &[u8], hashes: u32) -> bool {
    let n = hashes as usize;
    rest.len() >= n && rest[..n].iter().all(|&b| b == b'#')
}

/// Marks every line belonging to a `#[cfg(test)]` item. The attribute's
/// item extends to the matching close brace of the first `{` after it (or
/// the first `;` at brace depth zero for `mod tests;` forms).
fn mark_test_spans(lines: &mut [Line]) {
    let mut li = 0usize;
    while li < lines.len() {
        if !lines[li].in_test && lines[li].code.contains("cfg(test)") {
            let end = test_item_end(lines, li);
            for line in lines.iter_mut().take(end + 1).skip(li) {
                line.in_test = true;
            }
            li = end + 1;
        } else {
            li += 1;
        }
    }
}

/// Finds the last line of the item introduced at `start` (an attribute
/// line): scans forward for the first `{` and returns the line of its
/// matching `}`, or the line of a `;` hit first at depth zero.
fn test_item_end(lines: &[Line], start: usize) -> usize {
    let mut depth = 0i64;
    let mut opened = false;
    for (li, line) in lines.iter().enumerate().skip(start) {
        for b in line.code.bytes() {
            match b {
                b'{' => {
                    depth += 1;
                    opened = true;
                }
                b'}' => {
                    depth -= 1;
                    if opened && depth == 0 {
                        return li;
                    }
                }
                b';' if !opened && depth == 0 && li > start => return li,
                _ => {}
            }
        }
    }
    lines.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        split_lines(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let lines = split_lines("let x = \"panic!\"; // but panic! here is comment\n");
        assert!(!lines[0].code.contains("panic!"));
        assert!(lines[0].comment.contains("panic!"));
    }

    #[test]
    fn raw_strings_with_fences_are_blanked() {
        let c = codes("let x = r#\"unwrap() \" still in\"# + y;\n");
        assert!(!c[0].contains("unwrap"));
        assert!(c[0].contains("+ y;"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let lines = split_lines("a /* one /* two */ still */ b\n/* open\nunwrap()\n*/ c\n");
        assert!(lines[0].code.contains('a') && lines[0].code.contains('b'));
        assert!(!lines[0].code.contains("still"));
        assert!(!lines[2].code.contains("unwrap"));
        assert!(lines[3].code.contains('c'));
    }

    #[test]
    fn char_literals_blank_but_lifetimes_survive() {
        let c = codes("fn f<'a>(x: &'a str) { let q = '\\''; let z = 'z'; }\n");
        assert!(c[0].contains("'a"), "{}", c[0]);
        assert!(!c[0].contains('z') || !c[0].contains("'z'"));
    }

    #[test]
    fn cfg_test_modules_are_marked_to_their_close_brace() {
        let src =
            "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\npub fn after() {}\n";
        let lines = split_lines(src);
        let flags: Vec<bool> = lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn doc_comment_examples_do_not_leak_into_code() {
        let lines = split_lines("/// let v = map.values().unwrap();\nfn real() {}\n");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[1].code.contains("real"));
    }
}
