//! # skewcheck
//!
//! The in-repo static-analysis pass: five codebase-specific lints that turn
//! this workspace's determinism, panic-freedom, and concurrency contracts —
//! which the test suites can only *sample* — into checks that run on every
//! commit (`cargo run -p xtask -- lint`). See `docs/STATIC_ANALYSIS.md` for
//! the contract each lint protects and the `lint:allow` escape-hatch
//! syntax.
//!
//! The pass is deliberately zero-dependency: a small hand-rolled lexer
//! ([`lexer`]) classifies code vs. comments/literals/test modules, a
//! filesystem walker ([`walk`]) enumerates the workspace without
//! `cargo metadata`, and each lint ([`lints`]) is a scoped pattern check
//! over the lexed lines. No `syn`, no network, sub-second runs on both
//! matrix toolchains.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod lints;
pub mod walk;

pub use diag::Diagnostic;
pub use engine::{lint_files, lint_workspace};
pub use walk::{FileKind, SourceFile};
