//! `forbid-unsafe`: every crate root locks the tree's zero-`unsafe` state
//! in.
//!
//! **Contract protected.** The workspace contains no `unsafe` today, and
//! the concurrency story (scoped threads, atomics with justified orderings)
//! is auditable precisely because of that. `#![forbid(unsafe_code)]` at
//! each crate root turns the status quo into a compiler guarantee that an
//! inner `#[allow]` cannot undo — `forbid` is the one lint level that
//! refuses to be overridden. This check ensures no crate root loses (or
//! never gains) the attribute; a crate that one day genuinely needs
//! `unsafe` opts out explicitly with a file-level
//! `lint:allow(forbid-unsafe, <reason>)` and downgrades to `deny`.

use super::Lint;
use crate::allow;
use crate::diag::Diagnostic;
use crate::walk::SourceFile;

/// The attribute every crate root must carry.
const ATTRIBUTE: &str = "#![forbid(unsafe_code)]";

/// See module docs.
pub struct ForbidUnsafe;

impl Lint for ForbidUnsafe {
    fn name(&self) -> &'static str {
        "forbid-unsafe"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !file.is_crate_root {
            return;
        }
        if file.lines.iter().any(|l| l.code.contains(ATTRIBUTE)) {
            return;
        }
        if allow::file_allows(file, self.name()) {
            return;
        }
        out.push(Diagnostic {
            path: file.path.clone(),
            line: 1,
            lint: self.name(),
            message: format!(
                "crate root is missing `{ATTRIBUTE}`; the workspace is unsafe-free and \
                 every root pins that — opt out (and say why) with a file-level \
                 lint:allow(forbid-unsafe, <reason>)"
            ),
        });
    }
}
