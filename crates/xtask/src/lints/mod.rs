//! The lint registry and the small text-matching helpers lints share.
//!
//! Each lint is one module implementing [`Lint`] over a lexed
//! [`SourceFile`]; the engine (`crate::engine`) runs every registered lint
//! over every walked file. Lints scope themselves — by crate, target kind,
//! or exact path — so the registry stays a flat list.

use crate::diag::Diagnostic;
use crate::walk::SourceFile;

pub mod forbid_unsafe;
pub mod no_panic;
pub mod nondeterministic_iter;
pub mod relaxed_ordering;
pub mod wall_clock;

/// One static-analysis check.
pub trait Lint {
    /// Stable lint name, used in diagnostics and `lint:allow(name, reason)`.
    fn name(&self) -> &'static str;
    /// Appends findings for `file` to `out`.
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>);
}

/// Every registered lint, in reporting order.
pub fn all() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(nondeterministic_iter::NondeterministicIter),
        Box::new(relaxed_ordering::RelaxedOrderingJustified),
        Box::new(no_panic::NoPanicInLib),
        Box::new(forbid_unsafe::ForbidUnsafe),
        Box::new(wall_clock::WallClockFreeQueryPath),
    ]
}

/// True when byte `b` can be part of a Rust identifier.
pub(crate) fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Finds every occurrence of `word` in `code` that stands alone as an
/// identifier (not embedded in a longer name), returning byte offsets.
pub(crate) fn ident_occurrences(code: &str, word: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(at) = code[from..].find(word) {
        let start = from + at;
        let end = start + word.len();
        let pre_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let post_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if pre_ok && post_ok {
            out.push(start);
        }
        from = start + 1;
    }
    out
}

/// The identifier ending at byte `end` of `code` (exclusive), if any —
/// e.g. the receiver name directly before a `.method(` call.
pub(crate) fn ident_ending_at(code: &str, end: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    let mut start = end;
    while start > 0 && is_ident_byte(bytes[start - 1]) {
        start -= 1;
    }
    if start == end {
        None
    } else {
        Some(&code[start..end])
    }
}
