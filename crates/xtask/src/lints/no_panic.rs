//! `no-panic-in-lib`: library code must not contain partial-function
//! escapes.
//!
//! **Contract protected.** The north-star architecture (ROADMAP: query
//! server, sharded fan-out) turns every library panic into an availability
//! bug: one `unwrap()` on an edge-case input kills a worker holding claimed
//! batch chunks. Library code therefore returns `Result`/`Option`, proves
//! the invariant with `assert!` (which documents *what* holds, not just
//! that something broke), or annotates the line with
//! `lint:allow(no-panic-in-lib, <reason>)` stating why the panic is
//! unreachable or is the correct propagation (e.g. re-raising a worker
//! thread's own panic). Tests, benches, examples, and binary entry points
//! are out of scope — panicking on bad CLI arguments or failed test
//! expectations is idiomatic there.

use super::{ident_ending_at, ident_occurrences, Lint};
use crate::allow;
use crate::diag::Diagnostic;
use crate::walk::{FileKind, SourceFile};

/// Macro invocations that unconditionally panic.
const PANIC_MACROS: [&str; 3] = ["panic!", "unimplemented!", "todo!"];
/// Method calls that panic on the empty case. `.unwrap()` must match
/// exactly — `unwrap_or`/`unwrap_or_else`/`unwrap_or_default` are total.
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

/// See module docs.
pub struct NoPanicInLib;

impl Lint for NoPanicInLib {
    fn name(&self) -> &'static str {
        "no-panic-in-lib"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if file.kind != FileKind::Lib {
            return;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let Some(what) = panic_site(&line.code) else {
                continue;
            };
            if allow::allows(file, idx, self.name()) {
                continue;
            }
            out.push(Diagnostic {
                path: file.path.clone(),
                line: idx + 1,
                lint: self.name(),
                message: format!(
                    "`{what}` can panic in library code; return the error, prove the \
                     invariant with an assert, or justify with \
                     lint:allow(no-panic-in-lib, <reason>)"
                ),
            });
        }
    }
}

/// The first panicking construct on the line, as display text.
fn panic_site(code: &str) -> Option<String> {
    for mac in PANIC_MACROS {
        let bare = &mac[..mac.len() - 1];
        if ident_occurrences(code, bare)
            .into_iter()
            .any(|at| code[at + bare.len()..].starts_with('!'))
        {
            return Some(format!("{mac}(...)"));
        }
    }
    for method in PANIC_METHODS {
        for at in ident_occurrences(code, method) {
            // Must be a method call `.unwrap()` / `.expect(` — not a free
            // function, not an `unwrap_or` family member (the identifier
            // boundary already excludes those), not `#[expect(...)]`.
            if at == 0 || code.as_bytes()[at - 1] != b'.' {
                continue;
            }
            let after = &code[at + method.len()..];
            let is_call = match method {
                "unwrap" => after.starts_with("()"),
                _ => after.starts_with('('),
            };
            if is_call && ident_ending_at(code, at - 1).is_none_or(|r| r != "self") {
                return Some(format!(".{method}(...)"));
            }
        }
    }
    None
}
