//! `nondeterministic-iter`: no hash-order iteration in result-producing
//! crates.
//!
//! **Contract protected.** Every externally observable ordering in this
//! workspace — `search_all`'s first-discovery order, the sharded exact-merge
//! protocol's `(pass, step, id)` sort, batch == sequential equivalence — is
//! pinned by tests that can only *sample* inputs. A single `for … in map`
//! over a `HashMap`/`FxHashMap` in a result path reintroduces iteration
//! order that depends on hash seeds, insertion history, or capacity, and
//! breaks those contracts only on some inputs. Inside the result-producing
//! crates (`core`, `baselines`, `join`) any iteration over a hash-keyed
//! collection is therefore an error unless the line carries
//! `lint:allow(nondeterministic-iter, <reason>)` — the legitimate uses are
//! order-independent reductions (`.values().map(Vec::len).sum()`), and the
//! annotation forces that argument to be written down.
//!
//! **Detection.** A lexer can't do type inference, so the lint tracks names:
//! any identifier declared or bound with a `HashMap`/`HashSet`/`FxHashMap`/
//! `FxHashSet` type in the same file (let bindings, struct fields, fn
//! parameters) is treated as hash-keyed, and iterating it — `.iter()`,
//! `.keys()`, `.values()`, `.drain()`, `for … in` — is flagged. The
//! map-only methods `.keys()`/`.values()`/`.into_keys()`/`.into_values()`
//! are additionally flagged on *any* receiver (except names tracked as
//! `BTreeMap`/`BTreeSet`, whose order is deterministic), which catches
//! cross-file fields like `rep.buckets.values()`.

use std::collections::BTreeSet;

use super::{ident_ending_at, ident_occurrences, Lint};
use crate::allow;
use crate::diag::Diagnostic;
use crate::walk::{FileKind, SourceFile};

/// Crates whose outputs are ordering-contracted (see module docs).
const RESULT_CRATES: [&str; 3] = ["core", "baselines", "join"];
/// Hash-keyed collection type names to track (std and the in-tree Fx pair).
const HASH_TYPES: [&str; 4] = ["FxHashMap", "FxHashSet", "HashMap", "HashSet"];
/// Deterministically ordered collections whose map-like methods are fine.
const ORDERED_TYPES: [&str; 2] = ["BTreeMap", "BTreeSet"];
/// Methods that iterate a collection in storage order.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];
/// Methods that only exist on map-like types, flagged on any receiver.
const MAP_ONLY_METHODS: [&str; 4] = ["keys", "into_keys", "values", "values_mut"];

/// See module docs.
pub struct NondeterministicIter;

impl Lint for NondeterministicIter {
    fn name(&self) -> &'static str {
        "nondeterministic-iter"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if file.kind != FileKind::Lib || !RESULT_CRATES.contains(&file.crate_name.as_str()) {
            return;
        }
        let hashed = declared_names(file, &HASH_TYPES);
        let ordered = declared_names(file, &ORDERED_TYPES);

        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let culprit = hashed
                .iter()
                .find_map(|name| iterates_name(&line.code, name).then(|| format!("`{name}`")))
                .or_else(|| map_only_call(&line.code, &ordered));
            let Some(culprit) = culprit else { continue };
            if allow::allows(file, idx, self.name()) {
                continue;
            }
            out.push(Diagnostic {
                path: file.path.clone(),
                line: idx + 1,
                lint: self.name(),
                message: format!(
                    "iteration over hash-keyed collection {culprit} has nondeterministic \
                     order in a result-producing crate; sort the output or justify with \
                     lint:allow(nondeterministic-iter, <reason>)"
                ),
            });
        }
    }
}

/// Collects identifiers bound to any of `types` anywhere in the file: let
/// bindings (`let x = FxHashMap::default()`), typed bindings / struct fields
/// / fn params (`x: &mut FxHashSet<u32>`).
fn declared_names(file: &SourceFile, types: &[&str]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for line in &file.lines {
        let code = line.code.trim_start();
        if code.starts_with("use ") || code.starts_with("pub use ") {
            continue;
        }
        for ty in types {
            for at in ident_occurrences(&line.code, ty) {
                if let Some(name) = binding_before(&line.code, at) {
                    names.insert(name);
                }
            }
        }
    }
    names
}

/// Given a type token at byte `at`, walks left over the declaration syntax
/// (`:`, `=`, `&`, `mut`, lifetimes, and qualifying `path::` segments) to
/// the identifier being bound, if this occurrence is a binding at all.
fn binding_before(code: &str, at: usize) -> Option<String> {
    let mut before = code[..at].trim_end();
    // Strip a qualifying path (`skewsearch_hashing::FxHashMap`).
    while let Some(stripped) = before.strip_suffix("::") {
        let ident = ident_ending_at(stripped, stripped.len())?;
        before = stripped[..stripped.len() - ident.len()].trim_end();
    }
    // Strip reference/mutability/lifetime noise between `:` and the type.
    loop {
        let trimmed = before.trim_end();
        if let Some(s) = trimmed.strip_suffix("mut") {
            if s.is_empty() || !super::is_ident_byte(s.as_bytes()[s.len() - 1]) {
                before = s;
                continue;
            }
        }
        if let Some(s) = trimmed.strip_suffix('&') {
            before = s;
            continue;
        }
        // A lifetime like `'a`: identifier preceded by a quote.
        if let Some(ident) = ident_ending_at(trimmed, trimmed.len()) {
            let head = &trimmed[..trimmed.len() - ident.len()];
            if let Some(stripped) = head.strip_suffix('\'') {
                before = stripped;
                continue;
            }
        }
        before = trimmed;
        break;
    }
    if let Some(s) = before.strip_suffix(':') {
        let s = s.trim_end();
        let name = ident_ending_at(s, s.len())?;
        return binding_name(name);
    }
    if let Some(s) = before.strip_suffix('=') {
        let s = s.trim_end_matches([' ', ':']).trim_end();
        let name = ident_ending_at(s, s.len())?;
        return binding_name(name);
    }
    None
}

/// Filters out keywords and path segments that `binding_before` can land on.
fn binding_name(name: &str) -> Option<String> {
    const NOT_NAMES: [&str; 8] = ["let", "mut", "ref", "pub", "in", "if", "self", "Self"];
    if NOT_NAMES.contains(&name) {
        None
    } else {
        Some(name.to_string())
    }
}

/// True when `code` iterates the tracked collection `name`: either
/// `name.<iter-method>(` or a `for … in` whose source expression mentions
/// `name`.
fn iterates_name(code: &str, name: &str) -> bool {
    for at in ident_occurrences(code, name) {
        let after = &code[at + name.len()..];
        if let Some(rest) = after.strip_prefix('.') {
            if ITER_METHODS
                .iter()
                .any(|m| rest.strip_prefix(m).is_some_and(|r| r.starts_with('(')))
            {
                return true;
            }
        }
    }
    if let Some(src) = for_loop_source(code) {
        if !ident_occurrences(src, name).is_empty() {
            return true;
        }
    }
    false
}

/// The source expression of a `for <pat> in <expr> {` on this line, if any.
fn for_loop_source(code: &str) -> Option<&str> {
    let for_at = ident_occurrences(code, "for").into_iter().next()?;
    let after_for = &code[for_at + 3..];
    let in_at = ident_occurrences(after_for, "in").into_iter().next()?;
    let src = &after_for[in_at + 2..];
    Some(src.trim_end().trim_end_matches('{'))
}

/// Flags `.keys()` / `.values()` style calls on receivers that are not
/// tracked as ordered (`BTreeMap`/`BTreeSet`). Returns a display name for
/// the receiver.
fn map_only_call(code: &str, ordered: &BTreeSet<String>) -> Option<String> {
    for method in MAP_ONLY_METHODS {
        for at in ident_occurrences(code, method) {
            let after = &code[at + method.len()..];
            if !after.starts_with('(') {
                continue;
            }
            if at == 0 || code.as_bytes()[at - 1] != b'.' {
                continue;
            }
            let receiver = ident_ending_at(code, at - 1);
            match receiver {
                Some(name) if ordered.contains(name) => continue,
                Some(name) => return Some(format!("`{name}`")),
                None => return Some("this expression".to_string()),
            }
        }
    }
    None
}
