//! `relaxed-ordering-justified`: weak atomic orderings carry their proof.
//!
//! **Contract protected.** The batch executor's claim cursor
//! (`core/src/batch.rs`) and the enumeration counter (`core/src/engine.rs`)
//! use `Ordering::Relaxed` *soundly* — the cursor is only a work ticket and
//! results are re-ordered by slot afterwards; the counter is a monotone
//! statistic. But "batch == sequential at any thread count" is exactly the
//! kind of contract a future `Relaxed` can silently break: the compiler
//! accepts any ordering, the tests sample a few interleavings, and the bug
//! ships. This lint does not try to model the memory order; it enforces the
//! cheaper invariant that every `Ordering::Relaxed` / `Ordering::AcqRel`
//! use sits next to a comment arguing why the weak ordering cannot affect
//! observable results — same line or the line directly above.

use super::Lint;
use crate::allow;
use crate::diag::Diagnostic;
use crate::walk::{FileKind, SourceFile};

/// Orderings that demand a written justification. `SeqCst`, `Acquire`, and
/// `Release` are the conservative defaults and pass silently.
const WEAK_ORDERINGS: [&str; 2] = ["Ordering::Relaxed", "Ordering::AcqRel"];

/// See module docs.
pub struct RelaxedOrderingJustified;

impl Lint for RelaxedOrderingJustified {
    fn name(&self) -> &'static str {
        "relaxed-ordering-justified"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if file.kind != FileKind::Lib {
            return;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let Some(which) = WEAK_ORDERINGS.iter().find(|o| line.code.contains(*o)) else {
                continue;
            };
            if is_justified(file, idx) || allow::allows(file, idx, self.name()) {
                continue;
            }
            out.push(Diagnostic {
                path: file.path.clone(),
                line: idx + 1,
                lint: self.name(),
                message: format!(
                    "`{which}` without an adjacent justification; add a comment on this \
                     line or the line above arguing why the weak ordering cannot change \
                     observable results"
                ),
            });
        }
    }
}

/// A use is justified by any non-empty comment on the same line, or by a
/// comment-only line directly above (the usual block-comment-then-code
/// shape).
fn is_justified(file: &SourceFile, idx: usize) -> bool {
    if !file.lines[idx].comment.trim().is_empty() {
        return true;
    }
    idx > 0 && {
        let above = &file.lines[idx - 1];
        above.is_code_blank() && !above.comment.trim().is_empty()
    }
}
