//! `wall-clock-free-query-path`: query answers are pure functions of
//! `(index, query)`.
//!
//! **Contract protected.** The equivalence suites (`plan_equivalence`,
//! `shard_equivalence`, `batch_equivalence`) assert that planning, sharding,
//! and batching are *observationally invisible* — the same query against the
//! same built index yields byte-identical matches. That only holds if
//! nothing on the query path reads an ambient source that differs across
//! runs, processes, or machines: wall-clock time (`Instant::now`,
//! `SystemTime`) and the per-process hash seed (`RandomState`) are the two
//! stdlib back doors. They are forbidden outright in the five core modules
//! that execute queries — `index`, `plan`, `shard`, `engine`, `batch` —
//! where even "just for logging" uses tend to leak into heuristics later.
//! Timing belongs in benches and experiments; randomized *build* seeds come
//! in through the caller's explicit `Rng`.
//!
//! The server crate (`crates/server/src/`) is also in scope: it sits
//! directly on the query path (its equivalence contract is that a served
//! answer is byte-identical to the in-process call), yet it legitimately
//! needs *one* clock read to arm request deadlines and measure latency.
//! That single site carries an explicit `lint:allow` with its
//! justification; every other ambient read in the crate is a violation.

use super::Lint;
use crate::allow;
use crate::diag::Diagnostic;
use crate::walk::SourceFile;

/// The result-critical core modules that execute queries.
const QUERY_PATH: [&str; 5] = [
    "crates/core/src/index.rs",
    "crates/core/src/plan.rs",
    "crates/core/src/shard.rs",
    "crates/core/src/engine.rs",
    "crates/core/src/batch.rs",
];

/// Ambient-state constructors that make answers depend on when/where the
/// process runs.
const FORBIDDEN: [&str; 3] = ["Instant::now", "SystemTime", "RandomState"];

/// See module docs.
pub struct WallClockFreeQueryPath;

impl Lint for WallClockFreeQueryPath {
    fn name(&self) -> &'static str {
        "wall-clock-free-query-path"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let path = file.path.to_string_lossy().replace('\\', "/");
        if !QUERY_PATH.contains(&path.as_str()) && !path.starts_with("crates/server/src/") {
            return;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let Some(what) = FORBIDDEN.iter().find(|p| line.code.contains(*p)) else {
                continue;
            };
            if allow::allows(file, idx, self.name()) {
                continue;
            }
            out.push(Diagnostic {
                path: file.path.clone(),
                line: idx + 1,
                lint: self.name(),
                message: format!(
                    "`{what}` on the query path makes answers depend on time or \
                     per-process hash seeds; move timing to benches/experiments or \
                     justify with lint:allow(wall-clock-free-query-path, <reason>)"
                ),
            });
        }
    }
}
