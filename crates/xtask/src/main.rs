//! CLI driver: `cargo run -p xtask -- lint [--root <path>]`.
//!
//! Exits 0 on a clean tree, 1 when any lint finds a violation (printing one
//! `file:line: [lint-name] message` diagnostic per finding), 2 on usage or
//! I/O errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut command: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root requires a path"),
            },
            "lint" if command.is_none() => command = Some(arg),
            _ => return usage(&format!("unrecognized argument `{arg}`")),
        }
    }
    if command.as_deref() != Some("lint") {
        return usage("expected the `lint` subcommand");
    }

    // Default to the workspace root relative to this crate's manifest, so
    // `cargo run -p xtask -- lint` works from any directory in the repo.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });

    match xtask::lint_workspace(&root) {
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::from(2)
        }
        Ok(diags) if diags.is_empty() => {
            eprintln!("skewcheck: clean");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            eprintln!(
                "skewcheck: {} finding(s) — see docs/STATIC_ANALYSIS.md for the \
                 contracts and the lint:allow escape hatch",
                diags.len()
            );
            ExitCode::FAILURE
        }
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("error: {problem}\nusage: cargo run -p xtask -- lint [--root <workspace-root>]");
    ExitCode::from(2)
}
