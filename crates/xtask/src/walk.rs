//! Workspace walking without `cargo metadata`.
//!
//! The workspace layout is fixed by convention — a root facade package plus
//! `crates/<name>` members — so the walker enumerates it directly from the
//! filesystem: no network, no cargo invocation, no JSON parsing. Vendored
//! dependency stand-ins (`vendor/`), build output (`target/`), and
//! skewcheck's own lint fixtures (`tests/fixtures/`) are excluded; they are
//! respectively third-party, generated, and *intentionally* violating.

use std::path::{Path, PathBuf};

use crate::lexer::{self, Line};

/// What kind of cargo target a file belongs to; lints scope themselves by
/// this (e.g. panics are fine in tests and benches, not in library code).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/**` except `src/bin/**` — library code, the strictest scope.
    Lib,
    /// `src/bin/**` or `src/main.rs` — binary entry points (CLI glue may
    /// panic on bad arguments).
    Bin,
    /// `tests/**` — integration tests.
    Test,
    /// `benches/**` — benchmarks.
    Bench,
    /// `examples/**` — examples.
    Example,
}

/// One workspace source file, lexed and tagged with enough metadata for
/// every lint to decide applicability.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, as printed in diagnostics.
    pub path: PathBuf,
    /// Short crate name: the `crates/<name>` directory, or `"skewsearch"`
    /// for the root facade package.
    pub crate_name: String,
    /// Which cargo target the file belongs to.
    pub kind: FileKind,
    /// True for the crate root (`src/lib.rs`), where crate-level attributes
    /// like `#![forbid(unsafe_code)]` must live.
    pub is_crate_root: bool,
    /// The lexed lines (see [`crate::lexer`]).
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Lexes `source` into a [`SourceFile`]. Fixture tests use this directly
    /// to fabricate files with any metadata they need.
    pub fn parse(
        path: impl Into<PathBuf>,
        crate_name: impl Into<String>,
        kind: FileKind,
        is_crate_root: bool,
        source: &str,
    ) -> Self {
        SourceFile {
            path: path.into(),
            crate_name: crate_name.into(),
            kind,
            is_crate_root,
            lines: lexer::split_lines(source),
        }
    }
}

/// Collects every lintable `.rs` file in the workspace rooted at `root`, in
/// a deterministic (path-sorted) order. I/O errors on individual files are
/// returned as messages so the driver can report and fail loudly rather
/// than silently lint a partial tree.
pub fn workspace_files(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut packages: Vec<(String, PathBuf)> = vec![("skewsearch".to_string(), root.to_path_buf())];
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = Vec::new();
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read crates/: {e}"))?;
        let path = entry.path();
        if path.join("Cargo.toml").is_file() {
            members.push(path);
        }
    }
    members.sort();
    for member in members {
        let name = member
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| format!("non-UTF-8 crate dir under {}", crates_dir.display()))?
            .to_string();
        packages.push((name, member));
    }

    let mut files = Vec::new();
    for (crate_name, pkg_root) in packages {
        for (dir, kind) in [
            ("src", FileKind::Lib),
            ("tests", FileKind::Test),
            ("benches", FileKind::Bench),
            ("examples", FileKind::Example),
        ] {
            let dir_path = pkg_root.join(dir);
            if !dir_path.is_dir() {
                continue;
            }
            let mut rs_files = Vec::new();
            collect_rs(&dir_path, &mut rs_files)?;
            rs_files.sort();
            for abs in rs_files {
                let rel = abs
                    .strip_prefix(root)
                    .map_err(|_| format!("{} escapes the workspace root", abs.display()))?
                    .to_path_buf();
                let kind = refine_kind(kind, &rel);
                let is_crate_root = kind == FileKind::Lib
                    && abs.file_name().is_some_and(|n| n == "lib.rs")
                    && abs.parent() == Some(dir_path.as_path());
                let source = std::fs::read_to_string(&abs)
                    .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
                files.push(SourceFile::parse(
                    rel,
                    crate_name.clone(),
                    kind,
                    is_crate_root,
                    &source,
                ));
            }
        }
    }
    Ok(files)
}

/// Recursively gathers `.rs` files under `dir`, skipping fixture trees.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            // Lint fixtures are deliberate violations; don't lint them.
            if path.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Demotes `src/bin/**` and `src/main.rs` from [`FileKind::Lib`] to
/// [`FileKind::Bin`].
fn refine_kind(kind: FileKind, rel: &Path) -> FileKind {
    if kind != FileKind::Lib {
        return kind;
    }
    let mut components = rel.components().rev();
    let file = components.next();
    let parent = components.next();
    let is_bin_dir = parent.is_some_and(|c| c.as_os_str() == "bin");
    let is_main = file.is_some_and(|c| c.as_os_str() == "main.rs");
    if is_bin_dir || is_main {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}
