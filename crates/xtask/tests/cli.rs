//! End-to-end exit-code contract of the `xtask lint` binary: 0 on a clean
//! tree, 1 with findings on stdout, 2 on usage errors. CI keys off these
//! codes, so they are pinned here against synthetic workspaces.

use std::path::{Path, PathBuf};
use std::process::Command;

/// A throwaway workspace directory, removed on drop.
struct TempWs(PathBuf);

impl TempWs {
    fn new(tag: &str, crate_src: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("skewcheck-cli-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let src = dir.join("crates/demo/src");
        std::fs::create_dir_all(&src).expect("create temp workspace");
        std::fs::write(
            dir.join("crates/demo/Cargo.toml"),
            "[package]\nname = \"demo\"\n",
        )
        .expect("write manifest");
        std::fs::write(src.join("lib.rs"), crate_src).expect("write lib.rs");
        TempWs(dir)
    }
}

impl Drop for TempWs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn run_lint(root: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .arg(root)
        .output()
        .expect("spawn xtask")
}

#[test]
fn clean_workspace_exits_zero() {
    let ws = TempWs::new(
        "clean",
        "#![forbid(unsafe_code)]\n//! Demo crate.\npub fn id(x: u64) -> u64 {\n    x\n}\n",
    );
    let out = run_lint(&ws.0);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(out.stdout.is_empty(), "clean run must print no findings");
}

#[test]
fn violating_workspace_exits_one_with_findings_on_stdout() {
    let ws = TempWs::new(
        "dirty",
        "//! Demo crate missing the unsafe ban.\npub fn id() {}\n",
    );
    let out = run_lint(&ws.0);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    assert!(
        stdout.contains("[forbid-unsafe]") && stdout.contains("crates/demo/src/lib.rs:1:"),
        "unexpected findings: {stdout}"
    );
}

#[test]
fn bad_usage_exits_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("frobnicate")
        .output()
        .expect("spawn xtask");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}
