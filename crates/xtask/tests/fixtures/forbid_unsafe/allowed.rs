//! Fixture: a crate that genuinely needs `unsafe` opts out in writing.
// lint:allow(forbid-unsafe, this crate will wrap mmap for zero-copy index loads; its unsafe is audited and gated behind deny(unsafe_op_in_unsafe_fn))

pub fn noop() {}
