//! Fixture: a crate root pinning the unsafe-free state.

#![forbid(unsafe_code)]

pub fn noop() {}
