//! Fixture: a crate root that forgot to lock out `unsafe`.

pub fn noop() {}
