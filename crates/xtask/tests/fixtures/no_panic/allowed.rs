//! Fixture: a justified panic — propagating a worker's own panic.
pub fn join_worker(h: std::thread::JoinHandle<u32>) -> u32 {
    // lint:allow(no-panic-in-lib, join only errs when the worker itself panicked; re-raising it is the correct propagation)
    h.join().expect("worker panicked")
}
