//! Fixture: total library code — panics only in tests, and `unwrap_or`
//! family calls are not flagged.
pub fn head(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

pub fn head_or_zero(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_idiomatic_in_tests() {
        assert_eq!(super::head(&[1]).unwrap(), 1);
        let s = "panic! text inside a string is not code";
        assert!(s.contains("panic!"));
    }
}
