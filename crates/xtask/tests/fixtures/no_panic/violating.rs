//! Fixture: partial-function escapes in library code.
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn parse(s: &str) -> u32 {
    s.parse().expect("a number")
}

pub fn unfinished() -> u32 {
    unimplemented!("later")
}
