//! Fixture: an order-independent reduction, justified in writing.
use std::collections::HashMap;

pub fn total_entries(buckets: &HashMap<u64, Vec<u32>>) -> usize {
    // lint:allow(nondeterministic-iter, sum over bucket sizes is an order-independent reduction)
    buckets.values().map(Vec::len).sum()
}
