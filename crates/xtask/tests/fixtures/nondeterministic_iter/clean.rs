//! Fixture: hash-keyed collections used without iterating them (inserts,
//! membership, length) — the discipline the lint enforces.
pub fn count_distinct(xs: &[u64]) -> usize {
    let mut seen = std::collections::HashSet::new();
    for &x in xs {
        seen.insert(x);
    }
    seen.len()
}

pub fn sizes_in_key_order(keyed: &std::collections::BTreeMap<u64, Vec<u32>>) -> Vec<usize> {
    keyed.values().map(Vec::len).collect()
}
