//! Fixture: iterating hash-keyed collections in a result-producing crate.
use std::collections::HashMap;

pub fn bucket_sizes(buckets: &HashMap<u64, Vec<u32>>) -> Vec<usize> {
    let mut out = Vec::new();
    for (_k, v) in buckets {
        out.push(v.len());
    }
    out
}

pub fn first_key(index: &HashMap<u64, u32>) -> Option<u64> {
    index.keys().next().copied()
}
