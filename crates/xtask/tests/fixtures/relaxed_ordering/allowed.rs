//! Fixture: the lint:allow spelling of the same escape.
use std::sync::atomic::{AtomicUsize, Ordering};

pub fn next_ticket(cursor: &AtomicUsize) -> usize {
    // lint:allow(relaxed-ordering-justified, claim ticket only; ordering cannot change observable results)
    cursor.fetch_add(1, Ordering::Relaxed)
}
