//! Fixture: every weak ordering argues its own soundness.
use std::sync::atomic::{AtomicUsize, Ordering};

pub fn next_ticket(cursor: &AtomicUsize) -> usize {
    // Relaxed is sound: the cursor is only a work-claim ticket; fetch_add
    // is atomic under any ordering and no other memory is published
    // through this counter.
    cursor.fetch_add(1, Ordering::Relaxed)
}

pub fn strict_ticket(cursor: &AtomicUsize) -> usize {
    cursor.fetch_add(1, Ordering::SeqCst)
}
