//! Fixture: weak atomic orderings with no written justification.
use std::sync::atomic::{AtomicUsize, Ordering};

pub fn next_ticket(cursor: &AtomicUsize) -> usize {
    cursor.fetch_add(1, Ordering::Relaxed)
}

pub fn swap_flag(word: &AtomicUsize) -> usize {
    word.swap(1, Ordering::AcqRel)
}
