//! Fixture: a justified ambient read (e.g. an opt-in debug trace).
use std::time::Instant;

pub fn trace_stamp() -> u128 {
    // lint:allow(wall-clock-free-query-path, debug-trace timestamp only; the value never flows into candidate selection or ordering)
    Instant::now().elapsed().as_millis()
}
