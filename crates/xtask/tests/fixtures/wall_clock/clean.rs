//! Fixture: answers are pure functions of (index, query).
pub fn verify(candidate: u64, threshold: u64) -> bool {
    candidate >= threshold
}
