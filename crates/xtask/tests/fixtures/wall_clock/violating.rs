//! Fixture: ambient time / per-process hash seeds on the query path.

pub fn probe_deadline_ms() -> u128 {
    std::time::Instant::now().elapsed().as_millis()
}

pub fn stamp_is_recent() -> bool {
    let _ = std::time::SystemTime::now();
    true
}

pub fn seed_dependent_len() -> usize {
    let s = std::collections::hash_map::RandomState::new();
    std::mem::size_of_val(&s)
}
