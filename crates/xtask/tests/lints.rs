//! Fixture-driven self-tests for every skewcheck lint.
//!
//! Each lint has a fixture triple under `tests/fixtures/<lint>/`:
//! `violating.rs` (must produce exactly the asserted diagnostic lines),
//! `clean.rs` (must produce none), and `allowed.rs` (violating code made
//! clean by a `lint:allow(<lint>, <reason>)` annotation). The fixtures are
//! lexed through the same [`SourceFile::parse`] path the workspace walker
//! uses; only the metadata (crate, target kind, path) is fabricated so each
//! lint sees itself as in scope.

use std::path::Path;

use xtask::{lint_files, FileKind, SourceFile};

/// Reads `tests/fixtures/<dir>/<name>`.
fn fixture(dir: &str, name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(dir)
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lints one fabricated file and renders the diagnostics.
fn run(
    path: &str,
    crate_name: &str,
    kind: FileKind,
    is_crate_root: bool,
    source: &str,
) -> Vec<String> {
    let file = SourceFile::parse(path, crate_name, kind, is_crate_root, source);
    lint_files(std::slice::from_ref(&file))
        .iter()
        .map(|d| d.to_string())
        .collect()
}

/// Shorthand for the common case: a library file in `core`.
fn run_core_lib(dir: &str, name: &str) -> Vec<String> {
    let source = fixture(dir, name);
    run(
        &format!("crates/core/src/{name}"),
        "core",
        FileKind::Lib,
        false,
        &source,
    )
}

#[test]
fn nondeterministic_iter_flags_map_iteration() {
    let got = run_core_lib("nondeterministic_iter", "violating.rs");
    let expect = vec![
        "crates/core/src/violating.rs:6: [nondeterministic-iter] iteration over hash-keyed \
         collection `buckets` has nondeterministic order in a result-producing crate; sort \
         the output or justify with lint:allow(nondeterministic-iter, <reason>)"
            .to_string(),
        "crates/core/src/violating.rs:13: [nondeterministic-iter] iteration over hash-keyed \
         collection `index` has nondeterministic order in a result-producing crate; sort \
         the output or justify with lint:allow(nondeterministic-iter, <reason>)"
            .to_string(),
    ];
    assert_eq!(got, expect);
}

#[test]
fn nondeterministic_iter_passes_clean_and_allowed() {
    assert_eq!(
        run_core_lib("nondeterministic_iter", "clean.rs"),
        [] as [String; 0]
    );
    assert_eq!(
        run_core_lib("nondeterministic_iter", "allowed.rs"),
        [] as [String; 0]
    );
}

#[test]
fn nondeterministic_iter_only_applies_to_result_crates() {
    let source = fixture("nondeterministic_iter", "violating.rs");
    // Same code in a non-result crate (datagen) or a test target is out of
    // scope for this lint.
    assert_eq!(
        run(
            "crates/datagen/src/violating.rs",
            "datagen",
            FileKind::Lib,
            false,
            &source
        ),
        [] as [String; 0]
    );
    assert_eq!(
        run(
            "crates/core/tests/violating.rs",
            "core",
            FileKind::Test,
            false,
            &source
        ),
        [] as [String; 0]
    );
}

#[test]
fn relaxed_ordering_flags_unjustified_weak_orderings() {
    let got = run_core_lib("relaxed_ordering", "violating.rs");
    let expect = vec![
        "crates/core/src/violating.rs:5: [relaxed-ordering-justified] `Ordering::Relaxed` \
         without an adjacent justification; add a comment on this line or the line above \
         arguing why the weak ordering cannot change observable results"
            .to_string(),
        "crates/core/src/violating.rs:9: [relaxed-ordering-justified] `Ordering::AcqRel` \
         without an adjacent justification; add a comment on this line or the line above \
         arguing why the weak ordering cannot change observable results"
            .to_string(),
    ];
    assert_eq!(got, expect);
}

#[test]
fn relaxed_ordering_passes_clean_and_allowed() {
    assert_eq!(
        run_core_lib("relaxed_ordering", "clean.rs"),
        [] as [String; 0]
    );
    assert_eq!(
        run_core_lib("relaxed_ordering", "allowed.rs"),
        [] as [String; 0]
    );
}

#[test]
fn no_panic_flags_partial_functions_in_lib_code() {
    let got = run_core_lib("no_panic", "violating.rs");
    let expect = vec![
        "crates/core/src/violating.rs:3: [no-panic-in-lib] `.unwrap(...)` can panic in \
         library code; return the error, prove the invariant with an assert, or justify \
         with lint:allow(no-panic-in-lib, <reason>)"
            .to_string(),
        "crates/core/src/violating.rs:7: [no-panic-in-lib] `.expect(...)` can panic in \
         library code; return the error, prove the invariant with an assert, or justify \
         with lint:allow(no-panic-in-lib, <reason>)"
            .to_string(),
        "crates/core/src/violating.rs:11: [no-panic-in-lib] `unimplemented!(...)` can panic \
         in library code; return the error, prove the invariant with an assert, or justify \
         with lint:allow(no-panic-in-lib, <reason>)"
            .to_string(),
    ];
    assert_eq!(got, expect);
}

#[test]
fn no_panic_passes_clean_and_allowed() {
    // clean.rs includes an `unwrap()` inside `#[cfg(test)]` and an
    // `unwrap_or` call — both must stay silent.
    assert_eq!(run_core_lib("no_panic", "clean.rs"), [] as [String; 0]);
    assert_eq!(run_core_lib("no_panic", "allowed.rs"), [] as [String; 0]);
}

#[test]
fn no_panic_skips_tests_benches_examples_and_bins() {
    let source = fixture("no_panic", "violating.rs");
    for (path, kind) in [
        ("crates/core/tests/t.rs", FileKind::Test),
        ("crates/bench/benches/b.rs", FileKind::Bench),
        ("examples/e.rs", FileKind::Example),
        ("crates/experiments/src/bin/repro.rs", FileKind::Bin),
    ] {
        assert_eq!(
            run(path, "core", kind, false, &source),
            [] as [String; 0],
            "{path}"
        );
    }
}

#[test]
fn forbid_unsafe_requires_the_attribute_on_crate_roots() {
    let source = fixture("forbid_unsafe", "violating.rs");
    let got = run(
        "crates/core/src/lib.rs",
        "core",
        FileKind::Lib,
        true,
        &source,
    );
    let expect = vec![
        "crates/core/src/lib.rs:1: [forbid-unsafe] crate root is missing \
         `#![forbid(unsafe_code)]`; the workspace is unsafe-free and every root pins that \
         — opt out (and say why) with a file-level lint:allow(forbid-unsafe, <reason>)"
            .to_string(),
    ];
    assert_eq!(got, expect);
    // The same file not as a crate root is out of scope.
    assert_eq!(
        run(
            "crates/core/src/other.rs",
            "core",
            FileKind::Lib,
            false,
            &source
        ),
        [] as [String; 0]
    );
}

#[test]
fn forbid_unsafe_passes_clean_and_allowed() {
    let clean = fixture("forbid_unsafe", "clean.rs");
    let allowed = fixture("forbid_unsafe", "allowed.rs");
    assert_eq!(
        run(
            "crates/core/src/lib.rs",
            "core",
            FileKind::Lib,
            true,
            &clean
        ),
        [] as [String; 0]
    );
    assert_eq!(
        run(
            "crates/core/src/lib.rs",
            "core",
            FileKind::Lib,
            true,
            &allowed
        ),
        [] as [String; 0]
    );
}

#[test]
fn wall_clock_flags_ambient_sources_on_the_query_path() {
    let source = fixture("wall_clock", "violating.rs");
    let got = run(
        "crates/core/src/engine.rs",
        "core",
        FileKind::Lib,
        false,
        &source,
    );
    let expect = vec![
        "crates/core/src/engine.rs:4: [wall-clock-free-query-path] `Instant::now` on the \
         query path makes answers depend on time or per-process hash seeds; move timing to \
         benches/experiments or justify with lint:allow(wall-clock-free-query-path, <reason>)"
            .to_string(),
        "crates/core/src/engine.rs:8: [wall-clock-free-query-path] `SystemTime` on the \
         query path makes answers depend on time or per-process hash seeds; move timing to \
         benches/experiments or justify with lint:allow(wall-clock-free-query-path, <reason>)"
            .to_string(),
        "crates/core/src/engine.rs:13: [wall-clock-free-query-path] `RandomState` on the \
         query path makes answers depend on time or per-process hash seeds; move timing to \
         benches/experiments or justify with lint:allow(wall-clock-free-query-path, <reason>)"
            .to_string(),
    ];
    assert_eq!(got, expect);
}

#[test]
fn wall_clock_scopes_to_the_five_query_modules() {
    let source = fixture("wall_clock", "violating.rs");
    // scheme.rs is core but not on the query path; experiments time freely.
    assert_eq!(
        run(
            "crates/core/src/scheme.rs",
            "core",
            FileKind::Lib,
            false,
            &source
        ),
        [] as [String; 0]
    );
    assert_eq!(
        run(
            "crates/experiments/src/scaling.rs",
            "experiments",
            FileKind::Lib,
            false,
            &source
        ),
        [] as [String; 0]
    );
}

#[test]
fn wall_clock_passes_clean_and_allowed() {
    let clean = fixture("wall_clock", "clean.rs");
    let allowed = fixture("wall_clock", "allowed.rs");
    assert_eq!(
        run(
            "crates/core/src/batch.rs",
            "core",
            FileKind::Lib,
            false,
            &clean
        ),
        [] as [String; 0]
    );
    assert_eq!(
        run(
            "crates/core/src/plan.rs",
            "core",
            FileKind::Lib,
            false,
            &allowed
        ),
        [] as [String; 0]
    );
}

#[test]
fn wall_clock_covers_the_server_crate() {
    // The service layer sits on the query path (byte-identical answers over
    // the wire), so ambient reads there are violations too...
    let source = fixture("wall_clock", "violating.rs");
    let got = run(
        "crates/server/src/server.rs",
        "server",
        FileKind::Lib,
        false,
        &source,
    );
    assert_eq!(got.len(), 3, "{got:?}");
    assert!(got[0].contains("crates/server/src/server.rs:4"));
    assert!(got[0].contains("[wall-clock-free-query-path]"));
    // ...except the one justified deadline/latency site, which carries an
    // explicit allowance exactly like core's escape hatch.
    let allowed = fixture("wall_clock", "allowed.rs");
    assert_eq!(
        run(
            "crates/server/src/service.rs",
            "server",
            FileKind::Lib,
            false,
            &allowed
        ),
        [] as [String; 0]
    );
    // Guard against scope creep in the other direction: extending coverage
    // to the server must not have loosened core — a bare `Instant::now` in
    // the engine still fails.
    let core = run(
        "crates/core/src/engine.rs",
        "core",
        FileKind::Lib,
        false,
        &source,
    );
    assert_eq!(core.len(), 3, "{core:?}");
}

#[test]
fn malformed_or_unknown_allow_annotations_are_reported() {
    let source =
        "pub fn f() {}\n// lint:allow(no-panic-in-lib)\n// lint:allow(not-a-lint, reason)\n";
    let got = run("crates/core/src/x.rs", "core", FileKind::Lib, false, source);
    assert_eq!(got.len(), 2, "{got:?}");
    assert!(got[0].contains("[lint-allow-syntax]") && got[0].contains("missing a reason"));
    assert!(got[1].contains("[lint-allow-syntax]") && got[1].contains("unknown lint `not-a-lint`"));
}

/// The gate the CI job enforces: the real tree is clean. Running it here
/// too means a violation fails `cargo test` before CI ever sees it.
#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = xtask::lint_workspace(&root).expect("workspace walk");
    assert!(
        diags.is_empty(),
        "skewcheck found violations:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
