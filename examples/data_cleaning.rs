//! Data cleaning: near-duplicate record detection — the paper's §1 use case
//! ("these primitives can be used in data cleaning to identify different
//! representations of the same object").
//!
//! We synthesize a corpus of token-set records over a skewed vocabulary
//! (Zipfian token frequencies, as in real text), plant noisy duplicates
//! (token dropped / token substituted), and compare three dedupers:
//! the paper's adversarial index (Theorem 2), exact prefix filtering, and
//! the exact scan.
//!
//! ```sh
//! cargo run --release --example data_cleaning
//! ```

// Examples report wall-clock timings to the console by design; the
// disallowed-methods ban protects library code, not demo output.
#![allow(clippy::disallowed_methods)]

use rand::{rngs::StdRng, Rng, SeedableRng};
use skewsearch::baselines::{BruteForce, PrefixFilterIndex};
use skewsearch::core::{
    AdversarialIndex, AdversarialParams, IndexOptions, Repetitions, SetSimilaritySearch,
};
use skewsearch::datagen::{BernoulliProfile, Dataset, VectorSampler};
use skewsearch::sets::SparseVec;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);

    // Vocabulary of 30k tokens, Zipfian frequencies, ~40 tokens per record.
    let vocab = 30_000;
    let profile = BernoulliProfile::zipf(vocab, 0.9, 40.0, 0.4).expect("profile");
    let n_clean = 8_000;
    let clean = Dataset::generate(&profile, n_clean, &mut rng);

    // Plant dirty duplicates of 500 records: drop up to 3 tokens, substitute
    // up to 2 with random vocabulary tokens.
    let n_dirty = 500;
    let sampler = VectorSampler::new(&profile);
    let mut dirty: Vec<(usize, SparseVec)> = Vec::with_capacity(n_dirty);
    for k in 0..n_dirty {
        let src = (k * 13) % n_clean;
        let mut dims = clean.vector(src).dims().to_vec();
        for _ in 0..rng.random_range(0..=3usize) {
            if dims.len() > 4 {
                let drop = rng.random_range(0..dims.len());
                dims.remove(drop);
            }
        }
        for _ in 0..rng.random_range(0..=2usize) {
            dims.push(rng.random_range(0..vocab as u32));
        }
        dirty.push((src, SparseVec::from_unsorted(dims)));
    }
    let _ = sampler; // (kept for clarity: dirty records reuse clean tokens)

    let b1 = 0.8; // near-duplicate bar: 80% token overlap
    println!("corpus: {n_clean} records, {n_dirty} dirty duplicates, threshold b1 = {b1}");

    // 1. The paper's adversarial index.
    let t = Instant::now();
    let params = AdversarialParams::new(b1)
        .expect("valid threshold")
        .with_options(IndexOptions {
            repetitions: Repetitions::Auto { factor: 2.0 },
            ..IndexOptions::default()
        });
    let lsf = AdversarialIndex::build(&clean, &profile, params, &mut rng);
    let lsf_build = t.elapsed();

    // 2. Exact prefix filtering.
    let t = Instant::now();
    let prefix = PrefixFilterIndex::build(&clean, b1);
    let prefix_build = t.elapsed();

    // 3. Exact scan.
    let brute = BruteForce::new(clean.vectors().to_vec(), b1);

    type Search<'a> = Box<dyn Fn(&SparseVec) -> Option<usize> + 'a>;
    let methods: Vec<(&str, Search)> = vec![
        (
            "skewsearch (Thm 2)",
            Box::new(|q: &SparseVec| lsf.search(q).map(|m| m.id)),
        ),
        (
            "prefix filter",
            Box::new(|q: &SparseVec| prefix.search(q).map(|m| m.id)),
        ),
        (
            "brute force",
            Box::new(|q: &SparseVec| brute.search(q).map(|m| m.id)),
        ),
    ];
    let mut results = Vec::new();
    for (name, search) in methods {
        let t = Instant::now();
        let mut found = 0;
        let mut found_source = 0;
        for (src, q) in &dirty {
            if let Some(id) = search(q) {
                // Any record at similarity >= b1 is a dedup hit; usually it
                // is the source record itself.
                found += 1;
                found_source += (id == *src) as usize;
            }
        }
        let _ = found_source;
        let dt = t.elapsed();
        results.push((name, found, dt));
        println!(
            "{name:>20}: {found}/{n_dirty} duplicates flagged in {dt:?} ({:.0} µs/record)",
            dt.as_micros() as f64 / n_dirty as f64
        );
    }
    println!(
        "\nbuild times: skewsearch {lsf_build:?} | prefix filter {prefix_build:?}\n\
         note: prefix filtering and brute force are exact; the LSF index trades\n\
         a small recall loss for query time that scales as n^rho(q) instead of n."
    );
    let _ = results;
}
