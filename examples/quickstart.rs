//! Quickstart: index a skewed dataset, answer correlated queries, and
//! compare against an exact scan.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

// Examples report wall-clock timings to the console by design; the
// disallowed-methods ban protects library code, not demo output.
#![allow(clippy::disallowed_methods)]

use rand::{rngs::StdRng, SeedableRng};
use skewsearch::baselines::BruteForce;
use skewsearch::core::{CorrelatedIndex, CorrelatedParams, SetSimilaritySearch};
use skewsearch::datagen::{correlated_query, BernoulliProfile, Dataset};
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // A skewed universe in the style of the paper's Figure 1: a small block
    // of frequent dimensions and a large block of rare ones.
    let n = 20_000;
    let profile =
        BernoulliProfile::blocks(&[(320, 0.25), (25_600, 1.0 / 320.0)]).expect("valid profile");
    println!(
        "universe d = {}, expected set size Σp = {:.1}, C = Σp/ln n = {:.1}",
        profile.d(),
        profile.sum_p(),
        profile.c_constant(n)
    );

    let t = Instant::now();
    let data = Dataset::generate(&profile, n, &mut rng);
    println!("sampled n = {} vectors in {:?}", data.n(), t.elapsed());

    // Build the Theorem 1 index for α-correlated queries.
    let alpha = 0.75;
    let params = CorrelatedParams::new(alpha).expect("valid alpha");
    let t = Instant::now();
    let index = CorrelatedIndex::build(&data, &profile, params, &mut rng);
    println!(
        "built CorrelatedIndex in {:?}: {} repetitions, {:.1} filters/vector, predicted rho = {:.3}",
        t.elapsed(),
        index.build_stats().repetitions,
        index
            .build_stats()
            .avg_filters_per_vector(data.n()),
        index.predicted_rho()
    );
    for w in &index.diagnostics().warnings {
        println!("model warning: {w}");
    }

    // Answer correlated queries; verify against the exact oracle.
    let brute = BruteForce::new(data.vectors().to_vec(), index.threshold());
    let queries = 200;
    let mut hits = 0;
    let mut agree = 0;
    let t = Instant::now();
    let mut index_time = std::time::Duration::ZERO;
    for k in 0..queries {
        let target = (k * 97) % data.n();
        let q = correlated_query(data.vector(target), &profile, alpha, &mut rng);
        let ti = Instant::now();
        let got = index.search(&q);
        index_time += ti.elapsed();
        if got.map(|m| m.id) == Some(target) {
            hits += 1;
        }
        if got.is_some() == brute.search(&q).is_some() {
            agree += 1;
        }
    }
    println!(
        "answered {queries} correlated queries in {:?} (index time {:?}, {:.0} µs/query)",
        t.elapsed(),
        index_time,
        index_time.as_micros() as f64 / queries as f64
    );
    println!(
        "recall of planted neighbor: {:.1}%  |  agreement with exact scan: {:.1}%",
        100.0 * hits as f64 / queries as f64,
        100.0 * agree as f64 / queries as f64
    );

    // For scale: what one exact scan costs.
    let q = correlated_query(data.vector(0), &profile, alpha, &mut rng);
    let t = Instant::now();
    let _ = brute.search_best(&q);
    println!("one exact brute-force scan: {:?}", t.elapsed());
}
