//! Similarity join: find all close pairs between two collections (§1.1 of
//! the paper — "Our results immediately apply to the problem of database
//! similarity joins").
//!
//! Indexes S once, probes with every r ∈ R (sequentially and in parallel),
//! and validates recall against the exact nested-loop join.
//!
//! ```sh
//! cargo run --release --example similarity_join
//! ```

// Examples report wall-clock timings to the console by design; the
// disallowed-methods ban protects library code, not demo output.
#![allow(clippy::disallowed_methods)]

use rand::{rngs::StdRng, SeedableRng};
use skewsearch::core::{CorrelatedIndex, CorrelatedParams, IndexOptions, SetSimilaritySearch};
use skewsearch::datagen::{correlated_query, BernoulliProfile, Dataset};
use skewsearch::join::{join_recall, nested_loop_join, similarity_join, similarity_join_parallel};
use skewsearch::sets::SparseVec;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    // S: a skewed corpus. R: half correlated probes (true join partners),
    // half fresh draws (non-matches) — the "join size much smaller than R·S"
    // regime the paper's join argument assumes.
    let n_s = 10_000;
    let n_r = 1_000;
    let alpha = 0.8;
    let profile = BernoulliProfile::blocks(&[(240, 0.25), (12_000, 1.0 / 200.0)]).expect("profile");
    let s = Dataset::generate(&profile, n_s, &mut rng);
    let sampler = skewsearch::datagen::VectorSampler::new(&profile);
    let r: Vec<SparseVec> = (0..n_r)
        .map(|k| {
            if k % 2 == 0 {
                correlated_query(s.vector((k * 31) % n_s), &profile, alpha, &mut rng)
            } else {
                sampler.sample(&mut rng)
            }
        })
        .collect();

    let t = Instant::now();
    // query_threads: 1 pins the index's own batch pool to one worker so the
    // "sequential join" timing below really is sequential; the parallel
    // driver then supplies its own thread count explicitly.
    let index = CorrelatedIndex::build(
        &s,
        &profile,
        CorrelatedParams::new(alpha)
            .expect("alpha")
            .with_options(IndexOptions {
                query_threads: 1,
                ..IndexOptions::default()
            }),
        &mut rng,
    );
    println!(
        "indexed |S| = {n_s} in {:?} (threshold b1 = α/1.3 = {:.3})",
        t.elapsed(),
        index.threshold()
    );

    let t = Instant::now();
    let seq = similarity_join(&r, &index);
    let t_seq = t.elapsed();
    println!("sequential join: {} pairs in {t_seq:?}", seq.len());

    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    let t = Instant::now();
    let par = similarity_join_parallel(&r, &index, threads);
    let t_par = t.elapsed();
    println!(
        "parallel join ({threads} threads): {} pairs in {t_par:?} ({:.1}x speedup)",
        par.len(),
        t_seq.as_secs_f64() / t_par.as_secs_f64().max(1e-9)
    );
    assert_eq!(seq, par, "parallel join must be byte-identical");

    let t = Instant::now();
    let truth = nested_loop_join(&r, s.vectors(), index.threshold());
    let t_exact = t.elapsed();
    println!(
        "exact nested loop: {} pairs in {t_exact:?} ({:.1}x slower than indexed)",
        truth.len(),
        t_exact.as_secs_f64() / t_seq.as_secs_f64().max(1e-9)
    );
    println!(
        "join recall vs exact: {:.1}%",
        100.0 * join_recall(&seq, &truth)
    );
}
