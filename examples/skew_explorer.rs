//! Skew explorer: how much does your distribution's skew buy you?
//!
//! Reproduces the paper's analytic story end to end for a user-chosen
//! distribution: prints the exponent every method achieves (Theorem 1,
//! Chosen Path, MinHash, prefix filtering), the Figure 1 gap, and the §1
//! motivating-example split analysis.
//!
//! ```sh
//! cargo run --release --example skew_explorer -- [head_p] [divisor] [alpha]
//! # e.g. cargo run --release --example skew_explorer -- 0.25 8 0.667
//! ```

use skewsearch::experiments::{fig1, motivating};
use skewsearch::rho;
use skewsearch::sets::similarity::braun_blanquet_to_jaccard_equal_weight;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let head_p: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(0.25);
    let divisor: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8.0);
    let alpha: f64 = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0 / 3.0);
    assert!(head_p > 0.0 && head_p < 1.0, "head_p in (0,1)");
    assert!(divisor >= 1.0, "divisor >= 1");
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha in (0,1]");

    let blocks = [(1.0, head_p), (1.0, head_p / divisor)];
    println!(
        "distribution: half the bits at p = {head_p}, half at p/{divisor} = {:.5}; alpha = {alpha:.3}\n",
        head_p / divisor
    );

    // Exponents across methods (Theorem 1 + §7.2-style comparison).
    let ours = rho::rho_correlated_blocks(&blocks, alpha);
    let b1 = rho::model::expected_b1_correlated_blocks(&blocks, alpha);
    let b2 = rho::model::expected_b2_independent_blocks(&blocks);
    let cp = rho::rho_chosen_path(b1, b2);
    let mh = rho::rho_minhash(
        braun_blanquet_to_jaccard_equal_weight(b1),
        braun_blanquet_to_jaccard_equal_weight(b2),
    );
    println!("expected similarities: correlated b1 = {b1:.4}, independent b2 = {b2:.4}");
    println!("query-time exponents (smaller is better):");
    println!("  skewsearch (Theorem 1) : n^{ours:.4}");
    println!("  Chosen Path [18]       : n^{cp:.4}");
    println!("  MinHash LSH [13,14]    : n^{mh:.4}");
    println!("  prefix filtering [11]  : n^1 (no guarantee at Θ(1) probabilities)");
    println!("  brute force            : n^1");
    println!(
        "\nskew advantage: Chosen Path pays n^{:.4} more than skewsearch per query\n",
        cp - ours
    );

    // Where this point sits on Figure 1.
    let fig = fig1::compute(alpha, divisor, 40, 1.0);
    println!("Figure 1 sweep for this family (p on the x-axis):");
    println!("{}", fig.table().render_tsv());
    println!("max gap over the sweep: {:.4}\n", fig.max_gap());

    // The §1 motivating example on the harmonic distribution.
    let m = motivating::compute(100_000, 0.5);
    println!("{}", m.table().render_tsv());
    println!(
        "motivating example: single search n^{:.4} vs balanced split n^{:.4}",
        m.rho_single,
        m.rho_split()
    );
}
