//! # skewsearch
//!
//! A faithful, production-quality Rust implementation of
//! **"Set Similarity Search for Skewed Data"** (Samuel McCauley, Jesper W.
//! Mikkelsen, Rasmus Pagh — PODS 2018, arXiv:1804.03054), together with every
//! substrate and baseline the paper depends on and a harness reproducing all
//! of its tables and figures.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`core`] — the paper's contribution: skew-adaptive locality-sensitive
//!   filtering ([`core::CorrelatedIndex`] for Theorem 1,
//!   [`core::AdversarialIndex`] for Theorem 2, [`core::SplitIndex`] for the
//!   §1 motivating example).
//! * [`baselines`] — Chosen Path, MinHash LSH, prefix filtering, brute force.
//! * [`datagen`] — the skewed Bernoulli data model of §2 and Kirsch et al.,
//!   correlated query generation (Definition 3), skew analysis (§8).
//! * [`rho`] — solvers for the exponent equations of Theorems 1 and 2.
//! * [`join`] — set similarity joins via repeated search (§1.1).
//! * [`sets`], [`hashing`] — sparse-vector and hashing substrates.
//! * [`server`] — the long-lived query service: bounded admission,
//!   per-request deadlines, byte-identical answers over the wire
//!   (`docs/SERVICE.md`).
//! * [`experiments`] — the table/figure reproduction harness.
//!
//! # Quickstart
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use skewsearch::core::{CorrelatedIndex, CorrelatedParams, SetSimilaritySearch};
//! use skewsearch::datagen::{BernoulliProfile, Dataset};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! // A skewed universe: 200 frequent dimensions, 4000 rare ones.
//! let profile = BernoulliProfile::blocks(&[(200, 0.25), (4000, 0.005)]).unwrap();
//! let data = Dataset::generate(&profile, 2000, &mut rng);
//!
//! // Index for alpha-correlated queries (Theorem 1).
//! let params = CorrelatedParams::new(0.7).unwrap();
//! let index = CorrelatedIndex::build(&data, &profile, params, &mut rng);
//!
//! // A query correlated with data vector 0 is (very likely) found.
//! let q = skewsearch::datagen::correlated_query(data.vector(0), &profile, 0.7, &mut rng);
//! let hit = index.search(&q);
//! assert!(hit.is_some());
//! ```

#![forbid(unsafe_code)]

pub use skewsearch_baselines as baselines;
pub use skewsearch_core as core;
pub use skewsearch_datagen as datagen;
pub use skewsearch_experiments as experiments;
pub use skewsearch_hashing as hashing;
pub use skewsearch_join as join;
pub use skewsearch_rho as rho;
pub use skewsearch_server as server;
pub use skewsearch_sets as sets;
