//! End-to-end Theorem 2 check: the adversarial index finds a planted
//! `b₁`-similar pair for queries the model never saw, adapts its cost to the
//! query's difficulty, and stays exact on verification.

use rand::{rngs::StdRng, Rng, SeedableRng};
use skewsearch::core::{
    AdversarialIndex, AdversarialParams, IndexOptions, Repetitions, SetSimilaritySearch,
};
use skewsearch::datagen::{BernoulliProfile, Dataset};
use skewsearch::sets::{similarity, SparseVec};

fn build(
    ds: &Dataset,
    profile: &BernoulliProfile,
    b1: f64,
    reps: usize,
    rng: &mut StdRng,
) -> AdversarialIndex {
    AdversarialIndex::build(
        ds,
        profile,
        AdversarialParams::new(b1)
            .unwrap()
            .with_options(IndexOptions {
                repetitions: Repetitions::Fixed(reps),
                ..IndexOptions::default()
            }),
        rng,
    )
}

/// Perturbs `x` by deleting `del` random set bits (an adversarial edit, not
/// the probabilistic model).
fn delete_bits(x: &SparseVec, del: usize, rng: &mut StdRng) -> SparseVec {
    let mut dims = x.dims().to_vec();
    for _ in 0..del.min(dims.len().saturating_sub(1)) {
        let k = rng.random_range(0..dims.len());
        dims.remove(k);
    }
    SparseVec::from_sorted(dims)
}

#[test]
fn finds_planted_edits_with_high_probability() {
    let profile = BernoulliProfile::two_block(1200, 0.18, 0.02).unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    let ds = Dataset::generate(&profile, 400, &mut rng);
    let b1 = 0.75;
    let index = build(&ds, &profile, b1, 12, &mut rng);
    let trials = 30;
    let mut hits = 0;
    for t in 0..trials {
        let target = (t * 13) % ds.n();
        let q = delete_bits(ds.vector(target), 3, &mut rng);
        if similarity::braun_blanquet(ds.vector(target), &q) < b1 {
            continue; // tiny vector: the edit broke the planted similarity
        }
        if let Some(m) = index.search(&q) {
            assert!(m.similarity >= b1);
            hits += 1;
        }
    }
    assert!(hits >= trials * 3 / 4, "hits={hits}/{trials}");
}

#[test]
fn exact_duplicates_are_always_verifiable() {
    let profile = BernoulliProfile::two_block(800, 0.2, 0.02).unwrap();
    let mut rng = StdRng::seed_from_u64(12);
    let ds = Dataset::generate(&profile, 250, &mut rng);
    let index = build(&ds, &profile, 0.9, 15, &mut rng);
    let mut hits = 0;
    for t in 0..25 {
        let q = ds.vector(t).clone();
        if let Some(m) = index.search(&q) {
            assert!(m.similarity >= 0.9);
            hits += 1;
        }
    }
    assert!(hits >= 20, "self-queries found {hits}/25");
}

#[test]
fn per_query_cost_adapts_to_skew() {
    // Theorem 2's ρ(q): a query supported on rare dimensions examines far
    // fewer candidates than one supported on frequent dimensions.
    let profile = BernoulliProfile::blocks(&[(150, 0.3), (4000, 0.01)]).unwrap();
    let mut rng = StdRng::seed_from_u64(13);
    let ds = Dataset::generate(&profile, 600, &mut rng);
    let index = build(&ds, &profile, 0.5, 6, &mut rng);

    let q_freq = SparseVec::from_unsorted((0..60).collect());
    let q_rare = SparseVec::from_unsorted((150..210).collect());
    assert!(
        index.predicted_rho(&q_rare) < index.predicted_rho(&q_freq),
        "rho ordering"
    );
    let (c_freq, _) = index.distinct_candidates(&q_freq);
    let (c_rare, _) = index.distinct_candidates(&q_rare);
    assert!(
        c_rare.len() <= c_freq.len(),
        "rare-supported query touched more candidates ({} vs {})",
        c_rare.len(),
        c_freq.len()
    );
}

#[test]
fn search_with_stats_reports_work() {
    let profile = BernoulliProfile::two_block(800, 0.2, 0.02).unwrap();
    let mut rng = StdRng::seed_from_u64(14);
    let ds = Dataset::generate(&profile, 200, &mut rng);
    let index = build(&ds, &profile, 0.8, 6, &mut rng);
    let q = ds.vector(0).clone();
    let (hit, stats) = index.search_with_stats(&q);
    assert!(stats.filters > 0);
    if hit.is_some() {
        assert!(stats.verified >= 1);
        assert!(stats.candidates >= stats.verified);
    }
}
