//! Cross-structure agreement: every index must find the planted neighbor the
//! exact oracle finds (up to its advertised failure probability), and the
//! exact structures must agree with the oracle perfectly.

use rand::{rngs::StdRng, SeedableRng};
use skewsearch::baselines::{
    BruteForce, ChosenPathIndex, ChosenPathParams, MinHashLsh, MinHashParams, PrefixFilterIndex,
};
use skewsearch::core::{
    CorrelatedIndex, CorrelatedParams, IndexOptions, Repetitions, SetSimilaritySearch,
};
use skewsearch::datagen::{correlated_query, BernoulliProfile, Dataset};
use skewsearch::sets::SparseVec;

struct Fixture {
    ds: Dataset,
    profile: BernoulliProfile,
    queries: Vec<(usize, SparseVec)>,
    alpha: f64,
}

fn fixture(seed: u64) -> Fixture {
    let profile = BernoulliProfile::two_block(1400, 0.2, 0.025).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let ds = Dataset::generate(&profile, 350, &mut rng);
    let alpha = 0.85;
    let queries = (0..30)
        .map(|t| {
            let target = (t * 11) % ds.n();
            (
                target,
                correlated_query(ds.vector(target), &profile, alpha, &mut rng),
            )
        })
        .collect();
    Fixture {
        ds,
        profile,
        queries,
        alpha,
    }
}

#[test]
fn prefix_filter_agrees_exactly_with_brute_force() {
    let f = fixture(21);
    let b1 = f.alpha / 1.3;
    let prefix = PrefixFilterIndex::build(&f.ds, b1);
    let brute = BruteForce::new(f.ds.vectors().to_vec(), b1);
    for (_, q) in &f.queries {
        let mut got: Vec<usize> = prefix.search_all(q).into_iter().map(|m| m.id).collect();
        let mut want: Vec<usize> = brute.search_all(q).into_iter().map(|m| m.id).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}

#[test]
fn every_randomized_structure_reaches_threshold_recall() {
    let f = fixture(22);
    let mut rng = StdRng::seed_from_u64(100);
    let opts = IndexOptions {
        repetitions: Repetitions::Fixed(12),
        ..IndexOptions::default()
    };
    let ours = CorrelatedIndex::build(
        &f.ds,
        &f.profile,
        CorrelatedParams::new(f.alpha).unwrap().with_options(opts),
        &mut rng,
    );
    let cp = ChosenPathIndex::build(
        &f.ds,
        &f.profile,
        ChosenPathParams::for_correlated_model(&f.profile, f.alpha, 1.0 / 1.3)
            .unwrap()
            .with_options(opts),
        &mut rng,
    );
    let (b1m, b2m) = skewsearch::rho::expected_similarities(&f.profile, f.alpha);
    let mh = MinHashLsh::build(
        &f.ds,
        MinHashParams::new((b1m / 1.3).max(b2m * 1.01), b2m).unwrap(),
        &mut rng,
    );
    let total = f.queries.len();
    for (name, recall) in [
        ("ours", count_hits(&ours, &f.queries)),
        ("chosen_path", count_hits(&cp, &f.queries)),
        ("minhash", count_hits(&mh, &f.queries)),
    ] {
        assert!(
            recall * 2 >= total,
            "{name}: recall {recall}/{total} below 50%"
        );
    }
}

fn count_hits<I: SetSimilaritySearch>(index: &I, queries: &[(usize, SparseVec)]) -> usize {
    queries
        .iter()
        .filter(|(target, q)| index.search(q).map(|m| m.id) == Some(*target))
        .count()
}

#[test]
fn no_structure_invents_matches() {
    // Queries disjoint from the whole universe region used by the data can
    // never produce a verified match.
    let f = fixture(23);
    let mut rng = StdRng::seed_from_u64(200);
    let q = SparseVec::from_unsorted((100_000..100_040).collect());
    let ours = CorrelatedIndex::build(
        &f.ds,
        &f.profile,
        CorrelatedParams::new(f.alpha).unwrap(),
        &mut rng,
    );
    // Dims outside the profile would panic on p() lookups if probed blindly;
    // a robust API must simply find nothing. Restrict to in-universe dims
    // that no data vector is likely to fully share:
    let q_in = SparseVec::from_unsorted((0..f.ds.d() as u32).rev().take(3).collect());
    assert!(
        ours.search(&q_in).is_none() || {
            // If something was returned it must genuinely clear the threshold.
            let m = ours.search(&q_in).unwrap();
            skewsearch::sets::similarity::braun_blanquet(f.ds.vector(m.id), &q_in)
                >= ours.threshold()
        }
    );
    let brute = BruteForce::new(f.ds.vectors().to_vec(), 0.99);
    assert!(brute.search(&q_in).is_none());
    let _ = q;
}
