//! Batch semantics: for every index type, `search_batch` must return exactly
//! `queries.iter().map(|q| search_all(q))` — and `search_batch_best` exactly
//! the per-query `search_best` results — at any worker count, under a fixed
//! seed. Extends `tests/determinism.rs`'s transcript approach: the batch
//! transcript at 1 and 8 threads is compared byte-for-byte against the
//! sequential one.

use rand::{rngs::StdRng, SeedableRng};
use skewsearch::baselines::{ChosenPathIndex, ChosenPathParams, MinHashLsh, MinHashParams};
use skewsearch::core::{
    AdversarialIndex, AdversarialParams, CorrelatedIndex, CorrelatedParams, CorrelatedScheme,
    IndexOptions, LsfIndex, Repetitions, SetSimilaritySearch,
};
use skewsearch::datagen::{correlated_query, BernoulliProfile, Dataset};
use skewsearch::sets::SparseVec;

mod common;
use common::thread_counts;

const SEED: u64 = 0xBA7C4;
const ALPHA: f64 = 0.7;
const N: usize = 300;
const QUERIES: usize = 50;

fn fixture() -> (Dataset, BernoulliProfile, Vec<SparseVec>) {
    let profile = BernoulliProfile::blocks(&[(60, 0.2), (900, 0.01)]).unwrap();
    let mut rng = StdRng::seed_from_u64(SEED ^ 1);
    let ds = Dataset::generate(&profile, N, &mut rng);
    let mut queries: Vec<SparseVec> = (0..QUERIES)
        .map(|t| correlated_query(ds.vector(t * 11 % N), &profile, ALPHA, &mut rng))
        .collect();
    queries.push(SparseVec::empty()); // degenerate query rides along
    (ds, profile, queries)
}

fn opts(query_threads: usize) -> IndexOptions {
    IndexOptions {
        repetitions: Repetitions::Fixed(6),
        query_threads,
        ..IndexOptions::default()
    }
}

/// Asserts the batch contract for one structure: trait-level `search_batch`
/// and `search_batch_best` equal the sequential per-query loops, element for
/// element.
fn assert_batch_matches_sequential<I: SetSimilaritySearch>(
    index: &I,
    queries: &[SparseVec],
    label: &str,
) {
    let sequential: Vec<_> = queries.iter().map(|q| index.search_all(q)).collect();
    assert_eq!(index.search_batch(queries), sequential, "{label}");
    let best: Vec<_> = queries.iter().map(|q| index.search_best(q)).collect();
    assert_eq!(index.search_batch_best(queries), best, "{label}");
}

#[test]
fn lsf_index_batch_equivalence() {
    let (ds, profile, queries) = fixture();
    for threads in thread_counts() {
        let mut rng = StdRng::seed_from_u64(SEED);
        let scheme = CorrelatedScheme::new(ALPHA, ds.n(), &profile);
        let index = LsfIndex::build(
            ds.vectors().to_vec(),
            profile.clone(),
            scheme,
            ALPHA / 1.3,
            opts(threads),
            &mut rng,
        );
        assert_batch_matches_sequential(&index, &queries, &format!("LsfIndex t={threads}"));
        // Explicit-thread inherent APIs agree with the trait method.
        assert_eq!(
            index.search_batch_threads(&queries, threads),
            index.search_batch(&queries)
        );
        let batched = index.distinct_candidates_batch(&queries, threads);
        for (q, got) in queries.iter().zip(batched) {
            assert_eq!(got, index.distinct_candidates(q));
        }
    }
}

#[test]
fn correlated_index_batch_equivalence() {
    let (ds, profile, queries) = fixture();
    for threads in thread_counts() {
        let mut rng = StdRng::seed_from_u64(SEED ^ 2);
        let params = CorrelatedParams::new(ALPHA)
            .unwrap()
            .with_options(opts(threads));
        let index = CorrelatedIndex::build(&ds, &profile, params, &mut rng);
        assert_batch_matches_sequential(&index, &queries, &format!("CorrelatedIndex t={threads}"));
    }
}

#[test]
fn adversarial_index_batch_equivalence() {
    let (ds, profile, queries) = fixture();
    for threads in thread_counts() {
        let mut rng = StdRng::seed_from_u64(SEED ^ 3);
        let params = AdversarialParams::new(ALPHA / 1.3)
            .unwrap()
            .with_options(opts(threads));
        let index = AdversarialIndex::build(&ds, &profile, params, &mut rng);
        assert_batch_matches_sequential(&index, &queries, &format!("AdversarialIndex t={threads}"));
    }
}

#[test]
fn chosen_path_index_batch_equivalence() {
    let (ds, profile, queries) = fixture();
    for threads in thread_counts() {
        let mut rng = StdRng::seed_from_u64(SEED ^ 4);
        let params = ChosenPathParams::for_correlated_model(&profile, ALPHA, 1.0 / 1.3)
            .unwrap()
            .with_options(opts(threads));
        let index = ChosenPathIndex::build(&ds, &profile, params, &mut rng);
        assert_batch_matches_sequential(&index, &queries, &format!("ChosenPathIndex t={threads}"));
    }
}

#[test]
fn minhash_batch_equivalence() {
    let (ds, _, queries) = fixture();
    for threads in thread_counts() {
        let mut rng = StdRng::seed_from_u64(SEED ^ 5);
        let mut params = MinHashParams::new(0.6, 0.3).unwrap();
        params.query_threads = threads;
        let index = MinHashLsh::build(&ds, params, &mut rng);
        assert_batch_matches_sequential(&index, &queries, &format!("MinHashLsh t={threads}"));
        assert_eq!(
            index.search_batch_threads(&queries, threads),
            index.search_batch(&queries)
        );
    }
}

#[test]
fn batch_results_are_thread_count_invariant() {
    // The same built index must answer a batch identically at every worker
    // count — the "batching is never a semantics change" guarantee.
    let (ds, profile, queries) = fixture();
    let mut rng = StdRng::seed_from_u64(SEED ^ 6);
    let params = CorrelatedParams::new(ALPHA).unwrap().with_options(opts(1));
    let index = CorrelatedIndex::build(&ds, &profile, params, &mut rng);
    let reference = index.search_batch_threads(&queries, 1);
    for threads in [0, 2, 3, 8, 64] {
        assert_eq!(
            index.search_batch_threads(&queries, threads),
            reference,
            "threads={threads}"
        );
    }
}
