//! Helpers shared by the integration-test suites (each `tests/*.rs` file is
//! its own crate; this module is pulled in with `mod common;`).

pub mod mutation;

/// Worker counts the parallel-equivalence suites exercise: 1 and 8 always,
/// plus the value of `SKEWSEARCH_TEST_THREADS` when set. CI sets it to
/// `nproc` on multicore hosts so the executor actually fans out across the
/// real core count — see `.github/workflows/ci.yml`.
///
/// Not every suite that includes `common` calls this — hence the allow.
#[allow(dead_code)]
pub fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 8];
    if let Some(t) = std::env::var("SKEWSEARCH_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if !counts.contains(&t) {
            counts.push(t);
        }
    }
    counts
}
