//! The mutation-oracle machinery shared by `tests/mutation_equivalence.rs`
//! and `tests/service_equivalence.rs`.
//!
//! The centerpiece is the **rebuild oracle**: after any interleaving of
//! inserts and removes, a mutated index must answer byte-identically to an
//! index built from scratch over the surviving sets (under the monotone
//! slot → compact-id renumbering). That works because a build consumes its
//! RNG only for the per-repetition hash stacks and interners — never per
//! vector — so two builds from the same seed share identical stacks no
//! matter how many vectors each indexes.

// Each tests/*.rs file is its own crate and uses a different subset of
// these helpers.
#![allow(dead_code)]

use std::collections::HashMap;

use rand::{rngs::StdRng, SeedableRng};
use skewsearch::core::{
    CorrelatedScheme, IndexOptions, LsfIndex, Match, Repetitions, SetSimilaritySearch,
    ShardStrategy, TaggedMatch,
};
use skewsearch::datagen::{correlated_query, BernoulliProfile, Dataset};
use skewsearch::sets::SparseVec;

/// Query/data correlation used throughout the mutation suites.
pub const ALPHA: f64 = 0.8;
/// The rebuild oracle's build seed — shared so mutated index and oracle
/// draw identical hash stacks.
pub const BUILD_SEED: u64 = 0xB111D;
/// Both sharding strategies.
pub const STRATEGIES: [ShardStrategy; 2] = [ShardStrategy::ByRepetition, ShardStrategy::ByDataset];
/// Shard counts the sweeps exercise.
pub const SHARD_COUNTS: [usize; 3] = [1, 3, 8];

/// Pool of vectors: slots `0..n_build` are indexed at build time, inserts
/// draw the following pool vectors in order — so slot `s` always holds
/// `pool.vector(s)` and the rebuild oracle can reconstruct any survivor set.
pub fn pool(seed: u64, n: usize) -> (Dataset, BernoulliProfile) {
    let profile = BernoulliProfile::blocks(&[(60, 0.2), (900, 0.01)]).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    (Dataset::generate(&profile, n, &mut rng), profile)
}

/// The rebuild oracle's builder: a dedicated RNG consumed only by the build
/// and a scheme calibrated to a fixed n, so every call draws identical hash
/// stacks and interners regardless of the vector count.
pub fn build_fixed(
    vectors: Vec<SparseVec>,
    profile: &BernoulliProfile,
    mutation_buffer: usize,
) -> LsfIndex<CorrelatedScheme> {
    let scheme = CorrelatedScheme::new(ALPHA, 300, profile);
    let mut rng = StdRng::seed_from_u64(BUILD_SEED);
    LsfIndex::build(
        vectors,
        profile.clone(),
        scheme,
        ALPHA / 1.3,
        IndexOptions {
            repetitions: Repetitions::Fixed(4),
            mutation_buffer,
            ..IndexOptions::default()
        },
        &mut rng,
    )
}

/// Correlated queries against pool vectors (some of which the script will
/// have removed) plus the degenerate empty query.
pub fn queries_for(
    ds: &Dataset,
    profile: &BernoulliProfile,
    seed: u64,
    count: usize,
) -> Vec<SparseVec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut qs: Vec<SparseVec> = (0..count)
        .map(|t| correlated_query(ds.vector(t * 13 % ds.n()), profile, ALPHA, &mut rng))
        .collect();
    qs.push(SparseVec::empty());
    qs
}

/// One mutation, with its target resolved against the slot population at the
/// point it executes — so the unsharded index, every sharded mirror, and the
/// shadow model all perform the same concrete operation.
#[derive(Clone, Copy, Debug)]
pub enum Op {
    /// Insert the given pool vector (its index is also its slot id).
    Insert(usize),
    /// Remove the given slot id (possibly already dead, possibly never
    /// assigned — both must be refused idempotently).
    Remove(usize),
    /// Explicit compaction (skipped by executors that only speak the trait
    /// API; compaction is answer-invariant so both sides must still agree).
    Compact,
}

/// Decodes a raw `(kind, payload)` script into concrete ops and returns the
/// surviving pool indices in ascending slot order. Inserts stop when the
/// pool is exhausted; removes target `payload % (slot_count + 1)` so the
/// one-past-the-end id (never assigned) is exercised too.
pub fn resolve(raw: &[(u8, u64)], n_build: usize, pool_len: usize) -> (Vec<Op>, Vec<usize>) {
    let mut alive: Vec<bool> = vec![true; n_build];
    let mut ops = Vec::with_capacity(raw.len());
    for &(kind, payload) in raw {
        match kind % 8 {
            0..=2 => {
                if alive.len() < pool_len {
                    ops.push(Op::Insert(alive.len()));
                    alive.push(true);
                }
            }
            7 => ops.push(Op::Compact),
            _ => {
                let slot = (payload % (alive.len() as u64 + 1)) as usize;
                ops.push(Op::Remove(slot));
                if let Some(flag) = alive.get_mut(slot) {
                    *flag = false;
                }
            }
        }
    }
    let survivors = (0..alive.len()).filter(|&s| alive[s]).collect();
    (ops, survivors)
}

/// Applies a script through the inherent `LsfIndex` API, checking that ids
/// stay dense and monotone along the way.
pub fn run_inherent(index: &mut LsfIndex<CorrelatedScheme>, ds: &Dataset, ops: &[Op]) {
    for &op in ops {
        match op {
            Op::Insert(p) => assert_eq!(index.insert_set(ds.vector(p).clone()), p, "dense ids"),
            Op::Remove(slot) => {
                let _ = index.remove_set(slot);
            }
            Op::Compact => index.compact(),
        }
    }
}

/// Applies a script through the `SetSimilaritySearch` mutation API (what a
/// `ShardedIndex` exposes). `Compact` is skipped: the wrapper compacts its
/// shards on their own buffer schedule, and compaction must be
/// answer-invariant anyway — the equivalence assertions prove exactly that.
pub fn run_trait<I: SetSimilaritySearch>(index: &mut I, ds: &Dataset, ops: &[Op]) {
    for &op in ops {
        match op {
            Op::Insert(p) => {
                assert_eq!(index.insert(ds.vector(p).clone()), Ok(p), "dense ids");
            }
            Op::Remove(slot) => {
                assert!(index.remove(slot).is_ok());
            }
            Op::Compact => {}
        }
    }
}

/// Renders matches from a mutated index in the oracle's dense id space.
pub fn remap(ms: &[Match], compact_of: &HashMap<usize, usize>) -> Vec<(usize, u64)> {
    ms.iter()
        .map(|m| (compact_of[&m.id], m.similarity.to_bits()))
        .collect()
}

/// Tagged variant of [`remap`].
pub fn remap_tagged(
    ms: &[TaggedMatch],
    compact_of: &HashMap<usize, usize>,
) -> Vec<(u32, u32, usize, u64)> {
    ms.iter()
        .map(|m| {
            (
                m.pass,
                m.step,
                compact_of[&m.hit.id],
                m.hit.similarity.to_bits(),
            )
        })
        .collect()
}

/// Renders matches from an already-dense index for comparison.
pub fn dense(ms: &[Match]) -> Vec<(usize, u64)> {
    ms.iter().map(|m| (m.id, m.similarity.to_bits())).collect()
}

/// Tagged variant of [`dense`].
pub fn dense_tagged(ms: &[TaggedMatch]) -> Vec<(u32, u32, usize, u64)> {
    ms.iter()
        .map(|m| (m.pass, m.step, m.hit.id, m.hit.similarity.to_bits()))
        .collect()
}

/// The core assertion: every answer surface of `index` (a mutated structure
/// whose live slots map to the oracle's dense ids via `compact_of`) equals
/// the from-scratch `oracle`, byte for byte.
pub fn assert_answers_like_rebuild<I: SetSimilaritySearch>(
    index: &I,
    oracle: &LsfIndex<CorrelatedScheme>,
    compact_of: &HashMap<usize, usize>,
    queries: &[SparseVec],
    label: &str,
) {
    assert_eq!(index.len(), oracle.len(), "{label}: live count");
    assert_eq!(index.threshold(), oracle.threshold(), "{label}");
    for (i, q) in queries.iter().enumerate() {
        let ctx = format!("{label} q={i}");
        assert_eq!(
            remap(&index.search_all(q), compact_of),
            dense(&oracle.search_all(q)),
            "{ctx}: search_all"
        );
        assert_eq!(
            remap_tagged(&index.search_all_tagged(q), compact_of),
            dense_tagged(&oracle.search_all_tagged(q)),
            "{ctx}: search_all_tagged"
        );
        assert_eq!(
            index
                .search(q)
                .map(|m| (compact_of[&m.id], m.similarity.to_bits())),
            oracle.search(q).map(|m| (m.id, m.similarity.to_bits())),
            "{ctx}: search"
        );
        // The enumerate→probe split must survive mutation: probing a plan
        // answers exactly like the fused search over the same live sets.
        let plan = index.plan_query(q);
        assert_eq!(
            remap(&index.probe_plan(&plan), compact_of),
            dense(&oracle.search_all(q)),
            "{ctx}: probe_plan"
        );
    }
    let batch: Vec<Vec<(usize, u64)>> = index
        .search_batch(queries)
        .iter()
        .map(|ms| remap(ms, compact_of))
        .collect();
    let oracle_batch: Vec<Vec<(usize, u64)>> = oracle
        .search_batch(queries)
        .iter()
        .map(|ms| dense(ms))
        .collect();
    assert_eq!(batch, oracle_batch, "{label}: search_batch");
    let best: Vec<Option<(usize, u64)>> = index
        .search_batch_best(queries)
        .iter()
        .map(|m| m.map(|m| (compact_of[&m.id], m.similarity.to_bits())))
        .collect();
    let oracle_best: Vec<Option<(usize, u64)>> = oracle
        .search_batch_best(queries)
        .iter()
        .map(|m| m.map(|m| (m.id, m.similarity.to_bits())))
        .collect();
    assert_eq!(best, oracle_best, "{label}: search_batch_best");
}

/// Rebuilds the oracle over a script's survivors and returns it with the
/// slot → compact-id map.
pub fn oracle_for(
    survivors: &[usize],
    ds: &Dataset,
    profile: &BernoulliProfile,
) -> (LsfIndex<CorrelatedScheme>, HashMap<usize, usize>) {
    let vectors: Vec<SparseVec> = survivors.iter().map(|&s| ds.vector(s).clone()).collect();
    let oracle = build_fixed(vectors, profile, usize::MAX);
    let compact_of = survivors.iter().enumerate().map(|(c, &s)| (s, c)).collect();
    (oracle, compact_of)
}

/// A fixed interleaving mixing build-time removals, fresh inserts, a
/// remove-then-reinsert, and removal of freshly inserted sets.
pub fn fixed_script() -> Vec<(u8, u64)> {
    let mut raw: Vec<(u8, u64)> = vec![(3, 3), (3, 50), (0, 0), (0, 0), (3, 51)];
    raw.extend((0..26).map(|_| (0u8, 0u64)));
    raw.push((3, 170)); // one of the fresh inserts dies again
    raw.push((3, 0));
    raw.push((3, 0)); // double-remove: must be refused, must change nothing
    raw
}
