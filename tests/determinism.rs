//! Determinism: the same seed must yield byte-identical search results for
//! every randomized index, independently of when or how often it is built —
//! and, for the LSF indexes, independently of the build thread count (chunk
//! results are merged in id order).

use rand::{rngs::StdRng, SeedableRng};
use skewsearch::baselines::{ChosenPathIndex, ChosenPathParams, MinHashLsh, MinHashParams};
use skewsearch::core::{
    AdversarialIndex, AdversarialParams, CorrelatedIndex, CorrelatedParams, IndexOptions,
    Repetitions, SetSimilaritySearch,
};
use skewsearch::datagen::{correlated_query, BernoulliProfile, Dataset};
use skewsearch::sets::SparseVec;

const SEED: u64 = 0xD5EED;
const ALPHA: f64 = 0.7;
const N: usize = 400;
const QUERIES: usize = 40;

fn fixture() -> (Dataset, BernoulliProfile, Vec<SparseVec>) {
    let profile = BernoulliProfile::blocks(&[(60, 0.2), (900, 0.01)]).unwrap();
    let mut rng = StdRng::seed_from_u64(SEED ^ 1);
    let ds = Dataset::generate(&profile, N, &mut rng);
    let queries: Vec<SparseVec> = (0..QUERIES)
        .map(|t| correlated_query(ds.vector(t * 7 % N), &profile, ALPHA, &mut rng))
        .collect();
    (ds, profile, queries)
}

fn opts(threads: usize) -> IndexOptions {
    IndexOptions {
        repetitions: Repetitions::Fixed(6),
        build_threads: threads,
        ..IndexOptions::default()
    }
}

/// The full, byte-comparable transcript of an index's behavior on the query
/// batch: every `search` and every `search_all` result, Debug-formatted.
fn transcript<I: SetSimilaritySearch>(index: &I, queries: &[SparseVec]) -> String {
    let mut out = String::new();
    for q in queries {
        out.push_str(&format!("{:?}\n", index.search(q)));
        out.push_str(&format!("{:?}\n", index.search_all(q)));
    }
    out
}

#[test]
fn correlated_index_is_deterministic_under_fixed_seed() {
    let (ds, profile, queries) = fixture();
    let build = |threads: usize| {
        let mut rng = StdRng::seed_from_u64(SEED);
        let params = CorrelatedParams::new(ALPHA)
            .unwrap()
            .with_options(opts(threads));
        CorrelatedIndex::build(&ds, &profile, params, &mut rng)
    };
    let a = transcript(&build(1), &queries);
    let b = transcript(&build(1), &queries);
    assert_eq!(a, b, "two same-seed builds must answer identically");
    // Thread-count independence: chunked enumeration merges in id order.
    let c = transcript(&build(4), &queries);
    assert_eq!(a, c, "build_threads must not change results");
}

#[test]
fn adversarial_index_is_deterministic_under_fixed_seed() {
    let (ds, profile, queries) = fixture();
    let build = |threads: usize| {
        let mut rng = StdRng::seed_from_u64(SEED ^ 2);
        let params = AdversarialParams::new(ALPHA / 1.3)
            .unwrap()
            .with_options(opts(threads));
        AdversarialIndex::build(&ds, &profile, params, &mut rng)
    };
    let a = transcript(&build(1), &queries);
    let b = transcript(&build(1), &queries);
    assert_eq!(a, b, "two same-seed builds must answer identically");
    let c = transcript(&build(3), &queries);
    assert_eq!(a, c, "build_threads must not change results");
}

#[test]
fn chosen_path_index_is_deterministic_under_fixed_seed() {
    let (ds, profile, queries) = fixture();
    let build = |threads: usize| {
        let mut rng = StdRng::seed_from_u64(SEED ^ 3);
        let params = ChosenPathParams::for_correlated_model(&profile, ALPHA, 1.0 / 1.3)
            .unwrap()
            .with_options(opts(threads));
        ChosenPathIndex::build(&ds, &profile, params, &mut rng)
    };
    let a = transcript(&build(1), &queries);
    let b = transcript(&build(1), &queries);
    assert_eq!(a, b, "two same-seed builds must answer identically");
    let c = transcript(&build(8), &queries);
    assert_eq!(a, c, "build_threads must not change results");
}

#[test]
fn minhash_lsh_is_deterministic_under_fixed_seed() {
    let (ds, _, queries) = fixture();
    let build = || {
        let mut rng = StdRng::seed_from_u64(SEED ^ 4);
        MinHashLsh::build(&ds, MinHashParams::new(0.6, 0.3).unwrap(), &mut rng)
    };
    let a = transcript(&build(), &queries);
    let b = transcript(&build(), &queries);
    assert_eq!(a, b, "two same-seed builds must answer identically");
}

#[test]
fn different_seeds_actually_differ() {
    // Guards against the build being seed-independent (which would make the
    // determinism assertions vacuous). Search *results* may legitimately
    // coincide across seeds — candidates are verified exactly — so compare
    // the internal build statistics, which reflect the drawn hash stacks.
    let (ds, profile, _) = fixture();
    let build = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = CorrelatedParams::new(ALPHA).unwrap().with_options(opts(1));
        CorrelatedIndex::build(&ds, &profile, params, &mut rng)
    };
    let a = format!("{:?}", build(1).build_stats());
    let b = format!("{:?}", build(0xFFFF_0000_1234).build_stats());
    assert_ne!(a, b, "distinct seeds should draw distinct hash stacks");
}
