//! The acceptance criterion of the plan pipeline, asserted with the counting
//! hook `skewsearch::core::enumeration_count`: a `ByDataset`-sharded index
//! performs **exactly one** `F(q)` enumeration per query — `R` calls into the
//! enumeration engine, one per repetition — regardless of shard count, while
//! the legacy fused mode (`with_plan_broadcast(false)`) pays `shards × R`.
//! The join layer's distinct-query dedup is counted the same way.
//!
//! The counter is process-global, so everything here lives in **one** test
//! function: integration tests in one binary run on concurrent threads, and
//! a second enumerating test would corrupt the measured deltas. (Other test
//! binaries are separate processes and cannot interfere.)

use rand::{rngs::StdRng, SeedableRng};
use skewsearch::core::{
    enumeration_count, CorrelatedIndex, CorrelatedParams, IndexOptions, Repetitions,
    SetSimilaritySearch, ShardStrategy, ShardedIndex,
};
use skewsearch::datagen::{correlated_query, BernoulliProfile, Dataset};
use skewsearch::join::{similarity_join, JoinPair};
use skewsearch::sets::SparseVec;

const ALPHA: f64 = 0.7;
const REPS: usize = 6;

/// Runs `f` and returns how many enumeration-engine calls it made.
fn enumerations_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = enumeration_count();
    let out = f();
    (out, enumeration_count() - before)
}

#[test]
fn by_dataset_enumerates_each_query_exactly_once_at_any_shard_count() {
    let profile = BernoulliProfile::blocks(&[(60, 0.2), (900, 0.01)]).unwrap();
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let ds = Dataset::generate(&profile, 200, &mut rng);
    let params = CorrelatedParams::new(ALPHA)
        .unwrap()
        .with_options(IndexOptions {
            repetitions: Repetitions::Fixed(REPS),
            ..IndexOptions::default()
        });
    let index = CorrelatedIndex::build(&ds, &profile, params, &mut rng);
    let queries: Vec<SparseVec> = (0..8)
        .map(|t| correlated_query(ds.vector(t * 17 % ds.n()), &profile, ALPHA, &mut rng))
        .chain(std::iter::once(SparseVec::empty()))
        .collect();
    // Reference answers, computed outside every measured region.
    let expected: Vec<_> = queries.iter().map(|q| index.search_all(q)).collect();

    // Baseline: the unsharded fused search_all enumerates once per
    // repetition — R calls — per query.
    for (q, expect) in queries.iter().zip(&expected) {
        let (got, delta) = enumerations_during(|| index.search_all(q));
        assert_eq!(&got, expect);
        assert_eq!(delta, REPS as u64, "unsharded baseline");
    }

    for shards in [1usize, 2, 4, 8] {
        // The tentpole claim: ByDataset plans once and broadcasts — the
        // enumeration count per query does not depend on the shard count.
        let sharded = ShardedIndex::build(&index, ShardStrategy::ByDataset, shards);
        for (q, expect) in queries.iter().zip(&expected) {
            let (got, delta) = enumerations_during(|| sharded.search_all(q));
            assert_eq!(&got, expect, "ByDataset shards={shards}");
            assert_eq!(
                delta, REPS as u64,
                "exactly one F(q) enumeration per query, shards={shards}"
            );
        }
        // `search` plans once too (and probes early-exit per shard).
        let (_, delta) = enumerations_during(|| sharded.search(&queries[0]));
        assert_eq!(delta, REPS as u64, "search plans once, shards={shards}");

        // ByRepetition: disjoint pass slices sum to R — also 1× total.
        let by_rep = ShardedIndex::build(&index, ShardStrategy::ByRepetition, shards);
        for (q, expect) in queries.iter().zip(&expected).take(3) {
            let (got, delta) = enumerations_during(|| by_rep.search_all(q));
            assert_eq!(&got, expect, "ByRepetition shards={shards}");
            assert_eq!(delta, REPS as u64, "ByRepetition shards={shards}");
        }

        // The legacy fused mode re-pays the enumeration per dataset shard —
        // the documented N× tax the pipeline removes (and the proof the
        // counting hook actually detects it).
        let legacy = ShardedIndex::build(&index, ShardStrategy::ByDataset, shards)
            .with_plan_broadcast(false);
        for (q, expect) in queries.iter().zip(&expected).take(2) {
            let (got, delta) = enumerations_during(|| legacy.search_all(q));
            assert_eq!(&got, expect, "legacy shards={shards}");
            assert_eq!(
                delta,
                (shards * REPS) as u64,
                "fused mode pays shards×R, shards={shards}"
            );
        }
    }

    // ---- Mutations keep the once-per-query contract ----
    // One insert enumerates the new set's filters exactly once per
    // repetition — R calls — while removal is tombstone-only and compaction
    // reuses the stored keys: neither enumerates at all. With
    // `mutation_buffer = 2` the remove below also crosses the auto-compaction
    // threshold, so the zero-count covers compaction too.
    let mut mutated = CorrelatedIndex::build(
        &ds,
        &profile,
        CorrelatedParams::new(ALPHA)
            .unwrap()
            .with_options(IndexOptions {
                repetitions: Repetitions::Fixed(REPS),
                mutation_buffer: 2,
                ..IndexOptions::default()
            }),
        &mut rng,
    );
    let (id, delta) = enumerations_during(|| mutated.insert(ds.vector(0).clone()));
    assert_eq!(id, Ok(ds.n()));
    assert_eq!(delta, REPS as u64, "insert enumerates once per repetition");
    let (removed, delta) = enumerations_during(|| mutated.remove(3));
    assert_eq!(removed, Ok(true));
    assert_eq!(delta, 0, "remove + auto-compaction never enumerate");

    // Inserting through a sharded wrapper costs exactly R as well:
    // ByDataset routes the set to one shard (which pays its full R);
    // ByRepetition fans it to every shard, whose disjoint pass slices sum
    // to R. The regression this section pins: the plan broadcast still
    // enumerates exactly once per query *after* the insert, with answers
    // byte-identical to the mutated unsharded index.
    let mut mirrors: Vec<(ShardStrategy, ShardedIndex<_>)> = Vec::new();
    for strategy in [ShardStrategy::ByDataset, ShardStrategy::ByRepetition] {
        let mut sharded = ShardedIndex::build(&mutated, strategy, 4);
        let (res, delta) = enumerations_during(|| sharded.insert(ds.vector(1).clone()));
        assert_eq!(res, Ok(ds.n() + 1), "{strategy:?}: sharded ids stay global");
        assert_eq!(delta, REPS as u64, "{strategy:?}: sharded insert costs R");
        mirrors.push((strategy, sharded));
    }
    assert_eq!(mutated.insert(ds.vector(1).clone()), Ok(ds.n() + 1));
    for (strategy, sharded) in &mirrors {
        for q in queries.iter().take(3) {
            let (got, delta) = enumerations_during(|| sharded.search_all(q));
            assert_eq!(got, mutated.search_all(q), "post-insert {strategy:?}");
            assert_eq!(
                delta, REPS as u64,
                "post-insert broadcast still enumerates once, {strategy:?}"
            );
        }
    }
    drop(mirrors);

    // Joins: duplicate probe-side sets are answered once per *distinct*
    // query — 5 distinct queries repeated 3× each cost 5·R enumerations.
    let distinct: Vec<SparseVec> = queries[..5].to_vec();
    let r: Vec<SparseVec> = distinct
        .iter()
        .cycle()
        .take(15)
        .cloned()
        .collect::<Vec<_>>();
    let naive: Vec<JoinPair> = r
        .iter()
        .enumerate()
        .flat_map(|(r_id, q)| {
            index.search_all(q).into_iter().map(move |m| JoinPair {
                r_id,
                s_id: m.id,
                similarity: m.similarity,
            })
        })
        .collect();
    let sharded = ShardedIndex::build(&index, ShardStrategy::ByDataset, 4);
    let (pairs, delta) = enumerations_during(|| similarity_join(&r, &sharded));
    assert_eq!(
        pairs, naive,
        "deduped sharded join equals per-occurrence loop"
    );
    assert_eq!(
        delta,
        (distinct.len() * REPS) as u64,
        "one plan per distinct probe query"
    );
}
