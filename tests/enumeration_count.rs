//! The acceptance criterion of the plan pipeline, asserted with the counting
//! hook `skewsearch::core::enumeration_count`: a `ByDataset`-sharded index
//! performs **exactly one** `F(q)` enumeration per query — `R` calls into the
//! enumeration engine, one per repetition — regardless of shard count, while
//! the legacy fused mode (`with_plan_broadcast(false)`) pays `shards × R`.
//! The join layer's distinct-query dedup is counted the same way.
//!
//! The counter is process-global, so everything here lives in **one** test
//! function: integration tests in one binary run on concurrent threads, and
//! a second enumerating test would corrupt the measured deltas. (Other test
//! binaries are separate processes and cannot interfere.)

use rand::{rngs::StdRng, SeedableRng};
use skewsearch::core::{
    enumeration_count, CorrelatedIndex, CorrelatedParams, IndexOptions, Repetitions,
    SetSimilaritySearch, ShardStrategy, ShardedIndex,
};
use skewsearch::datagen::{correlated_query, BernoulliProfile, Dataset};
use skewsearch::join::{similarity_join, JoinPair};
use skewsearch::sets::SparseVec;

const ALPHA: f64 = 0.7;
const REPS: usize = 6;

/// Runs `f` and returns how many enumeration-engine calls it made.
fn enumerations_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = enumeration_count();
    let out = f();
    (out, enumeration_count() - before)
}

#[test]
fn by_dataset_enumerates_each_query_exactly_once_at_any_shard_count() {
    let profile = BernoulliProfile::blocks(&[(60, 0.2), (900, 0.01)]).unwrap();
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let ds = Dataset::generate(&profile, 200, &mut rng);
    let params = CorrelatedParams::new(ALPHA)
        .unwrap()
        .with_options(IndexOptions {
            repetitions: Repetitions::Fixed(REPS),
            ..IndexOptions::default()
        });
    let index = CorrelatedIndex::build(&ds, &profile, params, &mut rng);
    let queries: Vec<SparseVec> = (0..8)
        .map(|t| correlated_query(ds.vector(t * 17 % ds.n()), &profile, ALPHA, &mut rng))
        .chain(std::iter::once(SparseVec::empty()))
        .collect();
    // Reference answers, computed outside every measured region.
    let expected: Vec<_> = queries.iter().map(|q| index.search_all(q)).collect();

    // Baseline: the unsharded fused search_all enumerates once per
    // repetition — R calls — per query.
    for (q, expect) in queries.iter().zip(&expected) {
        let (got, delta) = enumerations_during(|| index.search_all(q));
        assert_eq!(&got, expect);
        assert_eq!(delta, REPS as u64, "unsharded baseline");
    }

    for shards in [1usize, 2, 4, 8] {
        // The tentpole claim: ByDataset plans once and broadcasts — the
        // enumeration count per query does not depend on the shard count.
        let sharded = ShardedIndex::build(&index, ShardStrategy::ByDataset, shards);
        for (q, expect) in queries.iter().zip(&expected) {
            let (got, delta) = enumerations_during(|| sharded.search_all(q));
            assert_eq!(&got, expect, "ByDataset shards={shards}");
            assert_eq!(
                delta, REPS as u64,
                "exactly one F(q) enumeration per query, shards={shards}"
            );
        }
        // `search` plans once too (and probes early-exit per shard).
        let (_, delta) = enumerations_during(|| sharded.search(&queries[0]));
        assert_eq!(delta, REPS as u64, "search plans once, shards={shards}");

        // ByRepetition: disjoint pass slices sum to R — also 1× total.
        let by_rep = ShardedIndex::build(&index, ShardStrategy::ByRepetition, shards);
        for (q, expect) in queries.iter().zip(&expected).take(3) {
            let (got, delta) = enumerations_during(|| by_rep.search_all(q));
            assert_eq!(&got, expect, "ByRepetition shards={shards}");
            assert_eq!(delta, REPS as u64, "ByRepetition shards={shards}");
        }

        // The legacy fused mode re-pays the enumeration per dataset shard —
        // the documented N× tax the pipeline removes (and the proof the
        // counting hook actually detects it).
        let legacy = ShardedIndex::build(&index, ShardStrategy::ByDataset, shards)
            .with_plan_broadcast(false);
        for (q, expect) in queries.iter().zip(&expected).take(2) {
            let (got, delta) = enumerations_during(|| legacy.search_all(q));
            assert_eq!(&got, expect, "legacy shards={shards}");
            assert_eq!(
                delta,
                (shards * REPS) as u64,
                "fused mode pays shards×R, shards={shards}"
            );
        }
    }

    // Joins: duplicate probe-side sets are answered once per *distinct*
    // query — 5 distinct queries repeated 3× each cost 5·R enumerations.
    let distinct: Vec<SparseVec> = queries[..5].to_vec();
    let r: Vec<SparseVec> = distinct
        .iter()
        .cycle()
        .take(15)
        .cloned()
        .collect::<Vec<_>>();
    let naive: Vec<JoinPair> = r
        .iter()
        .enumerate()
        .flat_map(|(r_id, q)| {
            index.search_all(q).into_iter().map(move |m| JoinPair {
                r_id,
                s_id: m.id,
                similarity: m.similarity,
            })
        })
        .collect();
    let sharded = ShardedIndex::build(&index, ShardStrategy::ByDataset, 4);
    let (pairs, delta) = enumerations_during(|| similarity_join(&r, &sharded));
    assert_eq!(
        pairs, naive,
        "deduped sharded join equals per-occurrence loop"
    );
    assert_eq!(
        delta,
        (distinct.len() * REPS) as u64,
        "one plan per distinct probe query"
    );
}
