//! §9 future-work feature: build the index from probabilities *estimated
//! from the dataset itself* (occurrence counting + Laplace smoothing) and
//! verify it matches the known-profile index's behaviour — the paper's
//! conjecture that estimation "lead[s] to the same asymptotic bounds".

use rand::{rngs::StdRng, SeedableRng};
use skewsearch::core::{
    CorrelatedIndex, CorrelatedParams, IndexOptions, Repetitions, SetSimilaritySearch,
};
use skewsearch::datagen::{correlated_query, BernoulliProfile, Dataset};

#[test]
fn estimated_profile_converges_to_truth() {
    let profile = BernoulliProfile::two_block(600, 0.25, 0.02).unwrap();
    let mut rng = StdRng::seed_from_u64(61);
    let ds = Dataset::generate(&profile, 4000, &mut rng);
    let est = ds.estimate_profile(0.5);
    assert_eq!(est.d(), profile.d());
    // Per-dimension relative error is within sampling noise.
    for i in 0..profile.d() as u32 {
        let (p, q) = (profile.p(i), est.p(i));
        let sigma = (p * (1.0 - p) / 4000.0).sqrt();
        assert!(
            (p - q).abs() < 6.0 * sigma + 1e-3,
            "dim {i}: true {p} est {q}"
        );
    }
    // Aggregates match closely.
    assert!((est.sum_p() - profile.sum_p()).abs() / profile.sum_p() < 0.03);
}

#[test]
fn estimation_keeps_unseen_dimensions_positive() {
    let counts = vec![0u32, 10, 500];
    let est = BernoulliProfile::estimate_from_counts(&counts, 1000, 0.5).unwrap();
    assert!(est.p(0) > 0.0, "unseen dim must stay positive");
    assert!((est.p(1) - 10.5 / 1001.0).abs() < 1e-12);
    assert!(est.p(2) < 1.0);
}

#[test]
fn index_from_estimated_profile_matches_known_profile_recall() {
    let profile = BernoulliProfile::two_block(1400, 0.2, 0.025).unwrap();
    let mut rng = StdRng::seed_from_u64(62);
    let ds = Dataset::generate(&profile, 400, &mut rng);
    let est = ds.estimate_profile(0.5);
    let alpha = 0.8;
    let opts = IndexOptions {
        repetitions: Repetitions::Fixed(10),
        ..IndexOptions::default()
    };

    let with_truth = CorrelatedIndex::build(
        &ds,
        &profile,
        CorrelatedParams::new(alpha).unwrap().with_options(opts),
        &mut rng,
    );
    let with_estimate = CorrelatedIndex::build(
        &ds,
        &est,
        CorrelatedParams::new(alpha).unwrap().with_options(opts),
        &mut rng,
    );

    let trials = 40;
    let mut hits_truth = 0;
    let mut hits_est = 0;
    for t in 0..trials {
        let target = (t * 9) % ds.n();
        // Queries still come from the *true* model.
        let q = correlated_query(ds.vector(target), &profile, alpha, &mut rng);
        if with_truth.search(&q).map(|m| m.id) == Some(target) {
            hits_truth += 1;
        }
        if with_estimate.search(&q).map(|m| m.id) == Some(target) {
            hits_est += 1;
        }
    }
    assert!(
        hits_truth >= trials * 4 / 5,
        "truth recall {hits_truth}/{trials}"
    );
    assert!(
        hits_est + 4 >= hits_truth,
        "estimated-profile recall {hits_est} far below known-profile {hits_truth}"
    );
}
