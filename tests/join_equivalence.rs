//! Join-level integration: index-driven joins versus the exact nested-loop
//! oracle, across structures, with the parallel driver byte-identical to the
//! sequential one.

use rand::{rngs::StdRng, SeedableRng};
use skewsearch::baselines::{BruteForce, PrefixFilterIndex};
use skewsearch::core::{
    CorrelatedIndex, CorrelatedParams, IndexOptions, Repetitions, SetSimilaritySearch,
};
use skewsearch::datagen::{correlated_query, BernoulliProfile, Dataset};
use skewsearch::join::{
    join_recall, nested_loop_join, self_join, similarity_join, similarity_join_parallel,
};
use skewsearch::sets::SparseVec;

fn setup(seed: u64) -> (Dataset, BernoulliProfile, Vec<SparseVec>, f64) {
    let profile = BernoulliProfile::two_block(1200, 0.2, 0.02).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let ds = Dataset::generate(&profile, 300, &mut rng);
    let alpha = 0.85;
    let r: Vec<SparseVec> = (0..80)
        .map(|t| {
            if t % 2 == 0 {
                correlated_query(ds.vector(t % ds.n()), &profile, alpha, &mut rng)
            } else {
                skewsearch::datagen::VectorSampler::new(&profile).sample(&mut rng)
            }
        })
        .collect();
    (ds, profile, r, alpha)
}

#[test]
fn brute_index_join_is_exactly_the_nested_loop_join() {
    let (ds, _, r, alpha) = setup(31);
    let t = alpha / 1.3;
    let index = BruteForce::new(ds.vectors().to_vec(), t);
    let via_index = similarity_join(&r, &index);
    let truth = nested_loop_join(&r, ds.vectors(), t);
    assert_eq!(via_index.len(), truth.len());
    assert_eq!(join_recall(&via_index, &truth), 1.0);
}

#[test]
fn prefix_filter_join_is_exact() {
    let (ds, _, r, alpha) = setup(32);
    let t = alpha / 1.3;
    let index = PrefixFilterIndex::build(&ds, t);
    let via_index = similarity_join(&r, &index);
    let truth = nested_loop_join(&r, ds.vectors(), t);
    assert_eq!(
        join_recall(&via_index, &truth),
        1.0,
        "prefix join lost pairs"
    );
    assert_eq!(via_index.len(), truth.len(), "prefix join invented pairs");
}

#[test]
fn lsf_join_recall_and_parallel_determinism() {
    let (ds, profile, r, alpha) = setup(33);
    let mut rng = StdRng::seed_from_u64(77);
    let index = CorrelatedIndex::build(
        &ds,
        &profile,
        CorrelatedParams::new(alpha)
            .unwrap()
            .with_options(IndexOptions {
                repetitions: Repetitions::Fixed(10),
                ..IndexOptions::default()
            }),
        &mut rng,
    );
    let seq = similarity_join(&r, &index);
    for threads in [2, 5, 16] {
        assert_eq!(
            similarity_join_parallel(&r, &index, threads),
            seq,
            "threads={threads}"
        );
    }
    let truth = nested_loop_join(&r, ds.vectors(), index.threshold());
    assert!(
        join_recall(&seq, &truth) >= 0.8,
        "recall={}",
        join_recall(&seq, &truth)
    );
    for p in &seq {
        assert!(p.similarity >= index.threshold());
    }
}

#[test]
fn self_join_finds_planted_duplicates() {
    let profile = BernoulliProfile::two_block(1000, 0.2, 0.02).unwrap();
    let mut rng = StdRng::seed_from_u64(34);
    let mut vectors = Dataset::generate(&profile, 150, &mut rng)
        .vectors()
        .to_vec();
    // Plant 10 exact duplicates at the end.
    for k in 0..10 {
        vectors.push(vectors[k * 7].clone());
    }
    let d = profile.d();
    let ds = Dataset::from_vectors(vectors.clone(), d);
    let index = BruteForce::new(ds.vectors().to_vec(), 0.95);
    let pairs = self_join(ds.vectors(), &index);
    // All 10 planted duplicate pairs must be present exactly once.
    for k in 0..10usize {
        let a = k * 7;
        let b = 150 + k;
        assert_eq!(
            pairs
                .iter()
                .filter(|p| (p.r_id, p.s_id) == (a.min(b), a.max(b)))
                .count(),
            1,
            "pair ({a},{b})"
        );
    }
}
