//! Join-level integration: index-driven joins versus the exact nested-loop
//! oracle, across structures, with the parallel driver byte-identical to the
//! sequential one.

use rand::{rngs::StdRng, SeedableRng};
use skewsearch::baselines::{BruteForce, PrefixFilterIndex};
use skewsearch::core::{
    CorrelatedIndex, CorrelatedParams, IndexOptions, Repetitions, SetSimilaritySearch,
};
use skewsearch::datagen::{correlated_query, BernoulliProfile, Dataset};
use skewsearch::join::{
    join_recall, nested_loop_join, self_join, similarity_join, similarity_join_parallel,
};
use skewsearch::sets::SparseVec;

mod common;
use common::thread_counts;

fn setup(seed: u64) -> (Dataset, BernoulliProfile, Vec<SparseVec>, f64) {
    let profile = BernoulliProfile::two_block(1200, 0.2, 0.02).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let ds = Dataset::generate(&profile, 300, &mut rng);
    let alpha = 0.85;
    let r: Vec<SparseVec> = (0..80)
        .map(|t| {
            if t % 2 == 0 {
                correlated_query(ds.vector(t % ds.n()), &profile, alpha, &mut rng)
            } else {
                skewsearch::datagen::VectorSampler::new(&profile).sample(&mut rng)
            }
        })
        .collect();
    (ds, profile, r, alpha)
}

#[test]
fn brute_index_join_is_exactly_the_nested_loop_join() {
    let (ds, _, r, alpha) = setup(31);
    let t = alpha / 1.3;
    let index = BruteForce::new(ds.vectors().to_vec(), t);
    let via_index = similarity_join(&r, &index);
    let truth = nested_loop_join(&r, ds.vectors(), t);
    assert_eq!(via_index.len(), truth.len());
    assert_eq!(join_recall(&via_index, &truth), 1.0);
}

#[test]
fn prefix_filter_join_is_exact() {
    let (ds, _, r, alpha) = setup(32);
    let t = alpha / 1.3;
    let index = PrefixFilterIndex::build(&ds, t);
    let via_index = similarity_join(&r, &index);
    let truth = nested_loop_join(&r, ds.vectors(), t);
    assert_eq!(
        join_recall(&via_index, &truth),
        1.0,
        "prefix join lost pairs"
    );
    assert_eq!(via_index.len(), truth.len(), "prefix join invented pairs");
}

#[test]
fn lsf_join_recall_and_parallel_determinism() {
    let (ds, profile, r, alpha) = setup(33);
    let mut rng = StdRng::seed_from_u64(77);
    let index = CorrelatedIndex::build(
        &ds,
        &profile,
        CorrelatedParams::new(alpha)
            .unwrap()
            .with_options(IndexOptions {
                repetitions: Repetitions::Fixed(10),
                ..IndexOptions::default()
            }),
        &mut rng,
    );
    let seq = similarity_join(&r, &index);
    for threads in [2, 5, 16] {
        assert_eq!(
            similarity_join_parallel(&r, &index, threads),
            seq,
            "threads={threads}"
        );
    }
    let truth = nested_loop_join(&r, ds.vectors(), index.threshold());
    assert!(
        join_recall(&seq, &truth) >= 0.8,
        "recall={}",
        join_recall(&seq, &truth)
    );
    for p in &seq {
        assert!(p.similarity >= index.threshold());
    }
}

#[test]
fn duplicate_probe_sets_join_identically_through_bydataset_shards() {
    // The plan pipeline answers each *distinct* probe query once and fans
    // the answers back to every occurrence; under ByDataset the duplicates'
    // indexed twins also co-locate on one shard (content-hash partitioning).
    // Neither optimization may change a byte of the join output.
    use skewsearch::core::{ShardStrategy, ShardedIndex};
    let (ds, profile, mut r, alpha) = setup(35);
    // Probe side with heavy duplication: every third query repeats query 0,
    // plus a run of empty queries.
    for t in 0..r.len() {
        if t % 3 == 2 {
            r[t] = r[0].clone();
        }
    }
    r.extend(std::iter::repeat_n(SparseVec::empty(), 5));
    let mut rng = StdRng::seed_from_u64(78);
    let index = CorrelatedIndex::build(
        &ds,
        &profile,
        CorrelatedParams::new(alpha)
            .unwrap()
            .with_options(IndexOptions {
                repetitions: Repetitions::Fixed(8),
                ..IndexOptions::default()
            }),
        &mut rng,
    );
    // Reference: the naive per-occurrence loop on the unsharded index.
    let naive: Vec<_> = r
        .iter()
        .enumerate()
        .flat_map(|(r_id, q)| {
            index
                .search_all(q)
                .into_iter()
                .map(move |m| (r_id, m.id, m.similarity))
        })
        .collect();
    for shards in [1, 4] {
        let sharded = ShardedIndex::build(&index, ShardStrategy::ByDataset, shards);
        let got: Vec<_> = similarity_join(&r, &sharded)
            .into_iter()
            .map(|p| (p.r_id, p.s_id, p.similarity))
            .collect();
        assert_eq!(got, naive, "shards={shards}");
    }
    assert_eq!(
        similarity_join(&r, &index)
            .into_iter()
            .map(|p| (p.r_id, p.s_id, p.similarity))
            .collect::<Vec<_>>(),
        naive,
        "unsharded deduped join"
    );
}

#[test]
fn mutated_index_joins_like_its_rebuild_and_shards_exactly() {
    // A join driven by a mutated (tombstoned + delta-segmented) index must
    // equal the join driven by a from-scratch build over the survivors,
    // under the monotone slot → compact-id renumbering — sequentially, on
    // the parallel driver at every worker count, and through sharded
    // mirrors under both strategies.
    use skewsearch::core::{CorrelatedScheme, LsfIndex, ShardStrategy, ShardedIndex};
    let (ds, profile, r, alpha) = setup(36);
    // A deterministic builder: the RNG is consumed only by the build and the
    // scheme is calibrated to a fixed n, so the rebuild over the survivors
    // draws the same hash stacks (see tests/mutation_equivalence.rs).
    let build = |vectors: Vec<SparseVec>| {
        let mut rng = StdRng::seed_from_u64(0x10BB);
        LsfIndex::build(
            vectors,
            profile.clone(),
            CorrelatedScheme::new(alpha, 300, &profile),
            alpha / 1.3,
            IndexOptions {
                repetitions: Repetitions::Fixed(8),
                ..IndexOptions::default()
            },
            &mut rng,
        )
    };
    let mut index = build(ds.vectors()[..260].to_vec());
    for id in [5usize, 80, 259] {
        assert!(index.remove_set(id));
    }
    for t in 260..300 {
        index.insert_set(ds.vector(t).clone());
    }
    assert!(index.remove_set(271), "a fresh insert dies too");
    let survivors: Vec<usize> = (0..index.slot_count())
        .filter(|&s| index.is_live(s))
        .collect();

    let seq = similarity_join(&r, &index);
    for threads in thread_counts() {
        assert_eq!(
            similarity_join_parallel(&r, &index, threads),
            seq,
            "threads={threads}"
        );
    }

    // Rebuild oracle: same pairs, with s_id renumbered to compact ids.
    let rebuilt = build(survivors.iter().map(|&s| ds.vector(s).clone()).collect());
    let compact_of: std::collections::HashMap<usize, usize> =
        survivors.iter().enumerate().map(|(c, &s)| (s, c)).collect();
    let remapped: Vec<_> = seq
        .iter()
        .map(|p| (p.r_id, compact_of[&p.s_id], p.similarity))
        .collect();
    let oracle: Vec<_> = similarity_join(&r, &rebuilt)
        .into_iter()
        .map(|p| (p.r_id, p.s_id, p.similarity))
        .collect();
    assert_eq!(remapped, oracle, "mutated join != rebuilt join");

    // Sharded mirrors of the mutated index join byte-identically.
    for strategy in [ShardStrategy::ByRepetition, ShardStrategy::ByDataset] {
        for shards in [1usize, 4] {
            let sharded = ShardedIndex::build(&index, strategy, shards);
            assert_eq!(
                similarity_join(&r, &sharded),
                seq,
                "{strategy:?} shards={shards}"
            );
        }
    }

    // Every reported pair verifies against the survivor set, and recall
    // against the exact nested-loop join over the survivors stays high.
    let truth = nested_loop_join(
        &r,
        &survivors
            .iter()
            .map(|&s| ds.vector(s).clone())
            .collect::<Vec<_>>(),
        index.threshold(),
    );
    let seq_compact: Vec<_> = similarity_join(&r, &rebuilt);
    assert!(
        join_recall(&seq_compact, &truth) >= 0.8,
        "recall={}",
        join_recall(&seq_compact, &truth)
    );
}

#[test]
fn self_join_finds_planted_duplicates() {
    let profile = BernoulliProfile::two_block(1000, 0.2, 0.02).unwrap();
    let mut rng = StdRng::seed_from_u64(34);
    let mut vectors = Dataset::generate(&profile, 150, &mut rng)
        .vectors()
        .to_vec();
    // Plant 10 exact duplicates at the end.
    for k in 0..10 {
        vectors.push(vectors[k * 7].clone());
    }
    let d = profile.d();
    let ds = Dataset::from_vectors(vectors.clone(), d);
    let index = BruteForce::new(ds.vectors().to_vec(), 0.95);
    let pairs = self_join(ds.vectors(), &index);
    // All 10 planted duplicate pairs must be present exactly once.
    for k in 0..10usize {
        let a = k * 7;
        let b = 150 + k;
        assert_eq!(
            pairs
                .iter()
                .filter(|p| (p.r_id, p.s_id) == (a.min(b), a.max(b)))
                .count(),
            1,
            "pair ({a},{b})"
        );
    }
}
