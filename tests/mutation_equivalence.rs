//! The mutability contract, pinned end to end: after **any** interleaving of
//! `insert` / `remove` / `compact` / queries, a log-structured index answers
//! every surface — `search`, `search_all`, `search_all_tagged`,
//! `search_batch`, `search_batch_best`, and `plan_query` + `probe_plan` —
//! **byte-identically** to an index built from scratch over the surviving
//! sets (under the monotone slot → compact-id renumbering), and a
//! `ShardedIndex` mutated through the trait API answers byte-identically to
//! the mutated unsharded index at every shard count, strategy, and worker
//! count.
//!
//! The oracle machinery (pool, fixed-seed builder, op scripts, rebuild
//! oracle, per-surface assertion) lives in `tests/common/mutation.rs`, where
//! `tests/service_equivalence.rs` reuses it to prove the same contract
//! *through the network service*.
//!
//! Deterministic tests pin a fixed interleaving plus the degenerate cases
//! from the issue (remove-then-reinsert, removing never-assigned ids,
//! emptying an index entirely, querying exactly at the compaction
//! threshold); a proptest block then randomizes the op script, the build
//! size, the buffer, and the shard count over {1, 3, 8}.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use skewsearch::baselines::{BruteForce, MinHashLsh, MinHashParams, PrefixFilterIndex};
use skewsearch::core::{MutationError, SetSimilaritySearch, ShardedIndex};

mod common;
use common::mutation::{
    assert_answers_like_rebuild, build_fixed, fixed_script, oracle_for, pool, queries_for, resolve,
    run_inherent, run_trait, Op, SHARD_COUNTS, STRATEGIES,
};
use common::thread_counts;

#[test]
fn interleaved_mutations_answer_like_a_rebuild_on_every_surface() {
    let (ds, profile) = pool(0x5EED, 200);
    let n_build = 160;
    let (ops, survivors) = resolve(&fixed_script(), n_build, ds.n());
    let queries = queries_for(&ds, &profile, 0xCAFE, 20);

    let mut index = build_fixed(ds.vectors()[..n_build].to_vec(), &profile, usize::MAX);
    run_inherent(&mut index, &ds, &ops);
    let (oracle, compact_of) = oracle_for(&survivors, &ds, &profile);

    // Plans are mutation-invariant: the mutated index and the fresh rebuild
    // plan every query identically (plans depend only on the hash stacks).
    for q in &queries {
        assert_eq!(index.plan_query(q), oracle.plan_query(q));
    }

    assert_answers_like_rebuild(&index, &oracle, &compact_of, &queries, "mutated");

    // Explicit compaction is answer-invariant — re-check every surface.
    index.compact();
    assert_eq!(index.pending_mutations(), 0);
    assert_answers_like_rebuild(&index, &oracle, &compact_of, &queries, "compacted");
}

#[test]
fn compaction_threshold_crossings_are_answer_invariant() {
    // Queries issued exactly at, one below, and one above the auto-compaction
    // threshold must agree with a buffer-disabled twin fed the same script.
    let (ds, profile) = pool(0x5EED ^ 1, 140);
    let n_build = 100;
    let queries = queries_for(&ds, &profile, 0xD00D, 12);
    let buffer = 3;
    let mut buffered = build_fixed(ds.vectors()[..n_build].to_vec(), &profile, buffer);
    let mut unbuffered = build_fixed(ds.vectors()[..n_build].to_vec(), &profile, usize::MAX);

    let mut survivors: Vec<usize> = (0..n_build).collect();
    let script: Vec<Op> = vec![
        Op::Insert(100),
        Op::Remove(7),   // pending = 2: one below the threshold
        Op::Insert(101), // pending = 3: compaction fires here
        Op::Insert(102), // pending = 1 again
    ];
    survivors.retain(|&s| s != 7);
    survivors.extend([100, 101, 102]);

    for (step, &op) in script.iter().enumerate() {
        run_inherent(&mut buffered, &ds, &[op]);
        run_inherent(&mut unbuffered, &ds, &[op]);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(
                buffered.search_all(q),
                unbuffered.search_all(q),
                "step={step} q={i} (pending={} compactions={})",
                buffered.pending_mutations(),
                buffered.compaction_count(),
            );
        }
    }
    assert_eq!(buffered.compaction_count(), 1, "threshold crossed once");
    assert_eq!(unbuffered.compaction_count(), 0);

    // And both agree with the rebuild over the survivors.
    let (oracle, compact_of) = oracle_for(&survivors, &ds, &profile);
    assert_answers_like_rebuild(&buffered, &oracle, &compact_of, &queries, "buffered");
    assert_answers_like_rebuild(&unbuffered, &oracle, &compact_of, &queries, "unbuffered");
}

#[test]
fn degenerate_mutation_sequences() {
    let (ds, profile) = pool(0x5EED ^ 2, 60);
    let mut index = build_fixed(ds.vectors()[..40].to_vec(), &profile, usize::MAX);

    // Remove-then-reinsert identical content: fresh id, never reused.
    assert_eq!(index.insert(ds.vector(40).clone()), Ok(40));
    assert_eq!(index.remove(40), Ok(true));
    assert_eq!(
        index.insert(ds.vector(40).clone()),
        Ok(41),
        "ids not reused"
    );
    // Removing dead or never-assigned ids is refused without error.
    assert_eq!(index.remove(40), Ok(false), "already dead");
    assert_eq!(index.remove(999), Ok(false), "never assigned");
    // The reinserted copy answers; the tombstoned slot never does.
    let q = ds.vector(40).clone();
    let hits = index.search_all(&q);
    assert!(hits.iter().any(|m| m.id == 41 && m.similarity == 1.0));
    assert!(hits.iter().all(|m| m.id != 40));

    // Empty the index entirely: every surface answers "nothing", and the
    // empty structure still accepts inserts and compaction afterwards.
    for id in 0..index.slot_count() {
        let _ = index.remove_set(id);
    }
    assert_eq!(index.len(), 0);
    assert!(index.is_empty());
    assert!(index.search(&q).is_none());
    assert!(index.search_all(&q).is_empty());
    assert!(index.search_all_tagged(&q).is_empty());
    assert!(index.probe_plan(&index.plan_query(&q)).is_empty());
    assert_eq!(index.search_batch(std::slice::from_ref(&q)), vec![vec![]]);
    index.compact();
    assert!(index.search_all(&q).is_empty());
    let revived = index.insert_set(ds.vector(42).clone());
    assert_eq!(revived, index.slot_count() - 1);
    assert!(index
        .search_all(ds.vector(42))
        .iter()
        .any(|m| m.id == revived && m.similarity == 1.0));
}

#[test]
fn read_only_structures_refuse_mutation() {
    let (ds, _profile) = pool(0x5EED ^ 3, 50);
    let mut rng = StdRng::seed_from_u64(9);
    let v = ds.vector(0).clone();

    let mut brute = BruteForce::new(ds.vectors().to_vec(), 0.6);
    assert!(!brute.supports_mutation());
    assert_eq!(brute.insert(v.clone()), Err(MutationError::Unsupported));
    assert_eq!(brute.remove(0), Err(MutationError::Unsupported));

    let mut prefix = PrefixFilterIndex::build(&ds, 0.6);
    assert!(!prefix.supports_mutation());
    assert_eq!(prefix.insert(v.clone()), Err(MutationError::Unsupported));

    let minhash = MinHashLsh::build(&ds, MinHashParams::new(0.6, 0.3).unwrap(), &mut rng);
    assert!(!minhash.supports_mutation());

    // A sharded wrapper over a read-only structure refuses mutations too,
    // before touching any shard — no partial fan-out effects.
    for strategy in STRATEGIES {
        let mut sharded = ShardedIndex::build(&minhash, strategy, 3);
        assert!(!sharded.supports_mutation());
        let before = sharded.len();
        assert_eq!(sharded.insert(v.clone()), Err(MutationError::Unsupported));
        assert_eq!(sharded.remove(0), Err(MutationError::Unsupported));
        assert_eq!(sharded.len(), before, "{strategy:?}: no partial insert");
    }
}

#[test]
fn mutated_sharded_indexes_match_at_every_shard_count() {
    let (ds, profile) = pool(0x5EED ^ 4, 200);
    let n_build = 160;
    let (ops, survivors) = resolve(&fixed_script(), n_build, ds.n());
    let queries = queries_for(&ds, &profile, 0xBEEF, 14);

    // The unsharded reference, mutated through the same trait API.
    // `build_fixed` is deterministic, so a second build is an exact twin of
    // the base the sharded mirrors are partitioned from.
    let base = build_fixed(ds.vectors()[..n_build].to_vec(), &profile, usize::MAX);
    let mut reference = build_fixed(ds.vectors()[..n_build].to_vec(), &profile, usize::MAX);
    run_trait(&mut reference, &ds, &ops);
    let (oracle, compact_of) = oracle_for(&survivors, &ds, &profile);
    assert_answers_like_rebuild(&reference, &oracle, &compact_of, &queries, "reference");

    for strategy in STRATEGIES {
        for shards in SHARD_COUNTS {
            for threads in thread_counts() {
                let label = format!("{strategy:?} shards={shards} threads={threads}");
                let mut sharded = ShardedIndex::build(&base, strategy, shards)
                    .with_fanout_threads(threads)
                    .with_query_threads(threads);
                assert!(sharded.supports_mutation(), "{label}");
                run_trait(&mut sharded, &ds, &ops);
                assert_answers_like_rebuild(&sharded, &oracle, &compact_of, &queries, &label);
            }
        }
    }

    // Sharding an already-mutated index must reproduce its answers too:
    // build-time routing has to carry tombstones and delta entries.
    for strategy in STRATEGIES {
        for shards in SHARD_COUNTS {
            let label = format!("post-mutation {strategy:?} shards={shards}");
            let sharded = ShardedIndex::build(&reference, strategy, shards);
            assert_answers_like_rebuild(&sharded, &oracle, &compact_of, &queries, &label);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized sweep: arbitrary op scripts (insert-heavy, with removes of
    /// live, dead, and never-assigned ids plus explicit compactions) over
    /// random build sizes and buffer settings, checked against the rebuild
    /// oracle both unsharded and through a sharded mirror.
    #[test]
    fn random_interleavings_match_rebuild_and_shards(
        raw in prop::collection::vec((any::<u8>(), any::<u64>()), 1..36),
        seed in 0u64..1_000_000,
        n_build in 20usize..60,
        buffer_ix in 0usize..3,
        shards_ix in 0usize..3,
    ) {
        let buffer = [2, 7, usize::MAX][buffer_ix];
        let shards = SHARD_COUNTS[shards_ix];
        let (ds, profile) = pool(seed, 100);
        let (ops, survivors) = resolve(&raw, n_build, ds.n());
        let queries = queries_for(&ds, &profile, seed ^ 0xF00D, 8);

        let base = build_fixed(ds.vectors()[..n_build].to_vec(), &profile, buffer);
        let mut index = build_fixed(ds.vectors()[..n_build].to_vec(), &profile, buffer);
        run_inherent(&mut index, &ds, &ops);
        let (oracle, compact_of) = oracle_for(&survivors, &ds, &profile);
        let label = format!("seed={seed} buffer={buffer}");
        assert_answers_like_rebuild(&index, &oracle, &compact_of, &queries, &label);

        for strategy in STRATEGIES {
            let mut sharded = ShardedIndex::build(&base, strategy, shards);
            run_trait(&mut sharded, &ds, &ops);
            assert_answers_like_rebuild(
                &sharded,
                &oracle,
                &compact_of,
                &queries,
                &format!("{label} {strategy:?} shards={shards}"),
            );
        }
    }
}
